"""Figure 13 / §V-E: coordinated local vs global checkpointing.

Paper shape: bt, cg and sp communicate all-to-all every interval, so local
coordination buys them nothing (normalized time ≈ 1); ft/is/mg/dc benefit
(normalized time < 1), ft and is the most; the advantage shrinks for the
ReCkpt variants (ACR already removed much of what local coordination
saves).
"""

from _bench_lib import run_once

from repro.experiments.figures import fig13_local


def test_fig13(benchmark, runner, emit):
    fig = run_once(benchmark, lambda: fig13_local(runner))
    emit("fig13_local", fig.render())
    s = fig.series

    # lu's cluster of 6 still saturates a whole memory controller, so —
    # unlike in the paper, where coordination costs dominate — our
    # bandwidth-dominated boundary model gives it (and the all-to-all
    # communicators) no local benefit; see EXPERIMENTS.md.
    no_benefit = ("bt", "cg", "sp", "lu")
    clustered = ("ft", "is", "mg", "dc")

    for wl in no_benefit:
        assert s[wl]["Ckpt_NE_Loc"] > 0.985, wl
    for wl in clustered:
        assert s[wl]["Ckpt_NE_Loc"] < 0.985, wl

    # ft (cluster pairs) gains the most under plain checkpointing.
    best = min(clustered, key=lambda wl: s[wl]["Ckpt_NE_Loc"])
    assert best in ("ft", "is")

    # Local never hurts (within rounding).
    for wl, v in s.items():
        for cfg, ratio in v.items():
            assert ratio < 1.02, (wl, cfg)
