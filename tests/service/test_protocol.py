"""Wire-protocol codec: strict decoding, hypothesis round trips, and
torn/corrupt-frame tolerance (the journal's durability model on a
socket)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.protocol import (
    CLIENT_OPS,
    PROTOCOL_VERSION,
    SERVER_OPS,
    ProtocolError,
    decode_frame,
    decode_stream,
    encode_frame,
)

# JSON-safe payload values (ints bounded to the float-exact range so a
# round trip cannot legitimately change them).
_JSON = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)

_PAYLOADS = st.dictionaries(
    st.text(max_size=10).filter(lambda k: k not in ("op", "v")),
    _JSON,
    max_size=5,
)

_OPS = st.sampled_from(CLIENT_OPS + SERVER_OPS)


class TestEncode:
    def test_stamps_version_and_terminates_line(self):
        data = encode_frame({"op": "ping"})
        assert data.endswith(b"\n")
        assert json.loads(data) == {"op": "ping", "v": PROTOCOL_VERSION}

    def test_canonical_bytes_for_equal_messages(self):
        a = encode_frame({"op": "ping", "b": 1, "a": 2})
        b = encode_frame({"a": 2, "op": "ping", "b": 1})
        assert a == b

    def test_rejects_non_dict(self):
        with pytest.raises(ProtocolError, match="object"):
            encode_frame(["op", "ping"])

    def test_rejects_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown wire op"):
            encode_frame({"op": "teleport"})

    def test_rejects_missing_op(self):
        with pytest.raises(ProtocolError, match="unknown wire op"):
            encode_frame({"hello": 1})

    def test_rejects_wrong_version(self):
        with pytest.raises(ProtocolError, match="version"):
            encode_frame({"op": "ping", "v": PROTOCOL_VERSION + 1})

    def test_accepts_matching_version(self):
        data = encode_frame({"op": "ping", "v": PROTOCOL_VERSION})
        assert decode_frame(data)["op"] == "ping"

    def test_rejects_unencodable_payload(self):
        with pytest.raises(ProtocolError, match="unencodable"):
            encode_frame({"op": "ping", "blob": object()})


class TestDecode:
    def test_rejects_bad_utf8(self):
        with pytest.raises(ProtocolError, match="undecodable wire bytes"):
            decode_frame(b"\xff\xfe{}")

    def test_rejects_non_json(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_frame("not json at all")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="not an object"):
            decode_frame("[1,2]")

    def test_rejects_missing_version(self):
        line = json.dumps({"op": "ping"})
        with pytest.raises(ProtocolError, match="version"):
            decode_frame(line)

    def test_rejects_unknown_op(self):
        line = json.dumps({"op": "warp", "v": PROTOCOL_VERSION})
        with pytest.raises(ProtocolError, match="unknown wire op"):
            decode_frame(line)

    def test_rejects_non_string_input(self):
        with pytest.raises(ProtocolError, match="str or bytes"):
            decode_frame(42)


class TestRoundTrip:
    @given(op=_OPS, payload=_PAYLOADS)
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_is_identity(self, op, payload):
        doc = dict(payload)
        doc["op"] = op
        decoded = decode_frame(encode_frame(doc))
        expected = dict(doc)
        expected["v"] = PROTOCOL_VERSION
        assert decoded == expected

    @given(op=_OPS, payload=_PAYLOADS)
    @settings(max_examples=100, deadline=None)
    def test_every_truncation_is_torn_not_error(self, op, payload):
        doc = dict(payload)
        doc["op"] = op
        data = encode_frame(doc)
        for cut in range(len(data)):  # strictly before the newline
            messages, tail, malformed = decode_stream(data[:cut])
            assert messages == []
            assert tail == data[:cut]
            assert malformed == 0
            # Buffering the rest recovers the message exactly.
            messages, tail, malformed = decode_stream(tail + data[cut:])
            assert len(messages) == 1
            assert messages[0]["op"] == op
            assert tail == b""
            assert malformed == 0

    @given(payloads=st.lists(_PAYLOADS, min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_concatenated_frames_decode_in_order(self, payloads):
        docs = []
        for i, payload in enumerate(payloads):
            doc = dict(payload)
            doc["op"] = "frame"
            doc["seq"] = i
            docs.append(doc)
        data = b"".join(encode_frame(d) for d in docs)
        messages, tail, malformed = decode_stream(data)
        assert [m["seq"] for m in messages] == list(range(len(docs)))
        assert tail == b""
        assert malformed == 0


class TestDecodeStream:
    def test_corrupt_line_counted_not_poisoning(self):
        data = (
            encode_frame({"op": "ping"})
            + b"}}corrupt{{\n"
            + b"\xff\xfe\n"
            + encode_frame({"op": "bye"})
        )
        messages, tail, malformed = decode_stream(data)
        assert [m["op"] for m in messages] == ["ping", "bye"]
        assert tail == b""
        assert malformed == 2

    def test_blank_lines_skipped_silently(self):
        data = b"\n  \n" + encode_frame({"op": "ping"}) + b"\n"
        messages, tail, malformed = decode_stream(data)
        assert [m["op"] for m in messages] == ["ping"]
        assert tail == b""
        assert malformed == 0

    def test_torn_tail_returned_verbatim(self):
        whole = encode_frame({"op": "ping"})
        data = whole + b'{"op": "res'
        messages, tail, malformed = decode_stream(data)
        assert len(messages) == 1
        assert tail == b'{"op": "res'
        assert malformed == 0

    def test_rejects_non_bytes(self):
        with pytest.raises(ProtocolError, match="bytes"):
            decode_stream("a string")

    def test_empty_buffer(self):
        assert decode_stream(b"") == ([], b"", 0)
