"""Tests for the figure/table generators (small scale, subset checks).

These verify plumbing and invariants; the full-scale shape checks against
the paper live in the benchmark harness.
"""

import pytest

from repro.experiments.figures import (
    fig1_error_rate,
    fig6_time_overhead,
    fig8_edp_reduction,
    fig9_checkpoint_size,
    fig10_temporal,
    fig13_local,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables_ import table1_configuration, table2_threshold_sweep


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(num_cores=4, region_scale=0.12, reps=20)


class TestFig1:
    def test_series(self):
        fig = fig1_error_rate()
        assert fig.series["rates"][0] == 1.0
        assert "180" in fig.render()


class TestFig6:
    def test_structure_and_invariants(self, runner):
        fig = fig6_time_overhead(runner)
        assert set(fig.series) == set(runner.workloads())
        for wl, v in fig.series.items():
            assert v["ReCkpt_NE"] <= v["Ckpt_NE"], wl
            assert v["Ckpt_E"] >= v["Ckpt_NE"], wl
        assert "average ACR reduction" in fig.render()


class TestFig8:
    def test_edp_composition(self, runner):
        fig = fig8_edp_reduction(runner)
        for wl, v in fig.series.items():
            assert -0.1 <= v["NE"] < 1.0
            assert -0.1 <= v["E"] < 1.0


class TestFig9:
    def test_reductions_bounded(self, runner):
        fig = fig9_checkpoint_size(runner)
        for wl, v in fig.series.items():
            assert 0.0 <= v["overall"] < 1.0
            assert v["max"] < 1.0


class TestFig10:
    def test_threshold_dominance(self, runner):
        fig = fig10_temporal(runner, "bt", thresholds=(10, 30))
        t10, t30 = fig.series["thr10"], fig.series["thr30"]
        assert len(t10) == len(t30) == 25
        for a, b in zip(t10, t30):
            assert b >= a - 1e-9


class TestFig13:
    def test_normalisation(self, runner):
        fig = fig13_local(runner)
        for wl, v in fig.series.items():
            for ratio in v.values():
                assert 0.3 < ratio < 1.05


class TestTables:
    def test_table1_text(self):
        assert "1.09 GHz" in table1_configuration()

    def test_table2_monotone(self, runner):
        fig = table2_threshold_sweep(runner, thresholds=(10, 30, 50))
        for wl, reds in fig.series.items():
            assert reds == sorted(reds), wl
        assert "paper" in fig.render()


class TestRenderedTables:
    def test_render_is_aligned_ascii(self, runner):
        fig = fig9_checkpoint_size(runner)
        lines = fig.render().splitlines()
        assert lines[0].startswith("Figure 9")
        widths = {len(l) for l in lines[1:4]}
        assert len(widths) == 1  # header, rule and first row align
