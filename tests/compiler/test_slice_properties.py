"""Property-based slicing correctness on randomly shaped dataflow.

The existing tests exercise linear chains (what the workload generators
emit).  These properties generate random DAG-shaped kernel bodies — mixed
loads, immediates, shared subexpressions, dead code, multiple stores —
and check the fundamental slicing contract: for every sliceable store,
executing the extracted Slice on the frontier-operand snapshot reproduces
the interpreter's stored value bit-for-bit.
"""

from hypothesis import given, settings, strategies as st

from repro.compiler.ddg import DataDependenceGraph
from repro.compiler.slicer import extract_slice
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import AddressPattern, StoreInstr
from repro.isa.interpreter import Interpreter, MemoryImage
from repro.isa.opcodes import Opcode
from repro.isa.program import Program

OPS = [
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.SHL,
    Opcode.SHR,
]


@st.composite
def random_kernels(draw):
    """A random DAG kernel: loads + immediates feeding a random ALU DAG,
    with 1-3 stores picked from arbitrary intermediate values."""
    builder = KernelBuilder("prop")
    values = []  # registers carrying defined values
    n_loads = draw(st.integers(min_value=0, max_value=3))
    for i in range(n_loads):
        values.append(
            builder.load(AddressPattern((1 << 20) + i * 1024, 1, 16))
        )
    n_imms = draw(st.integers(min_value=0 if n_loads else 1, max_value=3))
    for _ in range(n_imms):
        values.append(builder.movi(draw(st.integers(0, 2**64 - 1))))
    n_alu = draw(st.integers(min_value=0, max_value=12))
    for _ in range(n_alu):
        op = draw(st.sampled_from(OPS))
        a = draw(st.sampled_from(values))
        b = draw(st.sampled_from(values))
        values.append(builder.alu(op, a, b))
    n_stores = draw(st.integers(min_value=1, max_value=3))
    for j in range(n_stores):
        src = draw(st.sampled_from(values))
        builder.store(src, AddressPattern(j * 1024, 1, 8))
    trip = draw(st.integers(min_value=1, max_value=6))
    return builder.build(trip)


class TestSlicingContract:
    @given(random_kernels(), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_slice_reproduces_interpreter_values(self, kernel, seed):
        program = Program([kernel])
        k = program.kernels[0]
        ddg = DataDependenceGraph(k)
        slices = {}
        for idx, ins in enumerate(k.body):
            if isinstance(ins, StoreInstr):
                ex = extract_slice(k, idx, ddg)
                if ex.sliceable:
                    slices[ins.site] = ex.slice

        failures = []

        def on_store(ev):
            sl = slices.get(ev.site)
            if sl is None:
                return
            operands = tuple(ev.regs[r] for r in sl.frontier)
            if sl.execute(operands) != ev.new_value:
                failures.append((ev.site, ev.iteration))

        Interpreter(program, MemoryImage(seed), on_store=on_store).run_to_completion()
        assert failures == []

    @given(random_kernels())
    @settings(max_examples=60, deadline=None)
    def test_slices_are_pure_alu(self, kernel):
        from repro.isa.instructions import AluInstr, MoviInstr

        program = Program([kernel])
        k = program.kernels[0]
        for idx, ins in enumerate(k.body):
            if isinstance(ins, StoreInstr):
                ex = extract_slice(k, idx)
                if ex.sliceable:
                    assert all(
                        isinstance(i, (AluInstr, MoviInstr))
                        for i in ex.slice.instructions
                    )
                    # Frontier registers are load destinations only.
                    load_dsts = {
                        i.dst
                        for i in k.body
                        if i.__class__.__name__ == "LoadInstr"
                    }
                    assert set(ex.slice.frontier) <= load_dsts

    @given(random_kernels())
    @settings(max_examples=40, deadline=None)
    def test_slice_length_bounded_by_body(self, kernel):
        program = Program([kernel])
        k = program.kernels[0]
        alu_count = k.alu_count - k.ghost_alu
        for idx, ins in enumerate(k.body):
            if isinstance(ins, StoreInstr):
                ex = extract_slice(k, idx)
                if ex.sliceable:
                    assert 0 < ex.slice.length <= alu_count
