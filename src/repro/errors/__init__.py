"""Error modelling: fail-stop errors with non-zero detection latency.

The paper assumes a fail-stop model where data memory and checkpoint logs
are protected (ECC / chipkill) and errors strike the cores.  Detection is
not instantaneous: an error may slip past a checkpoint establishment, which
corrupts that checkpoint and forces rollback to the *second* most recent
one (paper Fig. 2).  Keeping the detection latency no longer than the
checkpoint period bounds retention to two checkpoints.
"""

from repro.errors.model import ErrorModel, ErrorOccurrence
from repro.errors.injection import (
    ErrorSchedule,
    NoErrors,
    PoissonErrors,
    UniformErrors,
)
from repro.errors.detection import SafeCheckpointChoice, choose_safe_checkpoint

__all__ = [
    "ErrorModel",
    "ErrorOccurrence",
    "ErrorSchedule",
    "NoErrors",
    "UniformErrors",
    "PoissonErrors",
    "SafeCheckpointChoice",
    "choose_safe_checkpoint",
]
