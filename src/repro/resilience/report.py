"""Per-task attempt history and the campaign-level failure report.

Every supervised task accumulates one :class:`AttemptRecord` per
execution — outcome, wall seconds, the deterministic backoff scheduled
after a failure — and the :class:`FailureReport` aggregates them for
the campaign/report footer: which tasks retried, timed out, rode
through a worker death, or forced the pool to degrade to serial.

The report is *observability only*: it is printed beside (never inside)
the campaign's JSON artifact, so a run that survived a SIGKILL still
produces a byte-identical report file to an undisturbed run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.util.tables import format_table

__all__ = ["AttemptRecord", "TaskHistory", "FailureReport"]

#: Attempt outcomes the supervisor records.
OUTCOME_OK = "ok"
OUTCOME_ERROR = "error"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_WORKER_DIED = "worker-died"
OUTCOMES = (OUTCOME_OK, OUTCOME_ERROR, OUTCOME_TIMEOUT, OUTCOME_WORKER_DIED)


@dataclass(frozen=True)
class AttemptRecord:
    """One execution of one task."""

    #: 1-based attempt number.
    attempt: int
    #: One of :data:`OUTCOMES`.
    outcome: str
    #: Parent-observed wall seconds of the attempt.
    seconds: float
    #: Deterministic backoff scheduled after this attempt (0.0 when it
    #: succeeded or exhausted the retry budget).
    backoff_s: float = 0.0
    #: Where the attempt ran (``worker`` or ``serial``).
    where: str = "worker"
    #: Failure detail (exception text, "wall-clock timeout", ...).
    detail: str = ""

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOMES:
            raise ValueError(
                f"outcome must be one of {OUTCOMES}, got {self.outcome!r}"
            )
        if self.attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {self.attempt}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attempt": self.attempt,
            "outcome": self.outcome,
            "seconds": self.seconds,
            "backoff_s": self.backoff_s,
            "where": self.where,
            "detail": self.detail,
        }


@dataclass
class TaskHistory:
    """Everything one supervised task went through."""

    key: str
    label: str
    attempts: List[AttemptRecord] = field(default_factory=list)

    @property
    def outcome(self) -> str:
        """The final attempt's outcome (``ok`` iff the task completed)."""
        return self.attempts[-1].outcome if self.attempts else OUTCOME_ERROR

    @property
    def ok(self) -> bool:
        return self.outcome == OUTCOME_OK

    @property
    def retried(self) -> bool:
        return len(self.attempts) > 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "label": self.label,
            "outcome": self.outcome,
            "attempts": [a.to_dict() for a in self.attempts],
        }


@dataclass
class FailureReport:
    """Attempt histories plus the pool-level verdicts.

    ``tasks`` holds only the *noteworthy* histories — anything that
    retried or ultimately failed; clean single-attempt tasks are
    summarised by ``clean_tasks`` so the report stays small on healthy
    campaigns.
    """

    tasks: List[TaskHistory] = field(default_factory=list)
    clean_tasks: int = 0
    retried: int = 0
    timed_out: int = 0
    worker_deaths: int = 0
    pool_respawns: int = 0
    degraded_to_serial: bool = False

    # ---------------------------------------------------------------- updates --
    def absorb(self, history: TaskHistory) -> None:
        """Fold one finished task history into the report."""
        if history.retried or not history.ok:
            self.tasks.append(history)
        else:
            self.clean_tasks += 1
        if history.retried:
            self.retried += 1
        for attempt in history.attempts:
            if attempt.outcome == "timeout":
                self.timed_out += 1
            elif attempt.outcome == "worker-died":
                self.worker_deaths += 1

    # ---------------------------------------------------------------- queries --
    @property
    def ok(self) -> bool:
        """True iff every task ultimately completed."""
        return all(t.ok for t in self.tasks)

    @property
    def failed_tasks(self) -> List[TaskHistory]:
        return [t for t in self.tasks if not t.ok]

    @property
    def clean(self) -> bool:
        """True iff nothing noteworthy happened at all."""
        return (
            not self.tasks
            and not self.degraded_to_serial
            and self.pool_respawns == 0
        )

    # -------------------------------------------------------------- rendering --
    def summary_line(self) -> str:
        return (
            f"resilience: {self.retried} retried, {self.timed_out} timed "
            f"out, {self.worker_deaths} worker deaths, "
            f"{self.pool_respawns} respawns, degraded-to-serial "
            f"{'yes' if self.degraded_to_serial else 'no'}"
        )

    def summary_table(self) -> str:
        """Attempt-history table of every noteworthy task."""
        rows = []
        for task in self.tasks:
            trail = " → ".join(
                a.outcome + (f" ({a.detail})" if a.detail else "")
                for a in task.attempts
            )
            rows.append([task.label, len(task.attempts), task.outcome, trail])
        table = format_table(
            ["task", "attempts", "final", "history"],
            rows,
            title="supervised-execution failures",
        ) if rows else "supervised execution: all tasks clean"
        return table + "\n" + self.summary_line()

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "clean_tasks": self.clean_tasks,
            "retried": self.retried,
            "timed_out": self.timed_out,
            "worker_deaths": self.worker_deaths,
            "pool_respawns": self.pool_respawns,
            "degraded_to_serial": self.degraded_to_serial,
            "tasks": [t.to_dict() for t in self.tasks],
        }
