"""Shared utilities: deterministic RNG, units, tables, atomic file IO.

These helpers are intentionally free of any simulator-specific knowledge so
that every other subpackage can depend on them without import cycles.
"""

from repro.util.atomicio import (
    append_line,
    atomic_write_bytes,
    atomic_write_text,
    quarantine,
    tail_is_torn,
)
from repro.util.rng import DeterministicRng, derive_seed, spawn_rngs
from repro.util.tables import format_table, format_percent
from repro.util.units import (
    GHZ,
    KIB,
    MIB,
    NANOSECONDS_PER_SECOND,
    PICOJOULE,
    NANOJOULE,
    bytes_per_second,
    cycles_from_ns,
    ns_from_cycles,
    seconds_from_ns,
)
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
)

__all__ = [
    "append_line",
    "atomic_write_bytes",
    "atomic_write_text",
    "quarantine",
    "tail_is_torn",
    "DeterministicRng",
    "derive_seed",
    "spawn_rngs",
    "format_table",
    "format_percent",
    "GHZ",
    "KIB",
    "MIB",
    "NANOSECONDS_PER_SECOND",
    "PICOJOULE",
    "NANOJOULE",
    "bytes_per_second",
    "cycles_from_ns",
    "ns_from_cycles",
    "seconds_from_ns",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_power_of_two",
]
