"""Synthetic NAS-like workload generators.

The paper evaluates eight NAS benchmarks (bt cg dc ft is lu mg sp).  We
cannot run NAS binaries inside a pure-Python IR, so each benchmark is a
*generator* that emits per-thread programs whose measurable properties
mimic the published per-benchmark behaviour:

* the distribution of backward-slice lengths over stored bytes (this is
  what Table II measures as reduction-vs-threshold);
* the iterative rewrite structure (arrays swept every timestep — what
  makes old values recomputable in the first place);
* first-touch and burst phases (what shapes the Max-vs-Overall split of
  Fig. 9 and the temporal variation of Fig. 10);
* the compute-to-store-traffic ratio (what sets each benchmark's
  checkpointing overhead level in Figs. 6/7); and
* the inter-core sharing topology (what coordinated local checkpointing
  exploits in Fig. 13).

All dataflow is real: slices are genuinely extracted by the compiler pass
and recomputation genuinely reproduces stored values.  Only the *shape
parameters* are calibrated to the paper.
"""

from repro.workloads.spec import BurstSpec, SliceLenBucket, WorkloadSpec
from repro.workloads.kernels import (
    burst_kernels,
    shared_kernel,
    site_kernel,
    SiteAssignment,
    assign_sites,
)
from repro.workloads.nas import NAS_BENCHMARKS
from repro.workloads.registry import all_workload_names, get_workload

__all__ = [
    "SliceLenBucket",
    "BurstSpec",
    "WorkloadSpec",
    "SiteAssignment",
    "assign_sites",
    "site_kernel",
    "shared_kernel",
    "burst_kernels",
    "NAS_BENCHMARKS",
    "get_workload",
    "all_workload_names",
]
