"""Tests for repro.isa.instructions (address patterns in particular)."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.instructions import (
    AddressPattern,
    LINE_BYTES,
    StoreInstr,
    WORD_BYTES,
    WORDS_PER_LINE,
)


class TestConstants:
    def test_line_geometry(self):
        assert LINE_BYTES == 64
        assert WORD_BYTES == 8
        assert WORDS_PER_LINE == 8


class TestAddressPattern:
    def test_dense_walk(self):
        p = AddressPattern(0, 1, 4)
        assert [p.address(i) for i in range(6)] == [0, 8, 16, 24, 0, 8]

    def test_offset(self):
        p = AddressPattern(0, 1, 4, offset=2)
        assert p.address(0) == 16
        assert p.address(2) == 0  # wraps

    def test_sparse_stride(self):
        p = AddressPattern(0, 8, 32)
        # One word per 64-byte line.
        assert [p.address(i) for i in range(4)] == [0, 64, 128, 192]
        assert p.address(4) == 0

    def test_zero_stride(self):
        p = AddressPattern(64, 0, 16)
        assert p.address(0) == p.address(99) == 64

    def test_footprint_words(self):
        assert AddressPattern(0, 1, 16).footprint_words(8) == 8
        assert AddressPattern(0, 1, 16).footprint_words(100) == 16
        assert AddressPattern(0, 0, 16).footprint_words(100) == 1

    def test_unaligned_base_rejected(self):
        with pytest.raises(ValueError):
            AddressPattern(3, 1, 4)

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            AddressPattern(-8, 1, 4)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            AddressPattern(0, 1, 0)

    @given(
        st.integers(min_value=0, max_value=1 << 20).map(lambda w: w * 8),
        st.integers(min_value=0, max_value=16),
        st.integers(min_value=1, max_value=256),
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=0, max_value=1000),
    )
    def test_addresses_word_aligned_and_bounded(self, base, stride, length, offset, i):
        p = AddressPattern(base, stride, length, offset)
        a = p.address(i)
        assert a % WORD_BYTES == 0
        assert base <= a < base + length * WORD_BYTES

    @given(st.integers(min_value=1, max_value=64))
    def test_dense_pattern_covers_region_exactly_once(self, length):
        p = AddressPattern(0, 1, length)
        seen = {p.address(i) for i in range(length)}
        assert len(seen) == length


class TestStoreInstr:
    def test_defaults(self):
        s = StoreInstr(0, AddressPattern(0, 1, 4))
        assert s.site == -1
        assert s.assoc is False
