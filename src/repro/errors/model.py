"""Fail-stop error model with detection latency.

``ErrorModel`` turns an occurrence time into a detection time.  The
detection latency is expressed as a fraction of the checkpoint period
(the paper's standing assumption is latency ≤ period, which makes two
retained checkpoints sufficient).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_in_range, check_non_negative

__all__ = ["ErrorModel", "ErrorOccurrence"]


@dataclass(frozen=True, slots=True)
class ErrorOccurrence:
    """One error: when it struck and when the system noticed."""

    occurred_ns: float
    detected_ns: float

    def __post_init__(self) -> None:
        if self.detected_ns < self.occurred_ns:
            raise ValueError("an error cannot be detected before it occurs")

    @property
    def detection_latency_ns(self) -> float:
        """Lag between occurrence and detection."""
        return self.detected_ns - self.occurred_ns


@dataclass(frozen=True)
class ErrorModel:
    """Maps error occurrences to detections.

    ``detection_latency_fraction`` is the detection latency as a fraction
    of the checkpoint period; values above 1.0 would violate the paper's
    two-checkpoint-retention assumption and are rejected.
    """

    detection_latency_fraction: float = 0.5

    def __post_init__(self) -> None:
        check_in_range(
            "detection_latency_fraction", self.detection_latency_fraction, 0.0, 1.0
        )

    def detection_latency_ns(self, checkpoint_period_ns: float) -> float:
        """Absolute detection latency for a given checkpoint period."""
        check_non_negative("checkpoint_period_ns", checkpoint_period_ns)
        return self.detection_latency_fraction * checkpoint_period_ns

    def occurrence(
        self, occurred_ns: float, checkpoint_period_ns: float
    ) -> ErrorOccurrence:
        """Build the occurrence record for an error at ``occurred_ns``."""
        check_non_negative("occurred_ns", occurred_ns)
        return ErrorOccurrence(
            occurred_ns,
            occurred_ns + self.detection_latency_ns(checkpoint_period_ns),
        )
