"""Shared constants and helpers for the benchmark harness.

Kept outside ``conftest.py`` so bench modules can import them without
relying on conftest's module-name handling.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from pathlib import Path

REPORT_DIR = Path(__file__).parent / "reports"
#: Committed machine-readable bench snapshots (BENCH_<name>.json) live at
#: the repo root so their diffs ride along with the code that moved them.
SNAPSHOT_DIR = Path(__file__).parent.parent

#: Workload region scale (1.0 = the calibrated fidelity).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
#: Execution engine for every simulation in the session ("interp" or
#: "vector"; results are bit-identical, only the wall time changes).
BENCH_ENGINE = os.environ.get("REPRO_BENCH_ENGINE", "interp")
#: Core count for the headline experiments.
BENCH_CORES = int(os.environ.get("REPRO_BENCH_CORES", "8"))
_reps_env = os.environ.get("REPRO_BENCH_REPS", "")
#: Timesteps per run (None = the workload default).
BENCH_REPS = int(_reps_env) if _reps_env else None
#: Worker processes for independent runs (1 = serial, the default).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
#: Persistent result-cache directory ("" = no on-disk cache).
_cache_env = os.environ.get("REPRO_BENCH_CACHE", "")
BENCH_CACHE = Path(_cache_env) if _cache_env else None
#: Per-task wall-clock timeout in seconds ("" = none).
_timeout_env = os.environ.get("REPRO_BENCH_TIMEOUT", "")
BENCH_TIMEOUT = float(_timeout_env) if _timeout_env else None
#: Retries per failed/timed-out/killed supervised task.
BENCH_RETRIES = int(os.environ.get("REPRO_BENCH_RETRIES", "2"))
#: Resume from the completion journal (needs REPRO_BENCH_CACHE).
BENCH_RESUME = os.environ.get("REPRO_BENCH_RESUME", "") not in ("", "0")


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (simulations are heavy and memoised)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def _git_commit() -> str:
    """The current commit hash, or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def results_checksum(payload) -> str:
    """Engine-independent digest of a bench's simulation results.

    ``payload`` must be JSON-serialisable (typically a dict of
    ``RunResult.to_dict()`` outputs or a figure's series).  Two engines
    producing the same checksum produced bit-identical results — this is
    the datum the perf guardrail compares across engines.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def bench_snapshot(
    name: str,
    engine: str,
    wall_s: float,
    checksum: str,
    extra: dict | None = None,
    scale: float | None = None,
    cores: int | None = None,
    reps: int | None = None,
    vector_coverage: dict | None = None,
) -> dict:
    """One engine's entry of a ``BENCH_<name>.json`` snapshot.

    The schema is deliberately small and stable so snapshots diff
    cleanly across commits: identity (bench, engine, commit), scale
    knobs, one wall-clock number and the results checksum.  Wall times
    are machine-dependent — comparisons should be *relative* (engine vs
    engine on the same host, or tolerance bands), never absolute.
    ``scale``/``cores``/``reps`` default to the session's environment
    knobs; pass them explicitly when the producer used its own protocol.

    ``vector_coverage`` (vector-engine entries only) records the
    replayed/fallback iteration counters — with fallbacks keyed by
    certificate-denial reason — so snapshot diffs show coverage
    trajectory alongside wall time.  Additive: schema stays v1.
    """
    doc = {
        "schema": 1,
        "bench": name,
        "engine": engine,
        "commit": _git_commit(),
        "scale": BENCH_SCALE if scale is None else scale,
        "cores": BENCH_CORES if cores is None else cores,
        "reps": BENCH_REPS if reps is None else reps,
        "wall_s": round(wall_s, 6),  # µs resolution: micro benches are sub-ms
        "results_sha256": checksum,
    }
    if vector_coverage is not None:
        doc["vector_coverage"] = vector_coverage
    if extra:
        doc.update(extra)
    return doc


def write_snapshot(name: str, entries: list) -> Path:
    """Write ``BENCH_<name>.json`` (one entry per engine measured)."""
    path = SNAPSHOT_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(entries, indent=2, sort_keys=True) + "\n")
    return path


def load_snapshot(name: str):
    """The committed ``BENCH_<name>.json`` entries (None when absent)."""
    path = SNAPSHOT_DIR / f"BENCH_{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())
