"""ACR: Amnesic Checkpointing and Recovery — a full reproduction.

This package reproduces Akturk & Karpuzcu, *ACR: Amnesic Checkpointing and
Recovery* (HPCA 2020): a backward-error-recovery framework that omits
*recomputable* values from incremental in-memory checkpoints and
regenerates them — via compiler-extracted backward slices — only when a
recovery actually needs them.

Quick start
-----------
>>> from repro import ExperimentRunner, fig6_time_overhead
>>> runner = ExperimentRunner(num_cores=8, region_scale=0.5)
>>> print(fig6_time_overhead(runner).render())      # doctest: +SKIP

Layers (bottom-up): :mod:`repro.isa` (IR + interpreter),
:mod:`repro.compiler` (backward slicing / ASSOC-ADDR embedding),
:mod:`repro.arch` (Table-I machine models), :mod:`repro.energy`,
:mod:`repro.errors`, :mod:`repro.ckpt` (incremental logging BER),
:mod:`repro.acr` (the paper's contribution), :mod:`repro.sim` (the run
loop), :mod:`repro.workloads` (NAS-like generators),
:mod:`repro.experiments` (figure/table regeneration),
:mod:`repro.verify` (slice soundness lints + differential oracle) and
:mod:`repro.obs` (event tracing + metrics observability).
"""

from repro.analysis import (
    compare_runs,
    decompose_overhead,
    energy_by_category,
    full_snapshot_costs,
    hierarchical_costs,
    recovery_anatomy,
)
from repro.arch.config import MachineConfig, TABLE1
from repro.compiler import (
    CompiledProgram,
    SelectionPolicy,
    Slice,
    SliceTable,
    ThresholdPolicy,
    compile_program,
)
from repro.energy import EnergyLedger, EnergyModel
from repro.errors import ErrorModel, NoErrors, PoissonErrors, UniformErrors
from repro.experiments import (
    CONFIG_NAMES,
    ConfigRequest,
    ExperimentRunner,
    fig1_error_rate,
    fig6_time_overhead,
    fig7_energy_overhead,
    fig8_edp_reduction,
    fig9_checkpoint_size,
    fig10_temporal,
    fig11_error_sweep,
    fig12_frequency_sweep,
    fig13_local,
    scalability,
    table1_configuration,
    table2_threshold_sweep,
)
from repro.obs import (
    MetricsRegistry,
    NullTracer,
    ObsReport,
    RecordingTracer,
)
from repro.isa import (
    AddressPattern,
    Interpreter,
    Kernel,
    KernelBuilder,
    MemoryImage,
    Program,
    chain_kernel,
)
from repro.sim import (
    BaselineProfile,
    RunResult,
    SimulationOptions,
    Simulator,
    energy_overhead,
    time_overhead,
)
from repro.verify import (
    Diagnostic,
    LintReport,
    Severity,
    SliceVerificationError,
    verify_program,
)
from repro.workloads import (
    NAS_BENCHMARKS,
    WorkloadSpec,
    all_workload_names,
    get_workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # analysis
    "compare_runs",
    "decompose_overhead",
    "energy_by_category",
    "recovery_anatomy",
    "full_snapshot_costs",
    "hierarchical_costs",
    # machine
    "MachineConfig",
    "TABLE1",
    # compiler
    "Slice",
    "SliceTable",
    "CompiledProgram",
    "SelectionPolicy",
    "ThresholdPolicy",
    "compile_program",
    # energy
    "EnergyModel",
    "EnergyLedger",
    # errors
    "ErrorModel",
    "NoErrors",
    "UniformErrors",
    "PoissonErrors",
    # isa
    "AddressPattern",
    "Kernel",
    "KernelBuilder",
    "Program",
    "chain_kernel",
    "Interpreter",
    "MemoryImage",
    # obs
    "NullTracer",
    "RecordingTracer",
    "MetricsRegistry",
    "ObsReport",
    # sim
    "Simulator",
    "SimulationOptions",
    "RunResult",
    "BaselineProfile",
    "time_overhead",
    "energy_overhead",
    # verify
    "Diagnostic",
    "LintReport",
    "Severity",
    "SliceVerificationError",
    "verify_program",
    # workloads
    "WorkloadSpec",
    "NAS_BENCHMARKS",
    "get_workload",
    "all_workload_names",
    # experiments
    "ExperimentRunner",
    "ConfigRequest",
    "CONFIG_NAMES",
    "fig1_error_rate",
    "fig6_time_overhead",
    "fig7_energy_overhead",
    "fig8_edp_reduction",
    "fig9_checkpoint_size",
    "fig10_temporal",
    "fig11_error_sweep",
    "fig12_frequency_sweep",
    "fig13_local",
    "scalability",
    "table1_configuration",
    "table2_threshold_sweep",
]
