"""Supervisor unit tests: retries, watchdog, respawn, circuit breaker.

The task functions are module-level (they cross the worker pipe by
reference) and coordinate across attempts through marker files — the
first attempt misbehaves, later attempts find the marker and succeed.
"""

import os
import signal
import time

import pytest

from repro.experiments.progress import ProgressTracker
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RecordingTracer
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.report import OUTCOME_OK
from repro.resilience.supervisor import (
    SupervisedTask,
    Supervisor,
    TaskFailedError,
)

chaos = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"),
    reason="chaos tests need SIGKILL",
)


# ------------------------------------------------------------- task functions
def _square(n):
    return n * n


def _fail_once(payload):
    marker, value = payload
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("tried\n")
        raise RuntimeError("transient failure")
    return value


def _always_fail(payload):
    raise ValueError("doomed")


def _suicide_once(payload):
    marker, value = payload
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("killed\n")
        os.kill(os.getpid(), signal.SIGKILL)
    return value


def _hang_once(payload):
    marker, value = payload
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("hung\n")
        time.sleep(60.0)
    return value


def _die_unless_parent(payload):
    parent_pid, value = payload
    if os.getpid() != parent_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    return value


def _tasks(fn, payloads):
    return [
        SupervisedTask(key=f"task-{i:02x}", fn=fn, payload=p, label=f"t{i}")
        for i, p in enumerate(payloads)
    ]


def _fast_policy(**kw):
    kw.setdefault("backoff_base_s", 0.01)
    kw.setdefault("backoff_max_s", 0.05)
    return ResiliencePolicy(**kw)


# ------------------------------------------------------------------ contracts
def test_happy_path_returns_all_results():
    progress = ProgressTracker()
    with Supervisor(_fast_policy(), jobs=2, progress=progress) as sup:
        results = sup.run(_tasks(_square, [2, 3, 4, 5]))
    assert results == {"task-00": 4, "task-01": 9, "task-02": 16, "task-03": 25}
    assert sup.failure_report.clean
    assert progress.retried == 0
    assert progress.worker_deaths == 0


def test_on_complete_fires_per_task():
    seen = []
    with Supervisor(_fast_policy(), jobs=2) as sup:
        sup.run(
            _tasks(_square, [1, 2, 3]),
            on_complete=lambda task, result, history: seen.append(
                (task.key, result, history.ok)
            ),
        )
    assert sorted(seen) == [
        ("task-00", 1, True), ("task-01", 4, True), ("task-02", 9, True),
    ]


def test_task_error_retries_with_deterministic_backoff(tmp_path):
    policy = _fast_policy()
    progress = ProgressTracker()
    metrics = MetricsRegistry()
    tasks = _tasks(_fail_once, [(str(tmp_path / "m0"), 7)])
    with Supervisor(policy, jobs=1, progress=progress, metrics=metrics) as sup:
        results = sup.run(tasks)
    assert results == {"task-00": 7}
    (history,) = sup.failure_report.tasks
    assert [a.outcome for a in history.attempts] == ["error", OUTCOME_OK]
    # The recorded backoff is exactly what the policy schedules — a
    # rerun would wait the identical delay.
    assert history.attempts[0].backoff_s == policy.backoff_s("task-00", 1)
    assert progress.retried == 1
    assert metrics.counter("resilience.retries").value == 1


def test_exhausted_retries_raise_with_full_history():
    with Supervisor(_fast_policy(max_retries=1), jobs=1) as sup:
        with pytest.raises(TaskFailedError) as exc:
            sup.run(_tasks(_always_fail, [None]))
    (history,) = exc.value.report.failed_tasks
    assert len(history.attempts) == 2
    assert all(a.outcome == "error" for a in history.attempts)
    assert "doomed" in history.attempts[0].detail


def test_other_tasks_complete_before_the_failure_is_raised():
    tasks = [
        SupervisedTask(key="good", fn=_square, payload=3, label="good"),
        SupervisedTask(key="bad", fn=_always_fail, payload=None, label="bad"),
    ]
    done = []
    with Supervisor(_fast_policy(max_retries=0), jobs=2) as sup:
        with pytest.raises(TaskFailedError):
            sup.run(tasks, on_complete=lambda t, r, h: done.append(t.key))
    assert done == ["good"]


def test_closed_supervisor_refuses_to_run():
    sup = Supervisor(_fast_policy(), jobs=1)
    sup.close()
    with pytest.raises(RuntimeError):
        sup.run(_tasks(_square, [1]))


# ---------------------------------------------------------------------- chaos
@chaos
@pytest.mark.chaos
def test_sigkilled_worker_respawns_and_task_retries(tmp_path):
    progress = ProgressTracker()
    tracer = RecordingTracer()
    tasks = _tasks(_suicide_once, [(str(tmp_path / "m0"), 11)])
    with Supervisor(
        _fast_policy(), jobs=1, progress=progress, tracer=tracer
    ) as sup:
        results = sup.run(tasks)
    assert results == {"task-00": 11}
    assert progress.worker_deaths == 1
    assert progress.retried == 1
    assert sup.failure_report.pool_respawns >= 1
    names = [type(e).__name__ for e in tracer.events]
    assert "WorkerDied" in names and "TaskRetried" in names
    (history,) = sup.failure_report.tasks
    assert [a.outcome for a in history.attempts] == ["worker-died", OUTCOME_OK]


@chaos
@pytest.mark.chaos
def test_hung_task_times_out_and_retries(tmp_path):
    progress = ProgressTracker()
    tasks = _tasks(_hang_once, [(str(tmp_path / "m0"), 13)])
    with Supervisor(
        _fast_policy(timeout_s=0.5), jobs=1, progress=progress
    ) as sup:
        results = sup.run(tasks)
    assert results == {"task-00": 13}
    assert progress.timed_out == 1
    (history,) = sup.failure_report.tasks
    assert [a.outcome for a in history.attempts] == ["timeout", OUTCOME_OK]


@chaos
@pytest.mark.chaos
def test_circuit_breaker_degrades_to_serial():
    progress = ProgressTracker()
    payloads = [(os.getpid(), v) for v in (1, 2, 3, 4)]
    policy = _fast_policy(max_retries=3, pool_failure_threshold=2)
    with Supervisor(policy, jobs=2, progress=progress) as sup:
        results = sup.run(_tasks(_die_unless_parent, payloads))
    assert sup.degraded
    assert results == {f"task-{i:02x}": v for i, v in enumerate((1, 2, 3, 4))}
    assert sup.failure_report.degraded_to_serial
    assert progress.degraded_to_serial == 1
    assert progress.worker_deaths >= 2
    # Serial completions are attributed to the parent process.
    assert any(
        a.where == "serial" and a.outcome == OUTCOME_OK
        for t in sup.failure_report.tasks
        for a in t.attempts
    )
