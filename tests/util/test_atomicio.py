"""Pin the shared durability idioms of :mod:`repro.util.atomicio`.

These helpers absorbed the copy-pasted atomic-write / quarantine /
torn-tail-append patterns of the result cache, the snapshot store and
the JSONL appenders — the tests here pin exactly the behaviour those
call sites relied on before the dedupe.
"""

import pytest

from repro.util import atomicio


class TestAtomicWrite:
    def test_text_round_trip(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "entry.json"
        out = atomicio.atomic_write_text(path, '{"a": 1}')
        assert out == path
        assert path.read_text() == '{"a": 1}'

    def test_bytes_round_trip(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomicio.atomic_write_bytes(path, b"\x00\xffACR")
        assert path.read_bytes() == b"\x00\xffACR"

    def test_overwrite_replaces_atomically(self, tmp_path):
        path = tmp_path / "entry.json"
        atomicio.atomic_write_text(path, "old")
        atomicio.atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_litter_on_success(self, tmp_path):
        path = tmp_path / "entry.json"
        atomicio.atomic_write_text(path, "x", prefix=".spotme.")
        assert [p.name for p in tmp_path.iterdir()] == ["entry.json"]

    def test_failure_raises_and_cleans_temp(self, tmp_path, monkeypatch):
        # A failed publish must re-raise AND leave no temp file behind —
        # the cache's original contract (partial entries are impossible).
        path = tmp_path / "entry.json"

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(atomicio.os, "replace", boom)
        with pytest.raises(OSError):
            atomicio.atomic_write_text(path, "x")
        assert list(tmp_path.iterdir()) == []

    def test_target_directory_created(self, tmp_path):
        path = tmp_path / "ab" / "key.json"
        atomicio.atomic_write_text(path, "x")
        assert path.exists()


class TestQuarantine:
    def test_removes_and_reports(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("garbage")
        assert atomicio.quarantine(path) is True
        assert not path.exists()

    def test_missing_file_is_not_an_error(self, tmp_path):
        assert atomicio.quarantine(tmp_path / "never-existed") is False


class TestTailIsTorn:
    def test_missing_and_empty_files_are_clean(self, tmp_path):
        assert atomicio.tail_is_torn(tmp_path / "absent") is False
        empty = tmp_path / "empty"
        empty.write_bytes(b"")
        assert atomicio.tail_is_torn(empty) is False

    def test_clean_and_torn_tails(self, tmp_path):
        clean = tmp_path / "clean.jsonl"
        clean.write_bytes(b'{"a":1}\n{"b":2}\n')
        assert atomicio.tail_is_torn(clean) is False
        torn = tmp_path / "torn.jsonl"
        torn.write_bytes(b'{"a":1}\n{"b"')
        assert atomicio.tail_is_torn(torn) is True


class TestAppendLine:
    def test_appends_terminated_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        atomicio.append_line(path, "one")
        atomicio.append_line(path, "two")
        assert path.read_text() == "one\ntwo\n"

    def test_repairs_torn_tail_first(self, tmp_path):
        # The journal's crash model: a torn half-record costs itself,
        # never the record appended after it.
        path = tmp_path / "log.jsonl"
        path.write_bytes(b'{"a":1}\n{"half')
        atomicio.append_line(path, '{"b":2}')
        lines = path.read_text().split("\n")
        assert lines[-2] == '{"b":2}'
        assert '{"a":1}' in lines

    def test_creates_parent_directory(self, tmp_path):
        path = tmp_path / "sub" / "log.jsonl"
        atomicio.append_line(path, "x")
        assert path.read_text() == "x\n"


class TestRewiredCallSites:
    """The absorbing call sites still honour their original contracts."""

    def test_journal_reexports_tail_is_torn(self):
        from repro.resilience import journal

        assert journal.tail_is_torn is atomicio.tail_is_torn

    def test_snapshot_store_save_swallows_oserror(self, tmp_path,
                                                  monkeypatch):
        # SnapshotStore.save was always best-effort: a full disk loses
        # the snapshot, never the campaign.
        from repro.sim.snapshot import SnapshotStore

        store = SnapshotStore(tmp_path)

        def boom(path, blob, prefix=""):
            raise OSError("disk full")

        monkeypatch.setattr(
            "repro.sim.snapshot.atomicio.atomic_write_bytes", boom
        )
        path = store.save("ab" * 16, b"blob")  # must not raise
        assert not path.exists()

    def test_cache_store_payload_still_raises(self, tmp_path, monkeypatch):
        # ResultCache.store_payload was never best-effort: persistence
        # failures there must surface.
        from repro.experiments.cache import ResultCache

        cache = ResultCache(tmp_path)

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(atomicio.os, "replace", boom)
        with pytest.raises(OSError):
            cache.store_payload("ab" * 32, {"x": 1}, "run")

    def test_cache_counts_quarantines(self, tmp_path):
        from repro.experiments.cache import ResultCache
        from repro.obs.metrics import MetricsRegistry

        seen = []
        metrics = MetricsRegistry()
        cache = ResultCache(
            tmp_path, on_quarantine=seen.append, metrics=metrics
        )
        key = "ab" * 32
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not json at all")
        assert cache.load(key) is None
        assert cache.quarantined == 1
        assert metrics.counter("cache.quarantined").value == 1
        assert seen == [path]
        # Quarantining an already-gone entry counts nothing.
        cache.quarantine(key)
        assert cache.quarantined == 1

    def test_writer_append_repairs_preexisting_tear(self, tmp_path):
        from repro.obs.telemetry.snapshots import (
            SnapshotWriter,
            read_snapshots,
        )

        path = tmp_path / "telemetry.jsonl"
        path.write_bytes(b'{"half')
        writer = SnapshotWriter(path, min_interval_s=0.0)
        writer.write({"ts_s": 0.0})
        with pytest.warns(UserWarning, match="undecodable"):
            snaps = read_snapshots(path)
        assert len(snaps) == 1 and snaps[0]["ts_s"] == 0.0
