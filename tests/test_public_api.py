"""Public-API integrity: every advertised name resolves and is documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.isa",
    "repro.compiler",
    "repro.arch",
    "repro.energy",
    "repro.errors",
    "repro.ckpt",
    "repro.acr",
    "repro.sim",
    "repro.workloads",
    "repro.experiments",
    "repro.analysis",
    "repro.util",
    "repro.verify",
    "repro.obs",
]


@pytest.mark.parametrize("name", PACKAGES)
class TestPublicApi:
    def test_all_exports_resolve(self, name):
        mod = importlib.import_module(name)
        assert hasattr(mod, "__all__"), name
        for symbol in mod.__all__:
            assert hasattr(mod, symbol), f"{name}.{symbol}"

    def test_module_docstring(self, name):
        mod = importlib.import_module(name)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 40, name

    def test_exported_callables_documented(self, name):
        import typing

        mod = importlib.import_module(name)
        for symbol in mod.__all__:
            obj = getattr(mod, symbol)
            if isinstance(obj, type) or isinstance(
                obj, typing._GenericAlias  # typing.Union aliases
            ):
                continue
            if callable(obj):
                assert obj.__doc__, f"{name}.{symbol} lacks a docstring"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_cli_module_importable():
    from repro import cli

    assert callable(cli.main)
