"""Tests for repro.compiler.slices (Slice execution and SliceTable)."""

import pytest
from hypothesis import given, strategies as st

from repro.compiler.slices import SLICE_INSTR_BYTES, Slice, SliceTable
from repro.isa.instructions import AluInstr, MoviInstr
from repro.isa.opcodes import MASK64, Opcode

U64 = st.integers(min_value=0, max_value=MASK64)


def add_slice(site=0):
    """Slice computing operand + 7."""
    return Slice(
        site=site,
        instructions=(MoviInstr(1, 7), AluInstr(Opcode.ADD, 2, 0, 1)),
        frontier=(0,),
        result_reg=2,
    )


class TestSlice:
    def test_execute(self):
        assert add_slice().execute([35]) == 42

    def test_length_and_bytes(self):
        sl = add_slice()
        assert sl.length == 2
        assert sl.encoded_bytes == 2 * SLICE_INSTR_BYTES
        assert not sl.is_trivial

    def test_trivial(self):
        sl = Slice(0, (), (0,), 0)
        assert sl.is_trivial
        assert sl.execute([9]) == 9

    def test_wrong_operand_count(self):
        with pytest.raises(ValueError):
            add_slice().execute([])
        with pytest.raises(ValueError):
            add_slice().execute([1, 2])

    def test_missing_result_register_rejected_at_construction(self):
        # Construction-time validation: a slice that could only fail inside
        # execute() during recovery must not be buildable at all.
        with pytest.raises(ValueError):
            Slice(0, (MoviInstr(1, 7),), (0,), 99)

    def test_operands_masked(self):
        assert add_slice().execute([MASK64 + 8]) == 14  # masked to 7... (7+7)

    @given(U64)
    def test_execution_is_pure(self, v):
        sl = add_slice()
        assert sl.execute([v]) == sl.execute([v])

    @given(U64)
    def test_result_in_range(self, v):
        assert 0 <= add_slice().execute([v]) <= MASK64


class TestSliceTable:
    def test_add_get(self):
        t = SliceTable()
        sl = add_slice(3)
        t.add(sl)
        assert t.get(3) is sl
        assert t.get(4) is None
        assert 3 in t
        assert len(t) == 1

    def test_duplicate_site_rejected(self):
        t = SliceTable()
        t.add(add_slice(1))
        with pytest.raises(ValueError):
            t.add(add_slice(1))

    def test_sites_sorted(self):
        t = SliceTable()
        for s in (5, 1, 3):
            t.add(add_slice(s))
        assert t.sites == [1, 3, 5]

    def test_encoded_bytes(self):
        t = SliceTable()
        t.add(add_slice(0))
        t.add(add_slice(1))
        assert t.encoded_bytes == 4 * SLICE_INSTR_BYTES

    def test_length_histogram(self):
        t = SliceTable()
        t.add(add_slice(0))
        t.add(add_slice(1))
        t.add(Slice(2, (MoviInstr(0, 1),), (), 0))
        assert t.length_histogram() == {2: 2, 1: 1}

    def test_iteration(self):
        t = SliceTable()
        t.add(add_slice(0))
        assert [sl.site for sl in t] == [0]
