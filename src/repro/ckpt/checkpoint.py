"""Checkpoints and the retention-managed checkpoint store.

A checkpoint ``k`` is *established* at the end of interval ``k``; rolling
back from a point inside interval ``m`` to checkpoint ``j < m`` applies the
(possibly partial) log of interval ``m`` plus the full logs of intervals
``m−1 … j+1``, oldest-applied-last.  With detection latency bounded by the
period, two retained checkpoints suffice (paper §II-A) — the store prunes
log payloads beyond that horizon but keeps size metadata for statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional

from repro.ckpt.log import IntervalLog, LogObserver
from repro.util.validation import check_non_negative

__all__ = ["Checkpoint", "CheckpointStore", "RETAINED_CHECKPOINTS"]

#: The paper's retention: most recent two checkpoints.
RETAINED_CHECKPOINTS = 2


@dataclass(frozen=True)
class Checkpoint:
    """Metadata of one established checkpoint.

    ``log`` is the interval log whose records restore memory *from this
    checkpoint's successor state back to this checkpoint*... precisely: it
    is the log of the interval that *ended* at this checkpoint; undoing a
    younger interval needs the younger interval's log.  ``data_bytes`` /
    ``omitted_bytes`` snapshot the sizes for statistics even after the log
    payload is pruned.
    """

    index: int
    useful_ns: float
    wall_ns: float
    arch_bytes: int
    participants: Optional[FrozenSet[int]]
    log: IntervalLog
    data_bytes: int
    omitted_bytes: int

    @property
    def total_bytes(self) -> int:
        """Checkpoint footprint: logged data plus architectural state."""
        return self.data_bytes + self.arch_bytes


class CheckpointStore:
    """Orders checkpoints, manages the open interval log and retention."""

    def __init__(
        self,
        arch_bytes_per_core: int,
        num_cores: int,
        log_observer: Optional[LogObserver] = None,
    ) -> None:
        check_non_negative("arch_bytes_per_core", arch_bytes_per_core)
        self.arch_bytes_per_core = arch_bytes_per_core
        self.num_cores = num_cores
        self.checkpoints: List[Checkpoint] = []
        #: Observability hook handed to every interval log this store
        #: opens (``None`` keeps the logs on their unobserved fast path).
        self._log_observer = log_observer
        self.current_log = IntervalLog(0, log_observer)

    # -- establishment -----------------------------------------------------
    def establish(
        self,
        useful_ns: float,
        wall_ns: float,
        participants: Optional[FrozenSet[int]] = None,
    ) -> Checkpoint:
        """Close the open interval and establish the next checkpoint.

        ``participants=None`` means a global checkpoint (all cores'
        architectural state is captured); a core subset models coordinated
        local checkpointing.
        """
        n_cores = self.num_cores if participants is None else len(participants)
        log = self.current_log
        ckpt = Checkpoint(
            index=len(self.checkpoints),
            useful_ns=useful_ns,
            wall_ns=wall_ns,
            arch_bytes=self.arch_bytes_per_core * n_cores,
            participants=participants,
            log=log,
            data_bytes=log.logged_bytes,
            omitted_bytes=log.omitted_bytes,
        )
        self.checkpoints.append(ckpt)
        self.current_log = IntervalLog(len(self.checkpoints), self._log_observer)
        self._prune()
        return ckpt

    def _prune(self) -> None:
        """Drop log payloads older than the retention horizon.

        The payload of checkpoint ``k``'s log is needed to roll back *to*
        checkpoint ``k−1``; retaining two checkpoints therefore keeps the
        logs of the two most recent completed intervals.
        """
        for ckpt in self.checkpoints[:-RETAINED_CHECKPOINTS]:
            ckpt.log.records.clear()
            ckpt.log.omitted.clear()

    # -- rollback ---------------------------------------------------------------
    def logs_to_rollback(self, safe_index: int) -> List[IntervalLog]:
        """Logs to apply to reach checkpoint ``safe_index``.

        Returns logs newest-first: the open (partial) interval log followed
        by completed interval logs down to (and including) the log of
        interval ``safe_index + 1``.  Raises when retention has already
        dropped a needed log — recovery beyond two checkpoints back is
        impossible, exactly as in the paper's scheme.
        """
        if safe_index >= len(self.checkpoints):
            raise ValueError(
                f"safe checkpoint {safe_index} not established yet "
                f"({len(self.checkpoints)} exist)"
            )
        if safe_index < len(self.checkpoints) - RETAINED_CHECKPOINTS:
            raise ValueError(
                f"checkpoint {safe_index} is beyond the retention horizon"
            )
        logs = [self.current_log]
        for ckpt in reversed(self.checkpoints[safe_index + 1 :]):
            logs.append(ckpt.log)
        return logs

    # -- statistics --------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of established checkpoints."""
        return len(self.checkpoints)

    def data_sizes(self) -> List[int]:
        """Per-checkpoint logged data bytes, in order."""
        return [c.data_bytes for c in self.checkpoints]

    def baseline_sizes(self) -> List[int]:
        """Per-checkpoint data bytes the baseline would have logged."""
        return [c.data_bytes + c.omitted_bytes for c in self.checkpoints]

    def total_data_bytes(self) -> int:
        """Total logged data across all checkpoints."""
        return sum(c.data_bytes for c in self.checkpoints)

    def max_data_bytes(self) -> int:
        """Size of the largest checkpoint (the paper's Max metric)."""
        return max((c.data_bytes for c in self.checkpoints), default=0)
