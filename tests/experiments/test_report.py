"""Smoke test for the all-in-one report generator (tiny scale, 2 benches)."""

import io

from repro.experiments.report import generate_report
from repro.experiments.runner import ExperimentRunner


class TestGenerateReport:
    def test_report_contains_every_artifact(self, monkeypatch):
        runner = ExperimentRunner(num_cores=2, region_scale=0.1, reps=12)
        monkeypatch.setattr(runner, "workloads", lambda: ["bt", "is"])
        stream = io.StringIO()
        generate_report(runner, include_scalability=False, stream=stream)
        out = stream.getvalue()
        for token in (
            "Table I",
            "Figure 1",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Figure 9",
            "Table II",
            "Figure 10",
            "Figure 11",
            "Figure 12",
            "Figure 13",
            "report generated",
        ):
            assert token in out
        # Only the patched benchmarks appear in figure rows.
        assert "\nbt " in out and "\nis " in out
        assert "\ncg " not in out
