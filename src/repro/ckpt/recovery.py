"""Recovery: rollback planning, costing, and functional restore.

Rolling back to a safe checkpoint applies interval logs newest-first
(each log's records restore the old values of its interval's first
modifications; the oldest applied log leaves memory at the safe
checkpoint's state).  Under ACR, omitted records are *recomputed*: the
recovery handler executes the recorded Slice with the buffered operand
snapshot and writes the value back to memory, re-establishing a consistent
recovery line (paper §III-B).

Costing (paper Eq. 3):

* ``o_roll-back`` — reading the retained log from memory and writing the
  old values back, plus restoring architectural state;
* ``o_rcmp``      — Slice execution (serial dependent chains on each
  participant core, parallel across cores) plus the write-back of each
  recomputed value.

``o_waste`` is wall-clock time lost since the safe checkpoint and is
computed by the simulator, which owns the clocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.arch.config import MachineConfig
from repro.arch.memctrl import MemorySystem
from repro.ckpt.log import LOG_RECORD_BYTES, VALUE_BYTES, IntervalLog
from repro.energy.accounting import EnergyLedger
from repro.energy.model import EnergyModel
from repro.isa.interpreter import MemoryImage
from repro.obs.events import SliceRecompute
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = ["RecoveryCosts", "RecoveryEngine"]


@dataclass(frozen=True, slots=True)
class RecoveryCosts:
    """Cost breakdown of one recovery (waste excluded — see module doc)."""

    rollback_ns: float
    recompute_ns: float
    restored_records: int
    recomputed_values: int
    recompute_instructions: int
    rollback_bytes: int
    writeback_bytes: int

    @property
    def total_ns(self) -> float:
        """Rollback plus recomputation time."""
        return self.rollback_ns + self.recompute_ns


class RecoveryEngine:
    """Computes recovery costs and performs functional restores."""

    def __init__(
        self,
        config: MachineConfig,
        memsys: MemorySystem,
        energy: EnergyModel,
    ) -> None:
        self.config = config
        self.memsys = memsys
        self.energy = energy

    # -- costing ---------------------------------------------------------------
    def recovery_costs(
        self,
        logs: Sequence[IntervalLog],
        participants: Sequence[int],
        ledger: EnergyLedger,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        ts_ns: float = 0.0,
    ) -> RecoveryCosts:
        """Cost of restoring via ``logs`` (newest-first) on ``participants``.

        Only records belonging to participant cores are restored — under
        coordinated local checkpointing, non-communicating cores do not
        roll back.  Energy is accumulated into ``ledger`` under ``rec.*``
        buckets.  When observability is attached, every omitted value's
        regeneration emits a :class:`SliceRecompute` event (stamped at
        ``ts_ns``, the recovery's wall time) and feeds the slice-length /
        recompute-latency histograms.
        """
        cfg = self.config
        # Normalize once at entry: a caller passing duplicate core ids
        # (e.g. a communication group assembled from per-access lists)
        # must not inflate per-core tallies — each participant core
        # restores its log partition and architectural state exactly once.
        members = frozenset(participants)
        participants = sorted(members)

        # --- o_roll-back: log read + old-value write-back + arch restore.
        read_bytes_per_core: Dict[int, int] = {}
        write_bytes_per_core: Dict[int, int] = {}
        restored = 0
        for log in logs:
            for core, n in log.records_per_core().items():
                if core not in members:
                    continue
                read_bytes_per_core[core] = (
                    read_bytes_per_core.get(core, 0) + n * LOG_RECORD_BYTES
                )
                write_bytes_per_core[core] = (
                    write_bytes_per_core.get(core, 0) + n * VALUE_BYTES
                )
                restored += n
        arch_bytes = {c: cfg.arch_state_bytes for c in participants}
        rollback_ns = (
            self.memsys.bulk_transfer_time_ns(read_bytes_per_core)
            + self.memsys.bulk_transfer_time_ns(write_bytes_per_core)
            + self.memsys.bulk_transfer_time_ns(arch_bytes)
        )
        rollback_bytes = sum(read_bytes_per_core.values())
        write_bytes = sum(write_bytes_per_core.values())
        ledger.add(
            "rec.restore",
            self.energy.dram_transfer_pj(rollback_bytes + write_bytes)
            + self.energy.dram_transfer_pj(sum(arch_bytes.values())),
        )

        # --- o_rcmp: Slice execution per core (parallel across cores,
        #     serial within a core) + recomputed-value write-back.
        instrs_per_core: Dict[int, int] = {}
        values_per_core: Dict[int, int] = {}
        recomputed = 0
        recompute_instrs = 0
        cycle = cfg.cycle_ns
        observe = tracer is not None or metrics is not None
        for log in logs:
            for rec in log.omitted:
                if rec.core not in members:
                    continue
                length = rec.entry.slice_.length
                instrs_per_core[rec.core] = (
                    instrs_per_core.get(rec.core, 0) + length
                )
                values_per_core[rec.core] = values_per_core.get(rec.core, 0) + 1
                recomputed += 1
                recompute_instrs += length
                if observe:
                    slice_ns = length * cycle + cfg.addrmap_access_ns
                    if tracer is not None:
                        tracer.emit(SliceRecompute(
                            ts_ns=ts_ns, core=rec.core,
                            slice_id=rec.entry.slice_.site, ns=slice_ns,
                        ))
                    if metrics is not None:
                        metrics.histogram(
                            "recovery.slice_length"
                        ).observe(length)
                        metrics.histogram(
                            "recovery.slice_recompute_ns"
                        ).observe(slice_ns)
        exec_ns = max(
            (
                instrs * cycle + values_per_core[core] * cfg.addrmap_access_ns
                for core, instrs in instrs_per_core.items()
            ),
            default=0.0,
        )
        wb_per_core = {
            core: n * VALUE_BYTES for core, n in values_per_core.items()
        }
        writeback_bytes = sum(wb_per_core.values())
        wb_ns = self.memsys.bulk_transfer_time_ns(wb_per_core)
        if cfg.scratchpad_recompute:
            # Scratchpad mode (paper §II-B): slice execution overlaps the
            # log-restore memory transfers; only the portion exceeding the
            # rollback time and the write-back remain on the critical path.
            recompute_ns = max(0.0, exec_ns - rollback_ns) + wb_ns
        else:
            recompute_ns = exec_ns + wb_ns
        ledger.add(
            "rec.recompute",
            recompute_instrs * self.energy.alu_op_pj
            + recomputed * self.energy.addrmap_access_pj
            + recomputed * self.energy.handler_op_pj
            + (
                recompute_instrs * self.energy.scratchpad_access_pj
                if cfg.scratchpad_recompute
                else 0.0
            )
            + self.energy.dram_transfer_pj(writeback_bytes),
        )

        return RecoveryCosts(
            rollback_ns=rollback_ns,
            recompute_ns=recompute_ns,
            restored_records=restored,
            recomputed_values=recomputed,
            recompute_instructions=recompute_instrs,
            rollback_bytes=rollback_bytes,
            writeback_bytes=writeback_bytes,
        )

    # -- functional restore (used by integration tests and examples) -----------
    def apply_rollback(
        self, memory: MemoryImage, logs: Sequence[IntervalLog]
    ) -> Dict[int, int]:
        """Restore ``memory`` to the safe checkpoint via ``logs``.

        Logs must be newest-first; each is applied in turn, so the oldest
        log's (i.e. the safe checkpoint's) values win.  Omitted records are
        *recomputed* from their Slice + operand snapshot — never read from
        the ground-truth field.  Returns {address: restored value}.
        """
        restored: Dict[int, int] = {}
        for log in logs:
            for rec in log.records:
                memory.write(rec.address, rec.old_value)
                restored[rec.address] = rec.old_value
            for om in log.omitted:
                value = om.entry.slice_.execute(om.entry.operands)
                memory.write(om.address, value)
                restored[om.address] = value
        return restored

    @staticmethod
    def verify_recomputation(logs: Iterable[IntervalLog]) -> List[int]:
        """Recompute every omitted value and compare with ground truth.

        Returns the addresses that mismatch (empty == all correct); used
        by tests and the self-check example.
        """
        bad: List[int] = []
        for log in logs:
            for om in log.omitted:
                if om.entry.slice_.execute(om.entry.operands) != (
                    om.ground_truth_old_value
                ):
                    bad.append(om.address)
        return bad
