"""Regenerate ``BENCH_inject_campaign.json``: fork-from-snapshot speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_inject_campaign.py [--quick]

Times one Monte Carlo injection campaign (cg, both configurations,
``TRIALS`` trials each) two ways:

* **straight** — every trial re-executes its golden pass and runs the
  faulty pass from step 0: the O(N·T) schedule;
* **forked** — one golden pass per (workload, configuration) captures a
  boundary snapshot every interval, and each trial forks its faulty
  pass from the snapshot preceding its injection step: O(T + N·tail).

The in-process golden memo is cleared before the forked timing, so the
golden pass and all snapshot captures are *inside* the timed region —
the recorded speedup is the honest cold-campaign ratio, not a warm-memo
artifact.  Both modes feed a checksum over the full per-trial result
dicts, and the generator refuses to write a snapshot whose modes
disagree: the committed file doubles as a bit-identity certificate for
the fork path.  Timing is interleaved best-of-``ROUNDS`` (straight /
forked / straight / forked) so host noise spreads across both series.

``--quick`` shrinks the protocol for a smoke of the generator itself;
committed snapshots must come from a default run.
"""

from __future__ import annotations

import gc
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _bench_lib import bench_snapshot, results_checksum, write_snapshot

from repro.inject import harness
from repro.inject.campaign import build_trials
from repro.inject.harness import run_trial

#: Campaign protocol.  Trial count is per configuration; reps/scale are
#: raised above the TrialSpec defaults so per-trial simulated work (T)
#: dominates fixed costs — the regime injection campaigns actually run
#: in, and the one the O(T + N·tail) schedule is built for.
WORKLOAD = "cg"
TRIALS = 16
REPS = 24
SCALE = 0.2
CORES = 2
ROUNDS = 2


def _timed(fn):
    gc.collect()
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def snapshot_campaign(quick: bool = False):
    trials = 4 if quick else TRIALS
    reps = 8 if quick else REPS
    scale = 0.1 if quick else SCALE
    specs = build_trials(
        [WORKLOAD], trials=trials, reps=reps, region_scale=scale,
        num_cores=CORES,
    )

    def run_all(snapshots):
        if snapshots:
            # Cold campaign: the golden pass and every boundary
            # capture must land inside the timed region.
            harness._GOLDEN_MEMO.clear()
        return [run_trial(spec, snapshots=snapshots) for spec in specs]

    # Warm the shared compile/plan caches for both series.
    run_all(snapshots=False)
    mins = {"straight": float("inf"), "forked": float("inf")}
    digests = {}
    for _ in range(ROUNDS):
        for mode in ("straight", "forked"):
            payload = []

            def timed_run(mode=mode, payload=payload):
                payload.extend(run_all(snapshots=(mode == "forked")))

            mins[mode] = min(mins[mode], _timed(timed_run))
            digests[mode] = results_checksum([r.to_dict() for r in payload])

    if digests["straight"] != digests["forked"]:
        raise SystemExit(
            "FORK DIVERGENCE: forked trials differ from straight-through "
            "— refusing to write snapshot"
        )
    speedup = mins["straight"] / mins["forked"]
    print(
        f"inject_campaign ({WORKLOAD}, {trials} trials/config): "
        f"straight {mins['straight']:.2f}s  forked {mins['forked']:.2f}s  "
        f"({speedup:.2f}x)",
        flush=True,
    )

    entries = []
    for mode in ("straight", "forked"):
        extra = {
            "mode": mode,
            "workload": WORKLOAD,
            "trials_per_config": trials,
            "configs": ["BER", "ACR"],
        }
        if mode == "forked":
            extra["speedup_vs_straight"] = round(speedup, 2)
        entries.append(
            bench_snapshot(
                "inject_campaign", "interp", mins[mode], digests[mode],
                extra=extra, scale=scale, cores=CORES, reps=reps,
            )
        )
    return entries


def main(argv):
    quick = "--quick" in argv
    print(f"wrote {write_snapshot('inject_campaign', snapshot_campaign(quick))}")


if __name__ == "__main__":
    main(sys.argv[1:])
