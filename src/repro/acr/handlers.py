"""ACR checkpoint and recovery handlers (paper Fig. 4).

The checkpoint handler sits between the cores and the memory controller:

* every covered store executes ``ASSOC-ADDR``: the handler snapshots the
  Slice's input operands from the live register file into the per-core
  AddrMap (subject to AddrMap and operand-buffer capacity);
* every plain store *invalidates* (tombstones) the address — its value is
  no longer the one the recorded Slice reproduces;
* at a first-modification the memory controller asks :meth:`may_omit`;
  a committed association answers "recomputable" and the log write is
  skipped (the controller still sets the line's log bit either way).

The recovery handler regenerates omitted values via the recomputation
engine and writes them back, in coordination with the log-based restore.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Sequence

from repro.arch.buffers import AddrMap, AddrMapEntry, OperandBuffer
from repro.arch.config import MachineConfig
from repro.acr.recompute import RecomputationEngine
from repro.ckpt.log import IntervalLog
from repro.compiler.slices import Slice, SliceTable
from repro.isa.interpreter import MemoryImage
from repro.obs.events import AddrMapEvict, AddrMapHit, AddrMapInsert
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = ["AssocOutcome", "AcrCheckpointHandler", "AcrRecoveryHandler"]


class AssocOutcome(enum.Enum):
    """What happened when a store hit the checkpoint handler."""

    #: The store carried ``ASSOC-ADDR`` and the association was recorded.
    RECORDED = "recorded"
    #: The store carried ``ASSOC-ADDR`` but a capacity limit rejected it.
    REJECTED = "rejected"
    #: A plain store — any prior association for the address was masked.
    INVALIDATED = "invalidated"


class AcrCheckpointHandler:
    """Per-machine checkpoint handler with per-core AddrMaps."""

    def __init__(
        self,
        config: MachineConfig,
        slice_tables: Sequence[SliceTable],
    ) -> None:
        if len(slice_tables) != config.num_cores:
            raise ValueError(
                f"need one slice table per core: got {len(slice_tables)} "
                f"for {config.num_cores} cores"
            )
        self.config = config
        self.addrmaps: List[AddrMap] = [
            AddrMap(config.addrmap_capacity) for _ in range(config.num_cores)
        ]
        self.operand_buffers: List[OperandBuffer] = [
            OperandBuffer(config.operand_buffer_capacity)
            for _ in range(config.num_cores)
        ]
        # site id -> Slice, per core (sites are per-program, programs per core).
        self._site_slices: List[Dict[int, Slice]] = [
            {site: table.get(site) for site in table.sites}
            for table in slice_tables
        ]
        # Operand words held by each generation (open + 2 committed), per
        # core, so the operand buffer can be released on generation expiry.
        self._gen_words: List[List[int]] = [[0] for _ in range(config.num_cores)]
        self.assoc_executed = 0
        self.omissions = 0
        self.omission_lookups = 0
        # Observability (attached by the simulator; None = fast path).
        self._tracer: Optional[Tracer] = None
        self._metrics: Optional[MetricsRegistry] = None
        self._clock: Optional[Callable[[int], float]] = None

    # -- observability --------------------------------------------------------
    def attach_observability(
        self,
        tracer: Optional[Tracer],
        metrics: Optional[MetricsRegistry],
        clock: Callable[[int], float],
    ) -> None:
        """Wire the handler into the run's tracer/metrics.

        ``clock`` maps a core id to its current simulated wall time (the
        handler has no clock of its own).  A disabled tracer is dropped
        here so the per-store guards stay a single ``is not None`` test.
        """
        self._tracer = tracer if (tracer is not None and tracer.enabled) else None
        self._metrics = metrics
        self._clock = clock

    def slice_for_site(self, core: int, site: int) -> Optional[Slice]:
        """The embedded slice covering ``site`` on ``core`` (if any)."""
        return self._site_slices[core].get(site)

    def site_slice_map(self, core: int) -> Dict[int, Slice]:
        """The full site -> Slice map of ``core`` (read-only use)."""
        return self._site_slices[core]

    # -- snapshot support -----------------------------------------------------
    def generation_words(self) -> List[List[int]]:
        """Per-core operand-word ledgers, one entry per live generation
        (open last).  Returned live — copy before serializing."""
        return self._gen_words

    def restore_generation_words(self, words: Sequence[Sequence[int]]) -> None:
        """Replace the generation word ledgers (snapshot restore)."""
        if len(words) != self.config.num_cores:
            raise ValueError(
                f"need one word ledger per core: got {len(words)} "
                f"for {self.config.num_cores} cores"
            )
        self._gen_words = [list(w) for w in words]

    @property
    def observed(self) -> bool:
        """True when a tracer or metrics registry is attached.

        Engines that inline the store-time protocol must take the slow
        (method-call) path then, so events and counters keep flowing.
        """
        return self._tracer is not None or self._metrics is not None

    # -- store-time control (paper Fig. 4a) ----------------------------------
    def on_store(
        self, core: int, site: int, address: int, regs: Sequence[int]
    ) -> AssocOutcome:
        """Handle one dynamic store on ``core``.

        ``regs`` is the live register file (operand snapshot source).
        """
        sl = self._site_slices[core].get(site)
        if sl is None:
            self.addrmaps[core].invalidate(address)
            self._observe_evict(core, address, "invalidated")
            return AssocOutcome.INVALIDATED

        n_ops = len(sl.frontier)
        replaced = self.addrmaps[core].open_entry(address)
        if replaced is not None:
            # Re-association: the old snapshot's operand words free up.
            freed = len(replaced.slice_.frontier)
            self.operand_buffers[core].release(freed)
            self._gen_words[core][-1] -= freed
            self._observe_evict(core, address, "replaced")
        if not self.operand_buffers[core].try_reserve(n_ops):
            self.addrmaps[core].invalidate(address)
            self._observe_evict(core, address, "rejected")
            return AssocOutcome.REJECTED
        operands = tuple(regs[r] for r in sl.frontier)
        entry = AddrMapEntry(address, sl, operands)
        if not self.addrmaps[core].record(entry):
            self.operand_buffers[core].release(n_ops)
            self.addrmaps[core].invalidate(address)
            self._observe_evict(core, address, "rejected")
            return AssocOutcome.REJECTED
        self._gen_words[core][-1] += n_ops
        self.assoc_executed += 1
        if self._metrics is not None:
            self._metrics.counter("addrmap.inserts").inc()
        if self._tracer is not None:
            self._tracer.emit(AddrMapInsert(
                ts_ns=self._clock(core), core=core,
                address=address, operands=n_ops,
            ))
        return AssocOutcome.RECORDED

    def _observe_evict(self, core: int, address: int, reason: str) -> None:
        """Emit/count one AddrMap eviction (no-op when unobserved)."""
        if self._metrics is not None:
            self._metrics.counter(f"addrmap.evict.{reason}").inc()
        if self._tracer is not None:
            self._tracer.emit(AddrMapEvict(
                ts_ns=self._clock(core), core=core,
                address=address, reason=reason,
            ))

    def may_omit(self, core: int, address: int) -> Optional[AddrMapEntry]:
        """Memory-controller query at a first-modification.

        Returns the association proving the overwritten value (the one
        live at the last checkpoint) recomputable, or ``None`` when it
        must be logged normally.
        """
        self.omission_lookups += 1
        entry = self.addrmaps[core].committed_lookup(address)
        if entry is not None:
            self.omissions += 1
            if self._metrics is not None:
                self._metrics.counter("addrmap.hits").inc()
            if self._tracer is not None:
                self._tracer.emit(AddrMapHit(
                    ts_ns=self._clock(core), core=core, address=address,
                ))
        return entry

    # -- boundary control ---------------------------------------------------------
    def on_checkpoint(self) -> None:
        """A checkpoint was established: rotate AddrMap generations.

        Commits every core's open generation and releases the operand
        buffer words of the generation that ages out of retention.
        """
        for core, addrmap in enumerate(self.addrmaps):
            addrmap.commit_generation()
            gens = self._gen_words[core]
            gens.append(0)
            # open + 2 committed generations stay live.
            while len(gens) > 3:
                expired = gens.pop(0)
                self.operand_buffers[core].release(expired)


class AcrRecoveryHandler:
    """Regenerates omitted values during recovery (paper Fig. 4b)."""

    def __init__(self) -> None:
        self.engine = RecomputationEngine()

    def recompute_omitted(
        self, logs: Sequence[IntervalLog], memory: Optional[MemoryImage] = None
    ) -> Dict[int, int]:
        """Recompute every omitted value in ``logs`` (newest-first).

        Writes the values back to ``memory`` when given (the consistent-
        recovery-line write-back); returns {address: recomputed value} with
        the *oldest* log winning for addresses omitted in several
        intervals, matching the restore order of
        :meth:`repro.ckpt.recovery.RecoveryEngine.apply_rollback`.
        """
        values: Dict[int, int] = {}
        for log in logs:
            for om in log.omitted:
                address, value = self.engine.recompute_entry(om.entry)
                values[address] = value
                if memory is not None:
                    memory.write(address, value)
        return values

    @property
    def stats(self):
        """Recomputation accounting."""
        return self.engine.stats
