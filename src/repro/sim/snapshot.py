"""CRIU-style simulator snapshots: capture, serialize, restore, fork.

ACR's own premise — recovery state is a consistent snapshot plus a small
tail of work — applies to the *simulator* as much as to the simulated
machine.  A :class:`SimSnapshot` captures the complete functional state
of a mechanism-stack execution at an interval boundary:

* the memory image (written words, insertion-ordered),
* the checkpoint store (retained checkpoints + the open interval log),
* per-core AddrMap generations and operand buffers (ACR only),
* per-core architectural + interpreter state, the initial state, and
  the per-checkpoint architectural history,
* directory log bits,
* RNG stream positions (label → :meth:`DeterministicRng.getstate`),
* observation counters (steps, instructions, ECC lookup hits).

A snapshot is **pure data** — JSON-able primitives, lists and dicts
only, no live object references.  That is what "deep-copy-free" buys:
restoring never deep-copies programs or compiled Slices (they are
rehydrated from the deterministic compile), a live fork and a
from-bytes restore share one code path, and serialization is a plain
canonical-JSON encode.

Object identity is the one non-trivial invariant: an
:class:`~repro.ckpt.log.OmittedRecord` holds the *same object* as the
committed AddrMap entry it was justified by, and the injection harness
distinguishes shared from distinct-but-equal entries by ``id()``.  The
payload therefore carries an entry *table* (one row per distinct entry
object) and every reference is a table index, so restoring rebuilds an
isomorphic identity graph.

Framing (:func:`encode_payload` / :func:`decode_payload`) mirrors the
result cache's corruption handling: a magic tag, a format version, a
truncated SHA-256 over the compressed body, then zlib-compressed
canonical JSON.  Any mismatch raises :class:`SnapshotError`, and
:class:`SnapshotStore` quarantines (deletes) the damaged blob exactly
like :meth:`repro.experiments.cache.ResultCache` does for results.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.util import atomicio

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SimSnapshot",
    "SnapshotError",
    "SnapshotStore",
    "decode_payload",
    "encode_payload",
]

#: Leading tag of every serialized snapshot blob.
SNAPSHOT_MAGIC = b"ACRSNAP"

#: Bump when the payload layout changes; old blobs are then rejected
#: (and quarantined by the store) rather than misread.
SNAPSHOT_VERSION = 1

_CHECKSUM_BYTES = 16


class SnapshotError(ValueError):
    """A snapshot blob or payload cannot be decoded/applied safely."""


# --------------------------------------------------------------------------
# Framed byte container.
# --------------------------------------------------------------------------
def encode_payload(payload: Any) -> bytes:
    """Serialize a JSON-able payload into a framed, checksummed blob.

    Layout: ``MAGIC | version byte | sha256(body)[:16] | zlib(JSON)``.
    The JSON encoding is canonical (sorted keys, no whitespace), so equal
    payloads encode to identical bytes — snapshot round-trips are
    fixed-point testable.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    body = zlib.compress(text.encode("utf-8"))
    digest = hashlib.sha256(body).digest()[:_CHECKSUM_BYTES]
    return SNAPSHOT_MAGIC + bytes([SNAPSHOT_VERSION]) + digest + body


def decode_payload(blob: bytes) -> Any:
    """Inverse of :func:`encode_payload`; raises :class:`SnapshotError`
    on truncation, bad magic, version drift, checksum mismatch, or an
    undecodable body."""
    if not isinstance(blob, (bytes, bytearray)):
        raise SnapshotError("snapshot blob must be bytes")
    header = len(SNAPSHOT_MAGIC) + 1 + _CHECKSUM_BYTES
    if len(blob) < header:
        raise SnapshotError(
            f"snapshot blob truncated ({len(blob)} bytes < {header}-byte header)"
        )
    if bytes(blob[: len(SNAPSHOT_MAGIC)]) != SNAPSHOT_MAGIC:
        raise SnapshotError("bad snapshot magic (not an ACR snapshot)")
    version = blob[len(SNAPSHOT_MAGIC)]
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot format version {version} != {SNAPSHOT_VERSION}"
        )
    digest = bytes(blob[len(SNAPSHOT_MAGIC) + 1 : header])
    body = bytes(blob[header:])
    if hashlib.sha256(body).digest()[:_CHECKSUM_BYTES] != digest:
        raise SnapshotError("snapshot checksum mismatch (corrupt or torn blob)")
    try:
        text = zlib.decompress(body).decode("utf-8")
        return json.loads(text)
    except (zlib.error, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"undecodable snapshot body: {exc}") from None


def _check_pairs(name: str, value: Any, width: int) -> List[List[Any]]:
    """Validate a list of fixed-width rows (the payload's list shapes)."""
    if not isinstance(value, list):
        raise SnapshotError(f"snapshot field {name!r} must be a list")
    for row in value:
        if not isinstance(row, list) or len(row) != width:
            raise SnapshotError(
                f"snapshot field {name!r} rows must be {width}-element lists"
            )
    return value


# --------------------------------------------------------------------------
# The snapshot value.
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class SimSnapshot:
    """Complete functional simulator state at one interval boundary.

    Every field is JSON-able pure data; see the module doc for the
    encoding conventions.  Dict-shaped live state (memory words, AddrMap
    generation entries) is stored as *ordered pair lists*, not JSON
    objects — insertion order is part of the captured state (the
    injection harness indexes candidate lists built by dict iteration).
    """

    #: Seed of the memory image the words below were written over.
    memory_seed: int
    #: ``[address, value]`` pairs of every written word, insertion order.
    memory_words: List[List[int]]
    #: Harness step count at capture (a multiple of ``steps_per_interval``).
    step: int
    #: Cumulative dynamic instructions executed.
    n_instructions: int
    #: ECC-at-lookup hits observed so far.
    ecc_lookup_hits: int
    #: Sorted word addresses whose directory log bit is set.
    directory_log_bits: List[int]
    #: Entry table: ``[core, slice site, address, [operands...]]`` — one
    #: row per *distinct* AddrMap entry object; all entry references
    #: below are indexes into this table (identity-graph preserving).
    entries: List[List[Any]]
    #: The open interval log: ``{"interval", "records", "omitted"}``.
    open_log: Dict[str, Any]
    #: Retained checkpoints, oldest first (pruned logs stay pruned).
    checkpoints: List[Dict[str, Any]]
    #: Per-core AddrMap state (``None`` under BER — no ACR handler).
    addrmaps: Optional[List[Dict[str, Any]]]
    #: Per-core operand-buffer occupancy (``None`` under BER).
    operand_buffers: Optional[List[Dict[str, int]]]
    #: Per-core generation word ledgers (``None`` under BER).
    gen_words: Optional[List[List[int]]]
    #: Handler counters (``None`` under BER).
    handler_counters: Optional[Dict[str, int]]
    #: Live per-core architectural state: ``[kernel, iteration, [regs]]``.
    arch: List[List[Any]]
    #: Architectural state at program start (rollback to checkpoint -1).
    initial_arch: List[List[Any]]
    #: Per-checkpoint architectural snapshots (``arch`` rows per entry).
    arch_history: List[List[List[Any]]]
    #: RNG stream positions: label → ``DeterministicRng.getstate()``.
    rng_states: Dict[str, Any]

    # -- payload codec -------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """JSON-able dict, version-stamped (strict inverse:
        :meth:`from_payload`)."""
        doc: Dict[str, Any] = {"v": SNAPSHOT_VERSION}
        for f in fields(self):
            doc[f.name] = getattr(self, f.name)
        return doc

    @classmethod
    def from_payload(cls, doc: Any) -> "SimSnapshot":
        """Decode a payload dict; raises :class:`SnapshotError` on any
        structural drift."""
        if not isinstance(doc, dict):
            raise SnapshotError("snapshot payload is not an object")
        expected = {f.name for f in fields(cls)} | {"v"}
        if set(doc) != expected:
            missing = expected - set(doc)
            extra = set(doc) - expected
            raise SnapshotError(
                f"bad snapshot payload: missing {sorted(missing)}, "
                f"unexpected {sorted(extra)}"
            )
        if doc["v"] != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot payload version {doc['v']!r} != {SNAPSHOT_VERSION}"
            )
        for name in ("memory_seed", "step", "n_instructions",
                     "ecc_lookup_hits"):
            value = doc[name]
            if isinstance(value, bool) or not isinstance(value, int):
                raise SnapshotError(f"snapshot field {name!r} must be an int")
        _check_pairs("memory_words", doc["memory_words"], 2)
        _check_pairs("entries", doc["entries"], 4)
        if not isinstance(doc["directory_log_bits"], list):
            raise SnapshotError("directory_log_bits must be a list")
        if not isinstance(doc["open_log"], dict):
            raise SnapshotError("open_log must be an object")
        if not isinstance(doc["checkpoints"], list):
            raise SnapshotError("checkpoints must be a list")
        for name in ("arch", "initial_arch"):
            _check_pairs(name, doc[name], 3)
        if not isinstance(doc["arch_history"], list):
            raise SnapshotError("arch_history must be a list")
        if not isinstance(doc["rng_states"], dict):
            raise SnapshotError("rng_states must be an object")
        acr_fields = ("addrmaps", "operand_buffers", "gen_words",
                      "handler_counters")
        present = [doc[name] is not None for name in acr_fields]
        if any(present) and not all(present):
            raise SnapshotError(
                "snapshot mixes ACR handler state with BER null fields"
            )
        kwargs = {f.name: doc[f.name] for f in fields(cls)}
        return cls(**kwargs)

    # -- byte codec ----------------------------------------------------------
    def to_bytes(self) -> bytes:
        return encode_payload(self.to_payload())

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SimSnapshot":
        return cls.from_payload(decode_payload(blob))


# --------------------------------------------------------------------------
# On-disk store (mirrors the result cache's layout and quarantine).
# --------------------------------------------------------------------------
class SnapshotStore:
    """Content-addressed snapshot blobs under one root directory.

    Keys are hex digests (the harness derives them from the golden-run
    recipe).  Writes are atomic (temp file + ``os.replace``), so
    concurrent campaign workers racing on one key are harmless — the
    content is deterministic and idempotent.  A blob that fails to
    decode is *quarantined* (deleted) by the caller via
    :meth:`quarantine`, turning corruption into a recompute, never a
    crash — the same contract the result cache gives results.
    """

    SUFFIX = ".snap"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"snapshot key must be lowercase hex, got {key!r}")
        return self.root / key[:2] / f"{key}{self.SUFFIX}"

    def load(self, key: str) -> Optional[bytes]:
        """The stored blob, or ``None`` on a miss (including unreadable
        files — the store is best-effort, like the result cache)."""
        try:
            return self.path_for(key).read_bytes()
        except OSError:
            return None

    def save(self, key: str, blob: bytes) -> Path:
        """Atomically publish ``blob`` under ``key``.

        Best-effort: an ``OSError`` (full or read-only disk) is swallowed
        — a snapshot that fails to persist simply costs a future golden
        re-simulation, never a failed campaign.
        """
        path = self.path_for(key)
        try:
            atomicio.atomic_write_bytes(path, blob, prefix=path.name)
        except OSError:
            pass
        return path

    def quarantine(self, key: str) -> None:
        """Remove a blob that failed to decode (treated as a miss)."""
        atomicio.quarantine(self.path_for(key))
