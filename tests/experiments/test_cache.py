"""Property tests for the persistent result cache.

Two contracts:

* serialise→deserialise of :class:`RunResult` (with nested
  :class:`IntervalStats`, :class:`RecoveryStats`, :class:`EnergyLedger`,
  :class:`CompileStats`) is lossless for arbitrary field values;
* corrupt, truncated or schema-drifted cache files are detected,
  quarantined and reported as misses — never crashes, never half-built
  results.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.embed import CompileStats
from repro.energy.accounting import EnergyLedger
from repro.experiments.cache import CACHE_SCHEMA_VERSION, ResultCache
from repro.sim.results import IntervalStats, RecoveryStats, RunResult

# ---------------------------------------------------------------- strategies
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
nonneg = st.integers(min_value=0, max_value=2**40)
any_int = st.integers(min_value=-(2**40), max_value=2**40)
nonneg_f = st.floats(
    min_value=0.0, allow_nan=False, allow_infinity=False, width=64
)

interval_stats = st.builds(
    IntervalStats,
    index=nonneg,
    useful_ns=nonneg_f,
    logged_records=nonneg,
    omitted_records=nonneg,
    logged_bytes=nonneg,
    omitted_bytes=nonneg,
    flushed_bytes=nonneg,
    boundary_ns=nonneg_f,
    clusters=nonneg,
    footprint_bytes=nonneg,
)

recovery_stats = st.builds(
    RecoveryStats,
    error_index=nonneg,
    occurred_useful_ns=nonneg_f,
    detected_useful_ns=nonneg_f,
    safe_checkpoint=st.integers(min_value=-1, max_value=2**20),
    skipped_corrupted=st.booleans(),
    participants=nonneg,
    waste_ns=nonneg_f,
    rollback_ns=nonneg_f,
    recompute_ns=nonneg_f,
    restored_records=nonneg,
    recomputed_values=nonneg,
    recompute_instructions=nonneg,
)

compile_stats = st.builds(
    CompileStats,
    sites_total=nonneg,
    sites_sliceable=nonneg,
    sites_embedded=nonneg,
    sites_loop_carried=nonneg,
    sites_trivial=nonneg,
    embedded_bytes=nonneg,
)

energy_ledgers = st.dictionaries(
    st.text(min_size=1, max_size=30), nonneg_f, max_size=8
).map(EnergyLedger.from_dict)

run_results = st.builds(
    RunResult,
    label=st.text(max_size=20),
    scheme=st.sampled_from(["none", "global", "local"]),
    acr=st.booleans(),
    num_cores=st.integers(min_value=1, max_value=64),
    wall_ns=nonneg_f,
    per_core_useful_ns=st.lists(finite, min_size=1, max_size=8),
    per_core_overhead_ns=st.lists(finite, min_size=1, max_size=8),
    energy=energy_ledgers,
    intervals=st.lists(interval_stats, max_size=5),
    recoveries=st.lists(recovery_stats, max_size=5),
    instructions=nonneg,
    alu_ops=nonneg,
    loads=nonneg,
    stores=nonneg,
    assoc_ops=nonneg,
    l1d_accesses=nonneg,
    l2_accesses=nonneg,
    memory_accesses=nonneg,
    writebacks=nonneg,
    compile_stats=st.none() | compile_stats,
    addrmap_records=nonneg,
    addrmap_rejections=nonneg,
    omissions=nonneg,
    omission_lookups=nonneg,
    checkpoint_store=st.none(),
)

KEY = "ab" * 32  # a syntactically valid content hash


# ----------------------------------------------------------------- round trip
class TestRoundTrip:
    @given(result=run_results)
    @settings(max_examples=60, deadline=None)
    def test_run_result_json_round_trip_lossless(self, result):
        wire = json.dumps(result.to_dict(), sort_keys=True)
        rebuilt = RunResult.from_dict(json.loads(wire))
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.equivalent(result)
        assert rebuilt.energy == result.energy
        assert rebuilt.intervals == result.intervals
        assert rebuilt.recoveries == result.recoveries
        assert rebuilt.compile_stats == result.compile_stats
        assert rebuilt.checkpoint_store is None

    @given(iv=interval_stats)
    @settings(max_examples=40, deadline=None)
    def test_interval_stats_round_trip(self, iv):
        assert IntervalStats.from_dict(json.loads(json.dumps(iv.to_dict()))) == iv

    @given(rec=recovery_stats)
    @settings(max_examples=40, deadline=None)
    def test_recovery_stats_round_trip(self, rec):
        assert (
            RecoveryStats.from_dict(json.loads(json.dumps(rec.to_dict()))) == rec
        )

    @given(ledger=energy_ledgers)
    @settings(max_examples=40, deadline=None)
    def test_energy_ledger_round_trip(self, ledger):
        rebuilt = EnergyLedger.from_dict(json.loads(json.dumps(ledger.to_dict())))
        assert rebuilt == ledger
        assert rebuilt.total_pj() == ledger.total_pj()

    @given(result=run_results)
    @settings(max_examples=25, deadline=None)
    def test_store_load_through_cache(self, tmp_path_factory, result):
        cache = ResultCache(tmp_path_factory.mktemp("cache"))
        cache.store(KEY, result)
        assert KEY in cache
        loaded = cache.load(KEY)
        assert loaded is not None
        assert loaded.equivalent(result)


# ----------------------------------------------------------- strict rejection
class TestStrictDeserialisation:
    def test_unknown_field_rejected(self):
        iv = IntervalStats(0, 1.0, 1, 1, 16, 16, 64, 5.0, 1)
        data = iv.to_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError):
            IntervalStats.from_dict(data)

    def test_missing_field_rejected(self):
        iv = IntervalStats(0, 1.0, 1, 1, 16, 16, 64, 5.0, 1)
        data = iv.to_dict()
        del data["clusters"]
        with pytest.raises(TypeError):
            IntervalStats.from_dict(data)

    def test_non_mapping_rejected(self):
        with pytest.raises(ValueError):
            RunResult.from_dict([1, 2, 3])

    def test_malformed_nested_payload_rejected(self):
        with pytest.raises((ValueError, TypeError, KeyError)):
            RunResult.from_dict({"energy": 3})

    def test_malformed_energy_bucket_rejected(self):
        with pytest.raises(ValueError):
            EnergyLedger.from_dict({"core.alu": "a lot"})


# ------------------------------------------------------- corrupt cache files
@pytest.fixture()
def cache_with_entry(tmp_path, small_run_result):
    cache = ResultCache(tmp_path / "cache")
    cache.store(KEY, small_run_result)
    return cache


@pytest.fixture(scope="module")
def small_run_result():
    return RunResult(
        label="Ckpt_NE",
        scheme="global",
        acr=False,
        num_cores=2,
        wall_ns=100.0,
        per_core_useful_ns=[90.0, 80.0],
        per_core_overhead_ns=[10.0, 5.0],
        energy=EnergyLedger.from_dict({"core.alu": 10.0}),
        intervals=[IntervalStats(0, 45.0, 3, 1, 48, 16, 128, 7.0, 1, 256)],
        recoveries=[],
        instructions=1000,
        alu_ops=600,
        loads=200,
        stores=200,
        assoc_ops=0,
        l1d_accesses=400,
        l2_accesses=40,
        memory_accesses=4,
        writebacks=2,
        compile_stats=None,
        addrmap_records=0,
        addrmap_rejections=0,
        omissions=0,
        omission_lookups=0,
    )


class TestCorruptEntries:
    def test_missing_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load(KEY) is None

    @pytest.mark.parametrize(
        "garbage",
        [
            "",                      # empty file
            "{",                     # invalid JSON
            "not json at all",       # not JSON
            "[1, 2, 3]",             # JSON, wrong shape
            '{"schema": 0}',         # version mismatch
            json.dumps({"schema": CACHE_SCHEMA_VERSION, "key": "ff" * 32,
                        "result": {}}),          # key mismatch
            json.dumps({"schema": CACHE_SCHEMA_VERSION, "key": KEY,
                        "result": {"label": "x"}}),   # truncated result
            json.dumps({"schema": CACHE_SCHEMA_VERSION, "key": KEY,
                        "result": None}),        # null result
        ],
    )
    def test_corrupt_entry_is_miss_and_quarantined(
        self, cache_with_entry, garbage
    ):
        path = cache_with_entry.path_for(KEY)
        path.write_text(garbage)
        assert cache_with_entry.load(KEY) is None
        assert not path.exists(), "corrupt entry should be deleted"

    def test_truncated_valid_entry_is_miss(self, cache_with_entry):
        path = cache_with_entry.path_for(KEY)
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])
        assert cache_with_entry.load(KEY) is None
        assert not path.exists()

    def test_unknown_result_field_is_miss(self, cache_with_entry,
                                          small_run_result):
        path = cache_with_entry.path_for(KEY)
        envelope = json.loads(path.read_text())
        envelope["result"]["from_the_future"] = 1
        path.write_text(json.dumps(envelope))
        assert cache_with_entry.load(KEY) is None

    def test_rewrite_after_quarantine(self, cache_with_entry,
                                      small_run_result):
        path = cache_with_entry.path_for(KEY)
        path.write_text("garbage")
        assert cache_with_entry.load(KEY) is None
        cache_with_entry.store(KEY, small_run_result)
        loaded = cache_with_entry.load(KEY)
        assert loaded is not None and loaded.equivalent(small_run_result)

    def test_malformed_key_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        for bad in ("", "../escape", "XYZ", "ab/cd"):
            with pytest.raises(ValueError):
                cache.path_for(bad)


class TestManagement:
    def test_len_clear_describe(self, tmp_path, small_run_result):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.store(KEY, small_run_result)
        cache.store("cd" * 32, small_run_result)
        assert len(cache) == 2
        desc = cache.describe()
        assert desc["entries"] == 2 and desc["bytes"] > 0
        assert cache.clear() == 2
        assert len(cache) == 0 and cache.load(KEY) is None

    def test_atomic_store_leaves_no_temp_files(self, tmp_path,
                                               small_run_result):
        cache = ResultCache(tmp_path)
        cache.store(KEY, small_run_result)
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []
