"""One fault-injection trial: flip a bit, recover, verify bit-exactly.

A trial executes the same workload twice through the real mechanism
stack (interpreter, directory log bits, checkpoint store, ACR handler):

* the **golden pass** runs error-free and snapshots memory at every
  checkpoint plus the final state;
* the **faulty pass** replays the identical deterministic execution,
  flips one bit in live state at a schedule-driven step, lets execution
  continue until the scheduled detection point, then performs the
  paper's recovery — :func:`choose_safe_checkpoint` over the real
  establishment times, log application newest-first, Slice recomputation
  of omitted records — and resumes to completion.

Verification is *semantic bit-exactness* against the golden pass at two
points: immediately after rollback (against the safe checkpoint's
snapshot) and at program end (against the golden final state).  Memory
snapshots only hold explicitly-written words, and a rollback may
materialise a word at its deterministic initial value, so absent keys
compare as :meth:`MemoryImage.initial_value`.

Injection targets (each mapped to a paper mechanism in DESIGN §3.3):

``mem``
    Flip a bit of a memory word whose address is covered by the open
    interval's log (a logged or omitted first-modification).  The
    oldest applied log wins during rollback, so recovery must restore
    the pre-corruption value exactly.
``log``
    Flip a bit inside a *retained but never-applied* interval-log
    record (the newest completed checkpoint's log: rollback applies the
    open log plus logs younger than the safe checkpoint, and the safe
    checkpoint under latency ≤ period is precisely the newest completed
    one at occurrence time).  Recovery must ignore the corruption; an
    over-application bug surfaces as a divergence.
``addrmap``
    Replace a committed AddrMap entry with a copy whose operand
    snapshot has one bit flipped (entries are frozen).  Lookup ECC
    detects the damaged snapshot: :meth:`may_omit` hits are refused and
    the store logs normally, so recovery never executes a corrupt
    Slice.  ACR configurations only.
``arch``
    Flip a bit of a live architectural register.  Rollback restores the
    architectural snapshot of the safe checkpoint, and deterministic
    re-execution must reconverge to the golden final state.

When a requested target is not viable at the drawn injection point
(e.g. ``log`` before any checkpoint exists, ``addrmap`` under BER), the
injector falls back along ``requested → mem → arch``; the provenance
records both the requested and the actual target.

A deliberately seeded recovery defect (``TrialSpec.defect``) replaces
the production rollback with a broken variant — the campaign's own
verifier must catch it as a divergence with correct provenance, which
is how the harness proves it can detect real bugs.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.acr.handlers import AcrCheckpointHandler
from repro.arch.buffers import AddrMapEntry, make_generation
from repro.arch.config import MachineConfig
from repro.arch.directory import Directory
from repro.arch.memctrl import MemorySystem
from repro.ckpt.checkpoint import Checkpoint, CheckpointStore
from repro.ckpt.log import IntervalLog, LogRecord, OmittedRecord
from repro.ckpt.recovery import RecoveryEngine
from repro.compiler.embed import compile_program
from repro.compiler.policy import ThresholdPolicy
from repro.compiler.slices import SliceTable
from repro.energy.model import EnergyModel
from repro.errors.detection import choose_safe_checkpoint
from repro.errors.model import ErrorModel, ErrorOccurrence
from repro.isa.interpreter import Interpreter, MemoryImage
from repro.sim.vector.interp import make_interpreter
from repro.isa.program import Program
from repro.obs.events import (
    MACHINE,
    FaultInjected,
    RecoveryDiverged,
    RecoveryVerified,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import emit as _telemetry_mod
from repro.obs.telemetry.frames import TaskHeartbeat
from repro.obs.tracer import Tracer
from repro.sim.snapshot import (
    SNAPSHOT_VERSION,
    SimSnapshot,
    SnapshotError,
    SnapshotStore,
)
from repro.util.rng import DeterministicRng
from repro.util.validation import check_in_range, check_positive
from repro.workloads.registry import get_workload

__all__ = [
    "CONFIGS",
    "DEFECTS",
    "OUTCOMES",
    "TARGET_KINDS",
    "Divergence",
    "GoldenRun",
    "Injection",
    "TrialResult",
    "TrialSpec",
    "fork",
    "golden_key",
    "run_golden",
    "run_trial",
]

#: Injection target kinds, in campaign rotation order.
TARGET_KINDS = ("mem", "log", "addrmap", "arch")

#: Checkpointing configurations a trial can exercise: the BER baseline
#: (every first-modification logged) and ACR (omission + recomputation).
CONFIGS = ("BER", "ACR")

#: Trial outcomes.
OUTCOMES = ("recovered-exact", "diverged", "unrecoverable")

#: Deliberately seeded recovery defects (verifier self-tests).
#: ``skip-recompute`` drops one omitted record's Slice re-execution
#: (the oldest applied log's first omission — nothing overwrites it);
#: ``misorder-logs`` applies interval logs oldest-first, violating the
#: newest-first/oldest-wins rule of §III-B.
DEFECTS = ("skip-recompute", "misorder-logs")

#: At most this many per-address divergences are kept on a result (the
#: total count is always exact).
MAX_REPORTED_DIVERGENCES = 16

_WORD_BITS = 64


def _require_fields(doc: Any, cls: type) -> Dict[str, Any]:
    """Strict decode guard: ``doc`` must carry exactly ``cls``'s fields."""
    if not isinstance(doc, dict):
        raise ValueError(f"{cls.__name__} payload is not an object")
    expected = {f.name for f in fields(cls)}
    if set(doc) != expected:
        missing = expected - set(doc)
        extra = set(doc) - expected
        raise ValueError(
            f"bad {cls.__name__} payload: missing {sorted(missing)}, "
            f"unexpected {sorted(extra)}"
        )
    return doc


def _check_int(name: str, value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    return value


@dataclass(frozen=True)
class TrialSpec:
    """Everything that determines one fault-injection trial.

    The spec is the complete recipe: two trials with equal specs produce
    bit-identical results, which is what makes per-trial caching sound
    (:func:`repro.experiments.cache.trial_cache_key` hashes every field
    via :meth:`canonical_key`).
    """

    workload: str
    config: str = "ACR"
    seed: int = 0
    target: str = "mem"
    num_cores: int = 2
    steps_per_interval: int = 4
    iters_per_step: int = 8
    region_scale: float = 0.05
    reps: Optional[int] = 4
    threshold: Optional[int] = None
    memory_seed: int = 0
    detection_latency_fraction: float = 0.5
    defect: Optional[str] = None

    def __post_init__(self) -> None:
        if self.config not in CONFIGS:
            raise ValueError(f"unknown config {self.config!r} (use BER|ACR)")
        if self.target not in TARGET_KINDS:
            raise ValueError(
                f"unknown injection target {self.target!r} "
                f"(use {'|'.join(TARGET_KINDS)})"
            )
        if self.defect is not None and self.defect not in DEFECTS:
            raise ValueError(
                f"unknown defect {self.defect!r} (use {'|'.join(DEFECTS)})"
            )
        check_positive("num_cores", self.num_cores)
        check_positive("steps_per_interval", self.steps_per_interval)
        check_positive("iters_per_step", self.iters_per_step)
        check_positive("region_scale", self.region_scale)
        check_in_range(
            "detection_latency_fraction",
            self.detection_latency_fraction,
            0.0,
            1.0,
        )

    def canonical_key(self) -> Tuple[Tuple[str, Any], ...]:
        """Every field as sorted (name, value) pairs — the cache-key
        contribution of this trial (mirrors ``ConfigRequest``)."""
        return tuple(
            (f.name, getattr(self, f.name))
            for f in sorted(fields(self), key=lambda f: f.name)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, doc: Any) -> "TrialSpec":
        doc = _require_fields(doc, cls)
        return cls(**doc)  # __post_init__ re-validates


@dataclass(frozen=True)
class Injection:
    """Provenance of one bit flip.

    ``requested`` is the campaign's target kind; ``kind`` is what was
    actually hit after viability fallback.  ``interval`` is the open
    checkpoint interval at injection time, ``step`` the harness step
    count at the flip.  ``address`` is ``-1`` for architectural flips;
    ``register`` is ``-1`` for everything else.  ``before``/``after``
    are the 64-bit values around the flip.
    """

    requested: str
    kind: str
    step: int
    interval: int
    core: int
    address: int
    register: int
    bit: int
    before: int
    after: int
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, doc: Any) -> "Injection":
        doc = _require_fields(doc, cls)
        if doc["kind"] not in TARGET_KINDS or doc["requested"] not in TARGET_KINDS:
            raise ValueError("bad injection target kind")
        for name in ("step", "interval", "core", "address", "register",
                     "bit", "before", "after"):
            _check_int(name, doc[name])
        if not isinstance(doc["detail"], str):
            raise ValueError("injection detail must be a string")
        return cls(**doc)


@dataclass(frozen=True)
class Divergence:
    """One address where recovered state disagreed with the golden run.

    ``phase`` is ``rollback`` (compared against the safe checkpoint's
    snapshot; ``interval`` is that checkpoint's index) or ``final``
    (compared against the golden end state; ``interval`` is ``-1``).
    """

    phase: str
    address: int
    interval: int
    expected: int
    actual: int

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, doc: Any) -> "Divergence":
        doc = _require_fields(doc, cls)
        if doc["phase"] not in ("rollback", "final"):
            raise ValueError(f"bad divergence phase {doc['phase']!r}")
        for name in ("address", "interval", "expected", "actual"):
            _check_int(name, doc[name])
        return cls(**doc)


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial (JSON round-trippable, cached per trial).

    Times (``occurred``/``detected``) are on the harness's period axis:
    checkpoint ``k`` is established at time ``k + 1``; one checkpoint
    interval is ``1.0``.
    """

    spec: TrialSpec
    outcome: str
    injection: Injection
    occurred: float
    detected: float
    injection_step: int
    detection_step: int
    steps: int
    checkpoints: int
    safe_checkpoint: int
    skipped_corrupted: bool
    restored_records: int
    recomputed_values: int
    ecc_lookup_hits: int
    addresses_checked: int
    divergence_count: int
    divergences: Tuple[Divergence, ...]
    detail: str

    @property
    def recovered_exactly(self) -> bool:
        return self.outcome == "recovered-exact"

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "spec":
                doc[f.name] = value.to_dict()
            elif f.name == "injection":
                doc[f.name] = value.to_dict()
            elif f.name == "divergences":
                doc[f.name] = [d.to_dict() for d in value]
            else:
                doc[f.name] = value
        return doc

    @classmethod
    def from_dict(cls, doc: Any) -> "TrialResult":
        doc = dict(_require_fields(doc, cls))
        doc["spec"] = TrialSpec.from_dict(doc["spec"])
        doc["injection"] = Injection.from_dict(doc["injection"])
        if not isinstance(doc["divergences"], list):
            raise ValueError("divergences must be a list")
        doc["divergences"] = tuple(
            Divergence.from_dict(d) for d in doc["divergences"]
        )
        if doc["outcome"] not in OUTCOMES:
            raise ValueError(f"bad outcome {doc['outcome']!r}")
        for name in ("injection_step", "detection_step", "steps",
                     "checkpoints", "restored_records", "recomputed_values",
                     "ecc_lookup_hits", "addresses_checked",
                     "divergence_count"):
            if _check_int(name, doc[name]) < 0:
                raise ValueError(f"{name} must be non-negative")
        _check_int("safe_checkpoint", doc["safe_checkpoint"])
        for name in ("occurred", "detected"):
            if not isinstance(doc[name], (int, float)) or isinstance(
                doc[name], bool
            ):
                raise ValueError(f"{name} must be a number")
            doc[name] = float(doc[name])
        if not isinstance(doc["skipped_corrupted"], bool):
            raise ValueError("skipped_corrupted must be a boolean")
        if not isinstance(doc["detail"], str):
            raise ValueError("detail must be a string")
        if doc["outcome"] == "diverged" and doc["divergence_count"] == 0:
            raise ValueError("diverged outcome with zero divergences")
        return cls(**doc)


# --------------------------------------------------------------------------
# The mechanism pass: real components driven step by step.
# --------------------------------------------------------------------------
class _MechanismPass:
    """One execution of the workload through the checkpointing stack.

    Mirrors the simulator's store path (directory log bit → ``may_omit``
    → log record/omission → handler bookkeeping) but executes on a step
    grid the injector can address: one *step* is ``iters_per_step``
    iterations on every live core, and a checkpoint is established every
    ``steps_per_interval`` steps (at time ``step / steps_per_interval``
    on the period axis, so checkpoint ``k`` lands at ``k + 1``).
    """

    def __init__(
        self,
        spec: TrialSpec,
        programs: Sequence[Program],
        slice_tables: Optional[Sequence[SliceTable]],
        config: MachineConfig,
        engine: str = "interp",
        capture_memory: bool = True,
    ) -> None:
        self.spec = spec
        self.config = config
        #: Whether :meth:`checkpoint` keeps per-boundary memory images
        #: (golden passes need them as rollback expectations; faulty and
        #: boundary-snapshotting passes never read them).
        self.capture_memory = capture_memory
        self.memory = MemoryImage(seed=spec.memory_seed)
        self.directory = Directory(spec.num_cores)
        self.store = CheckpointStore(config.arch_state_bytes, spec.num_cores)
        self.handler: Optional[AcrCheckpointHandler] = (
            AcrCheckpointHandler(config, slice_tables)
            if slice_tables is not None
            else None
        )
        self.engine = RecoveryEngine(
            config, MemorySystem(config), EnergyModel()
        )
        self.interpreters = [
            make_interpreter(engine, p, self.memory, on_store=self._on_store)
            for p in programs
        ]
        self.initial_arch = [it.arch_state() for it in self.interpreters]
        self.snapshots: List[Dict[int, int]] = []
        self.arch_snapshots: List[List[Tuple[int, int, List[int]]]] = []
        self.steps = 0
        self.n_instructions = 0
        self.ecc_lookup_hits = 0
        self._active = True
        self._corrupt_entries: Set[int] = set()
        # Advisory heartbeat channel (repro.obs.telemetry): sampled once
        # here so a disabled campaign pays a single module-global read.
        self._telemetry = _telemetry_mod.telemetry_active()

    # -- the store path ------------------------------------------------------
    def _on_store(self, ev) -> None:
        if not self._active:  # post-recovery resume: machinery is done
            return
        if not self.directory.test_and_set_log(ev.address):
            entry = None
            if self.handler is not None:
                entry = self.handler.may_omit(ev.thread, ev.address)
                if entry is not None and id(entry) in self._corrupt_entries:
                    # ECC over the operand snapshot detects the flipped
                    # word at lookup: the association is refused (and
                    # conservatively masked) and the store logs normally,
                    # so recovery never executes a corrupt Slice.
                    self.ecc_lookup_hits += 1
                    self.handler.addrmaps[ev.thread].invalidate(ev.address)
                    entry = None
            if entry is not None:
                self.store.current_log.add_omitted(
                    ev.address, entry, ev.thread, ev.old_value
                )
            else:
                self.store.current_log.add_record(
                    ev.address, ev.old_value, ev.thread
                )
        if self.handler is not None:
            self.handler.on_store(ev.thread, ev.site, ev.address, ev.regs)

    # -- stepping ------------------------------------------------------------
    @property
    def all_done(self) -> bool:
        return all(it.done for it in self.interpreters)

    def step(self) -> None:
        for it in self.interpreters:
            if not it.done:
                chunk = it.step_iterations(self.spec.iters_per_step)
                self.n_instructions += chunk.instructions
        self.steps += 1

    def at_boundary(self) -> bool:
        return self.steps % self.spec.steps_per_interval == 0

    def checkpoint(self) -> None:
        """Establish the next checkpoint (boundary protocol)."""
        time = self.steps / self.spec.steps_per_interval
        if self._telemetry:
            _telemetry_mod.emit(
                TaskHeartbeat,
                interval=self.store.count,
                instructions=self.n_instructions,
            )
        if self.capture_memory:
            self.snapshots.append(self.memory.snapshot())
        self.arch_snapshots.append(
            [it.arch_state() for it in self.interpreters]
        )
        self.store.establish(time, time)
        self.directory.clear_log_bits()
        if self.handler is not None:
            self.handler.on_checkpoint()

    def run_to_end(self) -> None:
        """The golden pass: run error-free, checkpointing on schedule."""
        while not self.all_done:
            self.step()
            if self.at_boundary() and not self.all_done:
                self.checkpoint()

    def resume_to_end(self) -> None:
        """Post-recovery: run out the program, machinery disabled."""
        self._active = False
        for it in self.interpreters:
            while not it.done:
                it.step_iterations(1 << 20)

    # -- snapshot / fork -----------------------------------------------------
    def snapshot(
        self, rng_states: Optional[Dict[str, Any]] = None
    ) -> SimSnapshot:
        """Capture complete functional state as pure data.

        Every AddrMap entry *object* becomes one entry-table row keyed
        by ``id()``; logs and generations reference rows by index, so
        the shared-vs-distinct identity graph (which the injector's
        candidate selection and ``swap_committed`` depend on) survives
        serialization.  ``rng_states`` lets callers ride their stream
        positions along (label → :meth:`DeterministicRng.getstate`).
        """
        entry_index: Dict[int, int] = {}
        entry_rows: List[List[Any]] = []

        def eid(core: int, entry: AddrMapEntry) -> int:
            got = entry_index.get(id(entry))
            if got is None:
                got = len(entry_rows)
                entry_index[id(entry)] = got
                entry_rows.append(
                    [core, entry.slice_.site, entry.address,
                     list(entry.operands)]
                )
            return got

        def log_doc(log: IntervalLog) -> Dict[str, Any]:
            return {
                "interval": log.interval_index,
                "records": [[r.address, r.old_value, r.core]
                            for r in log.records],
                "omitted": [[o.address, eid(o.core, o.entry), o.core,
                             o.ground_truth_old_value]
                            for o in log.omitted],
            }

        addrmaps = operand_buffers = gen_words = handler_counters = None
        if self.handler is not None:
            def gen_doc(core: int, gen: Any) -> Dict[str, Any]:
                return {
                    "entries": [[a, eid(core, e)]
                                for a, e in gen.entries.items()],
                    "tombstones": sorted(gen.tombstones),
                }

            addrmaps = []
            for core, addrmap in enumerate(self.handler.addrmaps):
                open_gen, committed = addrmap.internal_state()
                addrmaps.append({
                    "open": gen_doc(core, open_gen),
                    "committed": [gen_doc(core, g) for g in committed],
                    "records": addrmap.records,
                    "rejections": addrmap.rejections,
                })
            operand_buffers = [
                {"words": b.words, "peak_words": b.peak_words,
                 "rejections": b.rejections}
                for b in self.handler.operand_buffers
            ]
            gen_words = [list(w) for w in self.handler.generation_words()]
            handler_counters = {
                "assoc_executed": self.handler.assoc_executed,
                "omissions": self.handler.omissions,
                "omission_lookups": self.handler.omission_lookups,
            }
        open_log = log_doc(self.store.current_log)
        checkpoints = [
            {
                "index": c.index,
                "useful_ns": c.useful_ns,
                "wall_ns": c.wall_ns,
                "arch_bytes": c.arch_bytes,
                "participants": (None if c.participants is None
                                 else sorted(c.participants)),
                "log": log_doc(c.log),
                "data_bytes": c.data_bytes,
                "omitted_bytes": c.omitted_bytes,
            }
            for c in self.store.checkpoints
        ]
        return SimSnapshot(
            memory_seed=self.memory.seed,
            memory_words=[[a, v] for a, v in self.memory.snapshot().items()],
            step=self.steps,
            n_instructions=self.n_instructions,
            ecc_lookup_hits=self.ecc_lookup_hits,
            directory_log_bits=sorted(self.directory.log_bit_set()),
            entries=entry_rows,
            open_log=open_log,
            checkpoints=checkpoints,
            addrmaps=addrmaps,
            operand_buffers=operand_buffers,
            gen_words=gen_words,
            handler_counters=handler_counters,
            arch=[[k, i, list(r)] for k, i, r in
                  (it.arch_state() for it in self.interpreters)],
            initial_arch=[[k, i, list(r)] for k, i, r in self.initial_arch],
            arch_history=[
                [[k, i, list(r)] for k, i, r in states]
                for states in self.arch_snapshots
            ],
            rng_states=dict(rng_states or {}),
        )

    def restore_snapshot(self, snap: SimSnapshot) -> None:
        """Install ``snap`` into this (freshly built) pass.

        The pass must have been built from the same recipe the snapshot
        was captured under — programs and Slices are *rehydrated* from
        this pass's deterministic compile, never deserialized.  Raises
        :class:`SnapshotError` when the snapshot does not fit.
        """
        if snap.memory_seed != self.memory.seed:
            raise SnapshotError(
                f"snapshot memory seed {snap.memory_seed} != pass seed "
                f"{self.memory.seed}"
            )
        n_cores = len(self.interpreters)
        for name in ("arch", "initial_arch"):
            if len(getattr(snap, name)) != n_cores:
                raise SnapshotError(
                    f"snapshot {name} covers {len(getattr(snap, name))} "
                    f"cores, this pass has {n_cores}"
                )
        if self.handler is None and snap.addrmaps is not None:
            raise SnapshotError(
                "snapshot carries ACR handler state but this "
                "configuration has no handler"
            )
        entries: List[AddrMapEntry] = []
        for row in snap.entries:
            core, site, address, operands = row
            if self.handler is None:
                raise SnapshotError(
                    "snapshot carries AddrMap entries but this "
                    "configuration has no ACR handler"
                )
            if not isinstance(core, int) or not 0 <= core < n_cores:
                raise SnapshotError(f"entry references bad core {core!r}")
            sl = self.handler.site_slice_map(core).get(site)
            if sl is None:
                raise SnapshotError(
                    f"snapshot references unknown slice site {site} "
                    f"on core {core}"
                )
            entries.append(AddrMapEntry(address, sl, tuple(operands)))

        def entry_at(idx: Any) -> AddrMapEntry:
            if (isinstance(idx, bool) or not isinstance(idx, int)
                    or not 0 <= idx < len(entries)):
                raise SnapshotError(f"bad entry reference {idx!r}")
            return entries[idx]

        def build_log(doc: Dict[str, Any]) -> IntervalLog:
            log = IntervalLog(doc["interval"])
            log.records.extend(
                LogRecord(a, v, c) for a, v, c in doc["records"]
            )
            log.omitted.extend(
                OmittedRecord(a, entry_at(e), c, t)
                for a, e, c, t in doc["omitted"]
            )
            return log

        self.memory.restore({a: v for a, v in snap.memory_words})
        self.store.checkpoints = [
            Checkpoint(
                index=d["index"],
                useful_ns=d["useful_ns"],
                wall_ns=d["wall_ns"],
                arch_bytes=d["arch_bytes"],
                participants=(None if d["participants"] is None
                              else frozenset(d["participants"])),
                log=build_log(d["log"]),
                data_bytes=d["data_bytes"],
                omitted_bytes=d["omitted_bytes"],
            )
            for d in snap.checkpoints
        ]
        self.store.current_log = build_log(snap.open_log)
        bits = self.directory.log_bit_set()
        bits.clear()
        bits.update(snap.directory_log_bits)
        if self.handler is not None:
            if snap.addrmaps is None:
                raise SnapshotError(
                    "snapshot has no AddrMap state for an ACR configuration"
                )
            if len(snap.addrmaps) != n_cores:
                raise SnapshotError(
                    f"snapshot AddrMap state covers {len(snap.addrmaps)} "
                    f"cores, this pass has {n_cores}"
                )

            def build_gen(doc: Dict[str, Any]) -> Any:
                return make_generation(
                    [(a, entry_at(e)) for a, e in doc["entries"]],
                    set(doc["tombstones"]),
                )

            for core in range(n_cores):
                doc = snap.addrmaps[core]
                addrmap = self.handler.addrmaps[core]
                addrmap.restore_generations(
                    build_gen(doc["open"]),
                    [build_gen(g) for g in doc["committed"]],
                )
                addrmap.records = doc["records"]
                addrmap.rejections = doc["rejections"]
                buf = self.handler.operand_buffers[core]
                bdoc = snap.operand_buffers[core]
                buf.words = bdoc["words"]
                buf.peak_words = bdoc["peak_words"]
                buf.rejections = bdoc["rejections"]
            self.handler.restore_generation_words(snap.gen_words)
            counters = snap.handler_counters
            self.handler.assoc_executed = counters["assoc_executed"]
            self.handler.omissions = counters["omissions"]
            self.handler.omission_lookups = counters["omission_lookups"]
        for it, row in zip(self.interpreters, snap.arch):
            it.adopt_arch_state((row[0], row[1], list(row[2])))
        self.initial_arch = [
            (k, i, list(r)) for k, i, r in snap.initial_arch
        ]
        self.arch_snapshots = [
            [(k, i, list(r)) for k, i, r in states]
            for states in snap.arch_history
        ]
        self.snapshots = []
        self.steps = snap.step
        self.n_instructions = snap.n_instructions
        self.ecc_lookup_hits = snap.ecc_lookup_hits
        self._corrupt_entries = set()

    # -- injection -----------------------------------------------------------
    def inject(self, rng: DeterministicRng, requested: str) -> Injection:
        """Flip one bit per the requested target, falling back along
        ``requested → mem → arch`` when a target is not viable here."""
        chain = [requested] + [k for k in ("mem", "arch") if k != requested]
        for kind in chain:
            inj = getattr(self, f"_inject_{kind}")(rng)
            if inj is not None:
                return replace(inj, requested=requested)
        raise ValueError(
            "no viable injection target (workload produced no state?)"
        )

    def _inject_mem(self, rng: DeterministicRng) -> Optional[Injection]:
        log = self.store.current_log
        covered = {r.address for r in log.records}
        covered.update(o.address for o in log.omitted)
        if not covered:
            return None
        candidates = sorted(covered)
        address = candidates[rng.randint(0, len(candidates) - 1)]
        bit = rng.randint(0, _WORD_BITS - 1)
        before = self.memory.read(address)
        after = before ^ (1 << bit)
        self.memory.write(address, after)  # the fault bypasses the log path
        return Injection(
            requested="", kind="mem", step=self.steps,
            interval=self.store.count, core=MACHINE, address=address,
            register=-1, bit=bit, before=before, after=after,
            detail=f"word covered by open-interval log "
                   f"({len(candidates)} candidates)",
        )

    def _inject_log(self, rng: DeterministicRng) -> Optional[Injection]:
        if not self.store.checkpoints:
            return None
        ckpt = self.store.checkpoints[-1]
        if not ckpt.log.records:
            return None
        idx = rng.randint(0, len(ckpt.log.records) - 1)
        rec = ckpt.log.records[idx]
        bit = rng.randint(0, _WORD_BITS - 1)
        corrupted = rec.old_value ^ (1 << bit)
        # LogRecord is frozen: model the flip by replacing the record in
        # the retained log storage.
        ckpt.log.records[idx] = type(rec)(rec.address, corrupted, rec.core)
        return Injection(
            requested="", kind="log", step=self.steps,
            interval=self.store.count, core=rec.core, address=rec.address,
            register=-1, bit=bit, before=rec.old_value, after=corrupted,
            detail=f"record {idx} of checkpoint {ckpt.index}'s log "
                   f"(retained, never applied)",
        )

    def _inject_addrmap(self, rng: DeterministicRng) -> Optional[Injection]:
        if self.handler is None:
            return None
        # Entries already referenced by an omitted record would feed a
        # corrupt operand straight into an *applied* recomputation whose
        # result can be the oldest write to its address — those model a
        # different (unprotected) failure mode, so the ECC-at-lookup
        # semantics pick among unreferenced entries only.
        used: Set[int] = set()
        for log in self._retained_logs():
            for om in log.omitted:
                used.add(id(om.entry))
        candidates: List[Tuple[int, AddrMapEntry]] = []
        for core, addrmap in enumerate(self.handler.addrmaps):
            for entry in addrmap.committed_entries():
                if id(entry) not in used and entry.operands:
                    candidates.append((core, entry))
        if not candidates:
            return None
        core, entry = candidates[rng.randint(0, len(candidates) - 1)]
        op_index = rng.randint(0, len(entry.operands) - 1)
        bit = rng.randint(0, _WORD_BITS - 1)
        before = entry.operands[op_index]
        after = before ^ (1 << bit)
        operands = tuple(
            after if i == op_index else v
            for i, v in enumerate(entry.operands)
        )
        flipped = AddrMapEntry(entry.address, entry.slice_, operands)
        if not self.handler.addrmaps[core].swap_committed(entry, flipped):
            return None
        self._corrupt_entries.add(id(flipped))
        return Injection(
            requested="", kind="addrmap", step=self.steps,
            interval=self.store.count, core=core, address=entry.address,
            register=-1, bit=bit, before=before, after=after,
            detail=f"operand {op_index} of slice site "
                   f"{entry.slice_.site} (committed generation)",
        )

    def _inject_arch(self, rng: DeterministicRng) -> Optional[Injection]:
        live = [i for i, it in enumerate(self.interpreters) if not it.done]
        if not live:
            return None
        core = live[rng.randint(0, len(live) - 1)]
        kernel, iteration, regs = self.interpreters[core].arch_state()
        if not regs:
            return None
        register = rng.randint(0, len(regs) - 1)
        bit = rng.randint(0, _WORD_BITS - 1)
        before = regs[register]
        after = before ^ (1 << bit)
        regs[register] = after
        self.interpreters[core].restore_arch_state((kernel, iteration, regs))
        return Injection(
            requested="", kind="arch", step=self.steps,
            interval=self.store.count, core=core, address=-1,
            register=register, bit=bit, before=before, after=after,
            detail=f"r{register} at kernel {kernel} iteration {iteration}",
        )

    def _retained_logs(self) -> List[IntervalLog]:
        logs = [self.store.current_log]
        logs.extend(c.log for c in self.store.checkpoints)
        return logs

    # -- recovery ------------------------------------------------------------
    def restore_arch(self, safe_index: int) -> None:
        states = (
            self.arch_snapshots[safe_index]
            if safe_index >= 0
            else self.initial_arch
        )
        for it, state in zip(self.interpreters, states):
            it.restore_arch_state(state)

    def apply_rollback(
        self, logs: Sequence[IntervalLog], defect: Optional[str]
    ) -> str:
        """Apply the rollback — production path, or a seeded defect.

        Returns a description of the sabotage performed ("" for the
        production path) so divergence reports carry its provenance.
        """
        if defect is None:
            self.engine.apply_rollback(self.memory, logs)
            return ""
        if defect == "misorder-logs":
            self.engine.apply_rollback(self.memory, list(reversed(logs)))
            return "defect: logs applied oldest-first"
        if defect == "skip-recompute":
            # Skip the first omitted record of the *oldest* applied log:
            # no older log overwrites its address, so the skipped
            # recomputation is load-bearing.
            skip = None
            for log in reversed(logs):
                if log.omitted:
                    skip = log.omitted[0]
                    break
            for log in logs:
                for rec in log.records:
                    self.memory.write(rec.address, rec.old_value)
                for om in log.omitted:
                    if om is skip:
                        continue
                    value = om.entry.slice_.execute(om.entry.operands)
                    self.memory.write(om.address, value)
            if skip is None:
                return "defect: skip-recompute (no omitted records in scope)"
            return (
                f"defect: skipped recompute of address {skip.address:#x}"
            )
        raise ValueError(f"unknown defect {defect!r}")


def _diff_memory(
    expected: Dict[int, int],
    memory: MemoryImage,
    phase: str,
    interval: int,
) -> Tuple[int, int, List[Divergence]]:
    """Semantic bit-exact compare: (addresses checked, mismatches, sample).

    ``expected`` is a golden ``MemoryImage.snapshot()``; addresses absent
    on either side compare at their deterministic initial value (both
    images share the seed), so materialised-but-unchanged words are not
    false divergences.
    """
    actual = memory.snapshot()
    addresses = sorted(set(expected) | set(actual))
    count = 0
    sample: List[Divergence] = []
    for address in addresses:
        want = expected.get(address)
        if want is None:
            want = memory.initial_value(address)
        got = actual.get(address)
        if got is None:
            got = memory.initial_value(address)
        if want != got:
            count += 1
            if len(sample) < MAX_REPORTED_DIVERGENCES:
                sample.append(
                    Divergence(phase, address, interval, want, got)
                )
    return len(addresses), count, sample


def _record_vector_coverage(
    metrics: MetricsRegistry, passes: Sequence[_MechanismPass]
) -> None:
    """Fold VectorInterpreter coverage counters into the registry.

    No-op under the classic engine (plain interpreters carry no
    coverage attributes).  Fallbacks are keyed by denial reason
    (``ACR009``–``ACR012``, or ``observed-loads`` when a load observer
    forced the classic loop).
    """
    replayed = fallback = 0
    reasons: Dict[str, int] = {}
    for p in passes:
        for it in p.interpreters:
            counted = getattr(it, "replayed_iterations", None)
            if counted is None:
                return
            replayed += counted
            fallback += it.fallback_iterations
            for reason, n in it.fallback_reasons.items():
                reasons[reason] = reasons.get(reason, 0) + n
    metrics.counter("vector.replayed_iterations").inc(replayed)
    metrics.counter("vector.fallback_iterations").inc(fallback)
    for reason, n in sorted(reasons.items()):
        metrics.counter(f"vector.fallback.{reason}").inc(n)
    total = replayed + fallback
    if total:
        metrics.histogram("vector.coverage").observe(replayed / total)


#: TrialSpec fields that determine the compiled workload (programs,
#: slice tables, machine config) — injection schedule fields excluded.
_COMPILE_FIELDS = (
    "workload", "config", "num_cores", "region_scale", "reps", "threshold",
)

#: Compile fields plus the execution grid and initial memory contents:
#: everything that determines the golden (error-free) pass.  The trial
#: randomisation fields (``seed``/``target``/``detection_latency_fraction``
#: /``defect``) are deliberately excluded, so every trial of one
#: (workload, config) recipe shares a single golden run.
_GOLDEN_FIELDS = _COMPILE_FIELDS + (
    "steps_per_interval", "iters_per_step", "memory_seed",
)

#: In-process memo caps.  A campaign rotates a handful of (workload,
#: config) recipes; workers keep their own module-global memos.
_MEMO_CAP = 8

_COMPILED_MEMO: Dict[
    Tuple,
    Tuple[List[Program], Optional[List[SliceTable]], MachineConfig],
] = {}
_GOLDEN_MEMO: Dict[Tuple[str, str], "GoldenRun"] = {}


def _memo_put(memo: Dict, key: Any, value: Any) -> None:
    while len(memo) >= _MEMO_CAP:
        memo.pop(next(iter(memo)))
    memo[key] = value


def _compiled(
    spec: TrialSpec,
) -> Tuple[List[Program], Optional[List[SliceTable]], MachineConfig]:
    """The compiled workload for ``spec``, memoized across trials.

    Compilation is deterministic, and plans/op-caches attach to the
    ``Program`` objects, so sharing them across the trials of one
    campaign recipe is both sound and the point: a fork never recompiles.
    """
    key = tuple(getattr(spec, name) for name in _COMPILE_FIELDS)
    hit = _COMPILED_MEMO.get(key)
    if hit is not None:
        return hit
    workload = get_workload(spec.workload)
    programs = workload.build_programs(
        spec.num_cores, region_scale=spec.region_scale, reps=spec.reps
    )
    config = MachineConfig(num_cores=spec.num_cores)
    slice_tables = None
    if spec.config == "ACR":
        threshold = (
            spec.threshold
            if spec.threshold is not None
            else workload.default_threshold
        )
        compiled = [
            compile_program(p, ThresholdPolicy(threshold)) for p in programs
        ]
        programs = [c.program for c in compiled]
        slice_tables = [c.slices for c in compiled]
    value = (programs, slice_tables, config)
    _memo_put(_COMPILED_MEMO, key, value)
    return value


def _build_passes(
    spec: TrialSpec,
    engine: str = "interp",
) -> Tuple["_MechanismPass", "_MechanismPass"]:
    """Build the golden and faulty passes from one compiled workload."""
    programs, slice_tables, config = _compiled(spec)
    golden = _MechanismPass(spec, programs, slice_tables, config, engine)
    faulty = _MechanismPass(
        spec, programs, slice_tables, config, engine, capture_memory=False
    )
    return golden, faulty


def golden_key(spec: TrialSpec, engine: str = "interp") -> str:
    """Content address of a golden run: recipe + engine + format version.

    The engine is part of the key even though results are bit-identical
    across engines — sharing snapshots *across* engines would let the
    snapshot store mask a cross-engine divergence the equivalence suite
    exists to catch.
    """
    doc = {
        "engine": engine,
        "snapshot_version": SNAPSHOT_VERSION,
        "spec": {name: getattr(spec, name) for name in _GOLDEN_FIELDS},
    }
    text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class GoldenRun:
    """One golden pass, snapshotted at every interval boundary.

    ``boundaries[m]`` is the state at step ``m * steps_per_interval``
    (``boundaries[0]`` is the initial state, later entries land right
    after each checkpoint establishment); a faulty pass injecting at
    step ``s`` forks from ``boundaries[s // steps_per_interval]``, the
    newest boundary at or before the injection.  The memory expectation
    of a rollback to checkpoint ``k`` is ``boundaries[k + 1]``'s memory
    image, and ``final_words`` is the golden end state.
    """

    total_steps: int
    final_words: List[List[int]]
    boundaries: List[SimSnapshot]

    def to_payload(self) -> Dict[str, Any]:
        return {
            "v": SNAPSHOT_VERSION,
            "total_steps": self.total_steps,
            "final_words": self.final_words,
            "boundaries": [b.to_payload() for b in self.boundaries],
        }

    @classmethod
    def from_payload(cls, doc: Any) -> "GoldenRun":
        if not isinstance(doc, dict):
            raise SnapshotError("golden-run payload is not an object")
        expected = {"v", "total_steps", "final_words", "boundaries"}
        if set(doc) != expected:
            raise SnapshotError(
                f"golden-run payload fields {sorted(doc)} != "
                f"{sorted(expected)}"
            )
        if doc["v"] != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"golden-run payload version {doc['v']!r} != "
                f"{SNAPSHOT_VERSION}"
            )
        total_steps = doc["total_steps"]
        if isinstance(total_steps, bool) or not isinstance(total_steps, int):
            raise SnapshotError("golden-run total_steps must be an int")
        if not isinstance(doc["boundaries"], list) or not doc["boundaries"]:
            raise SnapshotError("golden-run boundaries must be non-empty")
        return cls(
            total_steps=total_steps,
            final_words=doc["final_words"],
            boundaries=[
                SimSnapshot.from_payload(b) for b in doc["boundaries"]
            ],
        )

    def to_bytes(self) -> bytes:
        from repro.sim.snapshot import encode_payload

        return encode_payload(self.to_payload())

    @classmethod
    def from_bytes(cls, blob: bytes) -> "GoldenRun":
        from repro.sim.snapshot import decode_payload

        return cls.from_payload(decode_payload(blob))


def run_golden(spec: TrialSpec, engine: str = "interp") -> GoldenRun:
    """Execute the error-free pass once, snapshotting every boundary."""
    programs, slice_tables, config = _compiled(spec)
    golden = _MechanismPass(
        spec, programs, slice_tables, config, engine, capture_memory=False
    )
    boundaries = [golden.snapshot()]
    while not golden.all_done:
        golden.step()
        if golden.at_boundary() and not golden.all_done:
            golden.checkpoint()
            boundaries.append(golden.snapshot())
    return GoldenRun(
        total_steps=golden.steps,
        final_words=[[a, v] for a, v in golden.memory.snapshot().items()],
        boundaries=boundaries,
    )


def _golden_for(
    spec: TrialSpec,
    engine: str,
    store: Optional[SnapshotStore],
) -> GoldenRun:
    """Layered golden-run resolution: memo → snapshot store → execute.

    A corrupt stored blob is quarantined and recomputed (the result
    cache's contract); store writes are atomic and idempotent, so
    concurrent workers racing on one key are harmless.
    """
    key = golden_key(spec, engine)
    memo_key = (key, engine)
    hit = _GOLDEN_MEMO.get(memo_key)
    if hit is not None:
        return hit
    if store is not None:
        blob = store.load(key)
        if blob is not None:
            try:
                run = GoldenRun.from_bytes(blob)
            except SnapshotError:
                store.quarantine(key)
            else:
                _memo_put(_GOLDEN_MEMO, memo_key, run)
                return run
    run = run_golden(spec, engine)
    if store is not None:
        store.save(key, run.to_bytes())
    _memo_put(_GOLDEN_MEMO, memo_key, run)
    return run


def fork(
    spec: TrialSpec,
    snapshot: SimSnapshot,
    n: int = 1,
    engine: str = "interp",
) -> List["_MechanismPass"]:
    """``n`` independent passes resumed from one boundary snapshot.

    Each fork gets its own memory image, checkpoint store, directory,
    handler and interpreters (no shared mutable state between forks),
    but programs and Slices come from the shared deterministic compile
    — forking is O(state size), never O(simulated work).
    """
    check_positive("n", n)
    programs, slice_tables, config = _compiled(spec)
    forks = []
    for _ in range(n):
        child = _MechanismPass(
            spec, programs, slice_tables, config, engine,
            capture_memory=False,
        )
        child.restore_snapshot(snapshot)
        forks.append(child)
    return forks


def run_trial(
    spec: TrialSpec,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    engine: str = "interp",
    snapshots: bool = False,
    snapshot_store: Optional[SnapshotStore] = None,
) -> TrialResult:
    """Execute one fault-injection trial; see the module doc for shape.

    ``engine`` selects the interpreter flavour for both passes; like the
    simulator's knob it never reaches the trial cache key — results are
    bit-identical across engines (pinned by the equivalence suite).

    ``snapshots=True`` switches to the forked execution plan: the golden
    pass for this recipe runs (at most) once — resolved through the
    in-process memo and optional ``snapshot_store`` — with a boundary
    snapshot per interval, and the faulty pass *forks* from the newest
    boundary at or before the injection step instead of replaying from
    step zero.  The flag is an execution-plan knob like ``engine``:
    results are bit-identical either way (pinned by the fork-equivalence
    suite), so it never reaches the trial cache key.
    """
    golden: Optional[_MechanismPass] = None
    golden_run: Optional[GoldenRun] = None
    if snapshots:
        golden_run = _golden_for(spec, engine, snapshot_store)
        total_steps = golden_run.total_steps
    else:
        golden, faulty = _build_passes(spec, engine)
        golden.run_to_end()
        total_steps = golden.steps
    if total_steps < 2:
        raise ValueError(
            f"workload {spec.workload!r} too short to inject into "
            f"({total_steps} steps) — lower iters_per_step"
        )
    golden_final = (
        {a: v for a, v in golden_run.final_words}
        if golden_run is not None
        else golden.memory.snapshot()
    )

    spi = spec.steps_per_interval
    rng = DeterministicRng(spec.seed, "inject")
    injection_step = rng.randint(1, total_steps - 1)
    if golden_run is not None:
        # Fork from the newest boundary at or before the injection: the
        # prefix up to there is bit-identical by determinism, so only
        # the tail from the fork point is ever re-executed.
        faulty = fork(
            spec, golden_run.boundaries[injection_step // spi],
            engine=engine,
        )[0]
    # The flip lands strictly inside its interval (mid-step), so the
    # occurrence never coincides with a checkpoint establishment — the
    # boundary tie-break is pinned by dedicated unit tests instead.
    occurred = (injection_step + 0.5) / spi
    model = ErrorModel(spec.detection_latency_fraction)
    detected = model.occurrence(occurred, 1.0).detected_ns
    detection_step = int(math.ceil(detected * spi - 1e-9))
    detection_step = max(injection_step + 1, min(total_steps, detection_step))
    # Like the simulator, detection clamps to the end of execution.
    detected = min(detected, total_steps / spi)
    occurrence = ErrorOccurrence(occurred, detected)

    tracer = tracer if (tracer is not None and tracer.enabled) else None
    injection: Optional[Injection] = None
    while not faulty.all_done:
        if faulty.steps == injection_step:
            injection = faulty.inject(rng, spec.target)
            if tracer is not None:
                tracer.emit(FaultInjected(
                    ts_ns=occurred, core=injection.core,
                    target=injection.kind, address=injection.address,
                    bit=injection.bit,
                ))
            if metrics is not None:
                metrics.counter("inject.faults").inc()
                metrics.counter(f"inject.target.{injection.kind}").inc()
        faulty.step()
        if injection is not None and faulty.steps == detection_step:
            break
        if faulty.at_boundary() and not faulty.all_done:
            faulty.checkpoint()
    assert injection is not None  # injection_step < total_steps

    # -- detection → safe-checkpoint selection → rollback ------------------
    checkpoint_times = [c.useful_ns for c in faulty.store.checkpoints]
    choice = choose_safe_checkpoint(occurrence, checkpoint_times)
    safe = choice.checkpoint_index

    def _result(
        outcome: str,
        restored: int = 0,
        recomputed: int = 0,
        checked: int = 0,
        count: int = 0,
        sample: Sequence[Divergence] = (),
        detail: str = "",
    ) -> TrialResult:
        if metrics is not None:
            metrics.counter("inject.trials").inc()
            metrics.counter(
                "inject." + outcome.replace("-", "_")
            ).inc()
            if faulty.ecc_lookup_hits:
                metrics.counter("inject.ecc_lookup_hits").inc(
                    faulty.ecc_lookup_hits
                )
            passes = (faulty,) if golden is None else (golden, faulty)
            _record_vector_coverage(metrics, passes)
        return TrialResult(
            spec=spec,
            outcome=outcome,
            injection=injection,
            occurred=occurred,
            detected=detected,
            injection_step=injection_step,
            detection_step=detection_step,
            steps=total_steps,
            checkpoints=len(checkpoint_times),
            safe_checkpoint=safe,
            skipped_corrupted=choice.skipped_corrupted,
            restored_records=restored,
            recomputed_values=recomputed,
            ecc_lookup_hits=faulty.ecc_lookup_hits,
            addresses_checked=checked,
            divergence_count=count,
            divergences=tuple(sample),
            detail=detail,
        )

    try:
        logs = faulty.store.logs_to_rollback(safe)
    except ValueError as exc:
        return _result("unrecoverable", detail=str(exc))

    defect_note = faulty.apply_rollback(logs, spec.defect)
    restored = sum(len(log.records) for log in logs)
    recomputed = sum(len(log.omitted) for log in logs)
    if golden_run is not None:
        expected = (
            {a: v for a, v in golden_run.boundaries[safe + 1].memory_words}
            if safe >= 0
            else {}
        )
    else:
        expected = golden.snapshots[safe] if safe >= 0 else {}
    checked, count, sample = _diff_memory(
        expected, faulty.memory, "rollback", safe
    )

    # -- resume from the recovery line and re-verify at program end --------
    faulty.restore_arch(safe)
    faulty.resume_to_end()
    final_checked, final_count, final_sample = _diff_memory(
        golden_final, faulty.memory, "final", -1
    )
    checked += final_checked
    count += final_count
    sample = (sample + final_sample)[:MAX_REPORTED_DIVERGENCES]

    if tracer is not None:
        if count == 0:
            tracer.emit(RecoveryVerified(
                ts_ns=detected, core=MACHINE,
                safe_checkpoint=safe, addresses_checked=checked,
            ))
        else:
            for div in sample:
                tracer.emit(RecoveryDiverged(
                    ts_ns=detected, core=MACHINE, address=div.address,
                    interval=div.interval, expected=div.expected,
                    actual=div.actual,
                ))
    if metrics is not None:
        metrics.histogram("inject.restored_records").observe(restored)
        metrics.histogram("inject.recomputed_values").observe(recomputed)

    outcome = "recovered-exact" if count == 0 else "diverged"
    return _result(
        outcome, restored, recomputed, checked, count, sample, defect_note
    )
