"""Campaign service test suite."""
