"""Paper table generators (Tables I and II).

Named ``tables_`` (trailing underscore) to avoid shadowing
:mod:`repro.util.tables`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.arch.config import MachineConfig
from repro.experiments.configs import ConfigRequest
from repro.experiments.figures import FigureResult, _pct
from repro.experiments.runner import ExperimentRunner

__all__ = ["table1_configuration", "table2_threshold_sweep", "PAPER_TABLE2"]

#: The paper's Table II (total checkpoint-size reduction %, thresholds
#: 10..50) — kept here so reports can print paper-vs-measured side by side.
PAPER_TABLE2: Dict[str, Sequence[float]] = {
    "bt": (36.54, 45.14, 85.36, 88.36, 89.91),
    "cg": (6.99, 67.06, 89.71, 89.82, 89.82),
    "ft": (23.27, 70.65, 88.45, 99.53, 99.70),
    "is": (97.39, 97.42, 99.54, 99.54, 99.54),
    "lu": (42.69, 46.65, 64.43, 74.69, 81.11),
    "mg": (11.58, 19.65, 87.96, 90.34, 90.22),
    "sp": (37.43, 47.93, 71.83, 93.83, 96.08),
}


def table1_configuration(config: MachineConfig | None = None) -> str:
    """Table I: the simulated architecture."""
    return (config or MachineConfig()).describe()


def table2_threshold_sweep(
    runner: ExperimentRunner, thresholds: Sequence[int] = (10, 20, 30, 40, 50)
) -> FigureResult:
    """Table II: total checkpoint-size reduction vs Slice-length threshold.

    Reduction must be non-decreasing in the threshold (a higher threshold
    embeds a superset of slices) — a property test pins this.
    """
    rows: List[List[object]] = []
    series: Dict[str, List[float]] = {}
    for wl in runner.workloads():
        ck = runner.run_default(wl, "Ckpt_NE")
        reductions = []
        for thr in thresholds:
            re = runner.run(wl, ConfigRequest("ReCkpt_NE", threshold=thr))
            reductions.append(
                1 - re.total_checkpoint_bytes / ck.total_checkpoint_bytes
            )
        series[wl] = reductions
        row: List[object] = [wl] + [_pct(r) for r in reductions]
        paper = PAPER_TABLE2.get(wl)
        row.append(" ".join(f"{v:.1f}" for v in paper) if paper else "n/a")
        rows.append(row)
    return FigureResult(
        name="Table II: checkpoint size reduction vs Slice-length threshold",
        headers=["bench"]
        + [f"thr={t} %" for t in thresholds]
        + ["paper (10..50)"],
        rows=rows,
        series=series,
    )
