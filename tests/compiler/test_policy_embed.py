"""Tests for repro.compiler.policy, costmodel and embed."""

import pytest

from repro.compiler.costmodel import RecomputeCostModel
from repro.compiler.embed import compile_program
from repro.compiler.policy import CostModelPolicy, ThresholdPolicy
from repro.compiler.slices import Slice
from repro.isa.builder import chain_kernel
from repro.isa.instructions import AddressPattern, MoviInstr, StoreInstr
from repro.isa.program import Program

STORE = AddressPattern(0, 1, 8)
INPUT = AddressPattern(4096, 1, 8)


def slice_of_length(n, frontier=1):
    instrs = tuple(MoviInstr(i, i) for i in range(n))
    # A zero-length slice is a plain copy of its first operand.
    result = n - 1 if n else 100
    return Slice(0, instrs, tuple(range(100, 100 + frontier)), result)


class TestThresholdPolicy:
    def test_accepts_within_threshold(self):
        p = ThresholdPolicy(10)
        assert p.accept(slice_of_length(10))
        assert p.accept(slice_of_length(1))

    def test_rejects_above_threshold(self):
        assert not ThresholdPolicy(10).accept(slice_of_length(11))

    def test_rejects_trivial(self):
        assert not ThresholdPolicy(10).accept(slice_of_length(0))

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ThresholdPolicy(0)


class TestCostModel:
    def test_short_slice_energy_effective(self):
        m = RecomputeCostModel()
        assert m.is_energy_effective(slice_of_length(5))

    def test_very_long_slice_not_energy_effective(self):
        m = RecomputeCostModel()
        assert not m.is_energy_effective(slice_of_length(200))

    def test_latency_effectiveness_boundary(self):
        m = RecomputeCostModel()
        # latency threshold is dram_latency / alu_latency ≈ 130 instrs
        assert m.is_latency_effective(slice_of_length(100))
        assert not m.is_latency_effective(slice_of_length(200))

    def test_policy_metrics(self):
        sl = slice_of_length(5)
        assert CostModelPolicy(metric="energy").accept(sl)
        assert CostModelPolicy(metric="latency").accept(sl)
        assert CostModelPolicy(metric="both").accept(sl)

    def test_policy_rejects_trivial(self):
        assert not CostModelPolicy().accept(slice_of_length(0))

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            CostModelPolicy(metric="speed")


class TestCompileProgram:
    def make_program(self):
        kernels = [
            chain_kernel("short", STORE, [INPUT], 3, 4),
            chain_kernel("long", AddressPattern(64, 1, 8), [INPUT], 30, 4),
            chain_kernel(
                "copy", AddressPattern(128, 1, 8), [INPUT], 0, 4, copy_store=True
            ),
            chain_kernel(
                "acc", AddressPattern(192, 1, 8), [INPUT], 3, 4, accumulate=True
            ),
        ]
        return Program(kernels)

    def test_default_policy_embeds_short_only(self):
        cp = compile_program(self.make_program())
        assert cp.stats.sites_total == 4
        assert cp.stats.sites_sliceable == 2  # short + long
        assert cp.stats.sites_embedded == 1  # only short (<=10)
        assert cp.stats.sites_trivial == 1
        assert cp.stats.sites_loop_carried == 1
        assert len(cp.slices) == 1

    def test_higher_threshold_embeds_more(self):
        cp = compile_program(self.make_program(), ThresholdPolicy(40))
        assert cp.stats.sites_embedded == 2

    def test_assoc_flags_set_only_on_embedded(self):
        cp = compile_program(self.make_program())
        embedded_sites = set(cp.slices.sites)
        for site_info in cp.program.store_sites:
            store = cp.program.site_store(site_info.site)
            assert store.assoc == (site_info.site in embedded_sites)

    def test_site_ids_stable(self):
        p = self.make_program()
        cp = compile_program(p)
        for a, b in zip(p.store_sites, cp.program.store_sites):
            assert (a.site, a.kernel_index, a.instr_index) == (
                b.site,
                b.kernel_index,
                b.instr_index,
            )

    def test_input_program_not_mutated(self):
        p = self.make_program()
        compile_program(p)
        assert not any(
            ins.assoc
            for k in p.kernels
            for ins in k.body
            if isinstance(ins, StoreInstr)
        )

    def test_coverage_property(self):
        cp = compile_program(self.make_program())
        assert cp.stats.coverage == pytest.approx(0.25)

    def test_embedded_bytes_positive(self):
        cp = compile_program(self.make_program())
        assert cp.stats.embedded_bytes == cp.slices.encoded_bytes > 0

    def test_ghost_alu_preserved(self):
        k = chain_kernel("g", STORE, [INPUT], 3, 4, ghost_alu=50)
        cp = compile_program(Program([k]))
        assert cp.program.kernels[0].ghost_alu == 50
