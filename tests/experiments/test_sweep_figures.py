"""Tests for the sweep figures (11, 12) and scalability generator.

These use a 2-core, tiny-scale runner restricted to two benchmarks so the
sweeps stay fast; the full-scale shape assertions live in benchmarks/.
"""

import pytest

from repro.experiments.figures import (
    fig11_error_sweep,
    fig12_frequency_sweep,
    scalability,
)
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    r = ExperimentRunner(num_cores=2, region_scale=0.1, reps=16)
    r.workloads = lambda: ["bt", "is"]
    return r


class TestFig11:
    def test_structure(self, runner):
        fig = fig11_error_sweep(runner, error_counts=(1, 3))
        assert set(fig.series) == {"bt", "is"}
        for wl, per_n in fig.series.items():
            assert set(per_n) == {1, 3}
            for n in per_n:
                # At this tiny scale with frequent errors, recomputation
                # during recovery can eat most of the checkpoint savings
                # (the paper's own o_rcmp trade-off); ACR must still stay
                # within a few percent of the baseline.
                assert per_n[n]["ReCkpt_E"] <= per_n[n]["Ckpt_E"] * 1.05
        assert "Ckpt 1e %" in fig.render()

    def test_more_errors_cost_more(self, runner):
        fig = fig11_error_sweep(runner, error_counts=(1, 3))
        for wl, per_n in fig.series.items():
            assert per_n[3]["Ckpt_E"] > per_n[1]["Ckpt_E"], wl


class TestFig12:
    def test_structure_and_growth(self, runner):
        fig = fig12_frequency_sweep(runner, counts=(4, 8, 16))
        for wl, per_n in fig.series.items():
            ck = [per_n[n]["Ckpt_NE"] for n in (4, 8, 16)]
            assert ck[0] < ck[-1], wl
            for n in per_n:
                assert per_n[n]["ReCkpt_NE"] <= per_n[n]["Ckpt_NE"] + 1e-9


class TestScalability:
    def test_two_scales(self):
        fig = scalability(
            core_counts=(2, 4),
            region_scale=0.1,
            reps=12,
            workloads=("bt",),
        )
        assert set(fig.series) == {2, 4}
        for cores, per_wl in fig.series.items():
            assert per_wl["bt"]["Ckpt_NE"] > 0
        # The AVG row is present for each core count.
        avg_rows = [r for r in fig.rows if r[1] == "AVG"]
        assert len(avg_rows) == 2
