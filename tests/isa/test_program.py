"""Tests for repro.isa.program."""

import pytest

from repro.isa.builder import KernelBuilder, chain_kernel
from repro.isa.instructions import AddressPattern, StoreInstr
from repro.isa.opcodes import Opcode
from repro.isa.program import Kernel, Program


def simple_kernel(name="k", trip=4, ghost=0):
    b = KernelBuilder(name)
    x = b.load(AddressPattern(1024, 1, 8))
    y = b.movi(7)
    z = b.alu(Opcode.ADD, x, y)
    b.store(z, AddressPattern(0, 1, 8))
    return b.build(trip, ghost_alu=ghost)


class TestKernel:
    def test_counts(self):
        k = simple_kernel()
        assert k.alu_count == 2  # movi + add
        assert k.load_count == 1
        assert k.store_count == 1
        assert k.instructions_per_iteration == 4
        assert k.dynamic_instructions == 16

    def test_ghost_counts(self):
        k = simple_kernel(ghost=10)
        assert k.alu_count == 12
        assert k.instructions_per_iteration == 14
        assert k.dynamic_instructions == 14 * 4

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            Kernel("k", [], 1)

    def test_zero_trip_rejected(self):
        with pytest.raises(ValueError):
            Kernel("k", simple_kernel().body, 0)

    def test_live_in_registers_simple(self):
        k = simple_kernel()
        assert k.live_in_registers() == set()

    def test_live_in_registers_accumulator(self):
        k = chain_kernel(
            "acc",
            AddressPattern(0, 1, 8),
            [AddressPattern(1024, 1, 8)],
            3,
            4,
            accumulate=True,
        )
        assert len(k.live_in_registers()) == 1


class TestProgram:
    def test_site_numbering_across_kernels(self):
        p = Program([simple_kernel("a"), simple_kernel("b")])
        sites = p.store_sites
        assert [s.site for s in sites] == [0, 1]
        assert sites[0].kernel_index == 0
        assert sites[1].kernel_index == 1

    def test_site_store_lookup(self):
        p = Program([simple_kernel()])
        s = p.site_store(0)
        assert isinstance(s, StoreInstr)
        assert s.site == 0

    def test_site_kernel_lookup(self):
        p = Program([simple_kernel("a"), simple_kernel("b")])
        assert p.site_kernel(1).name == "b"

    def test_original_kernels_untouched(self):
        k = simple_kernel()
        Program([k])
        store = [i for i in k.body if isinstance(i, StoreInstr)][0]
        assert store.site == -1  # the input kernel is not mutated

    def test_dynamic_totals(self):
        p = Program([simple_kernel(trip=4), simple_kernel(trip=6)])
        assert p.dynamic_instructions == 16 + 24
        assert p.dynamic_stores == 10

    def test_phases(self):
        k1 = Kernel("a", simple_kernel().body, 2, phase=0)
        k2 = Kernel("b", simple_kernel().body, 2, phase=3)
        assert Program([k1, k2]).phases() == [0, 3]

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            Program([])

    def test_negative_thread_rejected(self):
        with pytest.raises(ValueError):
            Program([simple_kernel()], thread_id=-1)

    def test_iteration_and_len(self):
        p = Program([simple_kernel("a"), simple_kernel("b")])
        assert len(p) == 2
        assert [k.name for k in p] == ["a", "b"]

    def test_multi_store_kernel_sites(self):
        b = KernelBuilder("m")
        x = b.movi(1)
        b.store(x, AddressPattern(0, 1, 8))
        b.store(x, AddressPattern(64, 1, 8))
        p = Program([b.build(2)])
        assert len(p.store_sites) == 2
        assert p.site_store(0).pattern.base == 0
        assert p.site_store(1).pattern.base == 64
