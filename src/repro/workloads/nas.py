"""The eight NAS-like benchmark specifications.

Parameter provenance (all calibrated against the paper):

* ``len_mix`` realises each benchmark's Table-II reduction-vs-threshold
  CDF: the weight of bucket ``[lo, hi]`` approximates the additional
  checkpoint-size reduction gained when the threshold passes ``hi``.
* ``ghost_alu`` sets the compute-to-store-traffic ratio and hence the
  checkpointing-overhead level of Figs. 6/7 (``cg``'s ≈9 % overhead needs
  far more compute per stored word than ``ft``'s, the highest).
* ``sparse_frac`` splits a boundary's cost between dirty-line flushing
  (unaffected by ACR) and old-value logging (eliminated by ACR), which
  caps how much of the overhead ACR can recover.
* ``bursts`` produce the skewed Max checkpoints of Fig. 9: ``is``'s fresh
  copy scatter is huge and never recomputable (Max reduction ≈0 despite
  the highest Overall), ``ft``'s long-slice sweep only becomes omittable
  at thresholds ≥ its slice lengths, ``dc``'s short-slice burst makes its
  largest checkpoint the *most* reducible.
* ``cluster_size`` encodes the communication topology of Fig. 13:
  bt/cg/sp are all-to-all (local checkpointing cannot help), ft pairs up,
  is/mg/dc/lu form small clusters.
* ``is`` uses threshold 5 by default (paper footnote 4).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.spec import BurstSpec, SliceLenBucket, WorkloadSpec

__all__ = ["NAS_BENCHMARKS"]


def _mix(*triples: Tuple[float, int, int]) -> Tuple[SliceLenBucket, ...]:
    return tuple(SliceLenBucket(w, lo, hi) for w, lo, hi in triples)


NAS_BENCHMARKS: Dict[str, WorkloadSpec] = {
    "bt": WorkloadSpec(
        name="bt",
        description="Block tridiagonal solver: wide slice spread, "
        "all-to-all communication.",
        cluster_size=0,
        ghost_alu=25,
        len_mix=_mix(
            (0.38, 2, 10),
            (0.09, 11, 20),
            (0.42, 21, 30),
            (0.03, 31, 40),
            (0.02, 41, 50),
        ),
        copy_frac=0.03,
        accum_frac=0.03,
        sparse_frac=0.5,
        seed=101,
    ),
    "cg": WorkloadSpec(
        name="cg",
        description="Conjugate gradient: compute-dense (lowest checkpoint "
        "overhead), slices mostly 11-20 long, all-to-all.",
        cluster_size=0,
        ghost_alu=420,
        len_mix=_mix(
            (0.07, 2, 10),
            (0.63, 11, 20),
            (0.24, 21, 30),
        ),
        copy_frac=0.03,
        accum_frac=0.03,
        sparse_frac=0.5,
        seed=102,
    ),
    "dc": WorkloadSpec(
        name="dc",
        description="Data cube: short-slice burst makes the largest "
        "checkpoint highly reducible (best Max reduction).",
        cluster_size=3,
        ghost_alu=33,
        len_mix=_mix(
            (0.62, 2, 10),
            (0.12, 11, 20),
            (0.12, 21, 30),
            (0.06, 31, 40),
        ),
        copy_frac=0.04,
        accum_frac=0.04,
        sparse_frac=0.45,
        ramp_start=0.35,
        wave_amp=0.25,
        bursts=(BurstSpec(0.4, 1.0, "widen", passes=12),),
        seed=103,
    ),
    "ft": WorkloadSpec(
        name="ft",
        description="3-D FFT: traffic-dominated (highest checkpoint "
        "overhead); a long-slice burst keeps the Max checkpoint "
        "unreducible below threshold ~40; pairwise communication.",
        cluster_size=2,
        ghost_alu=0,
        region_words=512,
        len_mix=_mix(
            (0.23, 2, 10),
            (0.50, 11, 20),
            (0.16, 21, 30),
            (0.08, 31, 40),
        ),
        copy_frac=0.015,
        accum_frac=0.015,
        sparse_frac=0.65,
        bursts=(BurstSpec(0.45, 1.5, "chain", 32, 40, passes=2, pass_stride=8),),
        seed=104,
    ),
    "is": WorkloadSpec(
        name="is",
        description="Integer sort: almost everything recomputable with "
        "very short slices (threshold capped at 5, footnote 4); one huge "
        "fresh key-scatter forms an unreducible Max checkpoint.",
        default_threshold=5,
        cluster_size=2,
        ghost_alu=52,
        len_mix=_mix(
            (0.78, 2, 5),
            (0.19, 6, 10),
        ),
        copy_frac=0.015,
        accum_frac=0.015,
        sparse_frac=0.3,
        window_noise=0.05,
        ramp_start=0.85,
        wave_amp=0.03,
        bursts=(BurstSpec(0.5, 3.0, "copy", passes=6, exclusive=True),),
        seed=105,
    ),
    "lu": WorkloadSpec(
        name="lu",
        description="LU solver: heavy long-slice tail (reduction keeps "
        "growing past threshold 50).",
        cluster_size=6,
        ghost_alu=31,
        len_mix=_mix(
            (0.425, 2, 10),
            (0.04, 11, 20),
            (0.18, 21, 30),
            (0.10, 31, 40),
            (0.065, 41, 50),
            (0.13, 51, 70),
        ),
        copy_frac=0.03,
        accum_frac=0.03,
        sparse_frac=0.5,
        seed=106,
    ),
    "mg": WorkloadSpec(
        name="mg",
        description="Multigrid: slices concentrated at 21-30 (big Table-II "
        "jump at threshold 30); small communication clusters.",
        cluster_size=3,
        ghost_alu=20,
        len_mix=_mix(
            (0.115, 2, 10),
            (0.08, 11, 20),
            (0.68, 21, 30),
            (0.025, 31, 40),
            (0.02, 41, 50),
        ),
        copy_frac=0.04,
        accum_frac=0.04,
        sparse_frac=0.5,
        seed=107,
    ),
    "sp": WorkloadSpec(
        name="sp",
        description="Scalar pentadiagonal solver: gradual threshold "
        "response, all-to-all communication.",
        cluster_size=0,
        ghost_alu=28,
        len_mix=_mix(
            (0.375, 2, 10),
            (0.105, 11, 20),
            (0.24, 21, 30),
            (0.22, 31, 40),
            (0.023, 41, 50),
        ),
        copy_frac=0.02,
        accum_frac=0.017,
        sparse_frac=0.5,
        seed=108,
    ),
}
