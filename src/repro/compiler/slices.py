"""Executable Slices and the per-binary Slice table.

A :class:`Slice` is the paper's unit of recomputation: a short, pure
ALU/MOVI instruction sequence whose frontier registers (values produced by
loads outside the slice) are supplied from the operand buffer.  Executing a
slice with the operand snapshot captured at ``ASSOC-ADDR`` time must
reproduce the exact value the associated store wrote — tests assert this
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.isa.instructions import AluInstr, MoviInstr
from repro.isa.opcodes import MASK64, apply_alu

__all__ = ["Slice", "SliceTable", "SLICE_INSTR_BYTES"]

#: Encoded size of one slice instruction in the binary (a fixed-width
#: RISC-style encoding), used for the embedded-size overhead statistic.
SLICE_INSTR_BYTES = 4


@dataclass(frozen=True)
class Slice:
    """A backward slice restricted to ALU/MOVI instructions.

    Attributes
    ----------
    site:
        Static store-site id this slice regenerates the value for.
    instructions:
        MOVI/ALU instructions in execution order (original registers).
    frontier:
        Registers whose values are slice inputs (produced by loads outside
        the slice), in ascending register order.  The operand snapshot
        recorded in the AddrMap follows this order.
    result_reg:
        Register whose final value is the recomputed data value.
    """

    site: int
    instructions: Tuple[object, ...]
    frontier: Tuple[int, ...]
    result_reg: int

    def __post_init__(self) -> None:
        """Reject malformed slices at construction time.

        A slice that would only fail inside :meth:`execute` fails during
        *recovery* — the one moment correctness matters most — so the
        checks run when the slice is built instead.
        """
        for pos, ins in enumerate(self.instructions):
            if not isinstance(ins, (AluInstr, MoviInstr)):
                raise ValueError(
                    f"slice for site {self.site}: instruction {pos} is "
                    f"{type(ins).__name__}, not MOVI/ALU"
                )
        if len(set(self.frontier)) != len(self.frontier):
            dupes = sorted(
                {r for r in self.frontier if self.frontier.count(r) > 1}
            )
            raise ValueError(
                f"slice for site {self.site}: duplicate frontier "
                f"register(s) {dupes}"
            )
        defined = set(self.frontier)
        for ins in self.instructions:
            defined.add(ins.dst)
        if self.result_reg not in defined:
            raise ValueError(
                f"slice for site {self.site}: result register "
                f"{self.result_reg} is never defined"
            )

    @property
    def length(self) -> int:
        """Instruction count — the paper's Slice-length metric."""
        return len(self.instructions)

    @property
    def is_trivial(self) -> bool:
        """True when the slice recomputes nothing (a copy of an operand)."""
        return not self.instructions

    @property
    def encoded_bytes(self) -> int:
        """Binary footprint of the embedded slice."""
        return self.length * SLICE_INSTR_BYTES

    def execute(self, operands: Sequence[int]) -> int:
        """Recompute the value from a frontier-operand snapshot.

        ``operands`` must align with :attr:`frontier`.  Executes over a
        private register namespace, so the architectural register file is
        untouched — mirroring the paper's scratchpad discussion.
        """
        if len(operands) != len(self.frontier):
            raise ValueError(
                f"slice for site {self.site} takes {len(self.frontier)} "
                f"operands, got {len(operands)}"
            )
        regs: Dict[int, int] = {
            reg: value & MASK64 for reg, value in zip(self.frontier, operands)
        }
        for ins in self.instructions:
            if isinstance(ins, MoviInstr):
                regs[ins.dst] = ins.imm & MASK64
            elif isinstance(ins, AluInstr):
                regs[ins.dst] = apply_alu(ins.op, regs[ins.src_a], regs[ins.src_b])
            else:  # pragma: no cover - construction prevents this
                raise TypeError(f"illegal instruction in slice: {ins!r}")
        try:
            return regs[self.result_reg]
        except KeyError:
            raise ValueError(
                f"slice for site {self.site} never defines result register "
                f"{self.result_reg}"
            ) from None


class SliceTable:
    """The set of Slices embedded into a binary, keyed by store site."""

    def __init__(self) -> None:
        self._slices: Dict[int, Slice] = {}

    def add(self, sl: Slice) -> None:
        """Register a slice; a site may carry at most one slice."""
        if sl.site in self._slices:
            raise ValueError(f"site {sl.site} already has a slice")
        self._slices[sl.site] = sl

    def get(self, site: int) -> Slice | None:
        """The slice for a site, or ``None`` when the site is uncovered."""
        return self._slices.get(site)

    def __contains__(self, site: int) -> bool:
        return site in self._slices

    def __len__(self) -> int:
        return len(self._slices)

    def __iter__(self) -> Iterator[Slice]:
        return iter(self._slices.values())

    @property
    def sites(self) -> List[int]:
        """Covered site ids, sorted."""
        return sorted(self._slices)

    @property
    def encoded_bytes(self) -> int:
        """Total binary footprint of all embedded slices."""
        return sum(sl.encoded_bytes for sl in self._slices.values())

    def length_histogram(self) -> Dict[int, int]:
        """Map slice length -> number of embedded slices of that length."""
        hist: Dict[int, int] = {}
        for sl in self._slices.values():
            hist[sl.length] = hist.get(sl.length, 0) + 1
        return hist
