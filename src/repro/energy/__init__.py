"""Energy modelling (McPAT substitute).

``model``      — per-event dynamic energies and leakage powers at 22 nm;
``accounting`` — the per-component energy ledger a run accumulates into;
``edp``        — energy-delay-product helpers (paper Figs. 8, §V-D2/3);
``technology`` — technology-scaling error-rate model (paper Fig. 1).

The constants are calibrated to the well-known 22 nm imbalance the paper
builds on (Horowitz ISSCC'14 ballpark): a DRAM access costs ~two orders of
magnitude more energy than an ALU operation, with SRAM in between.  All
paper results are *relative* (overheads and reductions), so only these
ratios matter for reproduction fidelity.
"""

from repro.energy.model import EnergyModel
from repro.energy.accounting import EnergyLedger
from repro.energy.edp import combined_edp_reduction, edp, edp_reduction
from repro.energy.technology import (
    TECHNOLOGY_NODES,
    component_error_rate_series,
    relative_error_rate,
    system_error_probability,
)

__all__ = [
    "EnergyModel",
    "EnergyLedger",
    "edp",
    "edp_reduction",
    "combined_edp_reduction",
    "TECHNOLOGY_NODES",
    "relative_error_rate",
    "component_error_rate_series",
    "system_error_probability",
]
