"""Per-component energy accounting.

A run accumulates picojoules into named buckets (``core.alu``,
``mem.dram``, ``ckpt.log``, …).  Keeping the breakdown rather than a single
scalar lets the reports show *where* ACR saves energy — the checkpoint-log
DRAM traffic — and supports assertions in tests (e.g. ACR never increases
the ``ckpt.log`` bucket).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.util.tables import format_table
from repro.util.validation import check_non_negative

__all__ = ["EnergyLedger"]


class EnergyLedger:
    """Named energy buckets, in picojoules."""

    def __init__(self) -> None:
        self._buckets: Dict[str, float] = {}

    def add(self, bucket: str, pj: float) -> None:
        """Accumulate ``pj`` picojoules into ``bucket``."""
        check_non_negative("pj", pj)
        self._buckets[bucket] = self._buckets.get(bucket, 0.0) + pj

    def get(self, bucket: str) -> float:
        """Energy in one bucket (0 when absent)."""
        return self._buckets.get(bucket, 0.0)

    def total_pj(self, prefix: str = "") -> float:
        """Total energy, optionally restricted to buckets under ``prefix``."""
        if not prefix:
            return sum(self._buckets.values())
        return sum(v for k, v in self._buckets.items() if k.startswith(prefix))

    def merge(self, other: "EnergyLedger") -> None:
        """Fold another ledger into this one."""
        for bucket, pj in other._buckets.items():
            self.add(bucket, pj)

    def buckets(self) -> List[Tuple[str, float]]:
        """(bucket, pJ) pairs, sorted by name."""
        return sorted(self._buckets.items())

    def describe(self) -> str:
        """Render the breakdown as an ASCII table (nanojoules)."""
        rows = [[name, pj / 1e3] for name, pj in self.buckets()]
        rows.append(["TOTAL", self.total_pj() / 1e3])
        return format_table(["bucket", "energy (nJ)"], rows)

    def copy(self) -> "EnergyLedger":
        """An independent copy."""
        clone = EnergyLedger()
        clone._buckets = dict(self._buckets)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EnergyLedger):
            return NotImplemented
        return self._buckets == other._buckets

    # -- serialisation ---------------------------------------------------------
    def to_dict(self) -> Dict[str, float]:
        """JSON-safe bucket mapping (the ledger's full state)."""
        return dict(self._buckets)

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "EnergyLedger":
        """Rebuild a ledger from :meth:`to_dict` output."""
        ledger = cls()
        for bucket, pj in data.items():
            if not isinstance(bucket, str) or not isinstance(pj, (int, float)):
                raise ValueError(f"malformed energy bucket {bucket!r}: {pj!r}")
            ledger._buckets[bucket] = float(pj)
        return ledger
