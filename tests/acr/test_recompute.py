"""Tests for repro.acr.recompute."""

from repro.acr.recompute import RecomputationEngine
from repro.arch.buffers import AddrMapEntry
from repro.compiler.slices import Slice
from repro.isa.instructions import AluInstr, MoviInstr
from repro.isa.opcodes import Opcode


def mul_slice(factor):
    return Slice(
        0,
        (MoviInstr(1, factor), AluInstr(Opcode.MUL, 2, 0, 1)),
        (0,),
        2,
    )


class TestRecomputationEngine:
    def test_recompute_value(self):
        eng = RecomputationEngine()
        assert eng.recompute(mul_slice(3), (7,)) == 21

    def test_stats_accumulate(self):
        eng = RecomputationEngine()
        eng.recompute(mul_slice(3), (1,))
        eng.recompute(mul_slice(3), (2,))
        assert eng.stats.values == 2
        assert eng.stats.instructions == 4
        assert eng.stats.by_length == {2: 2}

    def test_recompute_entry(self):
        eng = RecomputationEngine()
        entry = AddrMapEntry(64, mul_slice(5), (8,))
        addr, value = eng.recompute_entry(entry)
        assert (addr, value) == (64, 40)

    def test_length_histogram_multiple_lengths(self):
        eng = RecomputationEngine()
        long_slice = Slice(
            1,
            tuple(MoviInstr(i, i) for i in range(5)),
            (),
            4,
        )
        eng.recompute(mul_slice(2), (1,))
        eng.recompute(long_slice, ())
        assert eng.stats.by_length == {2: 1, 5: 1}
