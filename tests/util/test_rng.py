"""Tests for repro.util.rng."""

import pytest
from hypothesis import given, strategies as st

from repro.util.rng import DeterministicRng, derive_seed, spawn_rngs


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_label_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_parent_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_in_63_bit_range(self):
        for label in ("x", "y", "z"):
            s = derive_seed(123456789, label)
            assert 0 <= s < (1 << 63)

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=30))
    def test_always_in_range(self, parent, label):
        assert 0 <= derive_seed(parent, label) < (1 << 63)


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_child_streams_independent_of_sibling_order(self):
        root = DeterministicRng(7)
        c1 = root.child("one")
        first = [c1.random() for _ in range(5)]
        root2 = DeterministicRng(7)
        root2.child("two")  # creating another child must not disturb "one"
        c1b = root2.child("one")
        assert first == [c1b.random() for _ in range(5)]

    def test_weighted_index_respects_zero_weight(self):
        rng = DeterministicRng(3)
        for _ in range(200):
            assert rng.weighted_index([0.0, 1.0, 0.0]) == 1

    def test_weighted_index_requires_positive_sum(self):
        rng = DeterministicRng(3)
        with pytest.raises(ValueError):
            rng.weighted_index([0.0, 0.0])

    def test_weighted_index_distribution(self):
        rng = DeterministicRng(11)
        counts = [0, 0]
        for _ in range(2000):
            counts[rng.weighted_index([1.0, 3.0])] += 1
        assert counts[1] > counts[0] * 2

    def test_uniform_bounds(self):
        rng = DeterministicRng(5)
        for _ in range(100):
            v = rng.uniform(2.0, 3.0)
            assert 2.0 <= v < 3.0

    def test_value_seed_is_32bit(self):
        rng = DeterministicRng(5)
        for _ in range(50):
            assert 0 <= rng.value_seed() < (1 << 32)

    def test_sample_distinct(self):
        rng = DeterministicRng(5)
        s = rng.sample(list(range(10)), 5)
        assert len(set(s)) == 5


class TestSpawnRngs:
    def test_one_per_label(self):
        rngs = spawn_rngs(1, ["a", "b", "c"])
        assert [r.label for r in rngs] == ["a", "b", "c"]

    def test_streams_differ(self):
        a, b = spawn_rngs(1, ["a", "b"])
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]
