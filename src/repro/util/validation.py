"""Argument-validation helpers.

Configuration objects across the simulator validate their fields eagerly so
that a bad parameter fails at construction time with a clear message rather
than deep inside a run. These helpers keep those checks terse and uniform.
"""

from __future__ import annotations

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_power_of_two",
]


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in_range(name: str, value: float, lo: float, hi: float) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")
