"""Energy-delay-product helpers.

The paper reports EDP *reductions of overheads*: e.g. Fig. 8 shows the EDP
reduction of ReCkpt w.r.t. Ckpt, where the published numbers compose the
time-overhead and energy-overhead reductions multiplicatively
(1 − (1−r_t)(1−r_e)); we expose both the raw EDP and that composition.
"""

from __future__ import annotations

from repro.util.validation import check_non_negative

__all__ = ["edp", "edp_reduction", "combined_edp_reduction"]


def edp(energy: float, delay: float) -> float:
    """Plain energy × delay."""
    check_non_negative("energy", energy)
    check_non_negative("delay", delay)
    return energy * delay


def edp_reduction(baseline_edp: float, improved_edp: float) -> float:
    """Fractional EDP reduction of ``improved`` w.r.t. ``baseline``."""
    if baseline_edp <= 0:
        raise ValueError("baseline EDP must be positive")
    return 1.0 - improved_edp / baseline_edp


def combined_edp_reduction(time_reduction: float, energy_reduction: float) -> float:
    """Compose per-metric overhead reductions into an EDP reduction.

    With overhead time reduced by ``r_t`` and overhead energy by ``r_e``,
    the overhead EDP shrinks by ``1 − (1−r_t)(1−r_e)`` — this is how the
    paper's Fig. 8 numbers relate to its Figs. 6 and 7.
    """
    return 1.0 - (1.0 - time_reduction) * (1.0 - energy_reduction)
