"""Tests for repro.compiler.slicer."""

import pytest

from repro.compiler.slicer import SliceRejection, extract_slice
from repro.isa.builder import chain_kernel
from repro.isa.instructions import AddressPattern, StoreInstr
from repro.isa.program import Program

STORE = AddressPattern(0, 1, 8)
INPUT = AddressPattern(4096, 1, 8)


def store_index(kernel):
    return max(
        i for i, ins in enumerate(kernel.body) if isinstance(ins, StoreInstr)
    )


class TestExtractSlice:
    def test_chain_slice_length(self):
        for depth in (1, 4, 9):
            k = Program([chain_kernel("k", STORE, [INPUT], depth, 1)]).kernels[0]
            ex = extract_slice(k, store_index(k))
            assert ex.sliceable
            # depth ALU instructions + 1 salt MOVI
            assert ex.slice.length == depth + 1

    def test_frontier_is_load_register(self):
        k = Program([chain_kernel("k", STORE, [INPUT], 3, 1)]).kernels[0]
        ex = extract_slice(k, store_index(k))
        load_dst = k.body[0].dst
        assert ex.slice.frontier == (load_dst,)

    def test_copy_store_trivial(self):
        k = Program(
            [chain_kernel("k", STORE, [INPUT], 0, 1, copy_store=True)]
        ).kernels[0]
        ex = extract_slice(k, store_index(k))
        assert not ex.sliceable
        assert ex.rejection is SliceRejection.TRIVIAL

    def test_accumulator_loop_carried(self):
        k = Program(
            [chain_kernel("k", STORE, [INPUT], 3, 2, accumulate=True)]
        ).kernels[0]
        ex = extract_slice(k, store_index(k))
        assert not ex.sliceable
        assert ex.rejection is SliceRejection.LOOP_CARRIED

    def test_non_store_index_rejected(self):
        k = chain_kernel("k", STORE, [INPUT], 2, 1)
        with pytest.raises(ValueError):
            extract_slice(k, 0)

    def test_slice_excludes_memory_instructions(self):
        from repro.isa.instructions import AluInstr, MoviInstr

        k = Program([chain_kernel("k", STORE, [INPUT], 5, 1)]).kernels[0]
        ex = extract_slice(k, store_index(k))
        for ins in ex.slice.instructions:
            assert isinstance(ins, (AluInstr, MoviInstr))

    def test_pure_immediate_chain_sliceable_with_empty_frontier(self):
        k = Program([chain_kernel("k", STORE, [], 3, 1, salt=5)]).kernels[0]
        ex = extract_slice(k, store_index(k))
        assert ex.sliceable
        assert ex.slice.frontier == ()

    def test_result_register_matches_store_source(self):
        k = Program([chain_kernel("k", STORE, [INPUT], 2, 1)]).kernels[0]
        idx = store_index(k)
        ex = extract_slice(k, idx)
        assert ex.slice.result_reg == k.body[idx].src

    def test_multi_input_frontier_sorted(self):
        inputs = [INPUT, AddressPattern(8192, 1, 8)]
        k = Program([chain_kernel("k", STORE, inputs, 6, 1)]).kernels[0]
        ex = extract_slice(k, store_index(k))
        assert list(ex.slice.frontier) == sorted(ex.slice.frontier)
        assert len(ex.slice.frontier) == 2


class TestSliceExecutionMatchesInterpreter:
    def test_recompute_reproduces_stored_value(self):
        from repro.isa.interpreter import Interpreter, MemoryImage

        k = chain_kernel("k", STORE, [INPUT], 6, 8, salt=77)
        program = Program([k])
        ex = extract_slice(program.kernels[0], store_index(program.kernels[0]))
        sl = ex.slice
        mem = MemoryImage(13)
        checks = []

        def on_store(ev):
            operands = tuple(ev.regs[r] for r in sl.frontier)
            checks.append((operands, ev.new_value))

        Interpreter(program, mem, on_store=on_store).run_to_completion()
        assert len(checks) == 8
        for operands, expected in checks:
            assert sl.execute(operands) == expected
