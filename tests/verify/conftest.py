"""Shared fixtures for the verifier tests.

``make_cp`` builds the canonical mutation-corpus victim: a four-kernel
program with a two-input chain (exercises frontier-dependent rules), a
one-input chain, a trivial copy and a loop-carried accumulator (both
rejected by the slicer, so the table has exactly two entries).
"""

from repro.compiler.embed import CompiledProgram, compile_program
from repro.compiler.policy import ThresholdPolicy
from repro.isa.builder import chain_kernel
from repro.isa.instructions import AddressPattern
from repro.isa.program import Program

CORPUS_THRESHOLD = 10


def make_cp() -> CompiledProgram:
    """Compile the canonical corpus program with the default policy."""
    kernels = [
        chain_kernel(
            "two_in",
            AddressPattern(0, 1, 8),
            [AddressPattern(4096, 1, 8), AddressPattern(8192, 1, 8)],
            4, 6, salt=3,
        ),
        chain_kernel(
            "one_in",
            AddressPattern(1024, 1, 8),
            [AddressPattern(12288, 1, 8)],
            3, 6, salt=5,
        ),
        chain_kernel(
            "copy",
            AddressPattern(2048, 1, 8),
            [AddressPattern(16384, 1, 8)],
            0, 6, copy_store=True,
        ),
        chain_kernel(
            "acc",
            AddressPattern(3072, 1, 8),
            [AddressPattern(20480, 1, 8)],
            3, 6, accumulate=True,
        ),
    ]
    return compile_program(Program(kernels), ThresholdPolicy(CORPUS_THRESHOLD))
