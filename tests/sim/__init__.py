"""Test package."""
