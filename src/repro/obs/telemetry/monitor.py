"""Live campaign dashboard + snapshot replay.

:class:`Monitor` subscribes to a :class:`CampaignTelemetry` and
re-renders a compact status block at most every ``refresh_s``.  On a
real terminal it repaints in place (cursor-home + clear); on anything
else — pipes, CI logs, ``TERM=dumb`` — it appends plain separator-ruled
blocks, so the dashboard is safe to leave on everywhere.

:func:`replay` renders a recorded ``telemetry.jsonl`` snapshot stream
(the file :class:`~repro.obs.telemetry.snapshots.SnapshotWriter` leaves
beside the completion journal) for post-mortem inspection of campaigns
that died mid-flight.

Both paths render from the *snapshot dict*, never from live aggregator
internals, so a replayed frame looks exactly like the live one did.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, TextIO, Union

from repro.obs.telemetry.snapshots import read_snapshots

__all__ = ["render_snapshot", "Monitor", "replay"]

#: ANSI repaint: cursor home + clear-to-end (only on real terminals).
_REPAINT = "\x1b[H\x1b[J"
_RULE = "-" * 64


def _fmt_rate(value: float) -> str:
    """Human-scale a per-second rate: ``1234567 -> '1.2M'``."""
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if value >= threshold:
            return f"{value / threshold:.1f}{suffix}"
    return f"{value:.1f}"


def render_snapshot(snap: Dict[str, Any]) -> str:
    """One snapshot as a multi-line status block (pure string)."""
    lines: List[str] = []
    lines.append(
        f"campaign telemetry — elapsed {snap.get('elapsed_s', 0.0):.1f}s, "
        f"{snap.get('frames', 0)} frames "
        f"({snap.get('malformed', 0)} malformed)"
    )
    workers = snap.get("workers", 0)
    rates = snap.get("rates", {})
    if workers:
        lines.append(
            f"pool: {workers} workers, {snap.get('busy', 0)} busy "
            f"({100.0 * rates.get('utilization', 0.0):.0f}% utilization), "
            f"queue depth {snap.get('queue_depth', 0)}"
        )
    else:
        lines.append("pool: inline execution (no worker pool)")
    active = snap.get("tasks_active", [])
    lines.append(
        f"tasks: {snap.get('tasks_started', 0)} started, "
        f"{snap.get('tasks_finished', 0)} finished, {len(active)} active"
    )
    if active:
        shown = ", ".join(active[:4])
        more = f" (+{len(active) - 4} more)" if len(active) > 4 else ""
        lines.append(f"  active: {shown}{more}")
    counters = snap.get("counters", {})
    phase_counts = snap.get("phase_counts", {})
    lines.append(
        f"throughput: {_fmt_rate(rates.get('iterations_per_s', 0.0))} "
        f"sim-iterations/s, {phase_counts.get('plan-build', 0)} plans built"
    )
    interesting = {
        k: v for k, v in counters.items() if k != "instructions"
    }
    if interesting:
        lines.append(
            "counters: "
            + ", ".join(f"{k} {v}" for k, v in sorted(interesting.items()))
        )
    phase_seconds = snap.get("phase_seconds", {})
    if phase_seconds:
        total = sum(phase_seconds.values()) or 1.0
        parts = [
            f"{name} {seconds:.2f}s ({100.0 * seconds / total:.0f}%)"
            for name, seconds in sorted(
                phase_seconds.items(), key=lambda kv: -kv[1]
            )
        ]
        lines.append("phases: " + ", ".join(parts))
    progress = snap.get("progress", {})
    if progress:
        lookups = progress.get("disk_hits", 0) + progress.get("disk_misses", 0)
        lines.append(
            f"cache: {progress.get('disk_hits', 0)}/{lookups} disk hits "
            f"({100.0 * progress.get('hit_rate', 0.0):.1f}%), "
            f"{progress.get('runs', 0)} runs, "
            f"{progress.get('simulated', 0)} simulated"
        )
        lines.append(
            f"resilience: {progress.get('retried', 0)} retried, "
            f"{progress.get('timed_out', 0)} timed out, "
            f"{progress.get('worker_deaths', 0)} worker deaths, "
            f"{progress.get('resumed', 0)} resumed"
        )
    return "\n".join(lines)


def _supports_repaint(stream: TextIO) -> bool:
    """In-place ANSI repaint only on a real, capable terminal."""
    if os.environ.get("TERM", "") in ("", "dumb"):
        return False
    try:
        return bool(stream.isatty())
    except Exception:
        return False


class Monitor:
    """Rate-limited live renderer; subscribe via :meth:`attach`."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        refresh_s: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.stream: TextIO = stream if stream is not None else sys.stderr
        self.refresh_s = refresh_s
        self._clock = clock
        self._last: float = float("-inf")
        self._repaint = _supports_repaint(self.stream)
        self.renders = 0

    def attach(self, telemetry) -> "Monitor":
        """Subscribe to ``telemetry``'s change notifications."""
        telemetry.subscribers.append(self.update)
        return self

    def update(self, telemetry) -> None:
        """Change notification: re-render if the refresh interval passed."""
        if self._clock() - self._last < self.refresh_s:
            return
        self.render(telemetry.snapshot())

    def render(self, snap: Dict[str, Any]) -> None:
        """Unconditionally draw one snapshot."""
        block = render_snapshot(snap)
        if self._repaint:
            self.stream.write(_REPAINT + block + "\n")
        else:
            self.stream.write(_RULE + "\n" + block + "\n")
        self.stream.flush()
        self._last = self._clock()
        self.renders += 1

    def finish(self, snap: Dict[str, Any]) -> None:
        """Final frame: always plain (it must survive in scrollback)."""
        self.stream.write(_RULE + "\n" + render_snapshot(snap) + "\n")
        self.stream.flush()
        self.renders += 1


def replay(
    path: Union[str, Path], stream: Optional[TextIO] = None
) -> int:
    """Render every snapshot in ``path`` sequentially; returns an exit
    status (0 rendered something, 1 empty stream, 2 no such file)."""
    out: TextIO = stream if stream is not None else sys.stdout
    path = Path(path)
    if not path.exists():
        out.write(f"monitor: no snapshot file at {path}\n")
        return 2
    snapshots = read_snapshots(path)
    if not snapshots:
        out.write(f"monitor: no committed snapshots in {path}\n")
        return 1
    for snap in snapshots:
        out.write(_RULE + "\n" + render_snapshot(snap) + "\n")
    first, last = snapshots[0], snapshots[-1]
    out.write(_RULE + "\n")
    out.write(
        f"replayed {len(snapshots)} snapshots from {path} "
        f"(campaign span {last.get('elapsed_s', 0.0) - first.get('elapsed_s', 0.0):.1f}s, "
        f"final: {last.get('tasks_finished', 0)} tasks finished, "
        f"{last.get('frames', 0)} frames)\n"
    )
    return 0
