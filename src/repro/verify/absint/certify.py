"""Per-segment vector-safety certificates over kernel footprints.

The vector engine replays a kernel's precomputed trace plan only when
four invariants hold for the segment; PR 6 checked them dynamically.
This module proves (or refutes) each statically from the IR alone:

ACR009 ``vector-unsafe-overlap``
    The kernel's load footprint intersects its *own* store footprint —
    replayed loads would read stale precomputed values.
ACR010 ``cross-core-aliasing-race``
    The kernel's load footprint intersects the store footprint of some
    *other core's* program — another thread may write a loaded word.
ACR011 ``unstable-observed-register``
    A register is (re)defined after the kernel's first store, so the
    register file observed at store time is not the end-of-iteration
    row the plan carries; observers (the ACR checkpoint handler
    snapshotting slice operands) would see different values.
ACR012 ``external-load-intersection``
    The kernel's load footprint intersects a store footprint of an
    *earlier kernel of the same program* — replayed loads would miss
    values the program itself wrote before this segment.

A kernel with none of these is issued a SAFE certificate: replaying its
plan is bit-identical to classic execution under any interleaving the
simulator can produce (cores execute their kernels strictly in order,
and recovery is cost-only — it never re-executes stores functionally).
Denials carry the rule id, a message with a witness address where one
exists, and the offending instruction span, so every runtime fallback
is attributable.

Orthogonally, :class:`KernelSummary` proves **register renewal**: every
register in the kernel's file is defined in the body and no register is
read before its same-iteration definition.  A renewal kernel's register
file after any full iteration is a pure function of the iteration index
— independent of the file it entered with — which lets the vector
interpreter replay segments even after an architectural-state restore
(the PR 6 "taint" fallback) without risking divergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

from repro.isa.instructions import AluInstr, LoadInstr, MoviInstr, StoreInstr
from repro.isa.program import Kernel, Program
from repro.verify.absint.shapes import AccessRange, range_of, witness_address

__all__ = [
    "Denial",
    "KernelSummary",
    "ProgramSummary",
    "SegmentCertificate",
    "certify_run",
    "summarize_kernel",
    "summarize_program",
]

RULE_OVERLAP = "ACR009"
RULE_CROSS_CORE = "ACR010"
RULE_UNSTABLE = "ACR011"
RULE_EXTERNAL = "ACR012"


@dataclass(frozen=True)
class KernelSummary:
    """Everything the certifier proved about one kernel in isolation.

    ``loads``/``stores`` pair each stream's body instruction index with
    its footprint; the flags are the kernel-local invariants.  Spans are
    inclusive ``(first, last)`` body-instruction indices implicating the
    finding (None when the corresponding invariant holds).
    """

    index: int
    name: str
    trip: int
    width: int
    loads: Tuple[Tuple[int, AccessRange], ...]
    stores: Tuple[Tuple[int, AccessRange], ...]
    load_addrs: FrozenSet[int]
    store_addrs: FrozenSet[int]
    overlap: bool
    overlap_span: Optional[Tuple[int, int]]
    regs_stable: bool
    unstable_span: Optional[Tuple[int, int]]
    regs_renewed: bool


@dataclass(frozen=True)
class ProgramSummary:
    """Per-kernel summaries plus the cross-kernel store prefix unions."""

    kernels: Tuple[KernelSummary, ...]
    #: All store addresses of the whole program.
    store_union: FrozenSet[int]
    #: ``prefix_stores[k]`` = stores of kernels strictly before ``k``.
    prefix_stores: Tuple[FrozenSet[int], ...]


@dataclass(frozen=True)
class Denial:
    """One reason a segment may not replay unconditionally."""

    rule_id: str
    message: str
    span: Tuple[int, int]


@dataclass(frozen=True)
class SegmentCertificate:
    """The certified verdict for one (core, kernel) trace segment."""

    core: int
    kernel_index: int
    kernel: str
    trip: int
    safe: bool
    denials: Tuple[Denial, ...]

    @property
    def reason(self) -> Optional[str]:
        """The leading denial's rule id (None when SAFE)."""
        return self.denials[0].rule_id if self.denials else None


def summarize_kernel(index: int, kernel: Kernel) -> KernelSummary:
    """Abstractly interpret one kernel body.

    One pass collects the register-file width, each stream's footprint,
    stability (no definition after the first store — must match the
    plan builder's ``_kernel_shape`` semantics exactly) and renewal
    (every register defined, no read before its definition).
    """
    trip = kernel.trip_count
    loads: List[Tuple[int, AccessRange]] = []
    stores: List[Tuple[int, AccessRange]] = []
    width = 0
    seen_store = False
    regs_stable = True
    unstable_span: Optional[Tuple[int, int]] = None
    first_store_idx: Optional[int] = None
    defined: set = set()
    read_before_def = False
    for pos, ins in enumerate(kernel.body):
        if isinstance(ins, AluInstr):
            width = max(width, ins.dst, ins.src_a, ins.src_b)
            if ins.src_a not in defined or ins.src_b not in defined:
                read_before_def = True
            defined.add(ins.dst)
            if seen_store and regs_stable:
                regs_stable = False
                unstable_span = (first_store_idx or 0, pos)
        elif isinstance(ins, MoviInstr):
            width = max(width, ins.dst)
            defined.add(ins.dst)
            if seen_store and regs_stable:
                regs_stable = False
                unstable_span = (first_store_idx or 0, pos)
        elif isinstance(ins, LoadInstr):
            width = max(width, ins.dst)
            defined.add(ins.dst)
            loads.append((pos, range_of(ins.pattern, trip)))
            if seen_store and regs_stable:
                regs_stable = False
                unstable_span = (first_store_idx or 0, pos)
        else:
            assert isinstance(ins, StoreInstr)
            width = max(width, ins.src)
            if ins.src not in defined:
                read_before_def = True
            stores.append((pos, range_of(ins.pattern, trip)))
            if not seen_store:
                seen_store = True
                first_store_idx = pos
    load_addrs = frozenset().union(*(r.addresses for _, r in loads)) \
        if loads else frozenset()
    store_addrs = frozenset().union(*(r.addresses for _, r in stores)) \
        if stores else frozenset()
    overlap = bool(load_addrs) and not load_addrs.isdisjoint(store_addrs)
    overlap_span: Optional[Tuple[int, int]] = None
    if overlap:
        offending = [
            pos for pos, r in loads if not r.addresses.isdisjoint(store_addrs)
        ] + [
            pos for pos, r in stores if not r.addresses.isdisjoint(load_addrs)
        ]
        overlap_span = (min(offending), max(offending))
    # Renewal additionally needs the *whole* file covered: a register
    # inside [0, width] that is never written would carry restored
    # (possibly corrupted) contents under classic execution but the
    # plan-row value under replay hand-off — architecturally visible.
    regs_renewed = (
        not read_before_def
        and all(r in defined for r in range(width + 1))
    )
    return KernelSummary(
        index=index,
        name=kernel.name,
        trip=trip,
        width=width,
        loads=tuple(loads),
        stores=tuple(stores),
        load_addrs=load_addrs,
        store_addrs=store_addrs,
        overlap=overlap,
        overlap_span=overlap_span,
        regs_stable=regs_stable,
        unstable_span=unstable_span,
        regs_renewed=regs_renewed,
    )


_SUMMARY_CACHE: "WeakKeyDictionary[Program, ProgramSummary]" = (
    WeakKeyDictionary()
)


def summarize_program(program: Program) -> ProgramSummary:
    """The (cached) per-kernel summaries and store prefixes of a program."""
    cached = _SUMMARY_CACHE.get(program)
    if cached is not None:
        return cached
    kernels = tuple(
        summarize_kernel(k, kernel)
        for k, kernel in enumerate(program.kernels)
    )
    prefix: List[FrozenSet[int]] = []
    running: FrozenSet[int] = frozenset()
    for ks in kernels:
        prefix.append(running)
        running = running | ks.store_addrs
    summary = ProgramSummary(
        kernels=kernels,
        store_union=running,
        prefix_stores=tuple(prefix),
    )
    _SUMMARY_CACHE[program] = summary
    return summary


def _load_span(
    ks: KernelSummary, words: FrozenSet[int]
) -> Tuple[int, int]:
    """Span of the load instructions whose footprints touch ``words``."""
    offending = [
        pos for pos, r in ks.loads if not r.addresses.isdisjoint(words)
    ]
    return (min(offending), max(offending))


def _certify_kernel(
    core: int,
    ks: KernelSummary,
    peer_stores: FrozenSet[int],
    earlier_stores: FrozenSet[int],
) -> SegmentCertificate:
    """Check the four invariants for one segment; SAFE iff all hold."""
    denials: List[Denial] = []
    if ks.overlap:
        witness = min(ks.load_addrs & ks.store_addrs)
        assert ks.overlap_span is not None
        denials.append(
            Denial(
                RULE_OVERLAP,
                f"kernel {ks.name!r} loads and stores share word "
                f"0x{witness:x}; replayed loads would read stale values",
                ks.overlap_span,
            )
        )
    if ks.stores and not ks.regs_stable:
        assert ks.unstable_span is not None
        denials.append(
            Denial(
                RULE_UNSTABLE,
                f"kernel {ks.name!r} redefines a register after its first "
                f"store; observed register files diverge from plan rows",
                ks.unstable_span,
            )
        )
    if ks.load_addrs and not ks.load_addrs.isdisjoint(peer_stores):
        witness = min(ks.load_addrs & peer_stores)
        denials.append(
            Denial(
                RULE_CROSS_CORE,
                f"kernel {ks.name!r} loads word 0x{witness:x} which another "
                f"core's program stores to",
                _load_span(ks, peer_stores),
            )
        )
    if ks.load_addrs and not ks.load_addrs.isdisjoint(earlier_stores):
        witness = min(ks.load_addrs & earlier_stores)
        denials.append(
            Denial(
                RULE_EXTERNAL,
                f"kernel {ks.name!r} loads word 0x{witness:x} stored by an "
                f"earlier kernel of the same program",
                _load_span(ks, earlier_stores),
            )
        )
    return SegmentCertificate(
        core=core,
        kernel_index=ks.index,
        kernel=ks.name,
        trip=ks.trip,
        safe=not denials,
        denials=tuple(denials),
    )


def certify_run(
    programs: Sequence[Program],
) -> List[Tuple[SegmentCertificate, ...]]:
    """Certificates for every segment of a multi-core run.

    Pass A summarises each program (cached per ``Program``); pass B
    checks each kernel against its own footprint, its program's store
    prefix and the union of every *other* core's stores.  The heavy
    footprint sets live only in the cached summaries — certificates keep
    flags, spans and messages.
    """
    summaries = [summarize_program(p) for p in programs]
    result: List[Tuple[SegmentCertificate, ...]] = []
    for core, summary in enumerate(summaries):
        peer_stores: FrozenSet[int] = frozenset().union(
            *(
                s.store_union
                for c, s in enumerate(summaries)
                if c != core
            )
        ) if len(summaries) > 1 else frozenset()
        result.append(
            tuple(
                _certify_kernel(
                    core, ks, peer_stores, summary.prefix_stores[k]
                )
                for k, ks in enumerate(summary.kernels)
            )
        )
    return result


def fallback_reasons(
    certificates: Sequence[SegmentCertificate],
) -> Dict[int, str]:
    """kernel index -> leading denial rule id, for denied segments only."""
    return {
        cert.kernel_index: cert.denials[0].rule_id
        for cert in certificates
        if not cert.safe
    }
