"""Tests for repro.experiments.tables_ (paper reference data integrity)."""

from repro.experiments.tables_ import PAPER_TABLE2, table1_configuration
from repro.workloads.registry import all_workload_names


class TestPaperTable2:
    def test_rows_are_percentages(self):
        for wl, row in PAPER_TABLE2.items():
            assert len(row) == 5
            assert all(0.0 <= v <= 100.0 for v in row)

    def test_rows_nearly_monotone(self):
        # The paper's own data is monotone up to one reporting wiggle
        # (mg: 90.34 -> 90.22 at threshold 50).
        for wl, row in PAPER_TABLE2.items():
            for a, b in zip(row, row[1:]):
                assert b >= a - 0.2, wl

    def test_benchmarks_subset_of_suite(self):
        # dc has no Table II row in the paper; all others do.
        names = set(all_workload_names())
        assert set(PAPER_TABLE2) == names - {"dc"}

    def test_known_anchor_values(self):
        assert PAPER_TABLE2["bt"][0] == 36.54
        assert PAPER_TABLE2["is"][0] == 97.39
        assert PAPER_TABLE2["cg"][1] == 67.06


class TestTable1:
    def test_custom_machine(self):
        from repro.arch.config import MachineConfig

        text = table1_configuration(MachineConfig(num_cores=16))
        assert "16" in text
