"""Micro-benchmarks: component throughput under pytest-benchmark.

These are conventional timing benchmarks (many rounds) for the simulator's
hot components: the interpreter, the cache model, the AddrMap and Slice
recomputation.  They guard against performance regressions that would make
the paper regeneration impractically slow.
"""

from repro.arch.buffers import AddrMap, AddrMapEntry
from repro.arch.cache import SetAssociativeCache
from repro.arch.config import CacheConfig
from repro.compiler.embed import compile_program
from repro.isa.builder import chain_kernel
from repro.isa.instructions import AddressPattern
from repro.isa.interpreter import Interpreter, MemoryImage
from repro.isa.program import Program

STORE = AddressPattern(0, 1, 256)
INPUT = AddressPattern(1 << 20, 1, 256)


def test_interpreter_throughput(benchmark):
    program = Program(
        [chain_kernel("k", STORE, [INPUT], 8, 256) for _ in range(8)]
    )

    def run():
        Interpreter(program, MemoryImage(0)).run_to_completion()

    benchmark(run)


def test_cache_access_throughput(benchmark):
    cache = SetAssociativeCache(CacheConfig("l1", 32 * 1024, 8, 3.66))
    lines = [i * 7 % 4096 for i in range(4096)]

    def run():
        for line in lines:
            cache.access(line, line & 1 == 0)

    benchmark(run)


def test_addrmap_throughput(benchmark):
    program = Program([chain_kernel("k", STORE, [INPUT], 4, 1)])
    sl = compile_program(program).slices.get(0)
    addrmap = AddrMap(8192)

    def run():
        for i in range(1024):
            addrmap.record(AddrMapEntry(i * 8, sl, (i,)))
        addrmap.commit_generation()
        for i in range(1024):
            addrmap.committed_lookup(i * 8)

    benchmark(run)


def test_slice_recompute_throughput(benchmark):
    program = Program([chain_kernel("k", STORE, [INPUT], 9, 1)])
    sl = compile_program(program).slices.get(0)

    def run():
        for i in range(1024):
            sl.execute((i,))

    benchmark(run)
