"""Slice recomputation engine.

Executes Slices against their operand snapshots.  Slices run in a private
register namespace (the paper's scratchpad alternative: since recovery
overwrites the register file from the checkpoint anyway, recomputation may
freely use it — either way the architectural state consumed by the resumed
execution is unaffected, which :meth:`Slice.execute`'s isolation models).

The engine adds the accounting the handlers need: instruction counts,
per-slice-length histograms, and a verification hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.arch.buffers import AddrMapEntry
from repro.compiler.slices import Slice

__all__ = ["RecomputeStats", "RecomputationEngine"]


@dataclass
class RecomputeStats:
    """Accumulated recomputation accounting."""

    values: int = 0
    instructions: int = 0
    by_length: Dict[int, int] = field(default_factory=dict)

    def note(self, sl: Slice) -> None:
        """Account one executed slice."""
        self.values += 1
        self.instructions += sl.length
        self.by_length[sl.length] = self.by_length.get(sl.length, 0) + 1


class RecomputationEngine:
    """Executes Slices with accounting."""

    def __init__(self) -> None:
        self.stats = RecomputeStats()

    def recompute(self, sl: Slice, operands: Sequence[int]) -> int:
        """Recompute one value; returns it."""
        value = sl.execute(operands)
        self.stats.note(sl)
        return value

    def recompute_entry(self, entry: AddrMapEntry) -> Tuple[int, int]:
        """Recompute from an AddrMap entry; returns (address, value)."""
        return entry.address, self.recompute(entry.slice_, entry.operands)
