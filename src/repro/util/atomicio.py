"""Atomic file publication, corruption quarantine, durable line appends.

Three on-disk durability idioms grew up independently in the result
cache (:mod:`repro.experiments.cache`), the simulator snapshot store
(:mod:`repro.sim.snapshot`) and the JSONL appenders (the completion
journal and the telemetry snapshot stream).  This module is their single
home; the semantics are exactly what the original call sites pinned:

* **atomic publication** — :func:`atomic_write_text` /
  :func:`atomic_write_bytes` write a temp file *in the destination
  directory* and ``os.replace`` it over the target, so a crashed or
  concurrent writer can never leave a partially-written file behind and
  racing writers of deterministic content are harmless (last one wins,
  byte-identically).  On any failure the temp file is removed and the
  exception re-raised;
* **quarantine** — :func:`quarantine` deletes a file a reader found
  corrupt (truncated, hand-edited, schema-drifted) so the next write
  starts clean; missing files and unlink failures are swallowed — a
  quarantine is best-effort by design, the caller already treats the
  entry as a miss;
* **torn-tail-tolerant appends** — :func:`append_line` appends one
  ``\\n``-terminated line with a single ``write()`` on an ``O_APPEND``
  descriptor (concurrent writers interleave whole records; a crash can
  tear at most the final line), repairing a torn tail first via
  :func:`tail_is_torn` so the tear costs exactly the one half-written
  record, never the one after it too.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = [
    "append_line",
    "atomic_write_bytes",
    "atomic_write_text",
    "quarantine",
    "tail_is_torn",
]


def tail_is_torn(path: Union[str, Path]) -> bool:
    """Whether ``path`` ends mid-record (a crash tore the final line).

    Every committed append ends with a newline, so a file whose last
    byte is not ``\\n`` was torn; the next append must then start on a
    fresh line or it would merge into — and corrupt — the torn tail.
    Missing/unreadable files read as not-torn (there is nothing to
    repair).
    """
    try:
        with open(path, "rb") as fh:
            fh.seek(0, os.SEEK_END)
            if fh.tell() == 0:
                return False
            fh.seek(-1, os.SEEK_END)
            return fh.read(1) != b"\n"
    except OSError:
        return False


def _atomic_write(path: Path, data: bytes, prefix: str) -> Path:
    """Shared body of the two atomic writers (bytes on disk either way)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=prefix, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(
    path: Union[str, Path], text: str, prefix: str = ".atomic."
) -> Path:
    """Publish ``text`` at ``path`` atomically (temp file + ``os.replace``
    in the destination directory); returns ``path``.

    ``prefix`` names the temp file (callers keep their historical
    spellings so stray temp files remain attributable).
    """
    return _atomic_write(Path(path), text.encode("utf-8"), prefix)


def atomic_write_bytes(
    path: Union[str, Path], data: bytes, prefix: str = ".atomic."
) -> Path:
    """Publish ``data`` at ``path`` atomically; returns ``path``."""
    return _atomic_write(Path(path), data, prefix)


def quarantine(path: Union[str, Path]) -> bool:
    """Remove a corrupt file so the rewrite starts clean; returns whether
    a file was actually removed (missing/busy files are not an error —
    the caller already treats the entry as a miss)."""
    try:
        os.unlink(path)
        return True
    except OSError:
        return False


def append_line(path: Union[str, Path], line: str) -> None:
    """Durably append one ``\\n``-terminated ``line`` (terminator added
    here) with a single ``O_APPEND`` write, repairing a torn tail first.

    Atomic at line level: concurrent appenders interleave whole records
    and a crash can tear at most the final line — the durability model
    the completion journal and the telemetry snapshot stream share.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = line + "\n"
    if tail_is_torn(path):
        payload = "\n" + payload
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(payload)
        fh.flush()
