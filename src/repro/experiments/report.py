"""Full paper regeneration: every figure and table in one report.

``python -m repro.experiments.report [--scale S] [--cores N]`` prints the
whole evaluation section.  The benchmark harness calls the same
generators; this entry point exists for humans.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.experiments.figures import (
    fig1_error_rate,
    fig6_time_overhead,
    fig7_energy_overhead,
    fig8_edp_reduction,
    fig9_checkpoint_size,
    fig10_temporal,
    fig11_error_sweep,
    fig12_frequency_sweep,
    fig13_local,
    scalability,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables_ import table1_configuration, table2_threshold_sweep

__all__ = ["generate_report", "main"]


def generate_report(
    runner: Optional[ExperimentRunner] = None,
    include_scalability: bool = False,
    stream=sys.stdout,
) -> None:
    """Print every reproduced artifact to ``stream``."""
    runner = runner or ExperimentRunner()

    def emit(text: str) -> None:
        print(text, file=stream)
        print("", file=stream)

    t0 = time.time()
    emit(table1_configuration(runner.machine))
    emit(fig1_error_rate().render())
    emit(fig6_time_overhead(runner).render())
    emit(fig7_energy_overhead(runner).render())
    emit(fig8_edp_reduction(runner).render())
    emit(fig9_checkpoint_size(runner).render())
    emit(table2_threshold_sweep(runner).render())
    emit(fig10_temporal(runner).render())
    emit(fig11_error_sweep(runner).render())
    emit(fig12_frequency_sweep(runner).render())
    emit(fig13_local(runner).render())
    if include_scalability:
        emit(scalability().render())
    emit(f"[report generated in {time.time() - t0:.1f}s]")


def main(argv=None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload region scale (speed knob)")
    parser.add_argument("--cores", type=int, default=8)
    parser.add_argument("--reps", type=int, default=None)
    parser.add_argument("--scalability", action="store_true",
                        help="include the 8/16/32-core study (slow)")
    args = parser.parse_args(argv)
    runner = ExperimentRunner(
        num_cores=args.cores, region_scale=args.scale, reps=args.reps
    )
    generate_report(runner, include_scalability=args.scalability)


if __name__ == "__main__":
    main()
