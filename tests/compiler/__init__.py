"""Test package."""
