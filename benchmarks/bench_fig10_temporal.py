"""Figure 10: per-interval checkpoint-size reduction over time (bt).

Paper shape: the reduction varies across checkpoint intervals (temporal
variation — the motivation for recomputation-aware placement), and higher
thresholds dominate lower ones interval by interval.
"""

from _bench_lib import run_once

from repro.experiments.figures import fig10_temporal


def test_fig10(benchmark, runner, emit):
    fig = run_once(benchmark, lambda: fig10_temporal(runner, "bt"))
    emit("fig10_temporal", fig.render())
    s = fig.series

    thr10 = s["thr10"]
    thr50 = s["thr50"]
    assert len(thr10) == 25

    # Temporal variation: the warm intervals' reductions are not flat —
    # mild at threshold 10, pronounced at 30 where bt's big 21-30 slice
    # bucket amplifies the working-set wave (as in the paper's figure).
    warm10 = thr10[2:]
    assert max(warm10) - min(warm10) > 0.05
    warm30 = s["thr30"][2:]
    assert max(warm30) - min(warm30) > 0.10

    # The first interval is fresh: nothing recomputable yet.
    assert thr10[0] < 0.05

    # Threshold dominance, interval by interval.
    for a, b in zip(thr10, thr50):
        assert b >= a - 1e-9

    # At threshold 50 most warm intervals are heavily reduced.
    assert sum(r > 0.5 for r in thr50[2:]) > len(thr50) // 2
