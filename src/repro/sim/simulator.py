"""The simulation run loop.

A :class:`Simulator` executes one program per core over a shared memory
image, interleaving functional interpretation with the machine's timing
and energy models:

* every load/store walks the per-core cache hierarchy (stalls charged to
  the core's *useful* clock — the baseline pays them too);
* under a checkpointing scheme, the directory's log bit identifies the
  first modification of each word per interval; its old value is logged
  (a bandwidth stall, charged to the core's *overhead* clock) unless the
  ACR checkpoint handler proves it recomputable (omission: no log write);
* covered stores execute ``ASSOC-ADDR`` (one extra instruction slot plus
  an AddrMap write, charged to overhead);
* at each boundary the participating cores barrier, flush dirty lines and
  record architectural state (global: all cores at once; local: each
  communicating cluster separately, staggered);
* errors strike per the schedule; after the detection latency the run
  rolls back to the most recent *safe* checkpoint, charging waste +
  rollback + recomputation (Eqs. 2/3).

Clock model
-----------
Each core keeps two clocks: ``useful`` (progress an error-free,
checkpoint-free run would make — boundaries and error times are placed on
this axis) and ``overhead`` (everything BER adds).  Wall-clock =
useful + overhead; the run's wall time is the slowest core's.

Because execution is deterministic, recovery does not functionally
re-execute the lost work: rolling back and replaying would reproduce the
exact same values (fail-stop model, no data corruption), so the simulator
charges the redo time/energy and continues forward.  The *functional*
correctness of rollback+recomputation is separately exercised by the
integration tests, which snapshot memory at checkpoints, apply
:meth:`RecoveryEngine.apply_rollback` and compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

from repro.acr.handlers import AcrCheckpointHandler, AssocOutcome
from repro.arch.config import MachineConfig
from repro.ckpt.checkpoint import CheckpointStore
from repro.ckpt.coordinator import (
    CheckpointCostModel,
    GlobalCoordinator,
    LocalCoordinator,
    uniform_boundaries,
)
from repro.ckpt.log import LOG_RECORD_BYTES
from repro.ckpt.recovery import RecoveryEngine
from repro.compiler.embed import CompileStats, compile_program
from repro.compiler.policy import SelectionPolicy, ThresholdPolicy
from repro.energy.model import EnergyModel
from repro.errors.detection import choose_safe_checkpoint
from repro.errors.injection import ErrorSchedule, NoErrors
from repro.errors.model import ErrorModel, ErrorOccurrence
from repro.isa.interpreter import Interpreter, LoadEvent, StoreEvent
from repro.isa.program import Program
from repro.obs.events import (
    CheckpointBegin,
    CheckpointEnd,
    IntervalBoundary,
    LogWrite,
    RecoveryBegin,
    RecoveryEnd,
)
from repro.obs.metrics import MetricsRegistry, ObsReport
from repro.obs.telemetry import emit as _telemetry_mod
from repro.obs.telemetry import profile as _profile
from repro.obs.telemetry.frames import MetricsDelta, TaskHeartbeat
from repro.obs.tracer import Tracer
from repro.sim.machine import Machine
from repro.sim.vector.engine import VectorCoreRunner
from repro.sim.results import (
    BaselineProfile,
    IntervalStats,
    RecoveryStats,
    RunResult,
)
from repro.util.validation import check_positive

__all__ = ["SimulationOptions", "Simulator"]

_SCHEMES = ("none", "global", "local")
_ENGINES = ("interp", "vector")

#: Program -> {policy -> CompiledProgram}.  ACR compilation is a pure
#: function of (program, policy); runs sweeping configurations over the
#: same programs (and both engines) share one compiled copy — which also
#: shares the op cache and the vector engine's trace plans.
_COMPILE_CACHE: "WeakKeyDictionary[Program, dict]" = WeakKeyDictionary()


def _compile_cached(program: Program, policy: SelectionPolicy):
    """``compile_program`` through the per-program cache."""
    try:
        hash(policy)
    except TypeError:
        return compile_program(program, policy)
    per_program = _COMPILE_CACHE.get(program)
    if per_program is None:
        per_program = {}
        _COMPILE_CACHE[program] = per_program
    compiled = per_program.get(policy)
    if compiled is None:
        compiled = compile_program(program, policy)
        per_program[policy] = compiled
    return compiled


@dataclass(frozen=True)
class SimulationOptions:
    """Configuration of one run.

    ``baseline`` must be the profile of a ``scheme="none"`` run of the
    *same* programs on the same machine; it anchors boundary and error
    placement.  It is not needed (and ignored) when ``scheme="none"``.
    """

    label: str = "run"
    scheme: str = "global"
    acr: bool = False
    num_checkpoints: int = 25
    slice_policy: Optional[SelectionPolicy] = None
    errors: ErrorSchedule = field(default_factory=NoErrors)
    error_model: ErrorModel = field(default_factory=ErrorModel)
    baseline: Optional[BaselineProfile] = None
    memory_seed: int = 0
    chunk_iterations: int = 64
    #: Execution engine: ``"interp"`` (classic per-instruction loop) or
    #: ``"vector"`` (plan-replay engine, bit-identical results).  Runs
    #: with observability attached always use the classic loop — the
    #: tracer needs per-access events the vector engine never creates.
    engine: str = "interp"
    #: Custom boundary times on the useful-time axis (ns, ascending, last
    #: one at the baseline's useful end).  ``None`` = uniform placement.
    #: Used by the recomputation-aware placement extension.
    boundaries: Optional[Sequence[float]] = None
    #: Event sink for the observability layer.  ``None`` (or a disabled
    #: tracer such as :class:`~repro.obs.tracer.NullTracer`) keeps the
    #: simulator on its untraced fast path — results are bit-identical
    #: to an uninstrumented run.
    tracer: Optional[Tracer] = None
    #: Collect aggregate counters/histograms into ``RunResult.obs``
    #: (implied whenever an enabled tracer is attached).
    collect_metrics: bool = False

    def __post_init__(self) -> None:
        if self.scheme not in _SCHEMES:
            raise ValueError(f"scheme must be one of {_SCHEMES}")
        if self.engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}")
        check_positive("num_checkpoints", self.num_checkpoints)
        check_positive("chunk_iterations", self.chunk_iterations)
        if self.scheme != "none" and self.baseline is None:
            raise ValueError(
                "checkpointed runs need the baseline profile of a "
                "scheme='none' run for boundary placement"
            )
        if self.acr and self.scheme == "none":
            raise ValueError("ACR requires a checkpointing scheme")
        if self.boundaries is not None:
            times = list(self.boundaries)
            if not times or sorted(times) != times:
                raise ValueError("custom boundaries must be ascending")
            if len(times) != self.num_checkpoints:
                raise ValueError(
                    "custom boundaries must match num_checkpoints"
                )


class Simulator:
    """Runs one set of per-core programs under a machine configuration."""

    def __init__(
        self,
        programs: Sequence[Program],
        config: MachineConfig,
        energy_model: Optional[EnergyModel] = None,
    ) -> None:
        if len(programs) != config.num_cores:
            raise ValueError(
                f"{config.num_cores} cores need {config.num_cores} programs, "
                f"got {len(programs)}"
            )
        self.programs = list(programs)
        self.config = config
        self.energy_model = energy_model or EnergyModel()
        self._vector_certs: Optional[list] = None

    def vector_certificates(self) -> list:
        """Per-core static vector-safety certificates (lazy, cached).

        Computed over the *plain* programs: the ACR rewrite only flips
        the ``assoc`` flag, which changes neither addresses nor
        dataflow, so one certificate set serves both plain and
        ACR-compiled runs (mirroring the shared trace-plan cache).
        """
        if self._vector_certs is None:
            from repro.verify.absint.certify import certify_run

            self._vector_certs = certify_run(self.programs)
        return self._vector_certs

    # ------------------------------------------------------------------ api --
    def run_baseline(self, label: str = "NoCkpt", memory_seed: int = 0) -> RunResult:
        """Convenience: the scheme='none' run."""
        return self.run(SimulationOptions(label=label, scheme="none",
                                          memory_seed=memory_seed))

    def run(self, options: SimulationOptions) -> RunResult:
        """Execute one full run and return its statistics."""
        runner = _Run(self, options)
        return runner.execute()


class _Run:
    """One run's mutable state (kept out of the reusable Simulator)."""

    def __init__(self, sim: Simulator, options: SimulationOptions) -> None:
        self.sim = sim
        self.options = options
        self.config = sim.config
        self.machine = Machine(sim.config, sim.energy_model, options.memory_seed)
        self.energy = sim.energy_model
        n = self.config.num_cores

        # Observability: hoist the enabled-check once so a disabled
        # tracer (the default) keeps every hot path un-instrumented.
        tracer = options.tracer
        self.trace: Optional[Tracer] = (
            tracer if (tracer is not None and tracer.enabled) else None
        )
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry()
            if (options.collect_metrics or self.trace is not None)
            else None
        )
        observing = self.trace is not None or self.metrics is not None

        # Telemetry rides a separate ambient channel (never the Tracer —
        # that would force the classic engine and bypass the cache);
        # hoist the enabled-check so disabled runs stay byte-identical.
        self._telemetry = _telemetry_mod.telemetry_active()

        # Compile (ACR) or use the plain programs.
        self.compile_stats: Optional[CompileStats] = None
        if options.acr:
            with _profile.phase("compile"):
                policy = options.slice_policy or ThresholdPolicy()
                compiled = [_compile_cached(p, policy) for p in sim.programs]
                self.programs = [c.program for c in compiled]
                tables = [c.slices for c in compiled]
                self.compile_stats = _sum_compile_stats(
                    [c.stats for c in compiled]
                )
                self.handler: Optional[AcrCheckpointHandler] = (
                    AcrCheckpointHandler(self.config, tables)
                )
        else:
            self.programs = sim.programs
            self.handler = None

        # Checkpointing machinery.
        self.ckpt_enabled = options.scheme != "none"
        self.store = CheckpointStore(
            self.config.arch_state_bytes, n,
            log_observer=self._on_log_append if observing else None,
        )
        self.cost_model = CheckpointCostModel(
            self.config, self.machine.noc, self.machine.memsys, self.energy,
            metrics=self.metrics,
        )
        self.recovery_engine = RecoveryEngine(
            self.config, self.machine.memsys, self.energy
        )
        self.coordinator = (
            LocalCoordinator(n) if options.scheme == "local" else GlobalCoordinator(n)
        )
        if self.handler is not None and observing:
            self.handler.attach_observability(
                self.trace, self.metrics, self._core_now
            )

        # Per-core clocks (ns).
        self.useful = [0.0] * n
        self.overhead = [0.0] * n
        # Stall accumulators filled by the observers, drained per chunk.
        self._pending_useful = [0.0] * n
        self._pending_overhead = [0.0] * n

        # Aggregate instruction counters.
        self.n_instructions = 0
        self.n_alu = 0
        self.n_loads = 0
        self.n_stores = 0
        self.n_assoc = 0

        # Per-interval bookkeeping.
        self.intervals: List[IntervalStats] = []
        self.recoveries: List[RecoveryStats] = []
        self._flushed_lines_total = 0

        # The per-first-write log cost: the memory controller reads the
        # old value from memory (8 B) and appends the 16 B record to the
        # in-memory log, through a controller shared by
        # `cores_per_controller` cores.
        bw = self.config.mem_bandwidth_bytes_per_s
        self._log_traffic_bytes = LOG_RECORD_BYTES + 8
        self._log_stall_ns = (
            self._log_traffic_bytes * self.config.cores_per_controller / bw * 1e9
        )
        self._line_bytes = self.config.line_bytes
        self._cycle_ns = self.config.cycle_ns

        self.interpreters = [
            Interpreter(
                prog, self.machine.memory, on_load=self._on_load,
                on_store=self._on_store,
            )
            for prog in self.programs
        ]
        self.timing = self.machine.timing

        # Engine dispatch: the vector engine drives each core from trace
        # plans, falling back to the classic interpreter (observers and
        # all) segment by segment.  Observed runs stay fully classic.
        if options.engine == "vector" and not observing:
            self.engines: Sequence = [
                VectorCoreRunner(self, core) for core in range(n)
            ]
        else:
            self.engines = self.interpreters

    # ------------------------------------------------------------ observers --
    def _core_now(self, core: int) -> float:
        """``core``'s current simulated wall time (chunk-granular).

        Includes the pending stall accumulators so events emitted inside
        a chunk land between the chunk's start and end times.
        """
        return (
            self.useful[core]
            + self.overhead[core]
            + self._pending_useful[core]
            + self._pending_overhead[core]
        )

    def _on_log_append(self, rec, omitted: bool) -> None:
        """Observe one first-modification reaching the interval log."""
        metrics = self.metrics
        if metrics is not None:
            if omitted:
                metrics.counter("log.writes_skipped").inc()
                metrics.counter("log.bytes_skipped").inc(LOG_RECORD_BYTES)
            else:
                metrics.counter("log.writes_taken").inc()
                metrics.counter("log.bytes_taken").inc(LOG_RECORD_BYTES)
        if self.trace is not None:
            core = rec.core
            self.trace.emit(LogWrite(
                ts_ns=self._core_now(core),
                core=core,
                address=rec.address,
                line=rec.address // self._line_bytes,
                size_bytes=LOG_RECORD_BYTES,
                taken=not omitted,
            ))

    def _on_load(self, ev: LoadEvent) -> None:
        core = ev.thread
        access = self.machine.hierarchies[core].access(ev.address, False)
        self._pending_useful[core] += self.timing.stall_time_ns(access)
        self.machine.directory.record_access(core, ev.address // self._line_bytes)

    def _on_store(self, ev: StoreEvent) -> None:
        core = ev.thread
        access = self.machine.hierarchies[core].access(ev.address, True)
        self._pending_useful[core] += self.timing.stall_time_ns(access)
        self.machine.directory.record_access(core, ev.address // self._line_bytes)

        if self.ckpt_enabled:
            already = self.machine.directory.test_and_set_log(ev.address)
            if not already:
                entry = (
                    self.handler.may_omit(core, ev.address)
                    if self.handler is not None
                    else None
                )
                if entry is not None:
                    self.store.current_log.add_omitted(
                        ev.address, entry, core, ev.old_value
                    )
                else:
                    self.store.current_log.add_record(ev.address, ev.old_value, core)
                    self._pending_overhead[core] += self._log_stall_ns

        if self.handler is not None:
            outcome = self.handler.on_store(core, ev.site, ev.address, ev.regs)
            if outcome is AssocOutcome.RECORDED:
                # ASSOC-ADDR: one extra instruction slot + AddrMap write.
                self._pending_overhead[core] += self._cycle_ns

    # ------------------------------------------------------------- execution --
    def _run_core_to(self, core: int, target_useful_ns: float) -> None:
        """Advance ``core`` until its useful clock reaches the target."""
        interp = self.engines[core]
        chunk_iters = self.options.chunk_iterations
        while self.useful[core] < target_useful_ns and not interp.done:
            chunk = interp.step_iterations(chunk_iters)
            useful_instrs = chunk.alu + chunk.loads + chunk.stores
            self.useful[core] += (
                self.timing.issue_time_ns(useful_instrs) + self._pending_useful[core]
            )
            self.overhead[core] += (
                self._pending_overhead[core] + chunk.assoc * self._cycle_ns
            )
            self._pending_useful[core] = 0.0
            self._pending_overhead[core] = 0.0
            self.n_instructions += chunk.instructions
            self.n_alu += chunk.alu
            self.n_loads += chunk.loads
            self.n_stores += chunk.stores
            self.n_assoc += chunk.assoc

    def _run_core_to_completion(self, core: int) -> None:
        """Advance ``core`` until its program finishes."""
        self._run_core_to(core, float("inf"))

    # ------------------------------------------------------------- boundaries --
    def _do_checkpoint(self, useful_mark_ns: float) -> None:
        """Establish a checkpoint at the current point."""
        n = self.config.num_cores
        clusters = self.coordinator.clusters(self.machine.directory)
        log = self.store.current_log

        index = len(self.intervals)
        observing = self.trace is not None or self.metrics is not None
        wall_before = 0.0
        if observing:
            wall_before = max(
                self.useful[c] + self.overhead[c] for c in range(n)
            )
            if self.trace is not None:
                self.trace.emit(CheckpointBegin(
                    ts_ns=wall_before, core=-1, index=index,
                ))

        boundary_ns_max = 0.0
        flushed_bytes = 0
        for cluster in clusters:
            members = sorted(cluster)
            # Implicit barrier: members wait for the slowest member.
            wall_max = max(self.useful[c] + self.overhead[c] for c in members)
            for c in members:
                self.overhead[c] = wall_max - self.useful[c]
            cost = self.cost_model.boundary_cost(
                members, self.machine.hierarchies, self.machine.ledger
            )
            for c in members:
                self.overhead[c] += cost.total_ns
            boundary_ns_max = max(boundary_ns_max, cost.total_ns)
            flushed_bytes += cost.flushed_bytes
            self._flushed_lines_total += cost.flushed_lines

        # Log energy for the records of the closing interval: old-value
        # read plus record append, both DRAM traffic.
        self.machine.ledger.add(
            "ckpt.log",
            len(log.records)
            * (
                self.energy.dram_transfer_pj(self._log_traffic_bytes)
                + self.energy.handler_op_pj
            ),
        )
        if self.handler is not None:
            self.machine.ledger.add(
                "acr.omit",
                len(log.omitted)
                * (self.energy.addrmap_access_pj + self.energy.handler_op_pj),
            )

        wall_ns = max(self.useful[c] + self.overhead[c] for c in range(n))
        self.intervals.append(
            IntervalStats(
                index=len(self.intervals),
                useful_ns=useful_mark_ns,
                logged_records=len(log.records),
                omitted_records=len(log.omitted),
                logged_bytes=log.logged_bytes,
                omitted_bytes=log.omitted_bytes,
                flushed_bytes=flushed_bytes,
                boundary_ns=boundary_ns_max,
                clusters=len(clusters),
                footprint_bytes=len(self.machine.memory) * 8,
            )
        )
        if self._telemetry:
            # Interval boundaries are the simulator's natural heartbeat:
            # one liveness frame plus the closing interval's counters.
            _telemetry_mod.emit(
                TaskHeartbeat,
                interval=index,
                instructions=self.n_instructions,
            )
            _telemetry_mod.emit(
                MetricsDelta,
                interval=index,
                counters={
                    "logged_records": len(log.records),
                    "omitted_records": len(log.omitted),
                    "logged_bytes": log.logged_bytes,
                    "flushed_bytes": flushed_bytes,
                },
            )
        if observing:
            if self.trace is not None:
                self.trace.emit(IntervalBoundary(
                    ts_ns=useful_mark_ns, core=-1, index=index,
                ))
                self.trace.emit(CheckpointEnd(
                    ts_ns=wall_ns,
                    core=-1,
                    index=index,
                    duration_ns=wall_ns - wall_before,
                    logged_records=len(log.records),
                    omitted_records=len(log.omitted),
                    logged_bytes=log.logged_bytes,
                    flushed_bytes=flushed_bytes,
                ))
            if self.metrics is not None:
                m = self.metrics
                m.counter("ckpt.count").inc()
                m.histogram("ckpt.logged_bytes").observe(log.logged_bytes)
                m.histogram("ckpt.boundary_ns").observe(boundary_ns_max)
                if self.handler is not None:
                    m.histogram("addrmap.occupancy").observe(sum(
                        a.open_size + a.committed_size
                        for a in self.handler.addrmaps
                    ))
                m.snapshot_interval(index)
        self.store.establish(useful_mark_ns, wall_ns)
        self.machine.directory.clear_log_bits()
        self.machine.directory.clear_interval_tracking()
        if self.handler is not None:
            self.handler.on_checkpoint()

    # ------------------------------------------------------------- recoveries --
    def _do_recovery(
        self, error_index: int, occurred_ns: float, detected_ns: float
    ) -> None:
        """Roll back after the detection of error ``error_index``."""
        n = self.config.num_cores
        err_core = error_index % n
        if self.options.scheme == "local":
            participants = next(
                sorted(g)
                for g in self.machine.directory.communication_groups()
                if err_core in g
            )
        else:
            participants = list(range(n))

        error = ErrorOccurrence(occurred_ns, detected_ns)
        ckpt_times = [c.useful_ns for c in self.store.checkpoints]
        choice = choose_safe_checkpoint(error, ckpt_times)
        logs = self.store.logs_to_rollback(choice.checkpoint_index)
        safe_wall = (
            self.store.checkpoints[choice.checkpoint_index].wall_ns
            if choice.checkpoint_index >= 0
            else 0.0
        )

        wall_now = max(self.useful[c] + self.overhead[c] for c in participants)
        waste_ns = max(0.0, wall_now - safe_wall)
        if self.trace is not None:
            self.trace.emit(RecoveryBegin(
                ts_ns=wall_now,
                core=err_core,
                error_index=error_index,
                safe_checkpoint=choice.checkpoint_index,
            ))
        costs = self.recovery_engine.recovery_costs(
            logs, participants, self.machine.ledger,
            tracer=self.trace, metrics=self.metrics, ts_ns=wall_now,
        )
        new_wall = wall_now + waste_ns + costs.total_ns
        for c in participants:
            self.overhead[c] = new_wall - self.useful[c]
        if self.trace is not None:
            self.trace.emit(RecoveryEnd(
                ts_ns=new_wall,
                core=err_core,
                error_index=error_index,
                duration_ns=new_wall - wall_now,
                waste_ns=waste_ns,
                rollback_ns=costs.rollback_ns,
                recompute_ns=costs.recompute_ns,
            ))
        if self.metrics is not None:
            m = self.metrics
            m.counter("recovery.count").inc()
            m.counter("recovery.restored_records").inc(costs.restored_records)
            m.counter("recovery.recomputed_values").inc(costs.recomputed_values)
            m.histogram("recovery.total_ns").observe(
                waste_ns + costs.total_ns
            )

        self.recoveries.append(
            RecoveryStats(
                error_index=error_index,
                occurred_useful_ns=occurred_ns,
                detected_useful_ns=detected_ns,
                safe_checkpoint=choice.checkpoint_index,
                skipped_corrupted=choice.skipped_corrupted,
                participants=len(participants),
                waste_ns=waste_ns,
                rollback_ns=costs.rollback_ns,
                recompute_ns=costs.recompute_ns,
                restored_records=costs.restored_records,
                recomputed_values=costs.recomputed_values,
                recompute_instructions=costs.recompute_instructions,
            )
        )

    # ------------------------------------------------------------------ main --
    def execute(self) -> RunResult:
        """Run to completion and assemble the result."""
        options = self.options
        n = self.config.num_cores

        if not self.ckpt_enabled:
            with _profile.phase("simulate"):
                for core in range(n):
                    self._run_core_to_completion(core)
            return self._finish()

        profile = options.baseline
        assert profile is not None
        if len(profile.per_core_useful_ns) != n:
            raise ValueError("baseline profile core count mismatch")
        useful_max = profile.useful_ns
        per_core_total = profile.per_core_useful_ns

        # Event timeline in *fractions of useful progress*: boundaries at
        # k/N; error detections per the schedule + detection latency
        # (latency expressed on the useful axis, bounded by one period).
        events: List[Tuple[float, int, Tuple]] = []
        boundary_times = (
            list(options.boundaries)
            if options.boundaries is not None
            else uniform_boundaries(useful_max, options.num_checkpoints)
        )
        for k, t in enumerate(boundary_times):
            events.append((min(t, useful_max) / useful_max, 0, ("ckpt", k)))
        period_ns = useful_max / options.num_checkpoints
        for idx, occurred in enumerate(
            options.errors.occurrence_times(useful_max)
        ):
            occ = options.error_model.occurrence(occurred, period_ns)
            detected = min(occ.detected_ns, useful_max)
            events.append(
                (detected / useful_max, 1, ("error", idx, occ.occurred_ns, detected))
            )
        events.sort(key=lambda e: (e[0], e[1]))

        with _profile.phase("simulate"):
            for frac, _prio, payload in events:
                for core in range(n):
                    self._run_core_to(core, frac * per_core_total[core])
                if payload[0] == "ckpt":
                    self._do_checkpoint(frac * useful_max)
                else:
                    _, idx, occurred_ns, detected_ns = payload
                    self._do_recovery(idx, occurred_ns, detected_ns)

            # Drain any remainder (rounding in per-core targets).
            for core in range(n):
                self._run_core_to_completion(core)
        return self._finish()

    # ------------------------------------------------------------ accounting --
    def _finish(self) -> RunResult:
        """Flush accounting and assemble, under the accounting phase."""
        with _profile.phase("accounting"):
            return self._finish_impl()

    def _finish_impl(self) -> RunResult:
        """Flush bulk energy accounting and build the RunResult."""
        machine = self.machine
        ledger = machine.ledger
        energy = self.energy
        n = self.config.num_cores

        ledger.add("core.alu", self.n_alu * energy.alu_op_pj)
        ledger.add("core.ifetch", self.n_instructions * energy.ifetch_pj)
        ledger.add("mem.l1d", machine.l1d_accesses() * energy.l1d_access_pj)
        ledger.add("mem.l2", machine.l2_accesses() * energy.l2_access_pj)
        demand_lines = machine.memory_accesses()
        evict_lines = max(0, machine.writebacks() - self._flushed_lines_total)
        ledger.add(
            "mem.dram",
            energy.dram_transfer_pj(
                (demand_lines + evict_lines) * self.config.line_bytes
            ),
        )
        if self.handler is not None:
            ledger.add(
                "acr.assoc",
                self.handler.assoc_executed
                * (energy.addrmap_access_pj + energy.handler_op_pj),
            )
            ledger.add(
                "acr.lookup",
                self.handler.omission_lookups * energy.addrmap_access_pj,
            )

        wall_ns = max(
            self.useful[c] + self.overhead[c] for c in range(n)
        )

        # Redo (waste) energy: the dynamic energy of re-executing the lost
        # work, estimated from the run's average dynamic power.
        useful_total = max(self.useful)
        if self.recoveries and useful_total > 0:
            exec_pj = ledger.total_pj("core.") + ledger.total_pj("mem.")
            for rec in self.recoveries:
                share = rec.participants / n
                ledger.add(
                    "rec.waste",
                    exec_pj * (rec.waste_ns / useful_total) * share,
                )

        ledger.add("static.leakage", energy.leakage_pj(n, wall_ns))

        obs: Optional[ObsReport] = None
        if self.metrics is not None:
            obs = ObsReport(
                metrics=self.metrics,
                events_captured=getattr(self.trace, "captured", 0),
                events_dropped=getattr(self.trace, "dropped", 0),
            )

        # Vector-engine coverage: aggregate the per-core counters when
        # the run was driven by VectorCoreRunners (duck-typed — classic
        # interpreters carry no coverage attributes).
        vector_coverage: Optional[Dict[str, int]] = None
        if self.engines and hasattr(self.engines[0], "replayed_iterations"):
            vector_coverage = {
                "replayed_iterations": sum(
                    e.replayed_iterations for e in self.engines
                ),
                "fallback_iterations": sum(
                    e.fallback_iterations for e in self.engines
                ),
            }
            for engine in self.engines:
                for reason, count in engine.fallback_reasons.items():
                    key = f"fallback.{reason}"
                    vector_coverage[key] = vector_coverage.get(key, 0) + count

        handler = self.handler
        return RunResult(
            label=self.options.label,
            scheme=self.options.scheme,
            acr=self.options.acr,
            num_cores=n,
            wall_ns=wall_ns,
            per_core_useful_ns=list(self.useful),
            per_core_overhead_ns=list(self.overhead),
            energy=ledger,
            intervals=self.intervals,
            recoveries=self.recoveries,
            instructions=self.n_instructions,
            alu_ops=self.n_alu,
            loads=self.n_loads,
            stores=self.n_stores,
            assoc_ops=self.n_assoc,
            l1d_accesses=machine.l1d_accesses(),
            l2_accesses=machine.l2_accesses(),
            memory_accesses=machine.memory_accesses(),
            writebacks=machine.writebacks(),
            compile_stats=self.compile_stats,
            addrmap_records=(
                sum(a.records for a in handler.addrmaps) if handler else 0
            ),
            addrmap_rejections=(
                sum(a.rejections for a in handler.addrmaps) if handler else 0
            ),
            omissions=handler.omissions if handler else 0,
            omission_lookups=handler.omission_lookups if handler else 0,
            checkpoint_store=self.store,
            obs=obs,
            vector_coverage=vector_coverage,
        )


def _sum_compile_stats(stats: Sequence[CompileStats]) -> CompileStats:
    """Aggregate per-thread compile statistics."""
    return CompileStats(
        sites_total=sum(s.sites_total for s in stats),
        sites_sliceable=sum(s.sites_sliceable for s in stats),
        sites_embedded=sum(s.sites_embedded for s in stats),
        sites_loop_carried=sum(s.sites_loop_carried for s in stats),
        sites_trivial=sum(s.sites_trivial for s in stats),
        embedded_bytes=sum(s.embedded_bytes for s in stats),
    )
