"""Tests for repro.isa.interpreter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.builder import KernelBuilder, chain_kernel
from repro.isa.instructions import AddressPattern
from repro.isa.interpreter import Interpreter, MemoryImage
from repro.isa.opcodes import MASK64, Opcode
from repro.isa.program import Program

STORE = AddressPattern(0, 1, 16)
INPUT = AddressPattern(4096, 1, 16)


class TestMemoryImage:
    def test_initial_values_deterministic(self):
        a = MemoryImage(5)
        b = MemoryImage(5)
        assert a.read(64) == b.read(64)

    def test_initial_values_differ_by_address(self):
        m = MemoryImage(5)
        assert m.read(0) != m.read(8)

    def test_initial_values_differ_by_seed(self):
        assert MemoryImage(1).read(64) != MemoryImage(2).read(64)

    def test_write_returns_old(self):
        m = MemoryImage(0)
        init = m.read(8)
        assert m.write(8, 123) == init
        assert m.write(8, 456) == 123
        assert m.read(8) == 456

    def test_write_masks_to_64_bits(self):
        m = MemoryImage(0)
        m.write(0, (1 << 70) + 5)
        assert m.read(0) == 5

    def test_snapshot_restore(self):
        m = MemoryImage(0)
        m.write(0, 1)
        snap = m.snapshot()
        m.write(0, 2)
        m.write(8, 3)
        m.restore(snap)
        assert m.read(0) == 1
        assert m.read(8) == m.initial_value(8)
        assert len(m) == 1

    def test_touched_addresses_sorted(self):
        m = MemoryImage(0)
        for a in (64, 0, 32):
            m.write(a, 1)
        assert m.touched_addresses() == [0, 32, 64]

    @given(st.integers(min_value=0, max_value=2**40).map(lambda w: w * 8))
    def test_initial_values_in_range(self, addr):
        assert 0 <= MemoryImage(7).initial_value(addr) <= MASK64


class TestInterpreterBasics:
    def test_movi_add_store(self):
        b = KernelBuilder("k")
        x = b.movi(40)
        y = b.movi(2)
        z = b.alu(Opcode.ADD, x, y)
        b.store(z, AddressPattern(0, 1, 1))
        mem = MemoryImage(0)
        it = Interpreter(Program([b.build(1)]), mem)
        chunk = it.run_to_completion()
        assert mem.read(0) == 42
        assert chunk.alu == 3
        assert chunk.stores == 1
        assert chunk.loads == 0

    def test_load_reads_memory(self):
        mem = MemoryImage(0)
        mem.write(4096, 99)
        k = chain_kernel("k", AddressPattern(0, 1, 1), [AddressPattern(4096, 1, 1)], 0, 1, copy_store=True)
        Interpreter(Program([k]), mem).run_to_completion()
        assert mem.read(0) == 99

    def test_chunked_equals_full(self):
        k = chain_kernel("k", STORE, [INPUT], 4, 50, salt=3)
        m1, m2 = MemoryImage(9), MemoryImage(9)
        Interpreter(Program([k]), m1).run_to_completion(chunk=7)
        Interpreter(Program([k]), m2).run_to_completion(chunk=50)
        assert m1.snapshot() == m2.snapshot()

    def test_step_iterations_counts(self):
        k = chain_kernel("k", STORE, [INPUT], 2, 10)
        it = Interpreter(Program([k]), MemoryImage(0))
        chunk = it.step_iterations(4)
        assert chunk.iterations == 4
        assert chunk.stores == 4
        assert not it.done

    def test_step_crosses_kernel_boundaries(self):
        ks = [chain_kernel(f"k{i}", STORE, [INPUT], 1, 3) for i in range(3)]
        it = Interpreter(Program(ks), MemoryImage(0))
        chunk = it.step_iterations(100)
        assert chunk.iterations == 9
        assert it.done

    def test_step_rejects_nonpositive(self):
        it = Interpreter(Program([chain_kernel("k", STORE, [INPUT], 1, 3)]), MemoryImage(0))
        with pytest.raises(ValueError):
            it.step_iterations(0)

    def test_position_and_phase(self):
        k0 = chain_kernel("a", STORE, [INPUT], 1, 2, phase=0)
        k1 = chain_kernel("b", STORE, [INPUT], 1, 2, phase=5)
        it = Interpreter(Program([k0, k1]), MemoryImage(0))
        assert it.position == (0, 0)
        it.step_iterations(2)
        assert it.position == (1, 0)
        assert it.current_phase == 5

    def test_ghost_alu_counted_not_executed(self):
        k = chain_kernel("k", STORE, [INPUT], 2, 5, ghost_alu=100)
        chunk = Interpreter(Program([k]), MemoryImage(0)).run_to_completion()
        # 2 alu + 1 movi interpreted, plus 100 ghost, per iteration.
        assert chunk.alu == 5 * (3 + 100)
        assert chunk.instructions == chunk.alu + chunk.loads + chunk.stores

    def test_assoc_counted(self):
        import dataclasses
        from repro.isa.instructions import StoreInstr
        from repro.isa.program import Kernel

        k = chain_kernel("k", STORE, [INPUT], 2, 4)
        body = [
            dataclasses.replace(i, assoc=True) if isinstance(i, StoreInstr) else i
            for i in k.body
        ]
        chunk = Interpreter(
            Program([Kernel("k", body, 4)]), MemoryImage(0)
        ).run_to_completion()
        assert chunk.assoc == 4


class TestObservers:
    def test_store_events_carry_old_and_new(self):
        mem = MemoryImage(3)
        events = []
        k = chain_kernel("k", AddressPattern(0, 1, 4), [INPUT], 2, 8, salt=5)
        Interpreter(Program([k]), mem, on_store=events.append).run_to_completion()
        assert len(events) == 8
        # second sweep of the 4-word region: old values = first sweep's new
        by_addr = {}
        for e in events[:4]:
            by_addr[e.address] = e.new_value
        for e in events[4:]:
            assert e.old_value == by_addr[e.address]

    def test_load_events(self):
        loads = []
        k = chain_kernel("k", STORE, [INPUT], 1, 5)
        Interpreter(
            Program([k]), MemoryImage(0), on_load=loads.append
        ).run_to_completion()
        assert len(loads) == 5
        assert all(e.address >= 4096 for e in loads)

    def test_store_event_sites_match_program(self):
        events = []
        p = Program([chain_kernel("k", STORE, [INPUT], 1, 3)])
        Interpreter(p, MemoryImage(0), on_store=events.append).run_to_completion()
        assert {e.site for e in events} == {0}


class TestDeterminism:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_final_memory(self, seed):
        k = chain_kernel("k", STORE, [INPUT], 3, 20, salt=seed)
        m1, m2 = MemoryImage(seed), MemoryImage(seed)
        Interpreter(Program([k]), m1).run_to_completion()
        Interpreter(Program([k]), m2).run_to_completion()
        assert m1.snapshot() == m2.snapshot()

    def test_op_cache_shared_across_interpreters(self):
        p = Program([chain_kernel("k", STORE, [INPUT], 3, 4)])
        m1, m2 = MemoryImage(1), MemoryImage(1)
        Interpreter(p, m1).run_to_completion()
        assert p.op_cache  # populated by the first interpreter
        Interpreter(p, m2).run_to_completion()
        assert m1.snapshot() == m2.snapshot()
