"""Machine assembly: one object owning every microarchitectural component.

A :class:`Machine` is built per run (caches and directories carry run
state).  It owns the functional memory image, the per-core cache
hierarchies and timing models, the shared directory, memory controllers,
NoC, and the energy ledger the run accumulates into.
"""

from __future__ import annotations

from typing import List

from repro.arch.config import MachineConfig
from repro.arch.core import CoreTimingModel
from repro.arch.directory import Directory
from repro.arch.hierarchy import CoreCacheHierarchy
from repro.arch.memctrl import MemorySystem
from repro.arch.noc import MeshNoc
from repro.energy.accounting import EnergyLedger
from repro.energy.model import EnergyModel
from repro.isa.interpreter import MemoryImage

__all__ = ["Machine"]


class Machine:
    """One simulated machine instance (per-run state)."""

    def __init__(
        self,
        config: MachineConfig,
        energy_model: EnergyModel | None = None,
        memory_seed: int = 0,
    ) -> None:
        self.config = config
        self.energy_model = energy_model or EnergyModel()
        self.memory = MemoryImage(memory_seed)
        self.hierarchies: List[CoreCacheHierarchy] = [
            CoreCacheHierarchy(config) for _ in range(config.num_cores)
        ]
        self.directory = Directory(config.num_cores)
        self.memsys = MemorySystem(config)
        self.noc = MeshNoc(config)
        self.timing = CoreTimingModel(config)
        self.ledger = EnergyLedger()

    # -- aggregate cache statistics ------------------------------------------
    def l1d_accesses(self) -> int:
        """Total L1-D accesses across cores."""
        return sum(h.l1d.accesses for h in self.hierarchies)

    def l2_accesses(self) -> int:
        """Total L2 accesses across cores."""
        return sum(h.l2.accesses for h in self.hierarchies)

    def memory_accesses(self) -> int:
        """Total demand line fills from memory."""
        return sum(h.memory_accesses for h in self.hierarchies)

    def writebacks(self) -> int:
        """Total dirty-line write-backs (evictions + flushes)."""
        return sum(h.writebacks for h in self.hierarchies)
