"""Safe-checkpoint selection (paper Fig. 2).

A checkpoint established *after* an error occurred but *before* it was
detected may have captured corrupted state; recovery must target the most
recent checkpoint established at or before the error occurrence.  With
detection latency bounded by the checkpoint period, that checkpoint is at
worst the second most recent — which is exactly why the BER baseline
retains two.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

from repro.errors.model import ErrorOccurrence

__all__ = ["SafeCheckpointChoice", "choose_safe_checkpoint"]


@dataclass(frozen=True, slots=True)
class SafeCheckpointChoice:
    """Outcome of safe-checkpoint selection.

    ``checkpoint_index`` is the index into the checkpoint-time list
    (−1 means "roll back to the initial state": no checkpoint precedes the
    error).  ``skipped_corrupted`` is true when a younger checkpoint
    existed but was suspect (Fig. 2's Ckpt2 case).
    """

    checkpoint_index: int
    skipped_corrupted: bool


def choose_safe_checkpoint(
    error: ErrorOccurrence, checkpoint_times: Sequence[float]
) -> SafeCheckpointChoice:
    """Pick the rollback target for ``error``.

    ``checkpoint_times`` are establishment times, ascending.  A checkpoint
    is *safe* iff it was established at or before the error occurred; any
    checkpoint in ``(occurred, detected]`` is suspect.  Checkpoints are
    only considered if established before detection (later ones cannot
    exist yet at recovery time).

    Boundary tie-breaks (both pinned by regression tests):

    * ``occurred == checkpoint time`` — the checkpoint captured the
      machine state *at* the occurrence instant, i.e. before the error
      could corrupt anything (Fig. 2 draws occurrence strictly inside an
      interval; the boundary case degenerates to "error at interval
      start").  The boundary checkpoint is **safe** and must not be
      skipped as corrupted — ``bisect_right`` includes it.
    * ``detected == checkpoint time`` — a checkpoint established at the
      detection instant is treated as existing (and suspect unless it is
      also at/before the occurrence).  With detection latency exactly one
      period this keeps the safe choice at ``len − 2``, inside the
      two-checkpoint retention horizon.
    """
    times = list(checkpoint_times)
    if sorted(times) != times:
        raise ValueError("checkpoint_times must be ascending")
    # Checkpoints established strictly before detection exist at recovery.
    existing = bisect.bisect_right(times, error.detected_ns)
    # Safe ones were established at or before the occurrence.
    safe = bisect.bisect_right(times, error.occurred_ns, 0, existing)
    return SafeCheckpointChoice(
        checkpoint_index=safe - 1,
        skipped_corrupted=(existing > safe),
    )
