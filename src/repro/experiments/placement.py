"""Recomputation-aware checkpoint placement (the paper's future work).

§V-D1 and §V-D3 both observe that uniformly distributed checkpoints can
land in intervals with few recomputable values, and suggest "adjusting the
time to checkpoint to exploit more recomputation opportunities ... instead
of blindly checkpointing in uniformly distributed intervals".

This module implements that extension: given a *profiling run*'s
per-interval recomputability (measured on a fine uniform grid), it selects
N boundaries that maximise the omittable fraction subject to a bound on
interval stretch (so ``o_waste`` stays bounded), then replays the workload
with the skewed boundaries.

The bench ``benchmarks/bench_placement.py`` compares uniform vs. aware
placement on the temporal-variation-heavy benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim.results import RunResult
from repro.util.validation import check_in_range, check_positive

__all__ = ["PlacementPlan", "aware_boundaries", "profile_reductions"]


@dataclass(frozen=True)
class PlacementPlan:
    """Selected boundary times (useful-ns) and the profile they came from."""

    boundaries: List[float]
    profile_grid: List[float]
    profile_reduction: List[float]


def profile_reductions(profile_run: RunResult) -> List[float]:
    """Per-interval omittable fraction from a fine-grained ACR run."""
    return [iv.reduction for iv in profile_run.intervals]


def aware_boundaries(
    profile_run: RunResult,
    num_checkpoints: int,
    max_stretch: float = 1.6,
) -> PlacementPlan:
    """Pick ``num_checkpoints`` boundaries skewed toward recomputation.

    The profiling run's interval grid provides candidate boundary points
    scored by the recomputability of the interval they *close* (a boundary
    right after a recomputation-rich stretch lets the next interval omit
    those values).  A greedy pass walks the grid keeping intervals within
    ``max_stretch`` of the uniform period while preferring high-scoring
    candidates.

    The final boundary is always the run's end (matching the uniform
    scheme); boundaries are strictly increasing.
    """
    check_positive("num_checkpoints", num_checkpoints)
    check_in_range("max_stretch", max_stretch, 1.0, 4.0)
    grid = [iv.useful_ns for iv in profile_run.intervals]
    scores = profile_reductions(profile_run)
    if len(grid) < num_checkpoints:
        raise ValueError(
            f"profile grid ({len(grid)}) must be finer than the target "
            f"checkpoint count ({num_checkpoints})"
        )
    total = grid[-1]
    period = total / num_checkpoints
    max_gap = period * max_stretch

    boundaries: List[float] = []
    last = 0.0
    candidates = list(zip(grid, scores))
    ci = 0
    for k in range(1, num_checkpoints):
        window = [
            (t, s)
            for t, s in candidates
            if last < t <= last + max_gap and t < total
        ]
        if not window:
            chosen = min(last + period, total - 1e-9)
        else:
            # Prefer the highest-scoring candidate; break ties toward the
            # uniform position to keep waste bounded.
            target = last + period
            chosen = max(
                window, key=lambda ts: (ts[1], -abs(ts[0] - target))
            )[0]
        boundaries.append(chosen)
        last = chosen
    boundaries.append(total)
    return PlacementPlan(boundaries, grid, list(scores))
