"""Figure 1: relative component error rate under technology scaling."""

from _bench_lib import run_once

from repro.experiments.figures import fig1_error_rate


def test_fig1(benchmark, emit):
    fig = run_once(benchmark, fig1_error_rate)
    emit("fig01_error_rate", fig.render())
    rates = fig.series["rates"]
    # Exponential growth, ~8%/generation, normalised to the oldest node.
    assert rates[0] == 1.0
    assert all(b > a for a, b in zip(rates, rates[1:]))
    assert rates[-1] > 1.5
