"""Run statistics and derived metrics.

A :class:`RunResult` captures everything the experiment harness needs:
wall/useful time, the energy ledger, per-interval checkpoint statistics,
per-recovery cost breakdowns, and the compile-pass summary.  The derived
metrics (:func:`time_overhead`, :func:`energy_overhead`,
:meth:`RunResult.overhead_edp`) are the quantities the paper's figures
plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.compiler.embed import CompileStats
from repro.energy.accounting import EnergyLedger

__all__ = [
    "BaselineProfile",
    "IntervalStats",
    "RecoveryStats",
    "RunResult",
    "time_overhead",
    "energy_overhead",
]


@dataclass(frozen=True)
class BaselineProfile:
    """Per-core useful execution profile of an error-free, checkpoint-free
    run; checkpoint boundaries and error times are placed against it."""

    per_core_useful_ns: List[float]

    @property
    def useful_ns(self) -> float:
        """Critical-path useful time (slowest core)."""
        return max(self.per_core_useful_ns)


@dataclass(frozen=True, slots=True)
class IntervalStats:
    """One checkpoint interval's statistics."""

    index: int
    useful_ns: float
    logged_records: int
    omitted_records: int
    logged_bytes: int
    omitted_bytes: int
    flushed_bytes: int
    boundary_ns: float
    clusters: int
    #: Total bytes of memory ever written by this point of the run — the
    #: size a traditional full-snapshot checkpoint would have to copy.
    footprint_bytes: int = 0

    @property
    def baseline_bytes(self) -> int:
        """What the baseline would have logged for this interval."""
        return self.logged_bytes + self.omitted_bytes

    @property
    def reduction(self) -> float:
        """Fractional checkpoint-data reduction ACR achieved here."""
        if self.baseline_bytes == 0:
            return 0.0
        return self.omitted_bytes / self.baseline_bytes


@dataclass(frozen=True, slots=True)
class RecoveryStats:
    """One recovery's statistics."""

    error_index: int
    occurred_useful_ns: float
    detected_useful_ns: float
    safe_checkpoint: int
    skipped_corrupted: bool
    participants: int
    waste_ns: float
    rollback_ns: float
    recompute_ns: float
    restored_records: int
    recomputed_values: int
    recompute_instructions: int

    @property
    def total_ns(self) -> float:
        """Full cost of this recovery (Eq. 2 / Eq. 3 per-event term)."""
        return self.waste_ns + self.rollback_ns + self.recompute_ns


@dataclass
class RunResult:
    """Everything one simulation run produced."""

    label: str
    scheme: str
    acr: bool
    num_cores: int
    wall_ns: float
    per_core_useful_ns: List[float]
    per_core_overhead_ns: List[float]
    energy: EnergyLedger
    intervals: List[IntervalStats]
    recoveries: List[RecoveryStats]
    instructions: int
    alu_ops: int
    loads: int
    stores: int
    assoc_ops: int
    l1d_accesses: int
    l2_accesses: int
    memory_accesses: int
    writebacks: int
    compile_stats: Optional[CompileStats]
    addrmap_records: int
    addrmap_rejections: int
    omissions: int
    omission_lookups: int
    #: The run's checkpoint store (logs pruned to the retention horizon).
    #: Kept for post-run verification: tests recompute every retained
    #: omitted value and compare against ground truth.
    checkpoint_store: object = None

    # -- core quantities -----------------------------------------------------
    @property
    def useful_ns(self) -> float:
        """Critical-path useful time."""
        return max(self.per_core_useful_ns)

    @property
    def overhead_ns(self) -> float:
        """Critical-path overhead time (wall − useful)."""
        return self.wall_ns - self.useful_ns

    @property
    def energy_pj(self) -> float:
        """Total run energy."""
        return self.energy.total_pj()

    def baseline_profile(self) -> BaselineProfile:
        """Profile for boundary/error placement of dependent runs."""
        return BaselineProfile(list(self.per_core_useful_ns))

    # -- checkpoint statistics -------------------------------------------------
    @property
    def checkpoint_count(self) -> int:
        """Checkpoints established."""
        return len(self.intervals)

    @property
    def total_checkpoint_bytes(self) -> int:
        """Total logged checkpoint data (ACR omissions excluded)."""
        return sum(iv.logged_bytes for iv in self.intervals)

    @property
    def total_baseline_checkpoint_bytes(self) -> int:
        """Checkpoint data a non-ACR baseline would have logged."""
        return sum(iv.baseline_bytes for iv in self.intervals)

    @property
    def max_checkpoint_bytes(self) -> int:
        """Largest single checkpoint (paper Fig. 9 'Max' metric)."""
        return max((iv.logged_bytes for iv in self.intervals), default=0)

    @property
    def checkpoint_time_ns(self) -> float:
        """Boundary time plus in-interval log-write stalls (critical path).

        This is the o_chk component attributable to checkpointing; it is
        folded into per-core overhead already — exposed here for reports.
        """
        return sum(iv.boundary_ns for iv in self.intervals)

    # -- recovery statistics ----------------------------------------------------
    @property
    def recovery_count(self) -> int:
        """Recoveries performed."""
        return len(self.recoveries)

    @property
    def recovery_time_ns(self) -> float:
        """Total recovery time (waste + rollback + recomputation)."""
        return sum(r.total_ns for r in self.recoveries)

    def describe(self) -> str:  # pragma: no cover - convenience output
        """One-line human summary."""
        return (
            f"{self.label}: wall={self.wall_ns / 1e3:.1f}us "
            f"useful={self.useful_ns / 1e3:.1f}us "
            f"ckpts={self.checkpoint_count} "
            f"ckpt_data={self.total_checkpoint_bytes / 1024:.1f}KiB "
            f"recoveries={self.recovery_count} "
            f"energy={self.energy_pj / 1e6:.2f}uJ"
        )


def time_overhead(run: RunResult, baseline: RunResult) -> float:
    """Fractional execution-time overhead of ``run`` w.r.t. ``baseline``.

    The paper's Figs. 6/11/12 plot exactly this quantity (w.r.t. NoCkpt).
    """
    if baseline.wall_ns <= 0:
        raise ValueError("baseline wall time must be positive")
    return run.wall_ns / baseline.wall_ns - 1.0


def energy_overhead(run: RunResult, baseline: RunResult) -> float:
    """Fractional energy overhead of ``run`` w.r.t. ``baseline`` (Fig. 7)."""
    base = baseline.energy_pj
    if base <= 0:
        raise ValueError("baseline energy must be positive")
    return run.energy_pj / base - 1.0
