"""Functional interpreter for IR programs.

The interpreter executes kernels iteration by iteration over a shared
:class:`MemoryImage`, producing real 64-bit values.  It is deliberately
minimal: *timing* and *energy* are not computed here — the simulator
observes memory events through callbacks and accounts for them against its
machine model.  This separation keeps the functional semantics (needed for
recomputation-correctness testing) independent from any particular
microarchitecture.

The interpreter supports chunked execution (`step_iterations`) so the
simulator can pause threads at checkpoint-interval boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.instructions import AluInstr, LoadInstr, MoviInstr
from repro.isa.opcodes import MASK64
from repro.isa.program import Program

__all__ = ["MemoryImage", "Interpreter", "StoreEvent", "LoadEvent", "ExecChunk"]

_INIT_MIX = 0x9E3779B97F4A7C15


@dataclass(frozen=True, slots=True)
class LoadEvent:
    """A dynamic load: thread id and byte address."""

    thread: int
    address: int


@dataclass(frozen=True, slots=True)
class StoreEvent:
    """A dynamic store.

    ``regs`` is the *live* register file of the executing kernel at the
    moment of the store; observers that need operand values (the ACR
    checkpoint handler snapshotting Slice inputs) must copy them out
    immediately — the list mutates as execution continues.
    """

    thread: int
    site: int
    address: int
    old_value: int
    new_value: int
    iteration: int
    regs: List[int]


@dataclass(frozen=True, slots=True)
class ExecChunk:
    """Dynamic instruction counts for an executed chunk."""

    iterations: int
    alu: int
    loads: int
    stores: int
    assoc: int

    @property
    def instructions(self) -> int:
        """Total dynamic instructions in the chunk (ASSOC-ADDR included)."""
        return self.alu + self.loads + self.stores + self.assoc


class MemoryImage:
    """Word-granular functional memory with deterministic initial contents.

    An untouched word reads as a pseudo-random but reproducible function of
    its address and the image seed, so the "old value" logged on the very
    first write to a line is well defined (and differs per address, which
    keeps checkpoint-content tests honest).
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed & MASK64
        self._words: Dict[int, int] = {}

    def initial_value(self, address: int) -> int:
        """The value an address holds before any store touches it."""
        x = (address * _INIT_MIX + self.seed) & MASK64
        x ^= x >> 29
        return (x * _INIT_MIX) & MASK64

    def read(self, address: int) -> int:
        """Read the word at ``address``."""
        value = self._words.get(address)
        if value is None:
            return self.initial_value(address)
        return value

    def write(self, address: int, value: int) -> int:
        """Write the word at ``address``; returns the *old* value."""
        old = self.read(address)
        self._words[address] = value & MASK64
        return old

    def touched_addresses(self) -> List[int]:
        """All addresses that were ever written (sorted)."""
        return sorted(self._words)

    def words_map(self) -> Dict[int, int]:
        """The live written-word dict, for engines inlining read/write.

        Note :meth:`restore` *rebinds* the dict — engines must re-fetch
        this per execution segment rather than hold it across a rollback.
        """
        return self._words

    def snapshot(self) -> Dict[int, int]:
        """Copy of the written-word map (tests use this for equivalence)."""
        return dict(self._words)

    def restore(self, snap: Dict[int, int]) -> None:
        """Replace the written-word map with ``snap``."""
        self._words = dict(snap)

    def __len__(self) -> int:
        return len(self._words)


class Interpreter:
    """Executes one thread's :class:`Program` over a shared memory image.

    Parameters
    ----------
    program, memory:
        What to run and where values live.
    on_load, on_store:
        Optional observers invoked for every dynamic memory access.  The
        store observer may return ``None``; its return value is ignored.
    """

    def __init__(
        self,
        program: Program,
        memory: MemoryImage,
        on_load: Optional[Callable[[LoadEvent], None]] = None,
        on_store: Optional[Callable[[StoreEvent], None]] = None,
    ) -> None:
        self.program = program
        self.memory = memory
        self.on_load = on_load
        self.on_store = on_store
        self._kernel_index = 0
        self._iteration = 0
        self._regs: List[int] = []
        self._ops: List[tuple] = []
        self._prepare_kernel()

    # -- state ---------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once every kernel has run to completion."""
        return self._kernel_index >= len(self.program.kernels)

    @property
    def position(self) -> Tuple[int, int]:
        """(kernel index, next iteration) — useful in tests and traces."""
        return (self._kernel_index, self._iteration)

    @property
    def current_phase(self) -> int:
        """Phase tag of the kernel currently executing (last phase if done)."""
        if self.done:
            return self.program.kernels[-1].phase
        return self.program.kernels[self._kernel_index].phase

    def arch_state(self) -> Tuple[int, int, List[int]]:
        """Snapshot of the architectural state: (kernel, iteration, regs).

        Together with a memory restore this is everything a rollback
        needs to resume the thread from a checkpoint — the paper's
        "architectural state" payload of a checkpoint, functionally.
        """
        return (self._kernel_index, self._iteration, list(self._regs))

    def restore_arch_state(self, state: Tuple[int, int, List[int]]) -> None:
        """Rewind (or fast-forward) to a state from :meth:`arch_state`.

        The register file is replaced wholesale; the kernel's compiled
        ops are re-resolved through the program's op cache.
        """
        kernel_index, iteration, regs = state
        if kernel_index < 0 or kernel_index > len(self.program.kernels):
            raise ValueError(f"bad kernel index {kernel_index}")
        self._kernel_index = kernel_index
        self._prepare_kernel()
        if not self.done:
            self._iteration = iteration
            self._regs = list(regs)

    def adopt_arch_state(self, state: Tuple[int, int, List[int]]) -> None:
        """Install state captured from an *identical deterministic
        prefix* (simulator snapshot fork).

        Functionally :meth:`restore_arch_state`; the distinct entry
        point lets accelerated subclasses skip the pessimism a restore
        implies — an adopted state is exactly what straight-through
        execution would hold here, never an externally perturbed one.
        """
        self.restore_arch_state(state)

    def _prepare_kernel(self) -> None:
        """Size the register file and precompile the body for dispatch.

        Each instruction becomes a tuple with a small integer tag; the
        hot loop then avoids isinstance checks, dataclass attribute
        lookups and per-access ``AddressPattern.address`` calls.
        """
        from repro.isa.opcodes import BINARY_SEMANTICS

        while self._kernel_index < len(self.program.kernels):
            cached = self.program.op_cache.get(self._kernel_index)
            if cached is not None:
                width, ops = cached
                self._regs = [0] * (width + 1)
                self._ops = ops
                self._iteration = 0
                return
            kernel = self.program.kernels[self._kernel_index]
            width = 0
            ops: List[tuple] = []
            for ins in kernel.body:
                if isinstance(ins, AluInstr):
                    width = max(width, ins.dst, ins.src_a, ins.src_b)
                    ops.append(
                        (1, BINARY_SEMANTICS[ins.op], ins.dst, ins.src_a, ins.src_b)
                    )
                elif isinstance(ins, MoviInstr):
                    width = max(width, ins.dst)
                    ops.append((0, ins.dst, ins.imm & MASK64))
                elif isinstance(ins, LoadInstr):
                    width = max(width, ins.dst)
                    p = ins.pattern
                    ops.append((2, ins.dst, p.base, p.stride, p.length, p.offset))
                else:  # StoreInstr
                    width = max(width, ins.src)
                    p = ins.pattern
                    ops.append(
                        (
                            3,
                            ins.src,
                            p.base,
                            p.stride,
                            p.length,
                            p.offset,
                            ins.site,
                            ins.assoc,
                        )
                    )
            self.program.op_cache[self._kernel_index] = (width, ops)
            self._regs = [0] * (width + 1)
            self._ops = ops
            self._iteration = 0
            return

    # -- execution -------------------------------------------------------------
    def step_iterations(self, max_iterations: int) -> ExecChunk:
        """Execute up to ``max_iterations`` loop iterations.

        Crosses kernel boundaries as needed; stops early when the program
        finishes.  Returns the dynamic instruction counts of the chunk.
        """
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        iterations = alu = loads = stores = assoc = 0
        memory = self.memory
        on_load = self.on_load
        on_store = self.on_store
        thread = self.program.thread_id

        mem_read = memory.read
        mem_write = memory.write
        while iterations < max_iterations and not self.done:
            kernel = self.program.kernels[self._kernel_index]
            ops = self._ops
            remaining_here = kernel.trip_count - self._iteration
            budget = min(remaining_here, max_iterations - iterations)
            # Ghost instructions: charged, never interpreted (see Kernel).
            alu += budget * kernel.ghost_alu
            regs = self._regs
            i = self._iteration
            for _ in range(budget):
                for op in ops:
                    tag = op[0]
                    if tag == 1:  # ALU
                        regs[op[2]] = op[1](regs[op[3]], regs[op[4]])
                        alu += 1
                    elif tag == 2:  # LOAD
                        addr = op[2] + ((op[5] + i * op[3]) % op[4]) * 8
                        regs[op[1]] = mem_read(addr)
                        loads += 1
                        if on_load is not None:
                            on_load(LoadEvent(thread, addr))
                    elif tag == 3:  # STORE
                        addr = op[2] + ((op[5] + i * op[3]) % op[4]) * 8
                        new_value = regs[op[1]]
                        old_value = mem_write(addr, new_value)
                        stores += 1
                        if op[7]:
                            assoc += 1
                        if on_store is not None:
                            on_store(
                                StoreEvent(
                                    thread,
                                    op[6],
                                    addr,
                                    old_value,
                                    new_value,
                                    i,
                                    regs,
                                )
                            )
                    else:  # MOVI
                        regs[op[1]] = op[2]
                        alu += 1
                i += 1
            self._iteration = i
            iterations += budget
            if self._iteration >= kernel.trip_count:
                self._kernel_index += 1
                self._prepare_kernel()
        return ExecChunk(iterations, alu, loads, stores, assoc)

    def run_to_completion(self, chunk: int = 4096) -> ExecChunk:
        """Run the whole program; returns aggregate counts."""
        total_it = total_alu = total_ld = total_st = total_as = 0
        while not self.done:
            c = self.step_iterations(chunk)
            total_it += c.iterations
            total_alu += c.alu
            total_ld += c.loads
            total_st += c.stores
            total_as += c.assoc
        return ExecChunk(total_it, total_alu, total_ld, total_st, total_as)
