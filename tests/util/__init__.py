"""Test package."""
