"""Monitor rendering: dumb-terminal blocks, rate limiting, replay."""

import io

from repro.obs.telemetry.aggregate import CampaignTelemetry
from repro.obs.telemetry.frames import TaskHeartbeat, TaskStarted
from repro.obs.telemetry.monitor import Monitor, render_snapshot, replay
from repro.obs.telemetry.snapshots import SnapshotWriter


def _telemetry():
    tele = CampaignTelemetry()
    tele.on_frame(TaskStarted(ts_s=1.0, task="bt/Ckpt_E", pid=7), worker=0)
    tele.on_frame(TaskHeartbeat(ts_s=1.5, task="bt/Ckpt_E", interval=2,
                                instructions=5000))
    tele.update_pool(workers=2, busy=1, queue_depth=3)
    return tele


class TestRenderSnapshot:
    def test_renders_the_core_lines(self):
        block = render_snapshot(_telemetry().snapshot())
        assert "campaign telemetry" in block
        assert "pool: 2 workers, 1 busy" in block
        assert "tasks: 1 started, 0 finished, 1 active" in block
        assert "active: bt/Ckpt_E" in block
        assert "sim-iterations/s" in block

    def test_inline_execution_renders_without_pool(self):
        block = render_snapshot(CampaignTelemetry().snapshot())
        assert "inline execution" in block

    def test_active_list_caps_at_four(self):
        tele = CampaignTelemetry()
        for i in range(6):
            tele.on_frame(TaskStarted(ts_s=1.0, task=f"t{i}", pid=i))
        block = render_snapshot(tele.snapshot())
        assert "(+2 more)" in block

    def test_renders_from_deserialized_snapshots_identically(self, tmp_path):
        # Live and replayed output must match: both render the dict.
        tele = _telemetry()
        snap = tele.snapshot()
        writer = SnapshotWriter(tmp_path / "t.jsonl")
        writer.write(snap)
        from repro.obs.telemetry.snapshots import read_snapshots

        [loaded] = read_snapshots(tmp_path / "t.jsonl")
        loaded = {k: v for k, v in loaded.items() if k not in ("v", "kind")}
        assert render_snapshot(loaded) == render_snapshot(snap)


class TestMonitor:
    def test_plain_blocks_on_non_tty(self, monkeypatch):
        monkeypatch.setenv("TERM", "dumb")
        out = io.StringIO()
        monitor = Monitor(stream=out, refresh_s=0.0)
        monitor.render(_telemetry().snapshot())
        text = out.getvalue()
        assert "\x1b[" not in text
        assert text.startswith("-" * 64)
        assert monitor.renders == 1

    def test_update_rate_limits_on_injected_clock(self):
        clock_t = [0.0]
        out = io.StringIO()
        monitor = Monitor(stream=out, refresh_s=0.5,
                          clock=lambda: clock_t[0])
        tele = _telemetry()
        monitor.attach(tele)
        tele.on_frame(TaskHeartbeat(ts_s=2.0, task="bt/Ckpt_E", interval=3,
                                    instructions=6000))
        assert monitor.renders == 1
        tele.on_frame(TaskHeartbeat(ts_s=2.1, task="bt/Ckpt_E", interval=4,
                                    instructions=7000))
        assert monitor.renders == 1  # within refresh window
        clock_t[0] = 1.0
        tele.on_frame(TaskHeartbeat(ts_s=2.2, task="bt/Ckpt_E", interval=5,
                                    instructions=8000))
        assert monitor.renders == 2

    def test_finish_always_renders_plain(self, monkeypatch):
        monkeypatch.setenv("TERM", "xterm-256color")
        out = io.StringIO()  # not a tty: still plain
        monitor = Monitor(stream=out)
        monitor.finish(_telemetry().snapshot())
        assert "\x1b[" not in out.getvalue()
        assert "campaign telemetry" in out.getvalue()


class TestReplay:
    def test_missing_file_exits_2(self, tmp_path):
        out = io.StringIO()
        assert replay(tmp_path / "absent.jsonl", stream=out) == 2
        assert "no snapshot file" in out.getvalue()

    def test_empty_stream_exits_1(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        out = io.StringIO()
        assert replay(path, stream=out) == 1
        assert "no committed snapshots" in out.getvalue()

    def test_replay_renders_every_snapshot_and_a_summary(self, tmp_path):
        tele = _telemetry()
        writer = SnapshotWriter(tmp_path / "t.jsonl", min_interval_s=0.0)
        writer.write(tele.snapshot())
        tele.on_frame(TaskStarted(ts_s=3.0, task="is/Ckpt_E", pid=8))
        writer.write(tele.snapshot())
        out = io.StringIO()
        assert replay(tmp_path / "t.jsonl", stream=out) == 0
        text = out.getvalue()
        assert text.count("campaign telemetry") == 2
        assert "replayed 2 snapshots" in text

    def test_torn_tail_still_replays_committed_prefix(self, tmp_path):
        writer = SnapshotWriter(tmp_path / "t.jsonl", min_interval_s=0.0)
        writer.write(_telemetry().snapshot())
        with open(writer.path, "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "kind": "telemetry-snapsh')  # crash mid-write
        out = io.StringIO()
        assert replay(writer.path, stream=out) == 0
        assert "replayed 1 snapshots" in out.getvalue()
