"""Tests for repro.ckpt.checkpoint (retention and rollback planning)."""

import pytest

from repro.ckpt.checkpoint import RETAINED_CHECKPOINTS, CheckpointStore


def store_with(n_ckpts, records_per_interval=2, cores=4):
    s = CheckpointStore(arch_bytes_per_core=1024, num_cores=cores)
    for k in range(n_ckpts):
        for r in range(records_per_interval):
            s.current_log.add_record(k * 1000 + r * 8, k, core=0)
        s.establish(useful_ns=float(k + 1) * 100, wall_ns=float(k + 1) * 120)
    return s


class TestEstablish:
    def test_metadata(self):
        s = store_with(1)
        ck = s.checkpoints[0]
        assert ck.index == 0
        assert ck.useful_ns == 100.0
        assert ck.data_bytes == 2 * 16
        assert ck.arch_bytes == 4 * 1024
        assert ck.total_bytes == ck.data_bytes + ck.arch_bytes

    def test_new_log_opened(self):
        s = store_with(1)
        assert s.current_log.interval_index == 1
        assert s.current_log.logged_bytes == 0

    def test_participants_subset(self):
        s = CheckpointStore(1024, 8)
        ck = s.establish(1.0, 1.0, participants=frozenset({0, 1}))
        assert ck.arch_bytes == 2 * 1024

    def test_size_stats(self):
        s = store_with(3)
        assert s.count == 3
        assert s.data_sizes() == [32, 32, 32]
        assert s.total_data_bytes() == 96
        assert s.max_data_bytes() == 32


class TestRetention:
    def test_old_log_payloads_pruned(self):
        s = store_with(5)
        for ck in s.checkpoints[:-RETAINED_CHECKPOINTS]:
            assert ck.log.records == []
        for ck in s.checkpoints[-RETAINED_CHECKPOINTS:]:
            assert ck.log.records != []

    def test_size_metadata_survives_pruning(self):
        s = store_with(5)
        assert s.checkpoints[0].data_bytes == 32


class TestRollbackPlanning:
    def test_rollback_to_most_recent(self):
        s = store_with(3)
        s.current_log.add_record(9000, 9, core=0)
        logs = s.logs_to_rollback(2)
        assert [l.interval_index for l in logs] == [3]
        assert logs[0] is s.current_log

    def test_rollback_two_back(self):
        s = store_with(3)
        logs = s.logs_to_rollback(1)
        assert [l.interval_index for l in logs] == [3, 2]

    def test_beyond_retention_rejected(self):
        s = store_with(5)
        with pytest.raises(ValueError, match="retention"):
            s.logs_to_rollback(1)

    def test_not_established_rejected(self):
        s = store_with(2)
        with pytest.raises(ValueError):
            s.logs_to_rollback(5)

    def test_rollback_to_initial_state_when_few_checkpoints(self):
        s = store_with(1)
        logs = s.logs_to_rollback(-1)
        assert [l.interval_index for l in logs] == [1, 0]

    def test_rollback_newest_first_ordering(self):
        s = store_with(2)
        logs = s.logs_to_rollback(0)
        indices = [l.interval_index for l in logs]
        assert indices == sorted(indices, reverse=True)
