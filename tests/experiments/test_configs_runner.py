"""Tests for repro.experiments.configs and runner."""

import dataclasses

import pytest

from repro.arch.config import MachineConfig
from repro.experiments.cache import run_cache_key
from repro.experiments.configs import CONFIG_NAMES, ConfigRequest, make_options
from repro.experiments.runner import ExperimentRunner
from repro.sim.results import BaselineProfile


class TestConfigRequest:
    def test_all_nine_names(self):
        assert len(CONFIG_NAMES) == 9
        for name in CONFIG_NAMES:
            ConfigRequest(name)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            ConfigRequest("Ckpt_Quantum")

    @pytest.mark.parametrize(
        "name,scheme,acr,errors",
        [
            ("NoCkpt", "none", False, False),
            ("Ckpt_NE", "global", False, False),
            ("Ckpt_E", "global", False, True),
            ("ReCkpt_NE", "global", True, False),
            ("ReCkpt_E", "global", True, True),
            ("Ckpt_NE_Loc", "local", False, False),
            ("Ckpt_E_Loc", "local", False, True),
            ("ReCkpt_NE_Loc", "local", True, False),
            ("ReCkpt_E_Loc", "local", True, True),
        ],
    )
    def test_semantics(self, name, scheme, acr, errors):
        req = ConfigRequest(name)
        assert req.scheme == scheme
        assert req.acr == acr
        assert req.with_errors == errors

    def test_make_options_baseline(self):
        opts = make_options(ConfigRequest("NoCkpt"), None)
        assert opts.scheme == "none"

    def test_make_options_errors(self):
        prof = BaselineProfile([100.0])
        opts = make_options(ConfigRequest("ReCkpt_E", error_count=3), prof)
        assert opts.acr
        assert len(opts.errors.occurrence_times(100.0)) == 3

    def test_request_hashable_for_caching(self):
        a = ConfigRequest("Ckpt_NE", num_checkpoints=25)
        b = ConfigRequest("Ckpt_NE", num_checkpoints=25)
        assert a == b and hash(a) == hash(b)

    def test_memory_seed_reaches_simulation_options(self):
        opts = make_options(ConfigRequest("NoCkpt", memory_seed=7), None)
        assert opts.memory_seed == 7
        prof = BaselineProfile([100.0])
        opts = make_options(
            ConfigRequest("Ckpt_NE", memory_seed=7), prof
        )
        assert opts.memory_seed == 7

    def test_negative_memory_seed_rejected(self):
        with pytest.raises(ValueError):
            ConfigRequest("Ckpt_NE", memory_seed=-1)


class TestCacheKeyCompleteness:
    """Audit: every ConfigRequest field (and every runner scale knob)
    perturbs the persistent cache key — no two distinct runs may alias."""

    MACHINE = MachineConfig(num_cores=2)
    BASE = ConfigRequest("Ckpt_NE")

    def _key(self, request=None, workload="bt", machine=None,
             region_scale=0.5, reps=12):
        return run_cache_key(
            workload,
            request if request is not None else self.BASE,
            machine if machine is not None else self.MACHINE,
            region_scale,
            reps,
        )

    @pytest.mark.parametrize(
        "field", [f.name for f in dataclasses.fields(ConfigRequest)]
    )
    def test_every_request_field_perturbs_the_key(self, field):
        value = getattr(self.BASE, field)
        new = "ReCkpt_E" if field == "config" else value + 1
        other = dataclasses.replace(self.BASE, **{field: new})
        assert other != self.BASE
        assert other.canonical_key() != self.BASE.canonical_key()
        assert self._key(request=other) != self._key()

    def test_canonical_key_covers_every_field(self):
        names = {name for name, _ in self.BASE.canonical_key()}
        assert names == {f.name for f in dataclasses.fields(ConfigRequest)}

    def test_environment_knobs_perturb_the_key(self):
        base = self._key()
        assert self._key(workload="is") != base
        assert self._key(region_scale=0.25) != base
        assert self._key(reps=13) != base
        assert self._key(reps=None) != base
        assert self._key(machine=MachineConfig(num_cores=4)) != base
        assert (
            self._key(machine=MachineConfig(num_cores=2, mem_latency_ns=121.0))
            != base
        )

    def test_key_is_stable_for_equal_inputs(self):
        assert self._key() == self._key(request=ConfigRequest("Ckpt_NE"))


@pytest.fixture(scope="module")
def small_runner():
    return ExperimentRunner(num_cores=2, region_scale=0.1, reps=12)


class TestExperimentRunner:
    def test_memoisation(self, small_runner):
        a = small_runner.run("bt", ConfigRequest("Ckpt_NE", num_checkpoints=6))
        b = small_runner.run("bt", ConfigRequest("Ckpt_NE", num_checkpoints=6))
        assert a is b

    def test_distinct_requests_distinct_runs(self, small_runner):
        a = small_runner.run("bt", ConfigRequest("Ckpt_NE", num_checkpoints=6))
        c = small_runner.run("bt", ConfigRequest("Ckpt_NE", num_checkpoints=12))
        assert a is not c
        assert c.checkpoint_count == 12

    def test_default_threshold_lookup(self, small_runner):
        assert small_runner.default_threshold("is") == 5
        assert small_runner.default_threshold("bt") == 10

    def test_overhead_helpers(self, small_runner):
        req = ConfigRequest("Ckpt_NE", num_checkpoints=6)
        assert small_runner.time_overhead("bt", req) > 0
        assert small_runner.energy_overhead("bt", req) > 0

    def test_core_count_mismatch_rejected(self):
        from repro.arch.config import MachineConfig

        with pytest.raises(ValueError):
            ExperimentRunner(num_cores=4, machine=MachineConfig(num_cores=8))

    def test_workloads_list(self, small_runner):
        assert "is" in small_runner.workloads()
