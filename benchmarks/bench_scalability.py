"""§V-D4: scalability with thread count (8/16/32).

Paper shape: average checkpointing overhead grows with core count
(≈45/55/60% at 8/16/32 threads) and ACR's reduction persists at every
scale.  To keep the bench tractable the 16- and 32-core sweeps use a
representative benchmark subset at a reduced region scale — ratios, not
absolute magnitudes, carry the claim.
"""

import os

from _bench_lib import BENCH_REPS, run_once

from repro.experiments.figures import scalability

SCALE = float(os.environ.get("REPRO_BENCH_SCALE_SCALABILITY", "0.5"))
WORKLOADS = ("bt", "ft", "is", "mg")


def test_scalability(benchmark, emit):
    fig = run_once(
        benchmark,
        lambda: scalability(
            core_counts=(8, 16, 32),
            region_scale=SCALE,
            reps=BENCH_REPS,
            workloads=WORKLOADS,
        ),
    )
    emit("scalability", fig.render())
    s = fig.series

    def avg_overhead(cores):
        return sum(v["Ckpt_NE"] for v in s[cores].values()) / len(s[cores])

    # Checkpointing overhead grows with core count.
    assert avg_overhead(8) < avg_overhead(16) < avg_overhead(32)

    # ACR keeps reducing overhead at every scale.
    for cores in (8, 16, 32):
        for wl, v in s[cores].items():
            assert v["red"] > 0, (cores, wl)
