"""Unit tests for workload kernel builders (site/shared/burst)."""

from repro.isa.instructions import LoadInstr, StoreInstr
from repro.workloads.kernels import (
    assign_sites,
    burst_kernels,
    shared_kernel,
    site_kernel,
)
from repro.workloads.spec import BurstSpec

from tests.conftest import tiny_workload


def stores_of(kernel):
    return [i for i in kernel.body if isinstance(i, StoreInstr)]


class TestSiteKernel:
    def setup_method(self):
        self.spec = tiny_workload()
        self.assignments = assign_sites(self.spec, 64)

    def test_window_addresses(self):
        a = next(x for x in self.assignments if x.kind == "chain" and not x.sparse)
        k = site_kernel(
            self.spec, a, thread=0, rep=0, active_words=8,
            window_offset=2, window_words=4,
        )
        store = stores_of(k)[0]
        addrs = {store.pattern.address(i) for i in range(k.trip_count)}
        assert len(addrs) == 4
        base = store.pattern.base
        assert addrs == {base + (2 + j) * 8 for j in range(4)}

    def test_window_wraps_modulo_active(self):
        a = next(x for x in self.assignments if x.kind == "chain" and not x.sparse)
        k = site_kernel(
            self.spec, a, thread=0, rep=0, active_words=4,
            window_offset=3, window_words=2,
        )
        store = stores_of(k)[0]
        addrs = sorted(
            store.pattern.address(i) - store.pattern.base
            for i in range(k.trip_count)
        )
        assert addrs == [0, 24]  # words 3 and 0 (wrapped)

    def test_sparse_site_one_word_per_line(self):
        sparse = next(x for x in self.assignments if x.sparse)
        k = site_kernel(
            self.spec, sparse, thread=0, rep=0, active_words=4,
            window_offset=0, window_words=4,
        )
        store = stores_of(k)[0]
        lines = {store.pattern.address(i) // 64 for i in range(4)}
        assert len(lines) == 4

    def test_threads_disjoint(self):
        a = self.assignments[0]
        k0 = site_kernel(self.spec, a, 0, 0, 8, 0, 4)
        k1 = site_kernel(self.spec, a, 1, 0, 8, 0, 4)
        assert stores_of(k0)[0].pattern.base != stores_of(k1)[0].pattern.base


class TestSharedKernel:
    def test_same_cluster_shares_loads(self):
        spec = tiny_workload(cluster_size=2)
        k0 = shared_kernel(spec, thread=0, rep=0, cluster=0, member=0)
        k1 = shared_kernel(spec, thread=1, rep=0, cluster=0, member=1)
        load0 = [i for i in k0.body if isinstance(i, LoadInstr)][0]
        load1 = [i for i in k1.body if isinstance(i, LoadInstr)][0]
        assert load0.pattern.base == load1.pattern.base

    def test_different_clusters_disjoint(self):
        spec = tiny_workload(cluster_size=2)
        k0 = shared_kernel(spec, 0, 0, cluster=0, member=0)
        k2 = shared_kernel(spec, 2, 0, cluster=1, member=0)
        load0 = [i for i in k0.body if isinstance(i, LoadInstr)][0]
        load2 = [i for i in k2.body if isinstance(i, LoadInstr)][0]
        assert load0.pattern.base != load2.pattern.base

    def test_store_slots_disjoint_per_member(self):
        spec = tiny_workload(cluster_size=2)
        k0 = shared_kernel(spec, 0, 0, cluster=0, member=0)
        k1 = shared_kernel(spec, 1, 0, cluster=0, member=1)
        s0, s1 = stores_of(k0)[0], stores_of(k1)[0]
        a0 = {s0.pattern.address(i) for i in range(k0.trip_count)}
        a1 = {s1.pattern.address(i) for i in range(k1.trip_count)}
        assert not (a0 & a1)

    def test_shared_store_not_sliceable(self):
        """Shared data must never be omittable (thread-local-only rule)."""
        from repro.compiler.embed import compile_program
        from repro.isa.program import Program

        spec = tiny_workload(cluster_size=2)
        k = shared_kernel(spec, 0, 0, cluster=0, member=0)
        cp = compile_program(Program([k]))
        assert cp.stats.sites_embedded == 0
        assert cp.stats.sites_trivial == 1


class TestBurstKernels:
    def test_burst_stays_in_thread_window(self):
        spec = tiny_workload()
        burst = BurstSpec(0.9, 3.0, "chain", 5, 10)
        for thread in (0, 7):
            kernels = burst_kernels(
                spec, burst, thread=thread, rep=0, pass_index=0, region_words=64
            )
            lo = (thread + 1) << 30
            hi = (thread + 2) << 30
            for k in kernels:
                for s in stores_of(k):
                    assert lo <= s.pattern.base < hi, (thread, s.pattern.base)

    def test_passes_share_addresses(self):
        spec = tiny_workload()
        burst = BurstSpec(0.5, 2.0, "chain", 5, 10, passes=2)
        k0 = burst_kernels(spec, burst, 0, 0, pass_index=0, region_words=64)
        k1 = burst_kernels(spec, burst, 0, 1, pass_index=1, region_words=64)
        assert stores_of(k0[0])[0].pattern.base == stores_of(k1[0])[0].pattern.base

    def test_chain_lengths_span_range(self):
        from repro.compiler.embed import compile_program
        from repro.compiler.policy import ThresholdPolicy
        from repro.isa.program import Program

        spec = tiny_workload()
        burst = BurstSpec(0.5, 2.0, "chain", 12, 20)
        kernels = burst_kernels(spec, burst, 0, 0, 0, region_words=64)
        cp = compile_program(Program(kernels), ThresholdPolicy(50))
        lengths = sorted(cp.slices.length_histogram())
        assert lengths[0] >= 12 and lengths[-1] <= 20

    def test_copy_burst_not_sliceable(self):
        from repro.compiler.embed import compile_program
        from repro.isa.program import Program

        spec = tiny_workload()
        burst = BurstSpec(0.5, 2.0, "copy")
        kernels = burst_kernels(spec, burst, 0, 0, 0, region_words=64)
        cp = compile_program(Program(kernels))
        assert cp.stats.sites_embedded == 0
