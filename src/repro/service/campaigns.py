"""Campaign specifications and the deterministic campaign report.

A :class:`CampaignSpec` is the unit of submission: a cross product of
workloads × configurations plus every shape knob that reaches the cache
key, serialisable over the wire with a strict inverse.  Two clients
submitting equal specs name exactly the same canonical key set — the
in-flight registry dedupes on that, and :func:`campaign_report` renders
the outcome as a deterministic JSON document (simulated quantities only,
sorted runs, a self-certifying digest) so reports from the service, from
a solo runner, or from two concurrent clients can be compared with
``cmp``, byte for byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.configs import CONFIG_NAMES, ConfigRequest
from repro.sim.results import energy_overhead, time_overhead
from repro.util.validation import check_positive
from repro.workloads.registry import all_workload_names

__all__ = [
    "REPORT_VERSION",
    "CampaignSpec",
    "campaign_report",
    "render_report",
]

#: Bump when the report document layout changes.
REPORT_VERSION = 1


@dataclass(frozen=True)
class CampaignSpec:
    """One submitted campaign: workloads × configs plus shape knobs.

    Field discipline mirrors :class:`ConfigRequest`: everything that can
    change a run's cache key lives here, ``to_dict``/``from_dict`` are
    strict inverses (wire drift raises, never misreads), and the frozen
    dataclass gives value equality — equal specs are the dedupe unit.
    ``engine`` rides along for execution but is deliberately absent from
    cache keys (engines are bit-identical; the equivalence suite pins
    it).
    """

    workloads: Tuple[str, ...]
    configs: Tuple[str, ...]
    num_cores: int = 8
    region_scale: float = 1.0
    reps: Optional[int] = None
    num_checkpoints: int = 25
    error_count: int = 1
    #: ``None``: each workload's paper-default slice threshold.
    threshold: Optional[int] = None
    memory_seed: int = 0
    engine: str = "interp"

    def __post_init__(self) -> None:
        if not isinstance(self.workloads, tuple):
            object.__setattr__(self, "workloads", tuple(self.workloads))
        if not isinstance(self.configs, tuple):
            object.__setattr__(self, "configs", tuple(self.configs))
        if not self.workloads:
            raise ValueError("campaign needs at least one workload")
        if not self.configs:
            raise ValueError("campaign needs at least one configuration")
        known = set(all_workload_names())
        for wl in self.workloads:
            if wl not in known:
                raise ValueError(
                    f"unknown workload {wl!r}; pick from {sorted(known)}"
                )
        for cfg in self.configs:
            if cfg not in CONFIG_NAMES:
                raise ValueError(
                    f"unknown configuration {cfg!r}; "
                    f"pick one of {CONFIG_NAMES}"
                )
        check_positive("num_cores", self.num_cores)
        check_positive("region_scale", self.region_scale)
        check_positive("num_checkpoints", self.num_checkpoints)
        check_positive("error_count", self.error_count)
        if self.threshold is not None:
            check_positive("threshold", self.threshold)
        if not isinstance(self.memory_seed, int) or self.memory_seed < 0:
            raise ValueError(
                f"memory_seed must be a non-negative int, "
                f"got {self.memory_seed!r}"
            )
        if self.engine not in ("interp", "vector"):
            raise ValueError(f"unknown engine {self.engine!r}")

    # ---------------------------------------------------------------- wire --
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe mapping (strict inverse: :meth:`from_dict`)."""
        doc: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            doc[f.name] = list(value) if isinstance(value, tuple) else value
        return doc

    @classmethod
    def from_dict(cls, doc: Any) -> "CampaignSpec":
        """Decode one spec; raises ``ValueError`` on any shape drift
        (the field validation in ``__post_init__`` covers the values)."""
        if not isinstance(doc, dict):
            raise ValueError("campaign spec is not an object")
        expected = {f.name for f in fields(cls)}
        if set(doc) != expected:
            raise ValueError(
                f"campaign spec fields {sorted(doc)} != {sorted(expected)}"
            )
        for name in ("workloads", "configs"):
            if not isinstance(doc[name], list) or not all(
                isinstance(x, str) for x in doc[name]
            ):
                raise ValueError(f"campaign {name} must be a string list")
        kwargs = dict(doc)
        kwargs["workloads"] = tuple(doc["workloads"])
        kwargs["configs"] = tuple(doc["configs"])
        return cls(**kwargs)

    # --------------------------------------------------------------- plan --
    def request_for(self, runner, workload: str, config: str) -> ConfigRequest:
        """The :class:`ConfigRequest` one (workload, config) cell runs.

        NoCkpt always canonicalises to the bare baseline request — the
        checkpoint knobs are meaningless for it but would reach the
        cache key and split one baseline into two."""
        if config == "NoCkpt":
            return ConfigRequest("NoCkpt", memory_seed=self.memory_seed)
        return ConfigRequest(
            config,
            num_checkpoints=self.num_checkpoints,
            error_count=self.error_count,
            threshold=(
                self.threshold
                if self.threshold is not None
                else runner.default_threshold(workload)
            ),
            memory_seed=self.memory_seed,
        )

    def pairs(self, runner) -> List[Tuple[str, ConfigRequest]]:
        """Every (workload, request) the campaign resolves, baselines
        included: overheads need each workload's NoCkpt run whether or
        not it was requested, and making that explicit keeps the
        canonical key set — the dedupe and dedupe-proof unit — exact."""
        out: Dict[Tuple[str, ConfigRequest], None] = {}
        for wl in self.workloads:
            out.setdefault(
                (wl, ConfigRequest("NoCkpt", memory_seed=self.memory_seed)),
                None,
            )
            for cfg in self.configs:
                out.setdefault((wl, self.request_for(runner, wl, cfg)), None)
        return list(out)

    def keys(self, runner) -> List[str]:
        """The canonical cache keys of :meth:`pairs` (same order)."""
        return [runner.cache_key(wl, req) for wl, req in self.pairs(runner)]


def campaign_report(runner, spec: CampaignSpec) -> Dict[str, Any]:
    """Execute ``spec`` on ``runner`` and build its deterministic report.

    The document carries **simulated** quantities only (wall/energy/
    checkpoint totals and overheads — all bit-identical across serial,
    pooled, service and post-chaos executions) plus a sha256 over its
    canonical runs array; wall-clock execution seconds stay out, so a
    report from any execution path ``cmp``\\ s clean against any other.
    """
    pairs = spec.pairs(runner)
    runner.run_many(pairs)
    runs: List[Dict[str, Any]] = []
    for wl, req in sorted(
        pairs, key=lambda p: (p[0], p[1].config, p[1].memory_seed)
    ):
        result = runner.run(wl, req)
        baseline = runner.baseline(wl, req.memory_seed)
        runs.append(
            {
                "workload": wl,
                "config": req.config,
                "key": runner.cache_key(wl, req),
                "wall_ns": result.wall_ns,
                "energy_pj": result.energy_pj,
                "checkpoint_bytes": result.total_checkpoint_bytes,
                "time_overhead": round(time_overhead(result, baseline), 12),
                "energy_overhead": round(
                    energy_overhead(result, baseline), 12
                ),
            }
        )
    digest = hashlib.sha256(
        json.dumps(runs, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
    ).hexdigest()
    return {
        "v": REPORT_VERSION,
        "campaign": spec.to_dict(),
        "runs": runs,
        "sha256": digest,
    }


def render_report(report: Dict[str, Any]) -> str:
    """A compact human rendering of one campaign report."""
    from repro.util.tables import format_table

    rows = [
        [
            run["workload"],
            run["config"],
            f"{run['time_overhead'] * 100.0:.2f}%",
            f"{run['energy_overhead'] * 100.0:.2f}%",
            run["checkpoint_bytes"],
        ]
        for run in report["runs"]
    ]
    table = format_table(
        ["workload", "config", "time ovh", "energy ovh", "ckpt bytes"],
        rows,
        title="campaign report",
    )
    return f"{table}\nreport sha256: {report['sha256'][:16]}…"
