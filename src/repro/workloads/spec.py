"""Workload specifications.

A :class:`WorkloadSpec` fully describes one benchmark: its slice-length
mix, store-site structure, iterative rewrite cadence, burst phases,
compute density and sharing topology.  ``build_programs`` turns the spec
into one :class:`~repro.isa.program.Program` per core.

Program shape
-------------
Each thread owns ``sites`` store sites, each sweeping a private subregion
once per *rep* (a timestep).  The program is ``reps`` timesteps; with the
default 25 checkpoints a few reps land in every interval, so each
interval's first-writes overwrite values associated in the immediately
preceding interval — exactly the window the AddrMap's two-generation
retention covers.  A per-rep *shared kernel* makes the cores of one
cluster touch common cache lines, which the directory turns into the
communication groups local checkpointing coordinates.

Bursts inject one-off heavy phases (a fresh scatter in ``is``, a long-
slice sweep in ``ft``): they create the skewed Max checkpoints of Fig. 9
and the temporal variation of Fig. 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.isa.program import Kernel, Program
from repro.util.rng import DeterministicRng
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
)

__all__ = ["SliceLenBucket", "BurstSpec", "WorkloadSpec"]


@dataclass(frozen=True)
class SliceLenBucket:
    """A share of store sites whose slice lengths fall in ``[lo, hi]``.

    Lengths count slice instructions (ALU chain plus its MOVI constant),
    matching the compiler's :attr:`Slice.length` metric and the paper's
    threshold axis in Table II.
    """

    weight: float
    lo: int
    hi: int

    def __post_init__(self) -> None:
        check_in_range("weight", self.weight, 0.0, 1.0)
        if not (2 <= self.lo <= self.hi):
            raise ValueError(f"bucket needs 2 <= lo <= hi, got [{self.lo}, {self.hi}]")


@dataclass(frozen=True)
class BurstSpec:
    """A one-off heavy phase.

    ``rep_frac`` positions the burst within the run; ``words_factor``
    scales its footprint relative to ``region_words``.  ``kind`` is
    ``"copy"`` (non-recomputable scatter) or ``"chain"`` (slices of length
    ``[len_lo, len_hi]``).  ``passes`` > 1 re-sweeps the same burst region
    in consecutive reps, so later passes' first-writes become omittable.
    """

    rep_frac: float
    words_factor: float
    kind: str = "copy"
    len_lo: int = 2
    len_hi: int = 10
    passes: int = 1
    #: Reps between consecutive passes.  A stride spanning a checkpoint
    #: interval makes each pass's sweep a fresh set of first-writes (the
    #: earlier pass's associations are committed by then).
    pass_stride: int = 1
    #: An exclusive burst *replaces* the regular site sweeps during its
    #: reps (the way is's key scatter or ft's transpose displaces the
    #: iterative compute), concentrating the burst's checkpoint weight.
    exclusive: bool = False

    def __post_init__(self) -> None:
        check_in_range("rep_frac", self.rep_frac, 0.0, 1.0)
        check_positive("words_factor", self.words_factor)
        check_positive("passes", self.passes)
        check_positive("pass_stride", self.pass_stride)
        if self.kind not in ("copy", "chain", "widen"):
            raise ValueError(
                f"burst kind must be copy|chain|widen, got {self.kind!r}"
            )


@dataclass(frozen=True)
class WorkloadSpec:
    """Full description of one benchmark."""

    name: str
    description: str = ""
    default_threshold: int = 10
    #: Cores per communicating cluster (0 = all cores communicate).
    cluster_size: int = 0
    #: Words in each thread's store region (the footprint ceiling; the
    #: active working set modulates below it).
    region_words: int = 256
    #: Timesteps (array sweeps) per run.
    reps: int = 100
    #: Store sites per thread (subregions of ``region_words``).
    sites: int = 32
    #: Non-stored compute per store (loop control, temporaries, FP work).
    ghost_alu: int = 50
    #: Slice-length mix over store sites (weights need not sum to 1;
    #: the remainder is split between copy and accumulator sites).
    len_mix: Tuple[SliceLenBucket, ...] = ()
    #: Fraction of sites storing loaded values unmodified (never sliceable).
    copy_frac: float = 0.03
    #: Fraction of sites with loop-carried accumulators (never sliceable).
    accum_frac: float = 0.03
    #: Fraction of sites writing one word per cache line (drives the
    #: flush-vs-log cost split of a checkpoint).
    sparse_frac: float = 0.5
    #: Fraction of a site's *active* subregion swept per rep (a rotating
    #: window).  0.5 means each active word is rewritten every ~2 reps —
    #: within the AddrMap's two-generation retention for every evaluated
    #: checkpoint frequency (up to 100 checkpoints with the default reps).
    window_frac: float = 0.5
    #: Relative jitter of the per-rep window size.
    window_noise: float = 0.2
    #: The *active* working set ramps from ``ramp_start``·words to the
    #: full subregion over the first ``ramp_frac``·reps (programs start
    #: on smaller footprints — this keeps the fresh, never-recomputable
    #: first intervals from always being the largest checkpoints).
    ramp_start: float = 0.5
    ramp_frac: float = 0.12
    #: Slow sinusoidal modulation of the active working set: amplitude
    #: (fraction of the subregion) and period (fraction of reps).  This
    #: produces the per-interval checkpoint-size and recomputability
    #: variation of Fig. 10: when the working set re-expands, the regrown
    #: words' AddrMap entries have long expired, so they log fresh.
    wave_amp: float = 0.2
    wave_period_frac: float = 0.16
    #: Words in the cluster-shared communication region.
    shared_words: int = 64
    bursts: Tuple[BurstSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("region_words", self.region_words)
        check_positive("reps", self.reps)
        check_positive("sites", self.sites)
        check_non_negative("ghost_alu", self.ghost_alu)
        check_in_range("copy_frac", self.copy_frac, 0.0, 1.0)
        check_in_range("accum_frac", self.accum_frac, 0.0, 1.0)
        check_in_range("sparse_frac", self.sparse_frac, 0.0, 1.0)
        check_non_negative("cluster_size", self.cluster_size)
        check_positive("shared_words", self.shared_words)
        check_positive("default_threshold", self.default_threshold)
        check_in_range("window_frac", self.window_frac, 0.05, 1.0)
        check_in_range("window_noise", self.window_noise, 0.0, 0.9)
        check_in_range("ramp_start", self.ramp_start, 0.05, 1.0)
        check_in_range("ramp_frac", self.ramp_frac, 0.0, 1.0)
        check_in_range("wave_amp", self.wave_amp, 0.0, 0.45)
        check_in_range("wave_period_frac", self.wave_period_frac, 0.02, 1.0)
        if self.sites > self.region_words:
            raise ValueError("need at least one word per site")
        total = sum(b.weight for b in self.len_mix)
        if total + self.copy_frac + self.accum_frac > 1.0 + 1e-9:
            raise ValueError(
                f"{self.name}: mix weights + copy + accum exceed 1 "
                f"({total + self.copy_frac + self.accum_frac:.3f})"
            )

    # ------------------------------------------------------------------ build --
    def build_programs(
        self,
        num_cores: int,
        region_scale: float = 1.0,
        reps: Optional[int] = None,
    ) -> List[Program]:
        """Generate one program per core.

        ``region_scale`` shrinks/grows the per-thread footprint (tests use
        small scales for speed); ``reps`` overrides the timestep count.
        """
        from repro.workloads.kernels import (
            assign_sites,
            burst_kernels,
            shared_kernel,
            site_kernel,
        )

        check_positive("num_cores", num_cores)
        check_positive("region_scale", region_scale)
        n_reps = reps if reps is not None else self.reps
        check_positive("reps", n_reps)
        region_words = max(self.sites, int(self.region_words * region_scale))

        programs: List[Program] = []
        assignments = assign_sites(self, region_words)
        burst_at = {int(b.rep_frac * (n_reps - 1)): b for b in self.bursts}
        for thread in range(num_cores):
            cluster = (
                thread // self.cluster_size if self.cluster_size > 0 else 0
            )
            member = (
                thread % self.cluster_size if self.cluster_size > 0 else thread
            )
            # Per-thread window jitter: threads sweep the same site
            # structure (SPMD) but with independently jittered window
            # sizes, giving the realistic load imbalance that turns
            # checkpoint barriers into actual waits — the waits grow with
            # the core count (max-of-n skew), which is what degrades
            # coordinated-global scalability (§V-D4).
            rng = DeterministicRng(self.seed, f"{self.name}/windows/t{thread}")
            offsets = [0] * len(assignments)
            kernels: List[Kernel] = []
            ramp_reps = max(1, int(self.ramp_frac * n_reps))
            wave_period = max(4, int(self.wave_period_frac * n_reps))
            for rep in range(n_reps):
                widen = False
                skip_sites = False
                for burst_start, burst in burst_at.items():
                    offset = rep - burst_start
                    if (
                        offset >= 0
                        and offset % burst.pass_stride == 0
                        and offset // burst.pass_stride < burst.passes
                    ):
                        if burst.kind == "widen":
                            widen = True
                        else:
                            if burst.exclusive:
                                skip_sites = True
                            kernels.extend(
                                burst_kernels(
                                    self,
                                    burst,
                                    thread=thread,
                                    rep=rep,
                                    pass_index=offset // burst.pass_stride,
                                    region_words=region_words,
                                )
                            )
                    elif burst.kind == "widen" and 0 <= offset < (
                        burst.passes * burst.pass_stride
                    ):
                        widen = True
                ramp = min(
                    1.0,
                    self.ramp_start + (1.0 - self.ramp_start) * rep / ramp_reps,
                )
                wave = 1.0 - self.wave_amp * 0.5 * (
                    1.0 - math.cos(2.0 * math.pi * rep / wave_period)
                )
                active_frac = 1.0 if widen else ramp * wave
                for assignment in assignments if not skip_sites else ():
                    active = max(2, round(assignment.words * active_frac))
                    jitter = 1.0 + self.window_noise * (2.0 * rng.random() - 1.0)
                    if widen:
                        win_words = active
                    else:
                        win_words = max(
                            1,
                            min(active, round(active * self.window_frac * jitter)),
                        )
                    start = offsets[assignment.index] % active
                    kernels.append(
                        site_kernel(
                            self,
                            assignment,
                            thread=thread,
                            rep=rep,
                            active_words=active,
                            window_offset=start,
                            window_words=win_words,
                        )
                    )
                    offsets[assignment.index] = (start + win_words) % active
                kernels.append(
                    shared_kernel(
                        self,
                        thread=thread,
                        rep=rep,
                        cluster=cluster,
                        member=member,
                    )
                )
            programs.append(Program(kernels, thread))
        return programs
