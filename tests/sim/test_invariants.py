"""Property-based simulator invariants.

Hypothesis drives small randomized workloads through the full stack and
checks the invariants that must hold for *any* program: clock and energy
sanity, conservation between the ACR and baseline variants, and the
accounting identities the paper's equations rest on.
"""

from hypothesis import given, settings, strategies as st

from repro.arch.config import MachineConfig
from repro.compiler.policy import ThresholdPolicy
from repro.errors.injection import UniformErrors
from repro.sim.simulator import SimulationOptions, Simulator
from repro.workloads.spec import BurstSpec, SliceLenBucket, WorkloadSpec


@st.composite
def workload_specs(draw):
    """Small but structurally diverse workload specs."""
    w1 = draw(st.floats(min_value=0.1, max_value=0.6))
    w2 = draw(st.floats(min_value=0.1, max_value=min(0.8 - w1, 0.5)))
    copy = draw(st.floats(min_value=0.0, max_value=0.1))
    accum = draw(st.floats(min_value=0.0, max_value=0.1))
    bursts = ()
    if draw(st.booleans()):
        bursts = (
            BurstSpec(
                draw(st.floats(min_value=0.2, max_value=0.8)),
                draw(st.floats(min_value=0.5, max_value=2.0)),
                draw(st.sampled_from(["copy", "chain", "widen"])),
                passes=draw(st.integers(min_value=1, max_value=3)),
            ),
        )
    return WorkloadSpec(
        name="prop",
        region_words=draw(st.integers(min_value=24, max_value=48)),
        reps=draw(st.integers(min_value=8, max_value=16)),
        sites=draw(st.integers(min_value=4, max_value=8)),
        ghost_alu=draw(st.integers(min_value=0, max_value=30)),
        len_mix=(
            SliceLenBucket(w1, 2, 10),
            SliceLenBucket(w2, 11, 25),
        ),
        copy_frac=copy,
        accum_frac=accum,
        sparse_frac=draw(st.floats(min_value=0.0, max_value=1.0)),
        cluster_size=draw(st.sampled_from([0, 1, 2])),
        bursts=bursts,
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )


def run_trio(spec, num_checkpoints=5, errors=None):
    cfg = MachineConfig(num_cores=2)
    programs = spec.build_programs(2)
    sim = Simulator(programs, cfg)
    base = sim.run_baseline()
    prof = base.baseline_profile()
    common = dict(
        num_checkpoints=num_checkpoints,
        baseline=prof,
    )
    if errors:
        common["errors"] = errors
    ck = sim.run(SimulationOptions(label="ck", scheme="global", **common))
    re = sim.run(
        SimulationOptions(
            label="re",
            scheme="global",
            acr=True,
            slice_policy=ThresholdPolicy(10),
            **common,
        )
    )
    return base, ck, re


class TestSimulationInvariants:
    @given(workload_specs())
    @settings(max_examples=12, deadline=None)
    def test_clock_and_energy_sanity(self, spec):
        base, ck, re = run_trio(spec)
        for run in (base, ck, re):
            assert run.wall_ns >= run.useful_ns - 1e-6
            assert run.energy_pj > 0
            assert all(o >= -1e-6 for o in run.per_core_overhead_ns)
        # Checkpointing can only add time and energy.
        assert ck.wall_ns >= base.wall_ns
        assert ck.energy_pj >= base.energy_pj

    @given(workload_specs())
    @settings(max_examples=12, deadline=None)
    def test_acr_conservation(self, spec):
        _, ck, re = run_trio(spec)
        # ACR's logged + omitted data equals the baseline's logged data:
        # omission relabels records, it never invents or loses them.
        assert (
            re.total_baseline_checkpoint_bytes == ck.total_checkpoint_bytes
        )
        # ACR never logs more than the baseline.
        assert re.total_checkpoint_bytes <= ck.total_checkpoint_bytes
        # Omission counting is consistent: interval stats plus the open
        # (post-final-boundary drain) log cover every omission.
        trailing = len(re.checkpoint_store.current_log.omitted)
        assert re.omissions == (
            sum(iv.omitted_records for iv in re.intervals) + trailing
        )
        assert re.omissions <= re.omission_lookups

    @given(workload_specs())
    @settings(max_examples=8, deadline=None)
    def test_recomputation_ground_truth(self, spec):
        from repro.ckpt.recovery import RecoveryEngine

        _, _, re = run_trio(spec)
        store = re.checkpoint_store
        retained = [c.log for c in store.checkpoints[-2:]] + [store.current_log]
        assert RecoveryEngine.verify_recomputation(retained) == []

    @given(workload_specs(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_errors_monotone(self, spec, n_errors):
        base, ck, re = run_trio(spec, errors=UniformErrors(n_errors))
        assert ck.recovery_count == n_errors
        assert re.recovery_count == n_errors
        # Every recovery rolled back to an established (or initial) state.
        for run in (ck, re):
            for rec in run.recoveries:
                assert -1 <= rec.safe_checkpoint < run.checkpoint_count
                assert rec.waste_ns >= 0
                assert rec.rollback_ns >= 0
        # Baseline never recomputes; ACR recoveries recompute iff values
        # were omitted before the detection point.
        assert all(r.recomputed_values == 0 for r in ck.recoveries)

    @given(workload_specs())
    @settings(max_examples=8, deadline=None)
    def test_determinism(self, spec):
        a = run_trio(spec)[2]
        b = run_trio(spec)[2]
        assert a.wall_ns == b.wall_ns
        assert a.energy_pj == b.energy_pj
        assert a.total_checkpoint_bytes == b.total_checkpoint_bytes
        assert a.omissions == b.omissions
