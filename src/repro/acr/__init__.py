"""ACR: the amnesic checkpointing and recovery control logic.

The *ACR handler* of the paper (§III) splits into:

* :class:`~repro.acr.handlers.AcrCheckpointHandler` — reacts to every
  dynamic store: executes ``ASSOC-ADDR`` bookkeeping for covered stores
  (operand snapshot into the AddrMap) and answers the memory controller's
  "may this first-modification be omitted from the log?" query;
* :class:`~repro.acr.handlers.AcrRecoveryHandler` — on recovery, fires
  recomputation along the recorded Slices and writes the regenerated
  values back, re-establishing a consistent recovery line;
* :class:`~repro.acr.recompute.RecomputationEngine` — executes Slices
  against operand snapshots (the scratchpad-equivalent private register
  namespace) with instruction accounting.
"""

from repro.acr.handlers import AcrCheckpointHandler, AcrRecoveryHandler, AssocOutcome
from repro.acr.recompute import RecomputationEngine, RecomputeStats

__all__ = [
    "AcrCheckpointHandler",
    "AcrRecoveryHandler",
    "AssocOutcome",
    "RecomputationEngine",
    "RecomputeStats",
]
