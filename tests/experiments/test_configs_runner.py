"""Tests for repro.experiments.configs and runner."""

import pytest

from repro.experiments.configs import CONFIG_NAMES, ConfigRequest, make_options
from repro.experiments.runner import ExperimentRunner
from repro.sim.results import BaselineProfile


class TestConfigRequest:
    def test_all_nine_names(self):
        assert len(CONFIG_NAMES) == 9
        for name in CONFIG_NAMES:
            ConfigRequest(name)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            ConfigRequest("Ckpt_Quantum")

    @pytest.mark.parametrize(
        "name,scheme,acr,errors",
        [
            ("NoCkpt", "none", False, False),
            ("Ckpt_NE", "global", False, False),
            ("Ckpt_E", "global", False, True),
            ("ReCkpt_NE", "global", True, False),
            ("ReCkpt_E", "global", True, True),
            ("Ckpt_NE_Loc", "local", False, False),
            ("Ckpt_E_Loc", "local", False, True),
            ("ReCkpt_NE_Loc", "local", True, False),
            ("ReCkpt_E_Loc", "local", True, True),
        ],
    )
    def test_semantics(self, name, scheme, acr, errors):
        req = ConfigRequest(name)
        assert req.scheme == scheme
        assert req.acr == acr
        assert req.with_errors == errors

    def test_make_options_baseline(self):
        opts = make_options(ConfigRequest("NoCkpt"), None)
        assert opts.scheme == "none"

    def test_make_options_errors(self):
        prof = BaselineProfile([100.0])
        opts = make_options(ConfigRequest("ReCkpt_E", error_count=3), prof)
        assert opts.acr
        assert len(opts.errors.occurrence_times(100.0)) == 3

    def test_request_hashable_for_caching(self):
        a = ConfigRequest("Ckpt_NE", num_checkpoints=25)
        b = ConfigRequest("Ckpt_NE", num_checkpoints=25)
        assert a == b and hash(a) == hash(b)


@pytest.fixture(scope="module")
def small_runner():
    return ExperimentRunner(num_cores=2, region_scale=0.1, reps=12)


class TestExperimentRunner:
    def test_memoisation(self, small_runner):
        a = small_runner.run("bt", ConfigRequest("Ckpt_NE", num_checkpoints=6))
        b = small_runner.run("bt", ConfigRequest("Ckpt_NE", num_checkpoints=6))
        assert a is b

    def test_distinct_requests_distinct_runs(self, small_runner):
        a = small_runner.run("bt", ConfigRequest("Ckpt_NE", num_checkpoints=6))
        c = small_runner.run("bt", ConfigRequest("Ckpt_NE", num_checkpoints=12))
        assert a is not c
        assert c.checkpoint_count == 12

    def test_default_threshold_lookup(self, small_runner):
        assert small_runner.default_threshold("is") == 5
        assert small_runner.default_threshold("bt") == 10

    def test_overhead_helpers(self, small_runner):
        req = ConfigRequest("Ckpt_NE", num_checkpoints=6)
        assert small_runner.time_overhead("bt", req) > 0
        assert small_runner.energy_overhead("bt", req) > 0

    def test_core_count_mismatch_rejected(self):
        from repro.arch.config import MachineConfig

        with pytest.raises(ValueError):
            ExperimentRunner(num_cores=4, machine=MachineConfig(num_cores=8))

    def test_workloads_list(self, small_runner):
        assert "is" in small_runner.workloads()
