"""Micro-benchmarks: component throughput under pytest-benchmark.

These are conventional timing benchmarks (many rounds) for the simulator's
hot components: the interpreter, the cache model, the AddrMap and Slice
recomputation.  They guard against performance regressions that would make
the paper regeneration impractically slow.
"""

from repro.arch.buffers import AddrMap, AddrMapEntry
from repro.arch.cache import SetAssociativeCache
from repro.arch.config import CacheConfig
from repro.compiler.embed import compile_program
from repro.isa.builder import chain_kernel
from repro.isa.instructions import AddressPattern
from repro.isa.interpreter import Interpreter, MemoryImage
from repro.isa.program import Program

STORE = AddressPattern(0, 1, 256)
INPUT = AddressPattern(1 << 20, 1, 256)


def test_interpreter_throughput(benchmark):
    program = Program(
        [chain_kernel("k", STORE, [INPUT], 8, 256) for _ in range(8)]
    )

    def run():
        Interpreter(program, MemoryImage(0)).run_to_completion()

    benchmark(run)


def test_vector_interpreter_throughput(benchmark):
    """Counterpart of ``test_interpreter_throughput`` on the vector
    engine's interpreter: same program, store replay from trace plans."""
    from repro.sim.vector.interp import make_interpreter

    program = Program(
        [chain_kernel("k", STORE, [INPUT], 8, 256) for _ in range(8)]
    )
    # Warm the shared plan cache once so the benchmark times replay, not
    # plan construction (runs share plans exactly like this in practice).
    make_interpreter("vector", program, MemoryImage(0)).run_to_completion()

    def run():
        make_interpreter("vector", program, MemoryImage(0)).run_to_completion()

    benchmark(run)


def test_cache_access_throughput(benchmark):
    cache = SetAssociativeCache(CacheConfig("l1", 32 * 1024, 8, 3.66))
    lines = [i * 7 % 4096 for i in range(4096)]

    def run():
        for line in lines:
            cache.access(line, line & 1 == 0)

    benchmark(run)


def test_addrmap_throughput(benchmark):
    program = Program([chain_kernel("k", STORE, [INPUT], 4, 1)])
    sl = compile_program(program).slices.get(0)
    addrmap = AddrMap(8192)

    def run():
        for i in range(1024):
            addrmap.record(AddrMapEntry(i * 8, sl, (i,)))
        addrmap.commit_generation()
        for i in range(1024):
            addrmap.committed_lookup(i * 8)

    benchmark(run)


def test_slice_recompute_throughput(benchmark):
    program = Program([chain_kernel("k", STORE, [INPUT], 9, 1)])
    sl = compile_program(program).slices.get(0)

    def run():
        for i in range(1024):
            sl.execute((i,))

    benchmark(run)


# --- observability overhead guardrails -------------------------------------

def _paired_minima(run_a, run_b, pairs):
    """Best-of-N wall clock for two runnables, sampled interleaved.

    Back-to-back batches drift (allocator growth, frequency scaling), so
    timing all of A before any of B fabricates a delta.  Alternating
    A/B/A/B spreads the drift across both series, and the per-series
    minimum is the classic low-noise estimator.
    """
    import gc
    import time

    mins = [float("inf"), float("inf")]
    for _ in range(pairs):
        for slot, run in enumerate((run_a, run_b)):
            gc.collect()
            t0 = time.perf_counter()
            run()
            mins[slot] = min(mins[slot], time.perf_counter() - t0)
    return mins


def test_null_tracer_zero_overhead():
    """A NullTracer must cost the same as no tracer at all (<2% delta).

    The disabled-tracer check is hoisted once per run, so both variants
    execute the identical hot path; a delta here means instrumentation
    leaked into the untraced path.  Interleaved best-of-N with retries
    keeps the assertion robust against scheduler noise.
    """
    from repro.arch.config import MachineConfig
    from repro.obs.tracer import NullTracer
    from repro.sim.simulator import SimulationOptions, Simulator
    from repro.workloads.registry import get_workload

    config = MachineConfig(num_cores=2)
    programs = get_workload("is").build_programs(2, region_scale=0.1, reps=20)
    sim = Simulator(programs, config)
    baseline = sim.run_baseline().baseline_profile()
    plain = SimulationOptions(
        label="plain", scheme="global", acr=True,
        num_checkpoints=5, baseline=baseline,
    )
    nulled = SimulationOptions(
        label="null", scheme="global", acr=True,
        num_checkpoints=5, baseline=baseline, tracer=NullTracer(),
    )

    sim.run(plain)  # warm-up (compile caches, allocator)
    for attempt in range(3):
        t_plain, t_null = _paired_minima(
            lambda: sim.run(plain), lambda: sim.run(nulled), pairs=5
        )
        delta = abs(t_null - t_plain) / t_plain
        if delta < 0.02:
            return
    raise AssertionError(
        f"NullTracer overhead {delta * 100:.2f}% exceeds the 2% guardrail "
        f"(plain {t_plain * 1e3:.2f} ms, null {t_null * 1e3:.2f} ms)"
    )


def test_telemetry_disabled_zero_overhead():
    """Ambient telemetry must not tax an untelemetered run (<2% delta).

    Side A runs with telemetry fully disabled: the module-global sink is
    ``None``, ``_Run`` samples a single False, and the per-checkpoint
    emission never executes.  Side B runs the *enabled* streaming path —
    ``task_telemetry`` with a discarding sink, so every heartbeat,
    metrics delta and phase transition is built and dispatched.  Holding
    even the enabled delta under the guardrail bounds the disabled path
    a fortiori, and catches instrumentation leaking into the hot loop.
    """
    from repro.arch.config import MachineConfig
    from repro.obs.telemetry.emit import task_telemetry
    from repro.sim.simulator import SimulationOptions, Simulator
    from repro.workloads.registry import get_workload

    config = MachineConfig(num_cores=2)
    programs = get_workload("is").build_programs(2, region_scale=0.1, reps=20)
    sim = Simulator(programs, config)
    baseline = sim.run_baseline().baseline_profile()
    opts = SimulationOptions(
        label="bench", scheme="global", acr=True,
        num_checkpoints=5, baseline=baseline,
    )

    def run_plain():
        sim.run(opts)

    def run_streaming():
        with task_telemetry("bench", lambda frame: None):
            sim.run(opts)

    run_plain()  # warm-up (compile caches, allocator)
    for attempt in range(3):
        t_plain, t_live = _paired_minima(run_plain, run_streaming, pairs=5)
        delta = abs(t_live - t_plain) / t_plain
        if delta < 0.02:
            return
    raise AssertionError(
        f"telemetry overhead {delta * 100:.2f}% exceeds the 2% guardrail "
        f"(plain {t_plain * 1e3:.2f} ms, streaming {t_live * 1e3:.2f} ms)"
    )


def test_recording_tracer_throughput(benchmark):
    """Raw event-ingest rate of the RecordingTracer."""
    from repro.obs.events import LogWrite
    from repro.obs.tracer import RecordingTracer

    events = [
        LogWrite(ts_ns=float(i), core=i & 3, address=i * 8,
                 line=i >> 3, size_bytes=16, taken=i & 1 == 0)
        for i in range(4096)
    ]

    def run():
        tracer = RecordingTracer()
        for ev in events:
            tracer.emit(ev)

    benchmark(run)
