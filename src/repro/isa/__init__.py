"""A small RISC-like intermediate representation (IR).

The reproduction interprets real programs: workload generators emit
:class:`~repro.isa.program.Program` objects (lists of loop kernels over
virtual registers with affine address streams), the compiler pass slices
them, and the simulator executes them instruction by instruction, producing
genuine data values. Recomputation correctness is therefore checkable: a
Slice re-executed with its buffered operands must reproduce the exact value
the original store wrote.

Design notes
------------
* Values are 64-bit unsigned integers with wrap-around arithmetic.
* Addresses are byte addresses, always 8-byte (word) aligned; cache lines
  are 64 bytes (8 words).
* Loops are represented as kernels with a trip count; the *body* is a
  straight-line sequence, so backward slicing is per-iteration.  A value
  chain that crosses iterations (an accumulator) is loop-carried and is,
  by construction, not sliceable — mirroring the paper's observation that
  aggressive unrolling has a practical limit.
"""

from repro.isa.opcodes import ALU_OPCODES, Opcode
from repro.isa.instructions import (
    AddressPattern,
    AluInstr,
    Instruction,
    LoadInstr,
    MoviInstr,
    StoreInstr,
    WORD_BYTES,
    LINE_BYTES,
    WORDS_PER_LINE,
)
from repro.isa.program import Kernel, Program, StoreSite
from repro.isa.builder import KernelBuilder, chain_kernel
from repro.isa.interpreter import Interpreter, MemoryImage, StoreEvent, LoadEvent

__all__ = [
    "Opcode",
    "ALU_OPCODES",
    "AddressPattern",
    "AluInstr",
    "Instruction",
    "LoadInstr",
    "MoviInstr",
    "StoreInstr",
    "WORD_BYTES",
    "LINE_BYTES",
    "WORDS_PER_LINE",
    "Kernel",
    "Program",
    "StoreSite",
    "KernelBuilder",
    "chain_kernel",
    "Interpreter",
    "MemoryImage",
    "StoreEvent",
    "LoadEvent",
]
