"""Microarchitecture models: the paper's Table I machine.

Components
----------
``config``    — machine/cache/memory configuration (Table I defaults);
``cache``     — set-associative write-back LRU caches;
``hierarchy`` — per-core L1-I/L1-D/L2 stack with miss propagation;
``directory`` — directory state: per-line log bits and inter-core
                sharing/communication tracking (for local checkpointing);
``memctrl``   — bandwidth-limited memory controllers (one per 4 cores);
``noc``       — 2-D mesh interconnect latency/energy and barrier costs;
``core``      — in-order 4-issue core timing model;
``buffers``   — ACR's on-chip structures: AddrMap and operand buffer.
"""

from repro.arch.config import CacheConfig, MachineConfig, TABLE1
from repro.arch.cache import AccessResult, SetAssociativeCache
from repro.arch.hierarchy import CoreCacheHierarchy, DataAccess
from repro.arch.directory import Directory
from repro.arch.memctrl import MemoryController, MemorySystem
from repro.arch.noc import MeshNoc
from repro.arch.core import CoreTimingModel
from repro.arch.buffers import AddrMap, AddrMapEntry, OperandBuffer

__all__ = [
    "CacheConfig",
    "MachineConfig",
    "TABLE1",
    "AccessResult",
    "SetAssociativeCache",
    "CoreCacheHierarchy",
    "DataAccess",
    "Directory",
    "MemoryController",
    "MemorySystem",
    "MeshNoc",
    "CoreTimingModel",
    "AddrMap",
    "AddrMapEntry",
    "OperandBuffer",
]
