"""The campaign service: a long-running scheduler over a replicated store.

ROADMAP item 2 — "heavy traffic from many users" — promoted into a
subsystem.  A :class:`~repro.service.daemon.CampaignDaemon` listens on a
local Unix socket, accepts campaign submissions as line-delimited JSON
(:mod:`repro.service.protocol`), executes them through per-connection
:class:`~repro.experiments.runner.ExperimentRunner`\\ s that share one
:class:`~repro.service.store.ReplicatedStore` — the existing
content-addressed :class:`~repro.experiments.cache.ResultCache` keyspace
partitioned across N shard processes with R-way replication,
heartbeat-detected shard death, re-replicating recovery, and a
circuit-breaker degradation ladder down to direct-disk serial mode
(ReStore's in-memory replicated storage, DESIGN §3.7).  Overlapping
submissions dedupe through the
:class:`~repro.service.registry.InFlightRegistry` (per-key leases): each
canonical key simulates at most once and every subscriber receives the
result.  :class:`~repro.service.client.CampaignClient` is the client
library behind the ``acr-repro serve`` / ``submit`` / ``shutdown`` CLI
verbs and ``monitor --attach``.
"""

from repro.service.campaigns import CampaignSpec, campaign_report
from repro.service.client import CampaignClient, ServiceError, wait_for_socket
from repro.service.daemon import CampaignDaemon
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    decode_stream,
    encode_frame,
)
from repro.service.registry import InFlightRegistry
from repro.service.store import ReplicatedStore

__all__ = [
    "PROTOCOL_VERSION",
    "CampaignClient",
    "CampaignDaemon",
    "CampaignSpec",
    "InFlightRegistry",
    "ProtocolError",
    "ReplicatedStore",
    "ServiceError",
    "campaign_report",
    "decode_frame",
    "decode_stream",
    "encode_frame",
    "wait_for_socket",
]
