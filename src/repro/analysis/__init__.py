"""Post-run analysis: decompositions, comparisons and what-if baselines.

``decomposition`` — split a run's overhead into the paper's Eq. 1–3
terms and group the energy ledger into readable categories;
``baselines``    — what-if cost models over a finished run: traditional
full-snapshot checkpointing and a hierarchical (two-level) scheme, both
computed from the run's exact per-interval statistics;
``compare``      — side-by-side configuration tables.
"""

from repro.analysis.baselines import (
    FullSnapshotCosts,
    HierarchicalConfig,
    HierarchicalCosts,
    full_snapshot_costs,
    hierarchical_costs,
)
from repro.analysis.compare import compare_runs
from repro.analysis.decomposition import (
    OverheadDecomposition,
    RecoveryAnatomy,
    decompose_overhead,
    energy_by_category,
    recovery_anatomy,
)

__all__ = [
    "OverheadDecomposition",
    "RecoveryAnatomy",
    "decompose_overhead",
    "energy_by_category",
    "recovery_anatomy",
    "FullSnapshotCosts",
    "HierarchicalConfig",
    "HierarchicalCosts",
    "full_snapshot_costs",
    "hierarchical_costs",
    "compare_runs",
]
