"""End-to-end ACR control-flow narrative test (paper Fig. 4a/4b).

One test class walks the exact sequence of the paper's control-flow
figures on real components, asserting each arrow:

Fig. 4a (checkpoint):  store w/ ASSOC-ADDR -> record in AddrMap ->
first-modification query -> memory controller told to skip the log.

Fig. 4b (recovery):    error detected -> pick safe checkpoint ->
recompute omitted values via Slices -> write back -> restore the rest
from the log -> consistent state.
"""

import pytest

from repro.acr.handlers import AcrCheckpointHandler, AcrRecoveryHandler
from repro.arch.config import MachineConfig
from repro.arch.directory import Directory
from repro.ckpt.checkpoint import CheckpointStore
from repro.compiler.embed import compile_program
from repro.compiler.policy import ThresholdPolicy
from repro.isa.builder import chain_kernel
from repro.isa.instructions import AddressPattern
from repro.isa.interpreter import Interpreter, MemoryImage
from repro.isa.program import Program


@pytest.fixture
def parts():
    cfg = MachineConfig(num_cores=1)
    kernels = [
        chain_kernel(
            f"k{rep}",
            AddressPattern(0, 1, 8),
            [AddressPattern(1 << 20, 1, 8, offset=rep)],
            chain_depth=3,
            trip_count=8,
            salt=rep,
        )
        for rep in range(4)
    ]
    compiled = compile_program(Program(kernels), ThresholdPolicy(10))
    handler = AcrCheckpointHandler(cfg, [compiled.slices])
    return cfg, compiled, handler


class TestFig4aCheckpointFlow:
    def test_full_sequence(self, parts):
        cfg, compiled, handler = parts
        directory = Directory(1)
        store = CheckpointStore(cfg.arch_state_bytes, 1)
        memory = MemoryImage(3)

        def on_store(ev):
            if not directory.test_and_set_log(ev.address):
                entry = handler.may_omit(0, ev.address)
                if entry is not None:
                    store.current_log.add_omitted(
                        ev.address, entry, 0, ev.old_value
                    )
                else:
                    store.current_log.add_record(ev.address, ev.old_value, 0)
            handler.on_store(0, ev.site, ev.address, ev.regs)

        interp = Interpreter(compiled.program, memory, on_store=on_store)

        # Interval 0: rep 0 — everything is a fresh first write.
        interp.step_iterations(8)
        assert len(store.current_log.records) == 8
        assert len(store.current_log.omitted) == 0
        # ...but all eight stores executed ASSOC-ADDR.
        assert handler.assoc_executed == 8
        assert handler.addrmaps[0].open_size == 8

        # Checkpoint 0: commit the generation, clear log bits.
        store.establish(1.0, 1.0)
        directory.clear_log_bits()
        handler.on_checkpoint()

        # Interval 1: rep 1 rewrites the same words — every first
        # modification finds a committed association and skips the log.
        interp.step_iterations(8)
        assert len(store.current_log.records) == 0
        assert len(store.current_log.omitted) == 8
        assert handler.omissions == 8

    def test_fig4b_recovery_flow(self, parts):
        cfg, compiled, handler = parts
        directory = Directory(1)
        store = CheckpointStore(cfg.arch_state_bytes, 1)
        memory = MemoryImage(3)

        def on_store(ev):
            if not directory.test_and_set_log(ev.address):
                entry = handler.may_omit(0, ev.address)
                if entry is not None:
                    store.current_log.add_omitted(
                        ev.address, entry, 0, ev.old_value
                    )
                else:
                    store.current_log.add_record(ev.address, ev.old_value, 0)
            handler.on_store(0, ev.site, ev.address, ev.regs)

        interp = Interpreter(compiled.program, memory, on_store=on_store)
        snapshots = []
        for rep in range(3):
            interp.step_iterations(8)
            snapshots.append(memory.snapshot())
            store.establish(float(rep + 1), float(rep + 1))
            directory.clear_log_bits()
            handler.on_checkpoint()
        interp.step_iterations(8)  # partial interval 3 (all omitted)

        # "Error detected": roll back to checkpoint 2 using the recovery
        # handler for the omitted values, then the log for the rest.
        recovery = AcrRecoveryHandler()
        logs = store.logs_to_rollback(2)
        recovery.recompute_omitted(logs, memory)
        for log in logs:
            for rec in log.records:
                memory.write(rec.address, rec.old_value)
        assert memory.snapshot() == snapshots[2]
        assert recovery.stats.values == 8  # the partial interval's stores
