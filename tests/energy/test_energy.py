"""Tests for the energy package."""

import pytest
from hypothesis import given, strategies as st

from repro.energy.accounting import EnergyLedger
from repro.energy.edp import combined_edp_reduction, edp, edp_reduction
from repro.energy.model import EnergyModel
from repro.energy.technology import (
    TECHNOLOGY_NODES,
    component_error_rate_series,
    expected_errors,
    relative_error_rate,
    system_error_probability,
)


class TestEnergyModel:
    def test_technology_imbalance(self):
        m = EnergyModel()
        # The paper's premise: DRAM >> L2 > L1 >> ALU.
        word = m.dram_transfer_pj(8)
        assert word > 10 * m.l2_access_pj / 4
        assert m.l2_access_pj > m.l1d_access_pj > m.alu_op_pj
        assert word / m.alu_op_pj > 100

    def test_dram_transfer_linear(self):
        m = EnergyModel()
        assert m.dram_transfer_pj(128) == pytest.approx(2 * m.dram_transfer_pj(64))

    def test_leakage(self):
        m = EnergyModel()
        assert m.leakage_pj(2, 10.0) == pytest.approx(
            2 * 10.0 * (m.core_leakage_pj_per_ns + m.uncore_leakage_pj_per_ns)
        )

    def test_negative_constant_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(alu_op_pj=-1.0)


class TestEnergyLedger:
    def test_add_and_total(self):
        l = EnergyLedger()
        l.add("a.x", 10.0)
        l.add("a.y", 5.0)
        l.add("b.z", 1.0)
        assert l.total_pj() == pytest.approx(16.0)
        assert l.total_pj("a.") == pytest.approx(15.0)
        assert l.get("a.x") == pytest.approx(10.0)
        assert l.get("missing") == 0.0

    def test_accumulation(self):
        l = EnergyLedger()
        l.add("a", 1.0)
        l.add("a", 2.0)
        assert l.get("a") == pytest.approx(3.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EnergyLedger().add("a", -1.0)

    def test_merge(self):
        a, b = EnergyLedger(), EnergyLedger()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.get("x") == pytest.approx(3.0)
        assert a.get("y") == pytest.approx(3.0)

    def test_copy_independent(self):
        a = EnergyLedger()
        a.add("x", 1.0)
        c = a.copy()
        c.add("x", 1.0)
        assert a.get("x") == pytest.approx(1.0)

    def test_describe_contains_total(self):
        l = EnergyLedger()
        l.add("x", 1000.0)
        assert "TOTAL" in l.describe()

    def test_buckets_sorted(self):
        l = EnergyLedger()
        l.add("b", 1.0)
        l.add("a", 1.0)
        assert [k for k, _ in l.buckets()] == ["a", "b"]


class TestEdp:
    def test_edp(self):
        assert edp(2.0, 3.0) == 6.0

    def test_edp_reduction(self):
        assert edp_reduction(10.0, 5.0) == pytest.approx(0.5)

    def test_edp_reduction_zero_baseline(self):
        with pytest.raises(ValueError):
            edp_reduction(0.0, 1.0)

    def test_combined_matches_paper_is_numbers(self):
        # Fig 6/7/8 for `is`: 28.81% time, 26.93% energy -> 47.98% EDP.
        red = combined_edp_reduction(0.2881, 0.2693)
        assert red == pytest.approx(0.4798, abs=0.002)

    @given(
        st.floats(min_value=0, max_value=0.99),
        st.floats(min_value=0, max_value=0.99),
    )
    def test_combined_bounded(self, rt, re):
        c = combined_edp_reduction(rt, re)
        assert max(rt, re) - 1e-9 <= c < 1.0


class TestTechnology:
    def test_error_rate_growth(self):
        assert relative_error_rate(0) == 1.0
        assert relative_error_rate(1) == pytest.approx(1.08)
        assert relative_error_rate(8) == pytest.approx(1.08**8)

    def test_series_matches_nodes(self):
        series = component_error_rate_series()
        assert len(series) == len(TECHNOLOGY_NODES)
        assert series[0] == (180, 1.0)
        rates = [r for _, r in series]
        assert rates == sorted(rates)

    def test_system_error_probability_monotone_in_components(self):
        p1 = system_error_probability(1e-9, 8, 1.0)
        p2 = system_error_probability(1e-9, 32, 1.0)
        assert 0 < p1 < p2 < 1

    def test_expected_errors(self):
        assert expected_errors(0.5, 4, 2.0) == pytest.approx(4.0)

    def test_zero_duration(self):
        assert system_error_probability(1.0, 8, 0.0) == 0.0
