"""Shared constants and helpers for the benchmark harness.

Kept outside ``conftest.py`` so bench modules can import them without
relying on conftest's module-name handling.
"""

from __future__ import annotations

import os
from pathlib import Path

REPORT_DIR = Path(__file__).parent / "reports"

#: Workload region scale (1.0 = the calibrated fidelity).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
#: Core count for the headline experiments.
BENCH_CORES = int(os.environ.get("REPRO_BENCH_CORES", "8"))
_reps_env = os.environ.get("REPRO_BENCH_REPS", "")
#: Timesteps per run (None = the workload default).
BENCH_REPS = int(_reps_env) if _reps_env else None
#: Worker processes for independent runs (1 = serial, the default).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
#: Persistent result-cache directory ("" = no on-disk cache).
_cache_env = os.environ.get("REPRO_BENCH_CACHE", "")
BENCH_CACHE = Path(_cache_env) if _cache_env else None
#: Per-task wall-clock timeout in seconds ("" = none).
_timeout_env = os.environ.get("REPRO_BENCH_TIMEOUT", "")
BENCH_TIMEOUT = float(_timeout_env) if _timeout_env else None
#: Retries per failed/timed-out/killed supervised task.
BENCH_RETRIES = int(os.environ.get("REPRO_BENCH_RETRIES", "2"))
#: Resume from the completion journal (needs REPRO_BENCH_CACHE).
BENCH_RESUME = os.environ.get("REPRO_BENCH_RESUME", "") not in ("", "0")


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (simulations are heavy and memoised)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
