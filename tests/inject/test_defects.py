"""Seeded-defect tests: the verifier must catch deliberate sabotage.

A verifier that always reports "bit-exact" is worthless; these tests
prove the comparison has teeth by breaking recovery on purpose and
asserting the divergence is caught *with correct provenance* (the
sabotaged address, the right interval, the right phase).

The combinations are chosen from campaign sweeps: ``dc``'s recomputable
stores are accumulations (value changes every interval), so a skipped
recomputation or a mis-ordered log application leaves a detectably wrong
value.  Workloads with idempotent stores can mask a skip — that is a
property of the workload, not a verifier gap, which is exactly why the
defect tests pin known-diverging seeds.
"""

import pytest

from repro.inject.harness import TrialSpec, run_trial


def dc_trial(seed, defect, **kw):
    kw.setdefault("config", "ACR")
    kw.setdefault("target", "mem")
    return run_trial(TrialSpec(
        workload="dc", seed=seed, memory_seed=seed, defect=defect, **kw
    ))


class TestSkipRecompute:
    # Seeds where the oldest applied log has omitted records whose
    # recomputation is load-bearing (found by sweep, pinned here).
    DIVERGING_SEEDS = (1, 3, 4)

    @pytest.mark.parametrize("seed", DIVERGING_SEEDS)
    def test_caught_with_provenance(self, seed):
        r = dc_trial(seed, "skip-recompute")
        assert r.outcome == "diverged"
        assert r.divergence_count >= 1
        assert "skipped recompute of address" in r.detail
        # The reported divergence names the sabotaged address …
        sabotaged = int(r.detail.rsplit(" ", 1)[-1], 16)
        d = r.divergences[0]
        assert d.address == sabotaged
        # … at the rollback comparison against the safe checkpoint.
        assert d.phase == "rollback"
        assert d.interval == r.safe_checkpoint
        assert d.expected != d.actual

    def test_ber_immune(self):
        # BER logs every value — there is no recomputation to skip, so
        # the defect must be a no-op and recovery stays exact.
        for seed in self.DIVERGING_SEEDS:
            r = dc_trial(seed, "skip-recompute", config="BER")
            assert r.outcome == "recovered-exact"
            assert "no omitted records" in r.detail

    def test_deterministic(self):
        a = dc_trial(1, "skip-recompute")
        b = dc_trial(1, "skip-recompute")
        assert a.to_dict() == b.to_dict()


class TestMisorderLogs:
    # Newest-wins only differs from oldest-wins when two applied logs
    # overlap on an address whose value changed across the interval:
    # long intervals (wrapping the address sweep) + full-period latency
    # (two-log rollbacks with a full open log).
    KNOBS = dict(iters_per_step=24, detection_latency_fraction=1.0)
    DIVERGING_SEEDS = (1, 2, 3)

    @pytest.mark.parametrize("seed", DIVERGING_SEEDS)
    def test_caught(self, seed):
        r = dc_trial(seed, "misorder-logs", **self.KNOBS)
        assert r.outcome == "diverged"
        assert r.divergence_count >= 1
        assert r.detail == "defect: logs applied oldest-first"
        d = r.divergences[0]
        assert d.expected != d.actual
        assert d.phase in ("rollback", "final")

    @pytest.mark.parametrize("seed", DIVERGING_SEEDS)
    def test_same_trial_without_defect_is_exact(self, seed):
        r = dc_trial(seed, None, **self.KNOBS)
        assert r.outcome == "recovered-exact"

    def test_single_log_rollback_is_order_immune(self):
        # With default knobs, dc seed 0 rolls back through exactly one
        # log — reversing a one-element sequence is the identity, so the
        # defect cannot (and must not) manufacture a divergence.
        r = dc_trial(0, "misorder-logs")
        assert r.outcome == "recovered-exact"
