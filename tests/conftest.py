"""Shared fixtures for the test suite.

The heavier fixtures (small end-to-end simulations) are session-scoped so
integration-style assertions across multiple test modules reuse one run.
"""

from __future__ import annotations

import pytest

from repro.arch.config import MachineConfig
from repro.isa.builder import chain_kernel
from repro.isa.instructions import AddressPattern
from repro.isa.program import Program
from repro.sim.results import RunResult
from repro.sim.simulator import SimulationOptions, Simulator
from repro.workloads.spec import SliceLenBucket, WorkloadSpec


def tiny_machine(num_cores: int = 4) -> MachineConfig:
    """A small Table-I machine for fast tests."""
    return MachineConfig(num_cores=num_cores)


def tiny_programs(num_cores: int = 4, reps: int = 12, depth: int = 4):
    """Minimal multi-core programs: one chain site per thread per rep."""
    programs = []
    for t in range(num_cores):
        base = (t + 1) << 24
        kernels = []
        for rep in range(reps):
            kernels.append(
                chain_kernel(
                    f"k{rep}",
                    AddressPattern(base, 1, 64),
                    [AddressPattern(base + (1 << 20), 1, 64, offset=rep % 64)],
                    chain_depth=depth,
                    trip_count=64,
                    phase=rep,
                    salt=t * 1000 + rep,
                )
            )
        programs.append(Program(kernels, t))
    return programs


def tiny_workload(**overrides) -> WorkloadSpec:
    """A small but structurally complete workload spec."""
    defaults = dict(
        name="tiny",
        region_words=64,
        reps=24,
        sites=8,
        ghost_alu=10,
        len_mix=(
            SliceLenBucket(0.5, 2, 8),
            SliceLenBucket(0.3, 12, 20),
        ),
        copy_frac=0.1,
        accum_frac=0.1,
        cluster_size=2,
        seed=42,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


@pytest.fixture(scope="session")
def small_config() -> MachineConfig:
    return tiny_machine(4)


@pytest.fixture(scope="session")
def small_simulator(small_config) -> Simulator:
    return Simulator(tiny_programs(4), small_config)


@pytest.fixture(scope="session")
def small_baseline(small_simulator) -> RunResult:
    return small_simulator.run_baseline()


@pytest.fixture(scope="session")
def small_ckpt_run(small_simulator, small_baseline) -> RunResult:
    return small_simulator.run(
        SimulationOptions(
            label="Ckpt_NE",
            scheme="global",
            num_checkpoints=6,
            baseline=small_baseline.baseline_profile(),
        )
    )


@pytest.fixture(scope="session")
def small_acr_run(small_simulator, small_baseline) -> RunResult:
    return small_simulator.run(
        SimulationOptions(
            label="ReCkpt_NE",
            scheme="global",
            acr=True,
            num_checkpoints=6,
            baseline=small_baseline.baseline_profile(),
        )
    )
