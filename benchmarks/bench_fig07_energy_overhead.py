"""Figure 7: energy overhead of checkpointing and recovery.

Paper shape: same trends as time; ReCkpt_NE reduces Ckpt_NE's energy
overhead by up to ~27% (is), ~12.5% average, minimum ~1.75% (cg).
"""

from _bench_lib import run_once

from repro.experiments.figures import fig7_energy_overhead


def test_fig7(benchmark, runner, emit):
    fig = run_once(benchmark, lambda: fig7_energy_overhead(runner))
    emit("fig07_energy_overhead", fig.render())
    s = fig.series

    reductions = {
        wl: 1 - v["ReCkpt_NE"] / v["Ckpt_NE"] for wl, v in s.items()
    }
    avg = sum(reductions.values()) / len(reductions)
    assert 0.05 < avg < 0.30
    assert reductions["cg"] == min(reductions.values())
    for wl, v in s.items():
        assert v["ReCkpt_NE"] < v["Ckpt_NE"]
        assert v["ReCkpt_E"] < v["Ckpt_E"]
        assert v["Ckpt_E"] > v["Ckpt_NE"]
