"""The trace-driven simulator that ties everything together.

``machine``   — assembles the Table-I machine from its components;
``simulator`` — the run loop: interpret all threads, checkpoint at
                uniformly distributed boundaries, inject errors, recover;
``results``   — run statistics and derived overhead/EDP metrics.

The central object is :class:`~repro.sim.simulator.Simulator`; see
``examples/quickstart.py`` for the canonical usage pattern.
"""

from repro.sim.machine import Machine
from repro.sim.results import (
    BaselineProfile,
    IntervalStats,
    RecoveryStats,
    RunResult,
    energy_overhead,
    time_overhead,
)
from repro.sim.simulator import SimulationOptions, Simulator

__all__ = [
    "Machine",
    "BaselineProfile",
    "IntervalStats",
    "RecoveryStats",
    "RunResult",
    "time_overhead",
    "energy_overhead",
    "SimulationOptions",
    "Simulator",
]
