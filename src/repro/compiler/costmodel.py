"""Recomputation-vs-restore cost estimation.

The paper mentions two slice-selection options: the greedy length threshold
used throughout the evaluation, and a probabilistic/cost-model alternative
that embeds a slice only when recomputing along it is estimated cheaper
than loading the value from a checkpoint in memory.  This module provides
the cost estimates for the latter (used by
:class:`~repro.compiler.policy.CostModelPolicy` and the ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.slices import Slice
__all__ = ["RecomputeCostModel"]


@dataclass(frozen=True)
class RecomputeCostModel:
    """Per-event costs for comparing recomputation against a memory restore.

    Defaults reflect the 22 nm imbalance the paper leans on: a DRAM word
    access costs two orders of magnitude more energy than an ALU operation.
    All energies in picojoules, latencies in nanoseconds.
    """

    alu_energy_pj: float = 1.1
    alu_latency_ns: float = 0.92
    operand_buffer_read_pj: float = 2.4
    dram_word_energy_pj: float = 160.0
    dram_latency_ns: float = 120.0

    def recompute_energy_pj(self, sl: Slice) -> float:
        """Energy to recompute a value along ``sl`` (write-back excluded —
        both restore paths write the value to memory)."""
        return (
            sl.length * self.alu_energy_pj
            + len(sl.frontier) * self.operand_buffer_read_pj
        )

    def recompute_latency_ns(self, sl: Slice) -> float:
        """Latency to recompute a value along ``sl`` (serial execution)."""
        return sl.length * self.alu_latency_ns

    def restore_energy_pj(self) -> float:
        """Energy to read one checkpointed word from the in-memory log."""
        return self.dram_word_energy_pj

    def restore_latency_ns(self) -> float:
        """Latency of one checkpoint-log word read."""
        return self.dram_latency_ns

    def is_energy_effective(self, sl: Slice) -> bool:
        """True when recomputation beats a checkpoint read on energy."""
        return self.recompute_energy_pj(sl) <= self.restore_energy_pj()

    def is_latency_effective(self, sl: Slice) -> bool:
        """True when recomputation beats a checkpoint read on latency."""
        return self.recompute_latency_ns(sl) <= self.restore_latency_ns()
