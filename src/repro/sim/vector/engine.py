"""The simulator-side vector engine: plan replay with inlined accounting.

A :class:`VectorCoreRunner` is a drop-in replacement for one core's
:class:`~repro.isa.interpreter.Interpreter` inside ``_Run._run_core_to``:
it exposes the same ``done`` / ``step_iterations`` surface but advances
the core by replaying precomputed :class:`~repro.sim.vector.plans
.KernelPlan` trace segments through one allocation-free loop that fuses
what the classic path spreads over the interpreter dispatch, the
load/store observer callbacks, the per-access event dataclasses and the
cache/directory/handler method stack.  When neither tracer nor metrics
are attached (``observed`` is False on the handler and the interval
log), the ACR store-time protocol — AddrMap open/record/invalidate,
committed lookups, operand-buffer reservations — and the log appends are
inlined too, with pure counters batched per call: integer counter
updates commute with the classic path, so only the *float* stall
accumulators need the flush/refetch dance around interpreter fallbacks.

Bit-identity rules (conservative fallback to the classic interpreter
otherwise):

* every *external* load address of the plan must still be unwritten in
  the memory image — then the plan's store values are exact;
* a kernel that both loads and stores the same address replays only
  through the interpreter (its forwarding assumptions cannot be
  re-validated cheaply mid-run);
* under ACR the kernel's register file must be *stable* (no register
  definition after its first store), so the handler can snapshot operand
  values from the plan's per-iteration register rows.

Since PR 7 the runtime checks sit *below* the static vector-safety
certificates (:mod:`repro.verify.absint`): a segment certified SAFE —
its loads provably disjoint from every word any core's program can have
written, its register file provably stable — replays without
re-checking, and a segment that does fall back carries its certificate's
denial rule id (ACR009–ACR012) in ``fallback_reasons``, so coverage is
explainable instruction by instruction (``acr-repro analyze
--explain-fallbacks``).

Floating-point identity: stall constants are precomputed with exactly
the expression shape of
:meth:`~repro.arch.core.CoreTimingModel.stall_time_ns` (``(l1+l2) - l1``
— float addition is not associative, so the "simplified" ``l2`` constant
would differ in the last bit), and stalls accumulate in the same
left-to-right order the observer callbacks used (L1 hits contribute an
exact ``0.0`` and are skipped — ``x + 0.0 == x`` for the non-negative
accumulator).
"""

from __future__ import annotations

from typing import Dict, Tuple
from weakref import WeakKeyDictionary

from repro.acr.handlers import AssocOutcome
from repro.arch.buffers import AddrMapEntry
from repro.ckpt.log import LogRecord, OmittedRecord
from repro.isa.instructions import StoreInstr
from repro.isa.interpreter import ExecChunk
from repro.isa.opcodes import MASK64
from repro.sim.vector.plans import plans_for

__all__ = ["VectorCoreRunner"]

_INIT_MIX = 0x9E3779B97F4A7C15
_RECORDED = AssocOutcome.RECORDED

#: Executed (per-core, possibly ACR-compiled) program -> {kernel index ->
#: covered-store metadata}.  The compiled program object is shared across
#: runs and configurations via the simulator's compile cache, and its
#: slice table (hence the Slice objects the handler serves) is part of
#: it, so the metadata is stable for the program's lifetime.
_COVERED_CACHE: "WeakKeyDictionary" = WeakKeyDictionary()

#: Executed program -> {kernel index -> ASSOC-ADDR executions per iter}.
_ASSOC_CACHE: "WeakKeyDictionary" = WeakKeyDictionary()


def _shared_meta(cache: "WeakKeyDictionary", program) -> Dict[int, object]:
    per_program = cache.get(program)
    if per_program is None:
        per_program = {}
        cache[program] = per_program
    return per_program


class VectorCoreRunner:
    """Executes one core of a ``_Run`` from trace plans.

    The runner keeps its own (kernel, iteration) position; the wrapped
    classic interpreter is only synchronised (via ``restore_arch_state``)
    when a segment needs the fallback path, so plan-replayed work never
    pays interpreter bookkeeping.
    """

    def __init__(self, run, core: int) -> None:
        self.run = run
        self.core = core
        self.program = run.programs[core]
        self.interp = run.interpreters[core]
        # Plans are keyed on the *plain* (pre-ACR) program: compilation
        # only flips `assoc` flags on embedded stores (bodies, sites and
        # trip counts are untouched), so the address/value/row streams
        # are identical and one plan set serves both the baseline and
        # every ACR configuration of a workload.  Only the ASSOC-ADDR
        # instruction count differs; it comes from the executed program's
        # own store flags (`_assoc_count`).
        self.plans = plans_for(
            run.sim.programs[core], run.options.memory_seed, run.config.line_bytes
        )
        self._assoc_counts = _shared_meta(_ASSOC_CACHE, self.program)
        self._covered_meta = _shared_meta(_COVERED_CACHE, self.program)
        # Static vector-safety certificates (cached on the simulator):
        # a SAFE segment replays without runtime re-checks; a denied one
        # keeps them, and any fallback it takes is attributed to the
        # certificate's rule id.
        self._certs = run.sim.vector_certificates()[core]
        #: Coverage accounting: iterations replayed from plans vs handed
        #: to the classic interpreter, the latter keyed by denial rule.
        self.replayed_iterations = 0
        self.fallback_iterations = 0
        self.fallback_reasons: Dict[str, int] = {}
        self._k = 0
        self._i = 0
        #: True while the classic interpreter's position matches ours.
        self._synced = True

        cfg = run.config
        l1 = cfg.l1d.latency_ns
        l2 = cfg.l2.latency_ns
        mem = cfg.mem_latency_ns
        mlp = cfg.mlp
        # Same expression shape as CoreTimingModel.stall_time_ns:
        # (total latency) - l1, then / mlp — NOT algebraically simplified.
        self._l2_stall = ((l1 + l2) - l1) / mlp
        self._mem_stall = ((l1 + l2 + mem) - l1) / mlp
        self._track_comm = run.options.scheme == "local"

        hier = run.machine.hierarchies[core]
        self._hier = hier
        self._l1_sets, self._l1_nsets, self._l1_ways = hier.l1d.internal_state()
        self._l2_sets, self._l2_nsets, self._l2_ways = hier.l2.internal_state()

    # -- interpreter surface -------------------------------------------------
    @property
    def done(self) -> bool:
        """True once every kernel has run to completion."""
        return self._k >= len(self.program.kernels)

    @property
    def position(self) -> Tuple[int, int]:
        """(kernel index, next iteration) — parity with the interpreter."""
        return (self._k, self._i)

    def step_iterations(self, max_iterations: int) -> ExecChunk:
        """Execute up to ``max_iterations`` loop iterations.

        Mirrors :meth:`Interpreter.step_iterations`: crosses kernel
        boundaries, stops early at program end, returns the chunk's
        dynamic instruction counts.

        The replay fast path runs inline here with all run-level state
        pre-bound: checkpoints, rollbacks, log rotation, AddrMap
        generation commits and memory-image restores all happen *between*
        calls, so one binding per call is exact.  Cache/handler/log
        counters batch in locals and flush on return (integer adds
        commute with any classic-path increments from fallback segments);
        the float stall accumulators are written back before and
        re-fetched after every fallback, keeping the addition order
        identical to the classic engine's.
        """
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        iterations = alu = loads = stores = assoc = 0
        run = self.run
        core = self.core
        kernels = self.program.kernels
        n_kernels = len(kernels)
        plan_for = self.plans.plan
        assoc_counts = self._assoc_counts
        covered_meta = self._covered_meta
        handler = run.handler

        memory = run.machine.memory
        words = memory.words_map()
        seed = memory.seed
        l1_sets = self._l1_sets
        l1_nsets = self._l1_nsets
        l1_ways = self._l1_ways
        l2_sets = self._l2_sets
        l2_nsets = self._l2_nsets
        l2_ways = self._l2_ways
        l2_stall = self._l2_stall
        mem_stall = self._mem_stall

        track = self._track_comm
        if track:
            toucher, edges = run.machine.directory.comm_state()

        ckpt = run.ckpt_enabled
        may_omit = None
        fast_log = False
        if ckpt:
            log_bits = run.machine.directory.log_bit_set()
            log = run.store.current_log
            log_stall = run._log_stall_ns
            add_record = log.add_record
            add_omitted = log.add_omitted
            fast_log = not log.observed
            if fast_log:
                rec_append = log.records.append
                om_append = log.omitted.append
            if handler is not None:
                may_omit = handler.may_omit

        h_fast = False
        if handler is not None:
            h_fast = not handler.observed
            site_slices = handler.site_slice_map(core)
            addrmap = handler.addrmaps[core]
            on_store = handler.on_store
            cycle_ns = run._cycle_ns
            if h_fast:
                # Inlined AddrMap / OperandBuffer state.  The open
                # generation is rebound only by checkpoint commits and
                # the committed list mutates in place, so per-call
                # bindings are exact.
                ogen, committed = addrmap.internal_state()
                oentries = ogen.entries
                oe_get = oentries.get
                otombs = ogen.tombstones
                am_cap = addrmap.capacity
                n_comm = len(committed)
                gl_get = committed[-1].entries.get if n_comm else None
                gl_tombs = committed[-1].tombstones if n_comm else None
                gp_get = committed[-2].entries.get if n_comm > 1 else None
                opbuf = handler.operand_buffers[core]
                opbuf_cap = opbuf.capacity_words
                gen_words = handler._gen_words[core]
        lookups_d = omissions_d = assoc_exec_d = 0

        pend_u = run._pending_useful[core]
        pend_o = run._pending_overhead[core]
        l1_hits = l1_misses = l1_ev = l1_dev = 0
        l2_hits = l2_misses = l2_ev = l2_dev = 0
        mem_acc = wbacks = 0

        certs = self._certs
        while iterations < max_iterations and self._k < n_kernels:
            k = self._k
            kernel = kernels[k]
            budget = min(kernel.trip_count - self._i, max_iterations - iterations)
            plan = plan_for(k)

            # Certificate pre-filter: SAFE segments are statically proven
            # to pass every runtime check below (loads disjoint from all
            # reachable written words, registers stable), so they replay
            # unconditionally.  Denied segments keep the runtime checks —
            # denial is advisory (e.g. ACR011 is moot without a handler).
            usable = certs[k].safe or (
                not plan.overlap
                and (
                    handler is None
                    or plan.stores_per_iter == 0
                    or plan.regs_stable
                )
                # C-level disjointness: the keys view iterates the (small)
                # frozenset, probing the written-word dict per element.
                and words.keys().isdisjoint(plan.external_loads)
            )

            if not usable:
                # Hand the float accumulators to the classic path in
                # order; integer deltas stay batched (they commute).
                run._pending_useful[core] = pend_u
                run._pending_overhead[core] = pend_o
                interp = self.interp
                if not self._synced:
                    regs = (
                        list(plan.rows()[self._i - 1])
                        if self._i > 0
                        else [0] * (plan.width + 1)
                    )
                    interp.restore_arch_state((self._k, self._i, regs))
                    self._synced = True
                chunk = interp.step_iterations(budget)
                alu += chunk.alu
                loads += chunk.loads
                stores += chunk.stores
                assoc += chunk.assoc
                iterations += chunk.iterations
                # Attribution: the budget never crosses the kernel
                # boundary, so the whole classic chunk belongs to this
                # segment's certificate.  A SAFE segment cannot reach
                # here; "unknown" would mark a certifier soundness bug.
                reason = certs[k].reason or "unknown"
                self.fallback_iterations += chunk.iterations
                self.fallback_reasons[reason] = (
                    self.fallback_reasons.get(reason, 0) + chunk.iterations
                )
                self._k, self._i = interp.position
                pend_u = run._pending_useful[core]
                pend_o = run._pending_overhead[core]
                continue

            # -- replay fast path (iterations [i0, i1) of one plan) ------
            i0 = self._i
            i1 = i0 + budget
            api = plan.accesses_per_iter
            spi = plan.stores_per_iter
            if api:
                acc_rows = plan.access_rows()
                handling = handler is not None and spi > 0
                if handling:
                    covered = covered_meta.get(k)
                    if covered is None:
                        built = []
                        for site in plan.store_sites:
                            sl = site_slices.get(site)
                            built.append(
                                None
                                if sl is None
                                else (sl, sl.frontier, len(sl.frontier))
                            )
                        covered = tuple(built)
                        covered_meta[k] = covered
                    sites = plan.store_sites
                    rows = plan.rows()

                row = None
                for i in range(i0, i1):
                    if handling:
                        row = rows[i]
                        s = 0
                    for addr, line, is_store, value in acc_rows[i]:
                        # -- cache hierarchy (inlined access) ------------
                        cset = l1_sets[line % l1_nsets]
                        if line in cset:
                            cset[line] = cset.pop(line) or is_store
                            l1_hits += 1
                        else:
                            l1_misses += 1
                            vdirty = False
                            if len(cset) >= l1_ways:
                                vline = next(iter(cset))
                                vdirty = cset.pop(vline)
                                l1_ev += 1
                                if vdirty:
                                    l1_dev += 1
                            cset[line] = is_store
                            if vdirty:
                                # L1 victim lands in L2 as a write.
                                wset = l2_sets[vline % l2_nsets]
                                if vline in wset:
                                    wset.pop(vline)
                                    wset[vline] = True
                                    l2_hits += 1
                                else:
                                    l2_misses += 1
                                    if len(wset) >= l2_ways:
                                        wl = next(iter(wset))
                                        if wset.pop(wl):
                                            l2_dev += 1
                                            wbacks += 1
                                        l2_ev += 1
                                    wset[vline] = True
                            # Demand fill from L2.
                            dset = l2_sets[line % l2_nsets]
                            if line in dset:
                                dset[line] = dset.pop(line)
                                l2_hits += 1
                                pend_u += l2_stall
                            else:
                                l2_misses += 1
                                if len(dset) >= l2_ways:
                                    dl = next(iter(dset))
                                    if dset.pop(dl):
                                        l2_dev += 1
                                        wbacks += 1
                                    l2_ev += 1
                                dset[line] = False
                                mem_acc += 1
                                pend_u += mem_stall

                        # -- directory communication tracking ------------
                        if track:
                            prev = toucher.get(line)
                            if prev is None:
                                toucher[line] = core
                            elif prev != core:
                                edges.add(
                                    (prev, core) if prev < core else (core, prev)
                                )
                                toucher[line] = core

                        if not is_store:
                            continue

                        # -- store: log bit, old value, memory write -----
                        if ckpt and addr not in log_bits:
                            log_bits.add(addr)
                            old = words.get(addr)
                            if old is None:
                                x = (addr * _INIT_MIX + seed) & MASK64
                                x ^= x >> 29
                                old = (x * _INIT_MIX) & MASK64
                            if may_omit is None:
                                if fast_log:
                                    rec_append(LogRecord(addr, old, core))
                                else:
                                    add_record(addr, old, core)
                                pend_o += log_stall
                            elif h_fast and fast_log:
                                # Inlined may_omit + committed_lookup:
                                # scan committed generations youngest-
                                # first; a tombstone ends the search.
                                lookups_d += 1
                                if gl_get is None:
                                    entry = None
                                else:
                                    entry = gl_get(addr)
                                    if (
                                        entry is None
                                        and gp_get is not None
                                        and addr not in gl_tombs
                                    ):
                                        entry = gp_get(addr)
                                if entry is not None:
                                    omissions_d += 1
                                    om_append(
                                        OmittedRecord(addr, entry, core, old)
                                    )
                                else:
                                    rec_append(LogRecord(addr, old, core))
                                    pend_o += log_stall
                            else:
                                entry = may_omit(core, addr)
                                if entry is not None:
                                    add_omitted(addr, entry, core, old)
                                else:
                                    add_record(addr, old, core)
                                    pend_o += log_stall
                        words[addr] = value
                        if handling:
                            smeta = covered[s]
                            s += 1
                            if smeta is None:
                                if h_fast:
                                    # Plain store: mask any association
                                    # (inlined AddrMap.invalidate).
                                    oentries.pop(addr, None)
                                    otombs.add(addr)
                                else:
                                    on_store(core, sites[s - 1], addr, row)
                            elif h_fast:
                                # Inlined ACRStoreHandler.on_store,
                                # RECORDED / REJECTED paths.
                                sl, frontier, n_ops = smeta
                                replaced = oe_get(addr)
                                if replaced is not None:
                                    freed = len(replaced.slice_.frontier)
                                    nw = opbuf.words - freed
                                    opbuf.words = nw if nw > 0 else 0
                                    gen_words[-1] -= freed
                                nw = opbuf.words + n_ops
                                if nw > opbuf_cap:
                                    # Reservation rejected -> invalidate.
                                    opbuf.rejections += 1
                                    oentries.pop(addr, None)
                                    otombs.add(addr)
                                elif (
                                    addr in oentries
                                    or len(oentries) < am_cap
                                ):
                                    opbuf.words = nw
                                    if nw > opbuf.peak_words:
                                        opbuf.peak_words = nw
                                    otombs.discard(addr)
                                    oentries[addr] = AddrMapEntry(
                                        addr,
                                        sl,
                                        tuple(row[r] for r in frontier),
                                    )
                                    addrmap.records += 1
                                    gen_words[-1] += n_ops
                                    assoc_exec_d += 1
                                    pend_o += cycle_ns
                                else:
                                    # AddrMap full: release + invalidate.
                                    opbuf.words = nw
                                    if nw > opbuf.peak_words:
                                        opbuf.peak_words = nw
                                    addrmap.rejections += 1
                                    nw -= n_ops
                                    opbuf.words = nw if nw > 0 else 0
                                    oentries.pop(addr, None)
                                    otombs.add(addr)
                            elif (
                                on_store(core, sites[s - 1], addr, row)
                                is _RECORDED
                            ):
                                pend_o += cycle_ns

            alu += budget * (plan.alu_per_iter + kernel.ghost_alu)
            loads += budget * plan.loads_per_iter
            stores += budget * spi
            if handler is None:
                assoc += budget * plan.assoc_per_iter
            else:
                ac = assoc_counts.get(k)
                if ac is None:
                    ac = self._assoc_count(k)
                assoc += budget * ac
            self._i = i1
            iterations += budget
            self.replayed_iterations += budget
            self._synced = False
            if i1 >= kernel.trip_count:
                self._k += 1
                self._i = 0

        # -- flush batched counters ----------------------------------------
        l1 = self._hier.l1d
        l1.hits += l1_hits
        l1.misses += l1_misses
        l1.evictions += l1_ev
        l1.dirty_evictions += l1_dev
        l2 = self._hier.l2
        l2.hits += l2_hits
        l2.misses += l2_misses
        l2.evictions += l2_ev
        l2.dirty_evictions += l2_dev
        self._hier.memory_accesses += mem_acc
        self._hier.writebacks += wbacks
        if handler is not None:
            handler.omission_lookups += lookups_d
            handler.omissions += omissions_d
            handler.assoc_executed += assoc_exec_d
        run._pending_useful[core] = pend_u
        run._pending_overhead[core] = pend_o
        return ExecChunk(iterations, alu, loads, stores, assoc)

    def _assoc_count(self, k: int) -> int:
        """ASSOC-ADDR executions per iteration of kernel ``k``.

        Counted from the *executed* program's store flags (exact by
        construction: the ACR compiler bakes ``assoc=True`` into exactly
        the embedded-site stores).  The donor plan's count would be zero
        for ACR-compiled programs, hence this side table.
        """
        count = 0
        for ins in self.program.kernels[k].body:
            if type(ins) is StoreInstr and ins.assoc:
                count += 1
        self._assoc_counts[k] = count
        return count
