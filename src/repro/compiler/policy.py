"""Slice-selection policies.

The evaluation in the paper uses a greedy length threshold ("consider all
Slices which have a lower number of instructions than a preset threshold,
which typically remains less than 10"); Section V-D1 sweeps the threshold.
A cost-model policy is provided as the paper's discussed alternative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.compiler.costmodel import RecomputeCostModel
from repro.compiler.slices import Slice
from repro.util.validation import check_positive

__all__ = ["SelectionPolicy", "ThresholdPolicy", "CostModelPolicy"]

#: The paper's default threshold ("typically remains less than 10").
DEFAULT_SLICE_THRESHOLD = 10


class SelectionPolicy(Protocol):
    """Decides whether an extracted slice gets embedded into the binary."""

    def accept(self, sl: Slice) -> bool:
        """True to embed ``sl``."""
        ...


@dataclass(frozen=True)
class ThresholdPolicy:
    """Greedy selection: embed every slice not longer than ``max_length``."""

    max_length: int = DEFAULT_SLICE_THRESHOLD

    def __post_init__(self) -> None:
        check_positive("max_length", self.max_length)

    def accept(self, sl: Slice) -> bool:
        """Embed iff the slice length is within the threshold."""
        return 0 < sl.length <= self.max_length


@dataclass(frozen=True)
class CostModelPolicy:
    """Embed a slice only when recomputation is estimated cost-effective.

    ``metric`` selects the comparison: ``"energy"``, ``"latency"`` or
    ``"both"`` (the conservative conjunction).
    """

    model: RecomputeCostModel = field(default_factory=RecomputeCostModel)
    metric: str = "both"

    def __post_init__(self) -> None:
        if self.metric not in ("energy", "latency", "both"):
            raise ValueError(f"unknown metric {self.metric!r}")

    def accept(self, sl: Slice) -> bool:
        """Embed iff recomputing beats restoring under the chosen metric."""
        if sl.is_trivial:
            return False
        if self.metric == "energy":
            return self.model.is_energy_effective(sl)
        if self.metric == "latency":
            return self.model.is_latency_effective(sl)
        return self.model.is_energy_effective(sl) and self.model.is_latency_effective(
            sl
        )
