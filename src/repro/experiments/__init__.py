"""Experiment harness: the paper's configurations, runner and reports.

``configs``  — the nine evaluated configurations (§IV): NoCkpt, Ckpt and
               ReCkpt in error-free/erroneous and global/local variants;
``runner``   — builds workload programs once, runs configurations on
               demand (serially or over a process pool) and resolves
               them through memo → persistent cache → simulator;
``cache``    — the content-addressed on-disk result cache;
``progress`` — per-run timing and cache hit/miss observability;
``figures``  — one generator per paper figure (6..13);
``tables_``  — Table I and Table II;
``placement``— the paper's future-work extension: recomputation-aware
               checkpoint placement.
"""

from repro.experiments.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    run_cache_key,
)
from repro.experiments.configs import (
    CONFIG_NAMES,
    ConfigRequest,
    make_options,
)
from repro.experiments.progress import ProgressTracker, RunRecord
from repro.experiments.runner import ExperimentRunner
from repro.experiments.figures import (
    FigureResult,
    fig1_error_rate,
    fig6_time_overhead,
    fig7_energy_overhead,
    fig8_edp_reduction,
    fig9_checkpoint_size,
    fig10_temporal,
    fig11_error_sweep,
    fig12_frequency_sweep,
    fig13_local,
    scalability,
)
from repro.experiments.placement import PlacementPlan, aware_boundaries
from repro.experiments.tables_ import (
    PAPER_TABLE2,
    table1_configuration,
    table2_threshold_sweep,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "run_cache_key",
    "CONFIG_NAMES",
    "ConfigRequest",
    "make_options",
    "ProgressTracker",
    "RunRecord",
    "ExperimentRunner",
    "FigureResult",
    "fig1_error_rate",
    "fig6_time_overhead",
    "fig7_energy_overhead",
    "fig8_edp_reduction",
    "fig9_checkpoint_size",
    "fig10_temporal",
    "fig11_error_sweep",
    "fig12_frequency_sweep",
    "fig13_local",
    "scalability",
    "PlacementPlan",
    "aware_boundaries",
    "PAPER_TABLE2",
    "table1_configuration",
    "table2_threshold_sweep",
]
