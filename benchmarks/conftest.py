"""Fixtures for the benchmark harness.

One :class:`ExperimentRunner` is shared by every bench in the session, so
each distinct simulation runs exactly once no matter how many figures need
it.  Every bench renders its table to stdout *and* into
``benchmarks/reports/<name>.txt`` so a full run leaves the regenerated
paper artifacts on disk.

Scale knobs (environment):

* ``REPRO_BENCH_SCALE``  — workload region scale (default 1.0, the
  calibrated fidelity; smaller = faster, same shapes);
* ``REPRO_BENCH_CORES``  — core count (default 8, the paper's headline);
* ``REPRO_BENCH_ENGINE`` — execution engine, ``interp`` (default) or
  ``vector`` (bit-identical results, several times faster);
* ``REPRO_BENCH_REPS``   — timesteps per run (default: workload default);
* ``REPRO_BENCH_JOBS``   — worker processes for independent runs
  (default 1 = serial; parallel results are bit-identical);
* ``REPRO_BENCH_CACHE``  — persistent result-cache directory (unset = no
  on-disk cache; a warm cache makes re-runs near-instant);
* ``REPRO_BENCH_TIMEOUT`` — per-task wall-clock timeout in seconds for
  supervised workers (unset = none);
* ``REPRO_BENCH_RETRIES`` — retries per failed/timed-out/killed task
  (default 2; deterministic backoff);
* ``REPRO_BENCH_RESUME`` — non-empty/non-zero skips tasks the completion
  journal already records (needs ``REPRO_BENCH_CACHE``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from _bench_lib import (
    BENCH_CACHE,
    BENCH_CORES,
    BENCH_ENGINE,
    BENCH_JOBS,
    BENCH_REPS,
    BENCH_RESUME,
    BENCH_RETRIES,
    BENCH_SCALE,
    BENCH_TIMEOUT,
    REPORT_DIR,
)
from repro.experiments.runner import ExperimentRunner
from repro.resilience.policy import ResiliencePolicy


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """The shared, memoising (and optionally parallel/disk-cached)
    experiment runner."""
    return ExperimentRunner(
        num_cores=BENCH_CORES,
        region_scale=BENCH_SCALE,
        reps=BENCH_REPS,
        jobs=BENCH_JOBS,
        cache_dir=BENCH_CACHE,
        resilience=ResiliencePolicy(
            max_retries=BENCH_RETRIES, timeout_s=BENCH_TIMEOUT
        ),
        resume=BENCH_RESUME,
        engine=BENCH_ENGINE,
    )


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture()
def emit(report_dir):
    """Print a rendered artifact and persist it under reports/."""

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        (report_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
