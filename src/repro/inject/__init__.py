"""Fault-injection campaigns: proving recovery is bit-exact.

The simulator *costs* recovery; this package *demonstrates* it.  A trial
flips one real bit in live mechanism state (memory words, retained
interval-log records, AddrMap operand snapshots, architectural
registers), then drives the paper's full error path — detection,
safe-checkpoint selection (Fig. 2), functional rollback (log apply,
newest-first), Slice recomputation of omitted records (§III-B) — and
verifies the recovered state bit-exactly against a golden error-free
re-execution of the same workload and seed.

:mod:`repro.inject.harness` runs one trial; :mod:`repro.inject.campaign`
builds Monte Carlo sweeps (seeds × workloads × targets × configurations)
and aggregates their results.  Campaigns fan out through
:meth:`repro.experiments.runner.ExperimentRunner.run_trials` with
per-trial persistent caching, and surface via ``acr-repro inject``.
"""

from repro.inject.harness import (
    OUTCOMES,
    TARGET_KINDS,
    Divergence,
    GoldenRun,
    Injection,
    TrialResult,
    TrialSpec,
    fork,
    golden_key,
    run_golden,
    run_trial,
)
from repro.inject.campaign import CampaignReport, build_trials, run_campaign

__all__ = [
    "OUTCOMES",
    "TARGET_KINDS",
    "Divergence",
    "GoldenRun",
    "Injection",
    "TrialResult",
    "TrialSpec",
    "fork",
    "golden_key",
    "run_golden",
    "run_trial",
    "CampaignReport",
    "build_trials",
    "run_campaign",
]
