"""Engine-level resilience: chaos campaigns, resume, interrupt flush.

The headline contracts of this layer:

* a SIGKILL-riddled parallel campaign produces a **bit-identical** JSON
  report to an undisturbed serial one;
* an interrupted campaign resumed from the completion journal executes
  only the remaining tasks and still reports bit-identically;
* a ``KeyboardInterrupt`` mid-fan-out leaves every completed result in
  the cache and the journal before re-raising;
* two invocations sharing a cache directory elect one simulator per key
  through the per-key lockfile.
"""

import json
import os
import signal

import pytest

from repro.experiments.configs import ConfigRequest
from repro.experiments.runner import ExperimentRunner
from repro.inject.campaign import build_trials, run_campaign
from repro.resilience.locks import KeyLock
from repro.resilience.policy import ResiliencePolicy

chaos = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"),
    reason="chaos tests need SIGKILL",
)

_FAST = dict(backoff_base_s=0.01, backoff_max_s=0.05)


def _specs(trials=2):
    return build_trials(
        ["cg"], trials=trials, num_cores=2, steps_per_interval=2,
        iters_per_step=4, region_scale=0.05, reps=2,
    )


def _runner(**kw):
    kw.setdefault("num_cores", 2)
    kw.setdefault("region_scale", 0.05)
    kw.setdefault("reps", 2)
    kw.setdefault("resilience", ResiliencePolicy(**_FAST))
    return ExperimentRunner(**kw)


def _report_json(report):
    return json.dumps(report.to_json_dict(), sort_keys=True)


@chaos
@pytest.mark.chaos
def test_sigkilled_campaign_report_is_bit_identical():
    specs = _specs()
    undisturbed = run_campaign(_runner(jobs=1), _specs())

    disturbed_runner = _runner(jobs=2)
    kills = []

    def murder(worker, task):
        if len(kills) < 2 and worker.process.pid is not None:
            kills.append(worker.process.pid)
            os.kill(worker.process.pid, signal.SIGKILL)

    disturbed_runner.supervisor_hooks["on_dispatch"] = murder
    disturbed = run_campaign(disturbed_runner, specs)

    assert len(kills) == 2
    assert disturbed_runner.progress.worker_deaths >= 1
    assert disturbed.failure_report is not None
    assert disturbed.failure_report.worker_deaths >= 1
    # The artifact carries no scar tissue: byte-for-byte identical.
    assert _report_json(disturbed) == _report_json(undisturbed)


def test_interrupted_campaign_resumes_where_it_stopped(tmp_path):
    specs = _specs()  # 2 configs x 2 trials = 4 tasks
    undisturbed = run_campaign(_runner(jobs=1), _specs())

    cache = tmp_path / "cache"
    first = _runner(jobs=2, cache_dir=cache)
    completions = []

    def interrupt(task):
        completions.append(task.key)
        if len(completions) == 2:
            raise KeyboardInterrupt

    first.supervisor_hooks["on_result"] = interrupt
    with pytest.raises(KeyboardInterrupt):
        first.run_trials(specs)

    # Exactly the two completed tasks were journaled before the
    # interrupt; the pool is dead.
    assert len(first.journal.load()) == 2
    assert first._active_supervisor is None

    second = _runner(jobs=1, cache_dir=cache, resume=True)
    resumed = run_campaign(second, specs)
    # Only the M - N remaining tasks execute; the rest come from disk.
    assert second.progress.resumed == 2
    assert second.progress.simulated == 2
    assert second.progress.by_source()["disk"] == 2
    assert _report_json(resumed) == _report_json(undisturbed)


def test_resume_without_journal_is_rejected():
    with pytest.raises(ValueError, match="resume"):
        _runner(resume=True)


def test_keyboard_interrupt_flushes_completed_runs(tmp_path):
    runner = _runner(jobs=2, cache_dir=tmp_path / "cache")

    def interrupt(task):
        raise KeyboardInterrupt

    runner.supervisor_hooks["on_result"] = interrupt
    pairs = [
        ("is", ConfigRequest("NoCkpt")),
        ("cg", ConfigRequest("NoCkpt")),
    ]
    with pytest.raises(KeyboardInterrupt):
        runner.run_many(pairs)
    # The first completion was installed in cache + journal before the
    # interrupt propagated.
    assert len(runner.cache) >= 1
    assert len(runner.journal.load()) >= 1


def test_clean_parallel_run_reports_visible_zeros(tmp_path):
    runner = _runner(jobs=2, cache_dir=tmp_path / "cache")
    runner.run_many([("is", ConfigRequest("NoCkpt"))])
    line = runner.progress.resilience_line()
    assert line == (
        "resilience: 0 retried, 0 timed out, 0 worker deaths, "
        "0 degraded-to-serial, 0 resumed from journal"
    )
    assert line in runner.progress.summary_table()
    assert runner.last_failure_report is not None
    assert runner.last_failure_report.clean


def test_lock_waiter_reuses_winners_entry(tmp_path):
    req = ConfigRequest("NoCkpt")
    waiter = _runner(
        cache_dir=tmp_path / "cache",
        resilience=ResiliencePolicy(lock_wait_s=0.3, **_FAST),
    )
    key = waiter.cache_key("is", req)
    assert waiter._lookup("is", req) is None  # cold cache

    # A concurrent invocation holds the key's lock and has already
    # published its entry; this one must wait, give up on the lock, then
    # serve the winner's entry instead of re-simulating.
    winner = _runner()  # no cache: just computes the value
    result = winner.run("is", req)
    holder = KeyLock(waiter.cache.lock_path(key))
    assert holder.try_acquire()
    try:
        waiter.cache.store(key, result)
        got = waiter._simulate("is", req)
    finally:
        holder.release()

    assert got.to_dict() == result.to_dict()
    assert waiter.progress.by_source()["sim"] == 0
    assert waiter.progress.by_source()["disk"] == 1


def test_parallel_results_identical_with_and_without_supervisor_cache(
    tmp_path,
):
    pairs = [
        ("is", ConfigRequest("NoCkpt")),
        ("is", ConfigRequest("ReCkpt_E", num_checkpoints=5, threshold=5)),
    ]
    serial = _runner(jobs=1)
    parallel = _runner(jobs=2, cache_dir=tmp_path / "cache")
    a = serial.run_many(pairs)
    b = parallel.run_many(pairs)
    assert [r.to_dict() for r in a] == [r.to_dict() for r in b]
    # Every completion was journaled, including the supervised ones.
    assert len(parallel.journal.load()) == 2
