"""Instruction dataclasses and address patterns.

Registers are small non-negative integers, local to a kernel body (the
builder allocates them).  Memory instructions carry an
:class:`AddressPattern` that maps the loop induction variable to a byte
address, which is how the workload generators express array traversals
without the interpreter having to model index arithmetic instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "WORD_BYTES",
    "LINE_BYTES",
    "WORDS_PER_LINE",
    "AddressPattern",
    "MoviInstr",
    "AluInstr",
    "LoadInstr",
    "StoreInstr",
    "Instruction",
]

#: Word size (all values are 64-bit) and cache-line size in bytes.
WORD_BYTES = 8
LINE_BYTES = 64
WORDS_PER_LINE = LINE_BYTES // WORD_BYTES


@dataclass(frozen=True, slots=True)
class AddressPattern:
    """Affine address stream over a bounded region.

    The address for loop iteration ``i`` is::

        base + ((offset + i * stride) % length) * WORD_BYTES

    where ``stride``, ``offset`` and ``length`` are in words.  ``length``
    bounds the touched region, so a kernel's working set is explicit.
    """

    base: int
    stride: int
    length: int
    offset: int = 0

    def __post_init__(self) -> None:
        check_non_negative("base", self.base)
        check_positive("length", self.length)
        check_non_negative("offset", self.offset)
        if self.base % WORD_BYTES:
            raise ValueError(f"base must be word aligned, got {self.base}")

    def address(self, iteration: int) -> int:
        """Byte address touched at ``iteration``."""
        word = (self.offset + iteration * self.stride) % self.length
        return self.base + word * WORD_BYTES

    def footprint_words(self, trip_count: int) -> int:
        """Number of distinct words touched over ``trip_count`` iterations."""
        if self.stride == 0:
            return 1
        return min(self.length, trip_count)


@dataclass(frozen=True, slots=True)
class MoviInstr:
    """``dst <- immediate``"""

    dst: int
    imm: int


@dataclass(frozen=True, slots=True)
class AluInstr:
    """``dst <- op(src_a, src_b)`` for a binary ALU opcode."""

    op: "object"  # Opcode; typed loosely to avoid a circular import at runtime
    dst: int
    src_a: int
    src_b: int


@dataclass(frozen=True, slots=True)
class LoadInstr:
    """``dst <- mem[pattern.address(i)]``"""

    dst: int
    pattern: AddressPattern


@dataclass(frozen=True, slots=True)
class StoreInstr:
    """``mem[pattern.address(i)] <- src``

    ``site`` is the program-unique static store-site id, assigned by
    :class:`~repro.isa.program.Program`; the compiler pass keys Slice
    lookups on it.  ``assoc`` is set by the embedding pass when the store
    carries an ``ASSOC-ADDR`` companion instruction.
    """

    src: int
    pattern: AddressPattern
    site: int = -1
    assoc: bool = False


Instruction = Union[MoviInstr, AluInstr, LoadInstr, StoreInstr]
