#!/usr/bin/env python
"""Slice-threshold design study (paper §V-D1, Table II + Fig. 10).

For one benchmark, sweeps the slice-length threshold and shows the
design trade-off the paper describes: a higher threshold omits more
checkpoint data but embeds more slice bytes in the binary and makes each
recovery recompute more instructions.

    python examples/threshold_study.py [benchmark] [--scale S]
"""

import argparse

from repro import ConfigRequest, ExperimentRunner
from repro.util.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="mg")
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    runner = ExperimentRunner(num_cores=8, region_scale=args.scale)
    wl = args.benchmark
    ck = runner.run_default(wl, "Ckpt_NE")

    rows = []
    for thr in (5, 10, 20, 30, 40, 50):
        re = runner.run(
            wl, ConfigRequest("ReCkpt_NE", threshold=thr)
        )
        re_err = runner.run(
            wl, ConfigRequest("ReCkpt_E", threshold=thr)
        )
        red = 1 - re.total_checkpoint_bytes / ck.total_checkpoint_bytes
        rec = re_err.recoveries[0]
        rows.append(
            [
                thr,
                round(100 * red, 2),
                re.compile_stats.sites_embedded,
                re.compile_stats.embedded_bytes,
                rec.recompute_instructions,
                round(rec.recompute_ns, 1),
            ]
        )
    print(
        format_table(
            [
                "threshold",
                "ckpt size red %",
                "embedded slices",
                "binary bytes",
                "rcmp instrs/recovery",
                "rcmp ns/recovery",
            ],
            rows,
            title=(
                f"Slice-threshold trade-off for {wl} "
                f"(default threshold: {runner.default_threshold(wl)})"
            ),
        )
    )
    print(
        "\nThe paper caps the threshold at 10 (5 for is): past the knee, "
        "extra\nreduction buys little but every recovery pays linearly "
        "more recomputation."
    )


if __name__ == "__main__":
    main()
