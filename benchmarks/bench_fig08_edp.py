"""Figure 8: EDP reduction of ReCkpt w.r.t. Ckpt.

Paper shape: NE up to ~48% (is), avg ~22.5%; E up to ~48% (dc), avg
~23.4%.  EDP composes the time and energy overhead reductions, so it
roughly doubles the individual percentages.
"""

from _bench_lib import run_once

from repro.experiments.figures import fig8_edp_reduction


def test_fig8(benchmark, runner, emit):
    fig = run_once(benchmark, lambda: fig8_edp_reduction(runner))
    emit("fig08_edp", fig.render())
    s = fig.series
    ne = [v["NE"] for v in s.values()]
    e = [v["E"] for v in s.values()]
    assert 0.08 < sum(ne) / len(ne) < 0.5
    assert 0.08 < sum(e) / len(e) < 0.5
    # EDP reduction exceeds each benchmark's individual time reduction.
    assert max(ne) > 0.25
    # cg stays the least responsive.
    assert s["cg"]["NE"] == min(ne)
