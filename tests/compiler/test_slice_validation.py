"""Construction-time Slice validation (the verifier's first line).

A Slice that cannot possibly replay — impure body, duplicate frontier
slots, undefined result register — must fail at construction, not at
recovery time inside ``execute``.
"""

import pytest

from repro.compiler.slices import Slice
from repro.isa.instructions import (
    AddressPattern,
    AluInstr,
    LoadInstr,
    MoviInstr,
    StoreInstr,
)
from repro.isa.opcodes import Opcode


class TestRejections:
    def test_load_in_body_rejected(self):
        with pytest.raises(ValueError, match="not MOVI/ALU"):
            Slice(
                0,
                (LoadInstr(1, AddressPattern(0, 1, 8)),),
                (0,),
                1,
            )

    def test_store_in_body_rejected(self):
        with pytest.raises(ValueError, match="not MOVI/ALU"):
            Slice(
                0,
                (StoreInstr(0, AddressPattern(0, 1, 8)),),
                (0,),
                0,
            )

    def test_duplicate_frontier_rejected(self):
        with pytest.raises(ValueError, match="duplicate frontier"):
            Slice(0, (AluInstr(Opcode.ADD, 2, 0, 1),), (0, 1, 0), 2)

    def test_undefined_result_register_rejected(self):
        with pytest.raises(ValueError, match="never defined"):
            Slice(0, (MoviInstr(1, 7),), (0,), 99)

    def test_error_message_names_the_site(self):
        with pytest.raises(ValueError, match="site 17"):
            Slice(17, (MoviInstr(1, 7),), (0,), 99)


class TestAccepted:
    def test_trivial_copy_slice(self):
        sl = Slice(0, (), (5,), 5)
        assert sl.execute([42]) == 42

    def test_valid_chain(self):
        sl = Slice(
            3,
            (MoviInstr(2, 7), AluInstr(Opcode.MUL, 3, 0, 2)),
            (0,),
            3,
        )
        assert sl.execute([6]) == 42

    def test_result_defined_by_frontier_only(self):
        # A dead internal computation is legal as long as the result
        # register itself is bound (here: by the frontier).
        sl = Slice(0, (MoviInstr(9, 1),), (4,), 4)
        assert sl.execute([8]) == 8
