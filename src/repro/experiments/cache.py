"""Persistent, content-addressed result cache.

A full paper regeneration funnels every figure and table through the same
(workload, :class:`~repro.experiments.configs.ConfigRequest`) runs, and
those runs are *expensive to recompute but cheap to store* — exactly the
trade ACR itself exploits.  This module persists each
:class:`~repro.sim.results.RunResult` as versioned JSON under a key that
hashes **everything that determines the run**:

* the workload name and the request's full canonical key;
* the machine configuration (every Table-I field, flattened);
* the scale knobs (``num_cores``, ``region_scale``, ``reps``);
* the cache schema version and the package version.

Entries live at ``<root>/<key[:2]>/<key>.json``.  Writes are atomic
(temp file + ``os.replace`` in the same directory) so a crashed or
concurrent writer can never leave a partially-written entry behind;
readers treat any undecodable, truncated, schema-drifted or
version-mismatched file as a **miss** and quarantine it by deletion.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from repro.arch.config import MachineConfig
from repro.experiments.configs import ConfigRequest
from repro.sim.results import RunResult
from repro.util import atomicio

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "KIND_RUN",
    "KIND_TRIAL",
    "ResultCache",
    "run_cache_key",
    "trial_cache_key",
]

#: Bump when any serialised payload layout (or anything about how keys
#: are derived) changes; old entries then read as misses.
#: v2: ``RunResult.to_dict`` gained the (nullable) ``obs`` payload.
#: v3: the envelope gained a ``kind`` discriminator ("run" simulation
#:     results vs "inject-trial" fault-injection trial results).
#: v4: campaign trial rotation decoupled workload/target indices and
#:     switched to a campaign-shared memory seed — spec fields are
#:     unchanged, but the trial population a campaign key set names is
#:     different, so pre-v4 trial entries must read as misses.
CACHE_SCHEMA_VERSION = 4

#: Envelope payload kinds the cache stores.
KIND_RUN = "run"
KIND_TRIAL = "inject-trial"


def _package_version() -> str:
    """The installed package version (imported lazily: ``repro.__init__``
    itself imports this module, so a top-level import would be circular)."""
    import repro

    return getattr(repro, "__version__", "unknown")


def _canonical(payload: Any) -> str:
    """Deterministic JSON rendering for hashing (sorted keys, no spaces)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def run_cache_key(
    workload: str,
    request: ConfigRequest,
    machine: MachineConfig,
    region_scale: float,
    reps: Optional[int],
) -> str:
    """The content hash identifying one simulation run.

    Every field that can change the run's outcome is folded in; two keys
    collide only if the runs they name are identical.
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "code": _package_version(),
        "kind": KIND_RUN,
        "workload": workload,
        "request": request.canonical_key(),
        "machine": dataclasses.asdict(machine),
        "region_scale": repr(float(region_scale)),
        "reps": reps,
    }
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def trial_cache_key(spec: Any) -> str:
    """The content hash identifying one fault-injection trial.

    ``spec`` is a :class:`~repro.inject.harness.TrialSpec` (duck-typed
    here to keep the cache layer free of an ``inject`` dependency); its
    ``canonical_key()`` covers every field, so any knob that changes the
    trial changes the key.  The ``kind`` discriminator keeps trial keys
    disjoint from run keys even under identical field spellings.
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "code": _package_version(),
        "kind": KIND_TRIAL,
        "trial": spec.canonical_key(),
    }
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk store of serialised run results, keyed by content hash.

    Quarantines are counted (``quarantined``), mirrored into ``metrics``
    as the ``cache.quarantined`` counter when a
    :class:`~repro.obs.metrics.MetricsRegistry` is attached, and reported
    through the optional ``on_quarantine`` hook — corruption must be
    visible, not just survivable.
    """

    def __init__(
        self,
        root: Union[str, Path],
        on_quarantine: Optional[Callable[[Path], None]] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        self.root = Path(root)
        #: Corrupt entries deleted by this cache instance so far.
        self.quarantined = 0
        #: Called with the quarantined path after each deletion.
        self.on_quarantine = on_quarantine
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry` mirror.
        self.metrics = metrics
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except FileExistsError as exc:
            raise ValueError(
                f"cache root is not a directory: {self.root}"
            ) from exc

    # ------------------------------------------------------------------ paths --
    def path_for(self, key: str) -> Path:
        """Where an entry for ``key`` lives (two-level fan-out)."""
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def lock_path(self, key: str) -> Path:
        """Where ``key``'s advisory lockfile lives (see
        :class:`repro.resilience.locks.KeyLock`): beside the entry, so
        concurrent invocations sharing this cache can elect one
        simulator per key instead of racing."""
        return self.path_for(key).with_suffix(".lock")

    def journal_path(self) -> Path:
        """The write-ahead completion journal beside this cache (see
        :class:`repro.resilience.journal.CompletionJournal`)."""
        return self.root / "journal.jsonl"

    def telemetry_path(self) -> Path:
        """The campaign-telemetry snapshot stream beside this cache (see
        :class:`repro.obs.telemetry.snapshots.SnapshotWriter`)."""
        return self.root / "telemetry.jsonl"

    # ------------------------------------------------------------------- load --
    def load(self, key: str) -> Optional[RunResult]:
        """The cached simulation result for ``key``, or ``None`` on a miss.

        Corrupt entries (truncated writes, hand-edited files, schema
        drift) are deleted and reported as misses — the caller simply
        re-simulates and overwrites them.
        """
        payload = self.load_payload(key, KIND_RUN)
        if payload is None:
            return None
        try:
            return RunResult.from_dict(payload)
        except (ValueError, TypeError, KeyError):
            self.quarantine(key)
            return None

    def load_payload(self, key: str, kind: str) -> Optional[Any]:
        """The raw cached payload for ``key``, or ``None`` on a miss.

        Validates the envelope (decodability, schema version, key echo,
        payload ``kind``); any violation quarantines the entry and reads
        as a miss.  Decoding the payload itself is the caller's job —
        on a decode failure it should call :meth:`quarantine` so the next
        write starts clean.
        """
        path = self.path_for(key)
        try:
            raw = path.read_text()
        except OSError:
            return None
        try:
            envelope = json.loads(raw)
            if not isinstance(envelope, dict):
                raise ValueError("cache envelope is not an object")
            if envelope.get("schema") != CACHE_SCHEMA_VERSION:
                raise ValueError("cache schema version mismatch")
            if envelope.get("key") != key:
                raise ValueError("cache entry key mismatch")
            if envelope.get("kind", KIND_RUN) != kind:
                raise ValueError("cache entry kind mismatch")
            result = envelope["result"]
            if result is None:
                # ``None`` is load_payload's miss signal, so a stored null
                # would otherwise dodge quarantine.
                raise ValueError("cache entry has null result")
            return result
        except (ValueError, TypeError, KeyError):
            self._quarantine(path)
            return None

    # ------------------------------------------------------------------ store --
    def store(self, key: str, result: RunResult) -> Path:
        """Persist a simulation ``result`` under ``key`` atomically."""
        return self.store_payload(key, result.to_dict(), KIND_RUN)

    def store_payload(self, key: str, result: Any, kind: str) -> Path:
        """Persist a JSON-safe payload under ``key``; returns the path."""
        path = self.path_for(key)
        envelope = {
            "schema": CACHE_SCHEMA_VERSION,
            "code": _package_version(),
            "kind": kind,
            "key": key,
            "result": result,
        }
        payload = json.dumps(envelope, sort_keys=True)
        return atomicio.atomic_write_text(
            path, payload, prefix=f".{key[:8]}."
        )

    # -------------------------------------------------------------- management --
    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def describe(self) -> Dict[str, Any]:
        """Summary of the store (location, entry count, bytes)."""
        entries = list(self.root.glob("*/*.json"))
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "schema": CACHE_SCHEMA_VERSION,
        }

    def quarantine(self, key: str) -> None:
        """Remove ``key``'s entry (a caller-detected corrupt payload)."""
        self._quarantine(self.path_for(key))

    def _quarantine(self, path: Path) -> None:
        """Remove a corrupt entry so the rewrite starts clean, and make
        the deletion visible (count, metrics counter, hook).  A path that
        is already gone counts as nothing-to-quarantine."""
        if not atomicio.quarantine(path):
            return
        self.quarantined += 1
        if self.metrics is not None:
            self.metrics.counter("cache.quarantined").inc()
        if self.on_quarantine is not None:
            self.on_quarantine(path)
