"""Tests for the differential recompute oracle (ACR008)."""

import dataclasses

from repro.verify import OracleResult, run_differential_oracle, seed_defect
from repro.verify.oracle import ORACLE_RULE_ID

from tests.verify.conftest import make_cp


def run(cp, **kw):
    return run_differential_oracle(cp.program, cp.slices, **kw)


class TestCleanPrograms:
    def test_clean_compile_replays_without_findings(self):
        result = run(make_cp())
        assert isinstance(result, OracleResult)
        assert result.ok
        assert result.findings == ()
        assert result.values_checked > 0
        assert result.sites_skipped == 0

    def test_sample_budget_caps_replays(self):
        cp = make_cp()
        one = run(cp, seeds=(0,), samples_per_site=1)
        three = run(cp, seeds=(0,), samples_per_site=3)
        assert one.values_checked == len(cp.slices)
        assert three.values_checked > one.values_checked

    def test_each_seed_replays_independently(self):
        cp = make_cp()
        single = run(cp, seeds=(0,), samples_per_site=2)
        double = run(cp, seeds=(0, 1), samples_per_site=2)
        assert double.values_checked == 2 * single.values_checked


class TestDivergence:
    def test_corrupted_slice_diverges(self):
        result = run(seed_defect(make_cp(), "ACR008"), seeds=(0, 1))
        assert not result.ok
        for d in result.findings:
            assert d.rule == ORACLE_RULE_ID
            assert d.severity.value == "error"

    def test_one_finding_per_site_per_seed(self):
        # Sampling stops at the first divergence of a site, so a broken
        # slice reports once per seed even over many dynamic stores.
        result = run(
            seed_defect(make_cp(), "ACR008"),
            seeds=(0, 1),
            samples_per_site=3,
        )
        assert len(result.findings) == 2

    def test_skip_sites_excluded_from_replay(self):
        cp = seed_defect(make_cp(), "ACR008")
        bad_site = min(cp.slices.sites)
        result = run(cp, skip_sites=frozenset({bad_site}))
        assert result.ok  # the only corrupted site was skipped
        assert result.sites_skipped == 1

    def test_out_of_file_frontier_register_reported_not_crashed(self):
        # A frontier register beyond the register file cannot be
        # snapshotted; the oracle must report it, not raise.
        cp = make_cp()
        site = min(cp.slices.sites)
        sl = cp.slices.get(site)
        forged = object.__new__(type(sl))
        for name, value in (
            ("site", sl.site),
            ("instructions", sl.instructions),
            ("frontier", sl.frontier[:-1] + (10_000_000,)),
            ("result_reg", sl.result_reg),
        ):
            object.__setattr__(forged, name, value)
        table = dataclasses.replace(cp).slices
        table._slices[site] = forged
        result = run_differential_oracle(cp.program, table, seeds=(0,))
        assert {d.site for d in result.findings} == {site}
        assert "register" in result.findings[0].message
