"""Periodic campaign-telemetry snapshots: JSONL beside the journal.

The aggregator's rolling state is serialised every ``min_interval_s``
(plus once at close) into an append-only JSONL file that lives beside
the completion journal, so a campaign that dies — or is SIGKILLed by a
chaos test — leaves a post-mortem trail that ``acr-repro monitor
--replay`` can render and future HTTP subscribers can tail.

Durability mirrors :mod:`repro.resilience.journal` exactly: whole-line
``O_APPEND`` writes, a torn **final** line is silently ignored, an
undecodable interior line is skipped with a warning, and a schema
version mismatch discards the whole file with a warning.
"""

from __future__ import annotations

import json
import time
import warnings
from pathlib import Path
from typing import Any, Callable, Dict, List, Union

from repro.util.atomicio import append_line

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "SNAPSHOT_KIND",
    "SNAPSHOT_FIELDS",
    "SnapshotWriter",
    "read_snapshots",
]

#: Bump when the snapshot layout changes; old files are then ignored
#: (with a warning) rather than misread.
TELEMETRY_SCHEMA_VERSION = 1

#: The ``kind`` discriminator (telemetry snapshots share the JSONL
#: linter with trace events and frames).
SNAPSHOT_KIND = "telemetry-snapshot"

#: Exactly the keys every snapshot carries besides ``v``/``kind`` — the
#: aggregator builds them and the JSONL linter enforces them, so the
#: wire contract cannot drift silently.
SNAPSHOT_FIELDS = (
    "ts_s",
    "elapsed_s",
    "frames",
    "malformed",
    "workers",
    "busy",
    "queue_depth",
    "tasks_started",
    "tasks_finished",
    "tasks_active",
    "counters",
    "rates",
    "phase_seconds",
    "phase_counts",
    "progress",
)


class SnapshotWriter:
    """Rate-limited append-only snapshot stream (one JSON object/line)."""

    def __init__(
        self,
        path: Union[str, Path],
        min_interval_s: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = Path(path)
        self.min_interval_s = min_interval_s
        self._clock = clock
        self._last: float = float("-inf")
        self.written = 0

    def due(self) -> bool:
        """Whether enough time passed since the last write."""
        return self._clock() - self._last >= self.min_interval_s

    def write(self, snapshot: Dict[str, Any]) -> None:
        """Unconditionally append one version-stamped snapshot line
        (atomic at line level: a single ``O_APPEND`` write).

        A torn tail left by a crashed campaign is repaired first (the
        journal's contract): this snapshot starts on a fresh line
        instead of merging into — and corrupting — the torn record.
        """
        doc = {"v": TELEMETRY_SCHEMA_VERSION, "kind": SNAPSHOT_KIND}
        doc.update(snapshot)
        append_line(self.path, json.dumps(doc, sort_keys=True))
        self._last = self._clock()
        self.written += 1

    def maybe_write(
        self, snapshot_fn: Callable[[], Dict[str, Any]]
    ) -> bool:
        """Write ``snapshot_fn()`` if due (lazy: the snapshot is only
        built when it will actually be written)."""
        if not self.due():
            return False
        self.write(snapshot_fn())
        return True


def read_snapshots(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Every committed snapshot, in write order.

    Tolerant by construction (the journal's contract): no file ⇒ empty;
    torn final line ⇒ ignored; corrupt interior line ⇒ skipped with a
    warning; any schema-version mismatch ⇒ the whole file is discarded
    with a warning (replay degrades to nothing, never a crash).
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError:
        return []
    # Committed snapshots end with a newline: the final ``split`` slot is
    # "" on a clean file and a torn half-record after a crash — either
    # way it is not a snapshot.
    body = raw.split("\n")[:-1]
    snapshots: List[Dict[str, Any]] = []
    for lineno, line in enumerate(body, start=1):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
            if not isinstance(doc, dict):
                raise ValueError("snapshot line is not an object")
        except ValueError:
            warnings.warn(
                f"{path}:{lineno}: undecodable telemetry snapshot skipped",
                stacklevel=2,
            )
            continue
        version = doc.get("v")
        if version != TELEMETRY_SCHEMA_VERSION:
            warnings.warn(
                f"{path}: telemetry schema version {version!r} != "
                f"{TELEMETRY_SCHEMA_VERSION}; ignoring the snapshot stream",
                stacklevel=2,
            )
            return []
        if doc.get("kind") != SNAPSHOT_KIND:
            warnings.warn(
                f"{path}:{lineno}: unexpected record kind "
                f"{doc.get('kind')!r} skipped",
                stacklevel=2,
            )
            continue
        snapshots.append(doc)
    return snapshots
