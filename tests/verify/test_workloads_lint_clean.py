"""Zero-false-positive guarantee over real and random programs.

Every registered NAS-like workload must verify clean — static rules plus
the differential oracle — at both the paper's default threshold and a
tighter one; and so must any randomly shaped DAG kernel the property
strategy can produce.  A finding on an honestly compiled program is, by
definition, a verifier bug.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.embed import compile_program
from repro.compiler.policy import ThresholdPolicy
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import AddressPattern
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.verify import verify_program
from repro.workloads.registry import all_workload_names, get_workload

OPS = [
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.SHL,
    Opcode.SHR,
]


@pytest.mark.parametrize("name", all_workload_names())
@pytest.mark.parametrize("threshold", [5, 10])
def test_registered_workloads_lint_clean(name, threshold):
    spec = get_workload(name)
    program = spec.build_programs(1, region_scale=0.1, reps=8)[0]
    policy = ThresholdPolicy(threshold)
    cp = compile_program(program, policy, verify=True)
    report = verify_program(cp, policy=policy, oracle_samples=2)
    assert report.findings == [], report.render()
    assert report.slices_checked == cp.stats.sites_embedded
    if cp.stats.sites_embedded:
        assert report.oracle_values_checked > 0


@st.composite
def random_kernels(draw):
    """Random DAG kernel (same shape space as the slicing properties)."""
    builder = KernelBuilder("prop")
    values = []
    n_loads = draw(st.integers(min_value=0, max_value=3))
    for i in range(n_loads):
        values.append(
            builder.load(AddressPattern((1 << 20) + i * 1024, 1, 16))
        )
    n_imms = draw(st.integers(min_value=0 if n_loads else 1, max_value=3))
    for _ in range(n_imms):
        values.append(builder.movi(draw(st.integers(0, 2**64 - 1))))
    n_alu = draw(st.integers(min_value=0, max_value=12))
    for _ in range(n_alu):
        op = draw(st.sampled_from(OPS))
        a = draw(st.sampled_from(values))
        b = draw(st.sampled_from(values))
        values.append(builder.alu(op, a, b))
    n_stores = draw(st.integers(min_value=1, max_value=3))
    for j in range(n_stores):
        src = draw(st.sampled_from(values))
        builder.store(src, AddressPattern(j * 1024, 1, 8))
    trip = draw(st.integers(min_value=1, max_value=6))
    return builder.build(trip)


class TestRandomProgramsLintClean:
    @given(random_kernels(), st.integers(min_value=1, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_honest_compile_never_yields_findings(self, kernel, threshold):
        policy = ThresholdPolicy(threshold)
        cp = compile_program(Program([kernel]), policy, verify=True)
        report = verify_program(
            cp, policy=policy, oracle_seeds=(0,), oracle_samples=2
        )
        assert report.findings == [], report.render()
