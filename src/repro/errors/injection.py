"""Error-injection schedules.

A schedule maps the base (error-free, useful-work) execution time to the
list of error occurrence times.  The paper's evaluation uses uniformly
distributed errors ("we assume that the errors in each case are uniformly
distributed over the execution"); a Poisson schedule is provided as the
natural stochastic alternative for the extension benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol

from repro.util.rng import DeterministicRng
from repro.util.validation import check_non_negative, check_positive

__all__ = ["ErrorSchedule", "NoErrors", "UniformErrors", "PoissonErrors"]


class ErrorSchedule(Protocol):
    """Produces error occurrence times for a run of given useful length."""

    def occurrence_times(self, total_useful_ns: float) -> List[float]:
        """Error times in ns of *useful work progress* (monotonic)."""
        ...


@dataclass(frozen=True)
class NoErrors:
    """Error-free execution (the NE configurations)."""

    def occurrence_times(self, total_useful_ns: float) -> List[float]:
        """No errors, ever."""
        return []


@dataclass(frozen=True)
class UniformErrors:
    """``count`` errors evenly spread over the execution.

    Error ``i`` (1-based) strikes at ``i / (count+1)`` of the useful-work
    timeline — e.g. a single error lands mid-run, matching the paper's
    single-error headline configuration.
    """

    count: int = 1

    def __post_init__(self) -> None:
        check_positive("count", self.count)

    def occurrence_times(self, total_useful_ns: float) -> List[float]:
        check_non_negative("total_useful_ns", total_useful_ns)
        step = total_useful_ns / (self.count + 1)
        return [step * i for i in range(1, self.count + 1)]


@dataclass(frozen=True)
class PoissonErrors:
    """Poisson arrivals with a mean of ``expected_count`` errors per run.

    Guarantees (the recovery pipeline depends on all three):

    * every time lies strictly within ``[0, total_useful_ns)`` — an
      arrival at exactly 0 would "occur" before any work exists to
      corrupt, and one at/after the end could never be detected;
    * times are strictly increasing — ``expovariate`` can return 0.0
      (its support is closed at zero), which would otherwise produce
      duplicate occurrence timestamps; zero gaps are resampled;
    * the sequence is a pure function of ``seed``.
    """

    expected_count: float
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("expected_count", self.expected_count)

    def occurrence_times(self, total_useful_ns: float) -> List[float]:
        check_non_negative("total_useful_ns", total_useful_ns)
        if total_useful_ns == 0:
            return []
        rng = DeterministicRng(self.seed, "poisson-errors")
        rate = self.expected_count / total_useful_ns
        times: List[float] = []
        t = 0.0
        while True:
            gap = rng.expovariate(rate)
            while gap <= 0.0:  # resample degenerate arrivals
                gap = rng.expovariate(rate)
            advanced = t + gap
            if advanced >= total_useful_ns:
                return times
            if advanced > t:  # float absorption can swallow a tiny gap
                t = advanced
                times.append(t)
