"""2-D mesh network-on-chip: hop latencies and barrier costs.

Checkpoint coordination is a barrier among the participating cores; the
paper observes that its cost grows with the number of coordinating cores
(the key advantage of coordinated *local* checkpointing).  We model a
tree-based barrier over the mesh: latency grows with ``log2(n)`` rounds,
each round costing the mesh diameter in hops.
"""

from __future__ import annotations

import math

from repro.arch.config import MachineConfig
from repro.util.validation import check_positive

__all__ = ["MeshNoc"]


class MeshNoc:
    """Mesh interconnect for ``config.num_cores`` cores."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.dim = max(1, math.isqrt(config.num_cores))
        if self.dim * self.dim < config.num_cores:
            self.dim += 1
        self.barriers = 0

    def diameter_hops(self, n_cores: int) -> int:
        """Mesh diameter (hops) of the sub-mesh holding ``n_cores`` cores."""
        check_positive("n_cores", n_cores)
        side = max(1, math.isqrt(n_cores))
        if side * side < n_cores:
            side += 1
        return max(1, 2 * (side - 1))

    def barrier_latency_ns(self, n_cores: int) -> float:
        """Latency of a barrier among ``n_cores`` cores.

        ``log2(n)`` reduction+broadcast rounds, each traversing the
        diameter of the participating sub-mesh, plus a fixed base cost
        (barrier bookkeeping in the checkpoint handler).
        """
        self.barriers += 1
        if n_cores <= 1:
            return self.config.noc_barrier_base_ns
        rounds = math.ceil(math.log2(n_cores)) + 1
        return (
            self.config.noc_barrier_base_ns
            + rounds * self.diameter_hops(n_cores) * self.config.noc_hop_ns
        )

    def average_hops(self) -> float:
        """Average hop count between two uniformly random mesh nodes."""
        return 2 * (self.dim - 1) / 3 if self.dim > 1 else 0.0
