"""Tests for repro.verify.dataflow (reaching defs, du-chains, live-in)."""

from repro.isa.instructions import (
    AddressPattern,
    AluInstr,
    LoadInstr,
    MoviInstr,
    StoreInstr,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import Kernel
from repro.verify import KernelDataflow

PAT = AddressPattern(0, 1, 8)


def straightline_kernel():
    """r1 <- load; r2 <- 5; r3 <- r1+r2; r1 <- 9; r4 <- r3+r7; store r4."""
    body = [
        LoadInstr(1, PAT),                      # 0: def r1
        MoviInstr(2, 5),                        # 1: def r2
        AluInstr(Opcode.ADD, 3, 1, 2),          # 2: def r3, reads r1 r2
        MoviInstr(1, 9),                        # 3: redefines r1
        AluInstr(Opcode.ADD, 4, 3, 7),          # 4: def r4, reads r3 + live-in r7
        StoreInstr(4, AddressPattern(64, 1, 8)),  # 5: reads r4
    ]
    return Kernel("dfk", body, trip_count=2)


class TestReachingDefs:
    def test_last_def_before_index_wins(self):
        df = KernelDataflow(straightline_kernel())
        assert df.reaching_def(2, 1) == 0   # the load, not the later MOVI
        assert df.reaching_def(5, 1) == 3   # after the redefinition
        assert df.reaching_def(5, 4) == 4

    def test_live_in_reaches_none(self):
        df = KernelDataflow(straightline_kernel())
        assert df.reaching_def(4, 7) is None
        assert df.reaching_def(0, 1) is None  # before any def

    def test_defs_of_reg_in_order(self):
        df = KernelDataflow(straightline_kernel())
        assert df.defs_of_reg(1) == (0, 3)
        assert df.defs_of_reg(99) == ()


class TestPerInstructionFacts:
    def test_reads_and_defs(self):
        df = KernelDataflow(straightline_kernel())
        assert df.reads(2) == (1, 2)
        assert df.reads(5) == (4,)
        assert df.reads(1) == ()
        assert df.def_reg(0) == 1
        assert df.def_reg(5) is None
        assert len(df) == 6


class TestDuChainsAndLiveIn:
    def test_du_chains_bind_uses_to_defs(self):
        df = KernelDataflow(straightline_kernel())
        chains = df.du_chains()
        assert chains[0] == (2,)     # load r1 -> ALU at 2 only
        assert chains[2] == (4,)     # r3 -> ALU at 4
        assert chains[4] == (5,)     # r4 -> store
        assert 3 not in chains       # redefined r1 is dead

    def test_live_in_is_read_before_def(self):
        df = KernelDataflow(straightline_kernel())
        assert df.live_in == frozenset({7})

    def test_accumulator_register_is_live_in(self):
        body = [
            MoviInstr(2, 1),
            AluInstr(Opcode.ADD, 1, 1, 2),  # r1 += 1: read-before-def
            StoreInstr(1, PAT),
        ]
        df = KernelDataflow(Kernel("acc", body, trip_count=2))
        assert 1 in df.live_in

    def test_closure_matches_ddg(self):
        k = straightline_kernel()
        df = KernelDataflow(k)
        assert df.closure_of(5) == df.ddg.backward_closure(5)
