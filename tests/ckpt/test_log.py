"""Tests for repro.ckpt.log."""

from repro.arch.buffers import AddrMapEntry
from repro.ckpt.log import LOG_RECORD_BYTES, IntervalLog
from repro.compiler.slices import Slice
from repro.isa.instructions import MoviInstr


def dummy_entry(addr):
    sl = Slice(0, (MoviInstr(0, 5),), (), 0)
    return AddrMapEntry(addr, sl, ())


class TestIntervalLog:
    def test_sizes(self):
        log = IntervalLog(0)
        log.add_record(0, 1, core=0)
        log.add_record(8, 2, core=1)
        log.add_omitted(16, dummy_entry(16), core=0, ground_truth=5)
        assert log.logged_bytes == 2 * LOG_RECORD_BYTES
        assert log.omitted_bytes == LOG_RECORD_BYTES
        assert log.baseline_bytes == 3 * LOG_RECORD_BYTES
        assert log.handled_addresses == 3

    def test_per_core_maps(self):
        log = IntervalLog(0)
        log.add_record(0, 1, core=0)
        log.add_record(8, 1, core=0)
        log.add_record(16, 1, core=2)
        log.add_omitted(24, dummy_entry(24), core=2, ground_truth=5)
        assert log.records_per_core() == {0: 2, 2: 1}
        assert log.omitted_per_core() == {2: 1}

    def test_empty(self):
        log = IntervalLog(3)
        assert log.logged_bytes == 0
        assert log.baseline_bytes == 0
        assert log.records_per_core() == {}
