"""The sharded replicated store: placement, replication, shard-death
recovery, read repair, and the degradation circuit breaker.

These tests drive the store directly with synthetic payloads (real
RunResults are exercised by the daemon and chaos suites) — the contracts
here are purely about where bytes live and how they come back.
"""

import hashlib
import os
import signal
import time

import pytest

from repro.experiments.cache import KIND_RUN, ResultCache
from repro.obs.metrics import MetricsRegistry
from repro.service.store import ReplicatedStore

chaos = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"),
    reason="chaos tests need SIGKILL",
)


def _key(i: int) -> str:
    return hashlib.sha256(f"entry-{i}".encode()).hexdigest()


def _doc(i: int) -> dict:
    return {"value": i, "blob": [i, i + 1], "name": f"entry-{i}"}


@pytest.fixture()
def store(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    store = ReplicatedStore(cache, shards=4, replicas=2)
    yield store
    store.close()


def _fill(store, n=8):
    keys = [_key(i) for i in range(n)]
    for i, key in enumerate(keys):
        store.store_payload(key, _doc(i), KIND_RUN)
    return keys


class TestPlacement:
    def test_owner_sets_are_replica_sized_and_distinct(self, store):
        for i in range(32):
            owners = store.owners(_key(i))
            assert len(owners) == 2
            assert len(set(owners)) == 2
            assert all(0 <= o < 4 for o in owners)

    def test_successor_placement_on_the_ring(self, store):
        key = _key(0)
        primary = int(key[:8], 16) % 4
        assert store.owners(key) == [primary, (primary + 1) % 4]

    def test_replicas_cannot_exceed_shards(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        with pytest.raises(ValueError, match="replicas"):
            ReplicatedStore(cache, shards=2, replicas=3)


class TestReadWrite:
    def test_round_trip_and_full_redundancy(self, store):
        keys = _fill(store)
        for i, key in enumerate(keys):
            assert store.load_payload(key, KIND_RUN) == _doc(i)
            assert store.replica_count(key) == 2
        assert store.alive_count() == 4

    def test_disk_holds_every_entry_regardless_of_shards(self, store):
        keys = _fill(store)
        for i, key in enumerate(keys):
            assert store.cache.load_payload(key, KIND_RUN) == _doc(i)

    def test_wrong_kind_misses(self, store):
        [key] = _fill(store, 1)
        assert store.load_payload(key, "inject-trial") is None

    def test_shards_serve_the_json_round_trip_of_the_payload(self, store):
        # Tuples become lists on disk; the shard copy must match what a
        # disk read would return, not the live Python object.
        key = _key(0)
        store.store_payload(key, {"pair": (1, 2)}, KIND_RUN)
        assert store.load_payload(key, KIND_RUN) == {"pair": [1, 2]}

    def test_read_repair_promotes_warm_disk_entries(self, store):
        key = _key(0)
        store.cache.store_payload(key, _doc(0), KIND_RUN)  # pre-daemon
        assert store.replica_count(key) == 0
        assert store.load_payload(key, KIND_RUN) == _doc(0)
        assert store.disk_fallbacks == 1
        assert store.replica_count(key) == 2

    def test_probe_sees_both_tiers(self, store):
        indexed = _key(0)
        disk_only = _key(1)
        store.store_payload(indexed, _doc(0), KIND_RUN)
        store.cache.store_payload(disk_only, _doc(1), KIND_RUN)
        assert store.load_payload_probe(indexed)
        assert store.load_payload_probe(disk_only)
        assert indexed in store
        assert not store.load_payload_probe(_key(2))

    def test_quarantine_drops_every_tier(self, store):
        [key] = _fill(store, 1)
        store.quarantine(key)
        assert store.load_payload(key, KIND_RUN) is None
        assert store.replica_count(key) == 0
        assert key not in store.indexed_keys()


@chaos
@pytest.mark.chaos
class TestShardDeath:
    def test_sigkilled_shard_loses_nothing_and_rereplicates(self, store):
        keys = _fill(store)
        pids = store.shard_pids()
        os.kill(pids[1], signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        while store._shards[1].alive() and time.monotonic() < deadline:
            time.sleep(0.02)
        store.heartbeat()
        assert store.alive_count() == 4
        assert store.shard_deaths == 1
        assert store.rereplicated > 0
        for i, key in enumerate(keys):
            assert store.load_payload(key, KIND_RUN) == _doc(i)
            assert store.replica_count(key) == 2

    def test_any_single_shard_is_survivable(self, tmp_path):
        # The acceptance bar: with 4 shards / R=2, killing ANY one shard
        # loses zero completed results and recovery restores R=2.
        for victim in range(4):
            cache = ResultCache(tmp_path / f"c{victim}")
            store = ReplicatedStore(cache, shards=4, replicas=2)
            try:
                keys = _fill(store)
                os.kill(store.shard_pids()[victim], signal.SIGKILL)
                store._shards[victim].process.join(timeout=5.0)
                store.heartbeat()
                assert store.alive_count() == 4
                for i, key in enumerate(keys):
                    assert store.load_payload(key, KIND_RUN) == _doc(i)
                    assert store.replica_count(key) == 2
            finally:
                store.close()

    def test_majority_loss_degrades_to_direct_disk(self, tmp_path):
        metrics = MetricsRegistry()
        cache = ResultCache(tmp_path / "cache")
        store = ReplicatedStore(cache, shards=4, replicas=2,
                                metrics=metrics)
        try:
            keys = _fill(store)
            for sid in (0, 1, 2):
                os.kill(store.shard_pids()[sid], signal.SIGKILL)
                store._shards[sid].process.join(timeout=5.0)
            store.heartbeat()
            assert store.degraded
            assert store.alive_count() == 0  # circuit open: all stopped
            assert metrics.counter("store.degraded").value == 1
            # Serial direct-disk mode still serves and accepts writes.
            for i, key in enumerate(keys):
                assert store.load_payload(key, KIND_RUN) == _doc(i)
            extra = _key(99)
            store.store_payload(extra, _doc(99), KIND_RUN)
            assert store.load_payload(extra, KIND_RUN) == _doc(99)
            assert store.status()["degraded"] is True
            # Heartbeats stay no-ops once degraded (no respawn storms).
            store.heartbeat()
            assert store.alive_count() == 0
        finally:
            store.close()

    def test_mid_write_shard_death_is_absorbed(self, store):
        keys = _fill(store, 2)
        os.kill(store.shard_pids()[0], signal.SIGKILL)
        store._shards[0].process.join(timeout=5.0)
        # Writes while shard 0 is dead but undetected: the RPC failure
        # marks it dead, the write still lands on disk + survivors.
        more = _key(50)
        store.store_payload(more, _doc(50), KIND_RUN)
        assert store.load_payload(more, KIND_RUN) == _doc(50)
        store.heartbeat()
        assert store.alive_count() == 4
        for key in keys + [more]:
            assert store.replica_count(key) == 2


class TestStatus:
    def test_status_document_shape(self, store):
        _fill(store, 3)
        doc = store.status()
        assert doc["shards"] == 4
        assert doc["alive"] == 4
        assert doc["replicas"] == 2
        assert doc["degraded"] is False
        assert doc["entries"] == 3
        assert len(doc["pids"]) == 4
        assert all(isinstance(p, int) for p in doc["pids"])

    def test_close_stops_everything(self, store):
        _fill(store, 1)
        store.close()
        assert store.alive_count() == 0
        assert store.shard_pids() == [None, None, None, None]
