"""Paper figure generators (Figs. 1, 6–13 and §V-D4 scalability).

Each generator takes an :class:`~repro.experiments.runner.ExperimentRunner`
(runs are memoised, so generators share work), returns a
:class:`FigureResult` carrying both the raw series and a rendered ASCII
table, and documents which paper claim it reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.energy.edp import combined_edp_reduction
from repro.energy.technology import component_error_rate_series
from repro.experiments.configs import ConfigRequest
from repro.experiments.runner import ExperimentRunner
from repro.sim.results import energy_overhead, time_overhead
from repro.util.tables import format_table

__all__ = [
    "FigureResult",
    "fig1_error_rate",
    "fig6_time_overhead",
    "fig7_energy_overhead",
    "fig8_edp_reduction",
    "fig9_checkpoint_size",
    "fig10_temporal",
    "fig11_error_sweep",
    "fig12_frequency_sweep",
    "fig13_local",
    "scalability",
]


@dataclass
class FigureResult:
    """One reproduced figure: raw series plus a rendered table."""

    name: str
    headers: List[str]
    rows: List[List[object]]
    series: Dict[str, object] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        """ASCII rendering, ready to print."""
        out = format_table(self.headers, self.rows, title=self.name)
        if self.notes:
            out += "\n" + self.notes
        return out


def _pct(x: float) -> float:
    return round(100.0 * x, 2)


def _overhead_reduction(
    runner: ExperimentRunner, wl: str, base_cfg: str, acr_cfg: str,
    metric, **kw,
) -> tuple:
    base = runner.baseline(wl)
    ck = runner.run_default(wl, base_cfg, **kw)
    re = runner.run_default(wl, acr_cfg, **kw)
    o_ck = metric(ck, base)
    o_re = metric(re, base)
    red = 1.0 - o_re / o_ck if o_ck > 0 else 0.0
    return o_ck, o_re, red


# --------------------------------------------------------------------- Fig 1
def fig1_error_rate() -> FigureResult:
    """Fig. 1: relative component error rate across technology nodes."""
    series = component_error_rate_series()
    rows = [[node, rate] for node, rate in series]
    return FigureResult(
        name="Figure 1: relative component error rate (8%/bit/generation)",
        headers=["node (nm)", "relative rate"],
        rows=rows,
        series={"nodes": [n for n, _ in series], "rates": [r for _, r in series]},
    )


# ----------------------------------------------------------------- Figs 6/7
def _overhead_figure(runner: ExperimentRunner, metric, label: str) -> FigureResult:
    rows = []
    series: Dict[str, Dict[str, float]] = {}
    reductions_ne, reductions_e = [], []
    for wl in runner.workloads():
        base = runner.baseline(wl)
        values = {}
        for cfg in ("Ckpt_NE", "Ckpt_E", "ReCkpt_NE", "ReCkpt_E"):
            values[cfg] = metric(runner.run_default(wl, cfg), base)
        red_ne = 1 - values["ReCkpt_NE"] / values["Ckpt_NE"]
        red_e = 1 - values["ReCkpt_E"] / values["Ckpt_E"]
        reductions_ne.append(red_ne)
        reductions_e.append(red_e)
        series[wl] = dict(values)
        rows.append(
            [
                wl,
                _pct(values["Ckpt_NE"]),
                _pct(values["Ckpt_E"]),
                _pct(values["ReCkpt_NE"]),
                _pct(values["ReCkpt_E"]),
                _pct(red_ne),
                _pct(red_e),
            ]
        )
    avg_ne = sum(reductions_ne) / len(reductions_ne)
    avg_e = sum(reductions_e) / len(reductions_e)
    return FigureResult(
        name=label,
        headers=[
            "bench",
            "Ckpt_NE %",
            "Ckpt_E %",
            "ReCkpt_NE %",
            "ReCkpt_E %",
            "red NE %",
            "red E %",
        ],
        rows=rows,
        series=series,
        notes=(
            f"average ACR reduction: NE {_pct(avg_ne)}%  E {_pct(avg_e)}%"
        ),
    )


def fig6_time_overhead(runner: ExperimentRunner) -> FigureResult:
    """Fig. 6: execution-time overhead of checkpointing and recovery.

    Paper: ReCkpt_NE cuts Ckpt_NE's time overhead by up to 28.81% (is),
    11.92% on average, minimum 2.12% (cg).
    """
    return _overhead_figure(
        runner, time_overhead, "Figure 6: time overhead w.r.t. NoCkpt"
    )


def fig7_energy_overhead(runner: ExperimentRunner) -> FigureResult:
    """Fig. 7: energy overhead (paper: up to 26.93% / avg 12.53% NE)."""
    return _overhead_figure(
        runner, energy_overhead, "Figure 7: energy overhead w.r.t. NoCkpt"
    )


# --------------------------------------------------------------------- Fig 8
def fig8_edp_reduction(runner: ExperimentRunner) -> FigureResult:
    """Fig. 8: overhead-EDP reduction of ReCkpt w.r.t. Ckpt.

    Paper: NE up to 47.98% (is) avg 22.47%; E up to 48.07% (dc) avg
    23.41%.  The published numbers compose the time and energy overhead
    reductions multiplicatively, which is what we report.
    """
    rows = []
    series = {}
    totals = {"NE": [], "E": []}
    for wl in runner.workloads():
        _, _, rt_ne = _overhead_reduction(
            runner, wl, "Ckpt_NE", "ReCkpt_NE", time_overhead
        )
        _, _, re_ne = _overhead_reduction(
            runner, wl, "Ckpt_NE", "ReCkpt_NE", energy_overhead
        )
        _, _, rt_e = _overhead_reduction(
            runner, wl, "Ckpt_E", "ReCkpt_E", time_overhead
        )
        _, _, re_e = _overhead_reduction(
            runner, wl, "Ckpt_E", "ReCkpt_E", energy_overhead
        )
        edp_ne = combined_edp_reduction(rt_ne, re_ne)
        edp_e = combined_edp_reduction(rt_e, re_e)
        totals["NE"].append(edp_ne)
        totals["E"].append(edp_e)
        series[wl] = {"NE": edp_ne, "E": edp_e}
        rows.append([wl, _pct(edp_ne), _pct(edp_e)])
    return FigureResult(
        name="Figure 8: EDP reduction of ReCkpt w.r.t. Ckpt",
        headers=["bench", "ReCkpt_NE %", "ReCkpt_E %"],
        rows=rows,
        series=series,
        notes=(
            f"average: NE {_pct(sum(totals['NE']) / len(totals['NE']))}%  "
            f"E {_pct(sum(totals['E']) / len(totals['E']))}%"
        ),
    )


# --------------------------------------------------------------------- Fig 9
def fig9_checkpoint_size(runner: ExperimentRunner) -> FigureResult:
    """Fig. 9: checkpoint-size reduction, Overall vs Max.

    Paper: overall up to 75.74% (is), average 38.31%; Max up to 58.3%
    (dc), ~0 for is (2.04%) and ft (0.05%).
    """
    rows = []
    series = {}
    overalls = []
    for wl in runner.workloads():
        ck = runner.run_default(wl, "Ckpt_NE")
        re = runner.run_default(wl, "ReCkpt_NE")
        overall = 1 - re.total_checkpoint_bytes / ck.total_checkpoint_bytes
        mx = 1 - re.max_checkpoint_bytes / ck.max_checkpoint_bytes
        overalls.append(overall)
        series[wl] = {"overall": overall, "max": mx}
        rows.append([wl, _pct(overall), _pct(mx)])
    return FigureResult(
        name="Figure 9: checkpoint size reduction under ReCkpt_NE",
        headers=["bench", "Overall %", "Max %"],
        rows=rows,
        series=series,
        notes=f"average overall: {_pct(sum(overalls) / len(overalls))}%",
    )


# -------------------------------------------------------------------- Fig 10
def fig10_temporal(
    runner: ExperimentRunner,
    workload: str = "bt",
    thresholds: Sequence[int] = (10, 20, 30, 40, 50),
) -> FigureResult:
    """Fig. 10: per-interval checkpoint-size reduction over time (bt).

    Paper: the reduction varies across intervals, motivating
    recomputation-aware checkpoint placement (future work — see
    :mod:`repro.experiments.placement`).
    """
    series: Dict[str, List[float]] = {}
    for thr in thresholds:
        run = runner.run(workload, ConfigRequest("ReCkpt_NE", threshold=thr))
        series[f"thr{thr}"] = [iv.reduction for iv in run.intervals]
    n_intervals = len(next(iter(series.values())))
    rows = []
    for k in range(n_intervals):
        rows.append([k] + [_pct(series[f"thr{t}"][k]) for t in thresholds])
    return FigureResult(
        name=f"Figure 10: per-interval ckpt size reduction over time ({workload})",
        headers=["interval"] + [f"thr={t} %" for t in thresholds],
        rows=rows,
        series=series,
    )


# -------------------------------------------------------------------- Fig 11
def fig11_error_sweep(
    runner: ExperimentRunner, error_counts: Sequence[int] = (1, 2, 3, 4, 5)
) -> FigureResult:
    """Fig. 11: time overhead vs number of errors.

    Paper: overhead grows with errors; ReCkpt_E stays below Ckpt_E with
    average time-overhead reductions between ~9% and ~12% across error
    rates; EDP reductions between ~18% and ~24%.
    """
    rows = []
    series: Dict[str, Dict[int, Dict[str, float]]] = {}
    for wl in runner.workloads():
        base = runner.baseline(wl)
        per_wl = {}
        row = [wl]
        for n in error_counts:
            ck = runner.run_default(wl, "Ckpt_E", error_count=n)
            re = runner.run_default(wl, "ReCkpt_E", error_count=n)
            o_ck = time_overhead(ck, base)
            o_re = time_overhead(re, base)
            per_wl[n] = {"Ckpt_E": o_ck, "ReCkpt_E": o_re}
            row.extend([_pct(o_ck), _pct(o_re)])
        series[wl] = per_wl
        rows.append(row)
    headers = ["bench"]
    for n in error_counts:
        headers.extend([f"Ckpt {n}e %", f"ReCkpt {n}e %"])
    return FigureResult(
        name="Figure 11: time overhead vs number of errors",
        headers=headers,
        rows=rows,
        series=series,
    )


# -------------------------------------------------------------------- Fig 12
def fig12_frequency_sweep(
    runner: ExperimentRunner, counts: Sequence[int] = (25, 50, 75, 100)
) -> FigureResult:
    """Fig. 12: time overhead vs number of checkpoints (error-free).

    Paper: overhead grows with checkpoint count; ReCkpt_NE reduces it at
    every count (avg ~10–14%).
    """
    rows = []
    series: Dict[str, Dict[int, Dict[str, float]]] = {}
    for wl in runner.workloads():
        base = runner.baseline(wl)
        per_wl = {}
        row = [wl]
        for n in counts:
            ck = runner.run_default(wl, "Ckpt_NE", num_checkpoints=n)
            re = runner.run_default(wl, "ReCkpt_NE", num_checkpoints=n)
            o_ck = time_overhead(ck, base)
            o_re = time_overhead(re, base)
            per_wl[n] = {"Ckpt_NE": o_ck, "ReCkpt_NE": o_re}
            row.extend([_pct(o_ck), _pct(o_re)])
        series[wl] = per_wl
        rows.append(row)
    headers = ["bench"]
    for n in counts:
        headers.extend([f"Ckpt {n}ck %", f"ReCkpt {n}ck %"])
    return FigureResult(
        name="Figure 12: time overhead vs number of checkpoints",
        headers=headers,
        rows=rows,
        series=series,
    )


# -------------------------------------------------------------------- Fig 13
def fig13_local(runner: ExperimentRunner) -> FigureResult:
    """Fig. 13: normalized execution time of local vs global schemes.

    Paper: bt/cg/sp (all-to-all communicators) gain nothing; ft/is/mg/dc
    gain the most under Ckpt_NE_Loc; the gap shrinks for the ReCkpt and
    error variants.
    """
    pairs = (
        ("Ckpt_NE_Loc", "Ckpt_NE"),
        ("Ckpt_E_Loc", "Ckpt_E"),
        ("ReCkpt_NE_Loc", "ReCkpt_NE"),
        ("ReCkpt_E_Loc", "ReCkpt_E"),
    )
    rows = []
    series: Dict[str, Dict[str, float]] = {}
    for wl in runner.workloads():
        row = [wl]
        per_wl = {}
        for local_cfg, global_cfg in pairs:
            local = runner.run_default(wl, local_cfg)
            glob = runner.run_default(wl, global_cfg)
            norm = local.wall_ns / glob.wall_ns
            per_wl[local_cfg] = norm
            row.append(round(norm, 3))
        series[wl] = per_wl
        rows.append(row)
    return FigureResult(
        name="Figure 13: normalized execution time, local / global",
        headers=["bench"] + [p[0] for p in pairs],
        rows=rows,
        series=series,
        notes="< 1.0 means coordinated local checkpointing is faster.",
    )


# -------------------------------------------------------------- Scalability
def scalability(
    core_counts: Sequence[int] = (8, 16, 32),
    region_scale: float = 1.0,
    reps: Optional[int] = None,
    workloads: Optional[Sequence[str]] = None,
) -> FigureResult:
    """§V-D4: checkpointing overhead and ACR reduction vs thread count.

    Paper: average Ckpt_NE overhead ≈45/55/60% at 8/16/32 threads, never
    below 9%; ReCkpt_NE reductions up to 28.81/17.78/19.12%.
    """
    rows = []
    series: Dict[int, Dict[str, Dict[str, float]]] = {}
    for cores in core_counts:
        runner = ExperimentRunner(
            num_cores=cores, region_scale=region_scale, reps=reps
        )
        names = list(workloads) if workloads else runner.workloads()
        per_cores = {}
        overheads = []
        for wl in names:
            base = runner.baseline(wl)
            ck = runner.run_default(wl, "Ckpt_NE")
            re = runner.run_default(wl, "ReCkpt_NE")
            o_ck = time_overhead(ck, base)
            o_re = time_overhead(re, base)
            red = 1 - o_re / o_ck if o_ck > 0 else 0.0
            per_cores[wl] = {"Ckpt_NE": o_ck, "ReCkpt_NE": o_re, "red": red}
            overheads.append(o_ck)
            rows.append([cores, wl, _pct(o_ck), _pct(o_re), _pct(red)])
        series[cores] = per_cores
        rows.append(
            [cores, "AVG", _pct(sum(overheads) / len(overheads)), "", ""]
        )
    return FigureResult(
        name="Scalability (V-D4): checkpoint overhead vs thread count",
        headers=["cores", "bench", "Ckpt_NE %", "ReCkpt_NE %", "red %"],
        rows=rows,
        series=series,
    )
