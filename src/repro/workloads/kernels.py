"""Kernel generation for workload specs.

Address-space layout (byte addresses, 8-byte words):

* thread-private data lives at ``(thread+1) << 30``: per-site store
  subregions (128 KiB slots), a read-only input area, and burst regions;
* cluster-shared communication regions live above ``1 << 40`` so they can
  never collide with private data.

Store values are real dataflow: a site's chain reads from its input area
(whose initial contents come from the memory image's deterministic
initialiser) at a per-rep rotating offset, so stored values change every
timestep and recomputation correctness is a meaningful check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.isa.builder import chain_kernel
from repro.isa.instructions import AddressPattern
from repro.isa.program import Kernel
from repro.util.rng import derive_seed
from repro.workloads.spec import BurstSpec, WorkloadSpec

__all__ = [
    "SiteAssignment",
    "assign_sites",
    "site_kernel",
    "shared_kernel",
    "burst_kernels",
]

_THREAD_BASE_SHIFT = 30
_SITE_SLOT_BYTES = 1 << 17
_INPUT_AREA_OFFSET = 1 << 27
_BURST_AREA_OFFSET = 1 << 28
_SHARED_BASE = 1 << 40
_SHARED_SLOT_BYTES = 1 << 20


def _thread_base(thread: int) -> int:
    return (thread + 1) << _THREAD_BASE_SHIFT


@dataclass(frozen=True)
class SiteAssignment:
    """One store site's shape: what it writes and how."""

    index: int
    kind: str  # "chain" | "copy" | "accum"
    slice_len: int  # meaningful for kind == "chain"
    sparse: bool
    words: int


def _apportion(total: int, weights: List[float]) -> List[int]:
    """Largest-remainder apportionment of ``total`` items over weights."""
    raw = [w * total for w in weights]
    counts = [int(r) for r in raw]
    remainder = total - sum(counts)
    order = sorted(
        range(len(weights)), key=lambda i: raw[i] - counts[i], reverse=True
    )
    for i in order[:remainder]:
        counts[i] += 1
    return counts


def assign_sites(spec: WorkloadSpec, region_words: int) -> List[SiteAssignment]:
    """Deterministically apportion a spec's sites across its mix.

    Every thread gets the same site structure (SPMD workloads); only value
    salts differ per thread.  Bucket lengths are spread evenly over each
    bucket's ``[lo, hi]`` range; sparse sites are interleaved round-robin
    so sparsity does not correlate with slice length.
    """
    categories: List[tuple] = [("copy", 0, 0)] if spec.copy_frac > 0 else []
    weights: List[float] = [spec.copy_frac] if spec.copy_frac > 0 else []
    if spec.accum_frac > 0:
        categories.append(("accum", 0, 0))
        weights.append(spec.accum_frac)
    for bucket in spec.len_mix:
        categories.append(("chain", bucket.lo, bucket.hi))
        weights.append(bucket.weight)
    total_weight = sum(weights)
    if total_weight <= 0:
        raise ValueError(f"{spec.name}: no site categories")
    weights = [w / total_weight for w in weights]
    counts = _apportion(spec.sites, weights)

    base_words = region_words // spec.sites
    extra = region_words - base_words * spec.sites

    assignments: List[SiteAssignment] = []
    sparse_acc = 0.0
    index = 0
    for (kind, lo, hi), count in zip(categories, counts):
        for j in range(count):
            if kind == "chain":
                if count > 1:
                    length = lo + round(j * (hi - lo) / (count - 1))
                else:
                    length = (lo + hi) // 2
            else:
                length = 0
            words = base_words + (1 if index < extra else 0)
            # Bresenham spread of sparsity across the site sequence, so
            # sparse sites interleave evenly with every length bucket.
            sparse_acc += spec.sparse_frac
            sparse = sparse_acc >= 1.0 - 1e-9
            if sparse:
                sparse_acc -= 1.0
            assignments.append(SiteAssignment(index, kind, length, sparse, words))
            index += 1
    return assignments


def site_kernel(
    spec: WorkloadSpec,
    assignment: SiteAssignment,
    thread: int,
    rep: int,
    active_words: int,
    window_offset: int,
    window_words: int,
) -> Kernel:
    """One site's window sweep for one timestep.

    The window covers ``[window_offset, window_offset + window_words)``
    of the site's *active* subregion (``active_words`` ≤ the full
    subregion), modulo ``active_words`` — the rotating window that gets
    every active word rewritten every ``~1/window_frac`` reps (the
    recomputability engine of the whole workload suite).
    """
    tbase = _thread_base(thread)
    store_base = tbase + assignment.index * _SITE_SLOT_BYTES
    input_base = tbase + _INPUT_AREA_OFFSET + assignment.index * _SITE_SLOT_BYTES
    words = active_words
    if assignment.sparse:
        store = AddressPattern(store_base, 8, words * 8, offset=window_offset * 8)
    else:
        store = AddressPattern(store_base, 1, words, offset=window_offset)
    # The rotating read offset makes loaded (hence stored) values vary.
    inputs = [
        AddressPattern(input_base, 1, words, offset=(rep + window_offset) % words)
    ]
    salt = derive_seed(spec.seed, f"{spec.name}/t{thread}/s{assignment.index}")
    name = f"{spec.name}.s{assignment.index}.r{rep}"
    if assignment.kind == "copy":
        return chain_kernel(
            name, store, inputs, 0, window_words, phase=rep, salt=salt,
            copy_store=True, ghost_alu=spec.ghost_alu,
        )
    if assignment.kind == "accum":
        return chain_kernel(
            name, store, inputs, 3, window_words, phase=rep, salt=salt,
            accumulate=True, ghost_alu=spec.ghost_alu,
        )
    # Slice length = chain depth + 1 (the salt MOVI).
    return chain_kernel(
        name, store, inputs, assignment.slice_len - 1, window_words, phase=rep,
        salt=salt, ghost_alu=spec.ghost_alu,
    )


def shared_kernel(
    spec: WorkloadSpec, thread: int, rep: int, cluster: int, member: int
) -> Kernel:
    """Per-timestep communication within a cluster.

    All cluster members load the same ``shared_words`` region (the
    directory observes the shared lines and connects the members into one
    communication group) and each writes a private one-line slot.  The
    slot store is a *copy* store: shared data is never sliceable (the
    paper confines Slices to thread-local data).
    """
    shared_base = _SHARED_BASE + cluster * _SHARED_SLOT_BYTES
    trips = 8
    read_stride = max(1, spec.shared_words // trips)
    builder_inputs = [AddressPattern(shared_base, read_stride, spec.shared_words)]
    slot_base = shared_base + (spec.shared_words + member * 8) * 8
    store = AddressPattern(slot_base, 1, 8)
    return chain_kernel(
        f"{spec.name}.shared.r{rep}",
        store,
        builder_inputs,
        0,
        trips,
        phase=rep,
        copy_store=True,
    )


def burst_kernels(
    spec: WorkloadSpec,
    burst: BurstSpec,
    thread: int,
    rep: int,
    pass_index: int,
    region_words: int,
) -> List[Kernel]:
    """One pass of a burst phase.

    The burst region's base depends only on the burst (not the pass), so
    multi-pass bursts re-sweep the same addresses: the first pass's
    first-writes log fresh (unrecomputable) old values, later passes'
    first-writes can be omitted if the burst chains are under threshold.
    Bursts carry no ghost compute — they are traffic-dominated phases,
    which concentrates their checkpoint weight into few intervals.
    """
    tbase = _thread_base(thread)
    # A small slot index derived from the burst position: must stay well
    # inside the thread's 1 GiB private window (the burst area starts at
    # +256 MiB and each slot is 4 MiB, so ids up to ~31 are safe).
    burst_id = int(burst.rep_frac * 29)
    base = tbase + _BURST_AREA_OFFSET + burst_id * (1 << 22)
    words = max(8, int(burst.words_factor * region_words))
    n_sub = 8
    sub_words = max(1, words // n_sub)
    kernels: List[Kernel] = []
    for sub in range(n_sub):
        store = AddressPattern(base + sub * sub_words * 8, 1, sub_words)
        inputs = [
            AddressPattern(
                tbase + _INPUT_AREA_OFFSET + sub * _SITE_SLOT_BYTES,
                1,
                sub_words,
                offset=pass_index,
            )
        ]
        salt = derive_seed(
            spec.seed, f"{spec.name}/burst{burst_id}/t{thread}/u{sub}/p{pass_index}"
        )
        name = f"{spec.name}.burst{burst_id}.u{sub}.r{rep}"
        if burst.kind == "copy":
            kernels.append(
                chain_kernel(
                    name, store, inputs, 0, sub_words, phase=rep, salt=salt,
                    copy_store=True,
                )
            )
        else:
            if n_sub > 1:
                length = burst.len_lo + round(
                    sub * (burst.len_hi - burst.len_lo) / (n_sub - 1)
                )
            else:
                length = (burst.len_lo + burst.len_hi) // 2
            kernels.append(
                chain_kernel(
                    name, store, inputs, length - 1, sub_words, phase=rep,
                    salt=salt,
                )
            )
    return kernels
