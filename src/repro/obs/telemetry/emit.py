"""Ambient per-process frame emission.

The simulator's hot path cannot thread a telemetry handle through every
call site (and must not ride on the :class:`~repro.obs.tracer.Tracer`
channel — attaching a tracer forces the classic engine and bypasses the
result cache).  Instead, emission is *ambient*: the execution harness
installs a sink + task label around one task's execution
(:func:`task_telemetry`), and instrumented code calls :func:`emit`,
which is a no-op returning immediately while no sink is installed.
Runs therefore behave byte-identically with telemetry disabled — the
only residue is one hoisted ``is None`` check per hook site, pinned
under 2% by the benchmark guardrail.

Sinks are advisory by contract: any exception a sink raises (a full
pipe, a dead parent) is swallowed here so a telemetry failure can never
perturb — let alone kill — the task it is observing.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional, Type

from repro.obs.telemetry.frames import (
    TaskFinished,
    TaskStarted,
    TelemetryFrame,
)

__all__ = [
    "FrameSink",
    "telemetry_active",
    "current_task",
    "emit",
    "frame_context",
    "task_telemetry",
]

FrameSink = Callable[[TelemetryFrame], None]

#: The installed sink (None = telemetry disabled for this process) and
#: the label of the task currently executing under it.
_SINK: Optional[FrameSink] = None
_TASK: str = ""


def telemetry_active() -> bool:
    """Whether a frame sink is installed (hoist this per run)."""
    return _SINK is not None


def current_task() -> str:
    """The active task label ("" outside any task context)."""
    return _TASK


def emit(cls: Type[TelemetryFrame], **fields: Any) -> None:
    """Build and deliver one frame — a no-op when no sink is installed.

    ``ts_s``/``task`` are stamped here; callers supply only the frame's
    own fields.  Sink exceptions are swallowed (advisory contract).
    """
    sink = _SINK
    if sink is None:
        return
    frame = cls(ts_s=time.time(), task=_TASK, **fields)
    try:
        sink(frame)
    except Exception:
        pass


@contextmanager
def frame_context(label: str, sink: Optional[FrameSink]) -> Iterator[None]:
    """Install ``sink`` (and the task label) for the duration; nests."""
    global _SINK, _TASK
    prev = (_SINK, _TASK)
    _SINK, _TASK = sink, label
    try:
        yield
    finally:
        _SINK, _TASK = prev


@contextmanager
def task_telemetry(label: str, sink: Optional[FrameSink]) -> Iterator[Any]:
    """One task's full telemetry scope.

    Installs the sink, emits ``task_started``, activates a fresh
    :class:`~repro.obs.telemetry.profile.PhaseProfiler` (yielded), and
    on exit — success *or* exception — emits ``task_finished`` carrying
    the wall seconds and the profiler's per-phase attribution, then
    restores the previous ambient state.
    """
    from repro.obs.telemetry.profile import PhaseProfiler, activate

    profiler = PhaseProfiler()
    t0 = time.perf_counter()
    ok = False
    with frame_context(label, sink):
        emit(TaskStarted, pid=os.getpid())
        try:
            with activate(profiler):
                yield profiler
            ok = True
        finally:
            emit(
                TaskFinished,
                ok=ok,
                seconds=time.perf_counter() - t0,
                phase_seconds=dict(profiler.seconds),
                phase_counts=dict(profiler.counts),
            )
