"""Opcode definitions and arithmetic semantics for the IR.

All arithmetic is over 64-bit unsigned integers with wrap-around, which
keeps interpretation fast (plain Python ints masked to 64 bits) while still
producing *real*, order-sensitive values — the property recomputation
correctness tests rely on.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict

__all__ = ["Opcode", "ALU_OPCODES", "apply_alu", "MASK64"]

MASK64 = (1 << 64) - 1


class Opcode(enum.Enum):
    """Instruction opcodes.

    ``MOVI`` materialises an immediate; the remaining ALU opcodes are
    binary.  ``LOAD``/``STORE`` are the only memory opcodes; ``ASSOC_ADDR``
    is the paper's special instruction that associates a store's effective
    address with its Slice (executed atomically with the store — in our IR
    it is a flag on :class:`~repro.isa.instructions.StoreInstr` rather than
    a separate instruction object, but it is costed as an instruction).
    """

    MOVI = "movi"
    MOV = "mov"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    LOAD = "load"
    STORE = "store"
    ASSOC_ADDR = "assoc_addr"


def _add(a: int, b: int) -> int:
    return (a + b) & MASK64


def _sub(a: int, b: int) -> int:
    return (a - b) & MASK64


def _mul(a: int, b: int) -> int:
    return (a * b) & MASK64


def _and(a: int, b: int) -> int:
    return a & b


def _or(a: int, b: int) -> int:
    return a | b


def _xor(a: int, b: int) -> int:
    return a ^ b


def _shl(a: int, b: int) -> int:
    return (a << (b & 63)) & MASK64


def _shr(a: int, b: int) -> int:
    return a >> (b & 63)


_BINARY_SEMANTICS: Dict[Opcode, Callable[[int, int], int]] = {
    Opcode.ADD: _add,
    Opcode.SUB: _sub,
    Opcode.MUL: _mul,
    Opcode.AND: _and,
    Opcode.OR: _or,
    Opcode.XOR: _xor,
    Opcode.SHL: _shl,
    Opcode.SHR: _shr,
}

#: The binary ALU opcodes eligible to appear inside a Slice.
ALU_OPCODES = frozenset(_BINARY_SEMANTICS)

#: Opcode -> evaluation function; the interpreter's precompiled dispatch
#: uses this to bind semantics once per kernel instead of per instruction.
BINARY_SEMANTICS = _BINARY_SEMANTICS


def apply_alu(op: Opcode, a: int, b: int) -> int:
    """Evaluate a binary ALU opcode over two 64-bit values."""
    try:
        return _BINARY_SEMANTICS[op](a, b)
    except KeyError:
        raise ValueError(f"{op} is not a binary ALU opcode") from None
