"""Campaign-level live telemetry (advisory, results-neutral).

Layers, bottom-up:

* :mod:`~repro.obs.telemetry.frames` — typed frames on the wire;
* :mod:`~repro.obs.telemetry.emit` — ambient per-process emission;
* :mod:`~repro.obs.telemetry.profile` — per-task phase self-profiling;
* :mod:`~repro.obs.telemetry.aggregate` — campaign-wide fold;
* :mod:`~repro.obs.telemetry.snapshots` — durable JSONL snapshots;
* :mod:`~repro.obs.telemetry.monitor` — live TTY dashboard + replay.

The whole stack is opt-in: with no sink installed the simulator's hot
path keeps its byte-identical behaviour (pinned by test and by the <2%
benchmark guardrail).
"""

from repro.obs.telemetry.aggregate import CampaignTelemetry

# NOTE: the ``emit`` *function* is intentionally not re-exported here —
# the package attribute ``repro.obs.telemetry.emit`` must keep naming the
# submodule (re-binding it to the function would shadow the module for
# every ``from repro.obs.telemetry import emit`` importer).
from repro.obs.telemetry.emit import (
    FrameSink,
    current_task,
    frame_context,
    task_telemetry,
    telemetry_active,
)
from repro.obs.telemetry.frames import (
    FRAME_TYPES,
    MetricsDelta,
    PhaseChanged,
    TaskFinished,
    TaskHeartbeat,
    TaskStarted,
    TelemetryFrame,
    frame_from_dict,
)
from repro.obs.telemetry.monitor import Monitor, render_snapshot, replay
from repro.obs.telemetry.profile import PHASES, PhaseProfiler
from repro.obs.telemetry.snapshots import (
    SNAPSHOT_FIELDS,
    SNAPSHOT_KIND,
    TELEMETRY_SCHEMA_VERSION,
    SnapshotWriter,
    read_snapshots,
)

__all__ = [
    "CampaignTelemetry",
    "FrameSink",
    "current_task",
    "frame_context",
    "task_telemetry",
    "telemetry_active",
    "FRAME_TYPES",
    "MetricsDelta",
    "PhaseChanged",
    "TaskFinished",
    "TaskHeartbeat",
    "TaskStarted",
    "TelemetryFrame",
    "frame_from_dict",
    "Monitor",
    "render_snapshot",
    "replay",
    "PHASES",
    "PhaseProfiler",
    "SNAPSHOT_FIELDS",
    "SNAPSHOT_KIND",
    "TELEMETRY_SCHEMA_VERSION",
    "SnapshotWriter",
    "read_snapshots",
]
