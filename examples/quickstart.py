#!/usr/bin/env python
"""Quickstart: ACR on one NAS-like benchmark.

Runs the `bt` benchmark on the paper's Table-I machine in three
configurations — no checkpointing, baseline incremental checkpointing, and
ACR (recomputation-enabled) checkpointing — and reports what ACR saves.

    python examples/quickstart.py [benchmark] [--scale S]
"""

import argparse

from repro import (
    ExperimentRunner,
    energy_overhead,
    time_overhead,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="bt",
                        help="one of: bt cg dc ft is lu mg sp")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload scale (smaller = faster)")
    args = parser.parse_args()

    runner = ExperimentRunner(num_cores=8, region_scale=args.scale)
    wl = args.benchmark

    print(f"== {wl} on the Table-I machine "
          f"({runner.machine.num_cores} cores) ==\n")

    base = runner.baseline(wl)
    ckpt = runner.run_default(wl, "Ckpt_NE")
    acr = runner.run_default(wl, "ReCkpt_NE")

    print(f"NoCkpt    : wall {base.wall_ns / 1e3:9.1f} us   "
          f"energy {base.energy_pj / 1e6:8.2f} uJ")
    for run in (ckpt, acr):
        print(
            f"{run.label:<10}: wall {run.wall_ns / 1e3:9.1f} us   "
            f"energy {run.energy_pj / 1e6:8.2f} uJ   "
            f"time ovh {100 * time_overhead(run, base):5.1f}%   "
            f"energy ovh {100 * energy_overhead(run, base):5.1f}%"
        )

    size_red = 1 - acr.total_checkpoint_bytes / ckpt.total_checkpoint_bytes
    t_red = 1 - time_overhead(acr, base) / time_overhead(ckpt, base)
    e_red = 1 - energy_overhead(acr, base) / energy_overhead(ckpt, base)

    print(f"\nACR checkpoint-data reduction : {100 * size_red:5.1f}%")
    print(f"ACR time-overhead reduction   : {100 * t_red:5.1f}%")
    print(f"ACR energy-overhead reduction : {100 * e_red:5.1f}%")
    print(f"\ncompiler pass: {acr.compile_stats.sites_embedded} of "
          f"{acr.compile_stats.sites_total} store sites got an embedded "
          f"Slice ({acr.compile_stats.embedded_bytes} bytes in the binary)")
    print(f"omissions at run time: {acr.omissions} log writes skipped")


if __name__ == "__main__":
    main()
