"""Table I: the simulated architecture."""

from _bench_lib import run_once

from repro.experiments.tables_ import table1_configuration


def test_table1(benchmark, runner, emit):
    text = run_once(benchmark, lambda: table1_configuration(runner.machine))
    emit("table1_config", text)
    for token in ("1.09 GHz", "4-issue", "32KB", "512KB", "120ns"):
        assert token in text
