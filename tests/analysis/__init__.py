"""Test package."""
