"""Directory state: per-line log bits and inter-core sharing tracking.

The paper's baseline keeps one extra *log* bit per memory line in the
directory controller: set once the line has been handled (logged — or,
under ACR, deliberately omitted) for the current checkpoint interval, and
cleared when a new checkpoint is established.

For coordinated *local* checkpointing the directory additionally records
which cores touched the same line within an interval; the transitive
closure of that relation yields the *communicating clusters* that must
checkpoint together (Koo–Toueg style coordination confined to interacting
tasks).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.util.validation import check_positive

__all__ = ["Directory"]


class _UnionFind:
    """Tiny union-find over core ids."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


class Directory:
    """Directory controller state shared by all cores.

    Tracks, per *word address*:

    * the log bit for the current checkpoint interval (``test_and_set_log``
      implements the "first modification this interval" check);

    and, per *line address*, the set of cores that touched the line during
    the current interval (communication tracking for local checkpointing).
    """

    def __init__(self, num_cores: int) -> None:
        check_positive("num_cores", num_cores)
        self.num_cores = num_cores
        self._log_bits: Set[int] = set()
        self._line_toucher: Dict[int, int] = {}
        self._edges: Set[Tuple[int, int]] = set()

    # -- log bits (word granularity, matching the log record granularity) ----
    def test_and_set_log(self, address: int) -> bool:
        """Set the log bit for ``address``; returns the *previous* value.

        ``False`` means this is the first modification in the interval and
        the old value must be handled (logged, or omitted under ACR).
        """
        if address in self._log_bits:
            return True
        self._log_bits.add(address)
        return False

    def log_bit(self, address: int) -> bool:
        """Current log bit for ``address``."""
        return address in self._log_bits

    def clear_log_bits(self) -> int:
        """New checkpoint established: clear every log bit.

        Returns how many bits were set (== unique addresses handled).
        """
        count = len(self._log_bits)
        self._log_bits.clear()
        return count

    @property
    def logged_addresses(self) -> int:
        """Unique addresses handled so far this interval."""
        return len(self._log_bits)

    def log_bit_set(self) -> Set[int]:
        """The live log-bit set, for engines inlining the first-mod check.

        ``clear_log_bits`` clears this set in place, so a held reference
        stays valid across interval boundaries.
        """
        return self._log_bits

    # -- communication tracking (line granularity) ----------------------------
    def record_access(self, core: int, line: int) -> None:
        """Note that ``core`` touched ``line`` this interval.

        When a different core touched the line earlier in the interval, a
        communication edge between the two cores is recorded.
        """
        prev = self._line_toucher.get(line)
        if prev is None:
            self._line_toucher[line] = core
        elif prev != core:
            edge = (prev, core) if prev < core else (core, prev)
            self._edges.add(edge)
            self._line_toucher[line] = core

    def comm_state(self) -> Tuple[Dict[int, int], Set[Tuple[int, int]]]:
        """``(line_toucher, edges)`` for engines inlining
        :meth:`record_access`.  Both are cleared in place at interval
        boundaries, so held references stay valid.
        """
        return self._line_toucher, self._edges

    def communication_groups(self) -> List[FrozenSet[int]]:
        """Communicating clusters of cores for the current interval.

        Cores with no recorded interaction form singleton clusters; the
        union of all clusters is always the full core set.
        """
        uf = _UnionFind(self.num_cores)
        for a, b in self._edges:
            uf.union(a, b)
        groups: Dict[int, Set[int]] = {}
        for core in range(self.num_cores):
            groups.setdefault(uf.find(core), set()).add(core)
        return [frozenset(g) for g in groups.values()]

    def clear_interval_tracking(self) -> None:
        """Reset communication tracking at an interval boundary."""
        self._line_toucher.clear()
        self._edges.clear()

    @property
    def edge_count(self) -> int:
        """Distinct communication edges recorded this interval."""
        return len(self._edges)
