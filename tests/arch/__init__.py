"""Test package."""
