"""The in-flight task registry: per-key leases dedupe concurrent clients.

Two clients submitting overlapping sweeps must not both pay for the
shared simulations.  The registry claims a **lease** per canonical key —
an advisory :class:`~repro.resilience.locks.KeyLock` living beside the
cache entry (``.lease`` suffix, deliberately distinct from the runner's
own ``.lock`` coordination so the two never contend) — and splits each
submission's key set into *mine* (leases won: this connection simulates
them) and *theirs* (someone else is already computing them: wait for the
published entry instead).

The guarantees mirror the lock layer's philosophy: best-effort dedupe
over a correct-by-construction store.  Cache writes are atomic and
idempotent, so a lease lost to a crash merely costs one duplicated
simulation after the staleness window — never a wrong result.  Leases
are heartbeaten per completed task (wired through the runner's
``supervisor_hooks``) so long campaigns are not broken as stale.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Tuple

from repro.resilience.locks import KeyLock

__all__ = ["InFlightRegistry"]


class InFlightRegistry:
    """Lease table over one shared cache keyspace."""

    def __init__(
        self,
        cache,
        stale_s: float = 600.0,
        poll_s: float = 0.05,
    ) -> None:
        self.cache = cache
        self.stale_s = stale_s
        self.poll_s = poll_s
        #: Currently-held leases, by key.
        self._held: Dict[str, KeyLock] = {}

    def lease_path(self, key: str):
        """Where ``key``'s lease lives: beside the entry, distinct from
        the runner's ``.lock`` so registry and runner never contend."""
        return self.cache.lock_path(key).with_suffix(".lease")

    # ----------------------------------------------------------------- claim --
    def claim(self, keys: Iterable[str]) -> Tuple[List[str], List[str]]:
        """One non-blocking claim attempt per key.

        Returns ``(mine, theirs)``: keys whose lease this registry now
        holds (the caller must simulate and then :meth:`publish` them)
        and keys currently leased by another in-flight submission (the
        caller should :meth:`wait` for their entries)."""
        mine: List[str] = []
        theirs: List[str] = []
        for key in keys:
            if key in self._held:
                mine.append(key)
                continue
            lock = KeyLock(
                self.lease_path(key), wait_s=0.0, stale_s=self.stale_s,
                poll_s=self.poll_s,
            )
            if lock.try_acquire():
                self._held[key] = lock
                mine.append(key)
            else:
                theirs.append(key)
        return mine, theirs

    def publish(self, key: str) -> None:
        """Release ``key``'s lease — its result is in the store now."""
        lock = self._held.pop(key, None)
        if lock is not None:
            lock.release()

    def release_all(self) -> None:
        """Drop every held lease (connection teardown / error path)."""
        for key in list(self._held):
            self.publish(key)

    # ------------------------------------------------------------- liveness --
    def heartbeat_all(self) -> None:
        """Refresh every held lease's mtime (call per completed task —
        bounds the staleness clock by one task, not one campaign)."""
        for lock in self._held.values():
            lock.heartbeat()

    @property
    def in_flight(self) -> int:
        """Leases currently held by this registry."""
        return len(self._held)

    # ---------------------------------------------------------------- wait --
    def wait(
        self,
        keys: Iterable[str],
        done: Callable[[str], bool],
        timeout_s: float = 600.0,
    ) -> List[str]:
        """Block until ``done(key)`` for every key (another submission is
        computing them) or the deadline passes.

        Returns the keys still missing at the deadline — the caller
        falls back to simulating those itself (dedupe is best-effort;
        a crashed peer's lease going stale must not wedge a campaign).
        A key whose lease has *vanished* without a published entry is
        returned early: its owner crashed between release and store, or
        never stored — waiting longer cannot help.
        """
        pending = [k for k in keys if not done(k)]
        deadline = time.monotonic() + timeout_s
        while pending and time.monotonic() < deadline:
            still: List[str] = []
            for key in pending:
                if done(key):
                    continue
                if not self.lease_path(key).exists():
                    # Lease gone, entry absent: give the store one last
                    # poll interval to surface the entry (release can
                    # race the visibility of the write), then hand the
                    # key back to the caller.
                    time.sleep(self.poll_s)
                    if not done(key):
                        return [
                            k for k in pending if not done(k)
                        ]
                    continue
                still.append(key)
            pending = still
            if pending:
                time.sleep(self.poll_s)
        return [k for k in pending if not done(k)]
