"""Tests for repro.ckpt.coordinator."""

import pytest

from repro.arch.config import MachineConfig
from repro.arch.directory import Directory
from repro.arch.hierarchy import CoreCacheHierarchy
from repro.arch.memctrl import MemorySystem
from repro.arch.noc import MeshNoc
from repro.ckpt.coordinator import (
    CheckpointCostModel,
    GlobalCoordinator,
    LocalCoordinator,
    uniform_boundaries,
)
from repro.energy.accounting import EnergyLedger
from repro.energy.model import EnergyModel


@pytest.fixture
def parts():
    cfg = MachineConfig(num_cores=8)
    return (
        cfg,
        MeshNoc(cfg),
        MemorySystem(cfg),
        [CoreCacheHierarchy(cfg) for _ in range(8)],
    )


class TestUniformBoundaries:
    def test_count_and_spacing(self):
        b = uniform_boundaries(100.0, 4)
        assert b == [25.0, 50.0, 75.0, 100.0]

    def test_last_at_completion(self):
        assert uniform_boundaries(333.0, 7)[-1] == pytest.approx(333.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            uniform_boundaries(0.0, 4)
        with pytest.raises(ValueError):
            uniform_boundaries(10.0, 0)


class TestCheckpointCostModel:
    def test_flush_cost_scales_with_dirty_lines(self, parts):
        cfg, noc, ms, hiers = parts
        model = CheckpointCostModel(cfg, noc, ms, EnergyModel())
        for line in range(100):
            hiers[0].access(line * 64, True)
        ledger = EnergyLedger()
        cost = model.boundary_cost(range(8), hiers, ledger)
        assert cost.flushed_lines == 100
        assert cost.flushed_bytes == 6400
        assert cost.flush_ns > 0
        assert ledger.get("ckpt.flush") > 0

    def test_flush_clears_dirty_state(self, parts):
        cfg, noc, ms, hiers = parts
        model = CheckpointCostModel(cfg, noc, ms, EnergyModel())
        hiers[1].access(0, True)
        model.boundary_cost(range(8), hiers, EnergyLedger())
        cost2 = model.boundary_cost(range(8), hiers, EnergyLedger())
        assert cost2.flushed_lines == 0

    def test_arch_bytes_per_participant(self, parts):
        cfg, noc, ms, hiers = parts
        model = CheckpointCostModel(cfg, noc, ms, EnergyModel())
        cost = model.boundary_cost([0, 1], hiers, EnergyLedger())
        assert cost.arch_bytes == 2 * cfg.arch_state_bytes

    def test_smaller_cluster_cheaper_barrier(self, parts):
        cfg, noc, ms, hiers = parts
        model = CheckpointCostModel(cfg, noc, ms, EnergyModel())
        small = model.boundary_cost([0, 1], hiers, EnergyLedger())
        big = model.boundary_cost(list(range(8)), hiers, EnergyLedger())
        assert small.barrier_ns < big.barrier_ns

    def test_total_is_sum(self, parts):
        cfg, noc, ms, hiers = parts
        model = CheckpointCostModel(cfg, noc, ms, EnergyModel())
        cost = model.boundary_cost(range(4), hiers, EnergyLedger())
        assert cost.total_ns == pytest.approx(
            cost.barrier_ns + cost.flush_ns + cost.arch_ns
        )


class TestCoordinators:
    def test_global_single_cluster(self):
        g = GlobalCoordinator(8)
        clusters = g.clusters(Directory(8))
        assert clusters == [frozenset(range(8))]
        assert g.contention_groups(clusters) == [clusters]

    def test_local_uses_directory_groups(self):
        d = Directory(8)
        d.record_access(0, 1)
        d.record_access(1, 1)
        loc = LocalCoordinator(8)
        clusters = loc.clusters(d)
        assert frozenset({0, 1}) in clusters
        assert len(loc.contention_groups(clusters)) == len(clusters)

    def test_scheme_labels(self):
        assert GlobalCoordinator(4).scheme == "global"
        assert LocalCoordinator(4).scheme == "local"
