"""Trace exporters: JSONL event logs and Chrome ``trace_event`` JSON.

Two wire formats, one event stream:

* **JSONL** — one ``event.to_dict()`` object per line; greppable,
  streamable, and linted by :mod:`repro.obs.lint`;
* **Chrome trace** — the ``trace_event`` format consumed by Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing``.  Checkpoint and
  recovery episodes become ``B``/``E`` duration spans, slice
  recomputations become ``X`` complete events on their core's track,
  log-write and AddrMap activity become cumulative ``C`` counter
  tracks, and interval boundaries become global instants.

:func:`validate_chrome_trace` is a dependency-free structural check of
the emitted document (the golden-export test and the CI smoke step run
it), covering the subset of the ``trace_event`` schema we produce.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from repro.obs.events import (
    AddrMapEvict,
    AddrMapHit,
    AddrMapInsert,
    CheckpointBegin,
    CheckpointEnd,
    FaultInjected,
    IntervalBoundary,
    LogWrite,
    RecoveryBegin,
    RecoveryDiverged,
    RecoveryEnd,
    RecoveryVerified,
    SliceRecompute,
    TraceEvent,
)

__all__ = [
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]

_PID = 1
#: tid 0 is the machine-wide track; core ``k`` maps to tid ``k + 1``.
_MACHINE_TID = 0

_VALID_PHASES = {"B", "E", "X", "i", "C", "M"}


def _us(ts_ns: float) -> float:
    """trace_event timestamps are microseconds."""
    return ts_ns / 1e3


def write_jsonl(
    events: Sequence[TraceEvent], path: Union[str, Path]
) -> int:
    """Write one JSON object per event to ``path``; returns the count."""
    path = Path(path)
    with path.open("w") as fh:
        for ev in events:
            fh.write(json.dumps(ev.to_dict(), sort_keys=True))
            fh.write("\n")
    return len(events)


def chrome_trace(
    events: Sequence[TraceEvent], process_name: str = "acr-sim"
) -> Dict[str, Any]:
    """Render ``events`` as a Chrome ``trace_event`` JSON document."""
    out: List[Dict[str, Any]] = []
    used_tids = {_MACHINE_TID}

    def base(ev: TraceEvent, tid: int) -> Dict[str, Any]:
        used_tids.add(tid)
        return {"ts": _us(ev.ts_ns), "pid": _PID, "tid": tid}

    # Cumulative counter state.
    log_taken = log_skipped = 0
    am_inserts = am_evicts = am_hits = 0

    for ev in sorted(events, key=lambda e: e.ts_ns):
        if isinstance(ev, CheckpointBegin):
            out.append({
                **base(ev, _MACHINE_TID), "ph": "B", "cat": "ckpt",
                "name": f"checkpoint {ev.index}",
            })
        elif isinstance(ev, CheckpointEnd):
            out.append({
                **base(ev, _MACHINE_TID), "ph": "E", "cat": "ckpt",
                "name": f"checkpoint {ev.index}",
                "args": {
                    "logged_records": ev.logged_records,
                    "omitted_records": ev.omitted_records,
                    "logged_bytes": ev.logged_bytes,
                    "flushed_bytes": ev.flushed_bytes,
                },
            })
        elif isinstance(ev, RecoveryBegin):
            out.append({
                **base(ev, _MACHINE_TID), "ph": "B", "cat": "recovery",
                "name": f"recovery {ev.error_index}",
                "args": {"safe_checkpoint": ev.safe_checkpoint},
            })
        elif isinstance(ev, RecoveryEnd):
            out.append({
                **base(ev, _MACHINE_TID), "ph": "E", "cat": "recovery",
                "name": f"recovery {ev.error_index}",
                "args": {
                    "waste_ns": ev.waste_ns,
                    "rollback_ns": ev.rollback_ns,
                    "recompute_ns": ev.recompute_ns,
                },
            })
        elif isinstance(ev, IntervalBoundary):
            out.append({
                **base(ev, _MACHINE_TID), "ph": "i", "s": "g",
                "cat": "ckpt", "name": f"interval {ev.index}",
            })
        elif isinstance(ev, SliceRecompute):
            out.append({
                **base(ev, ev.core + 1), "ph": "X", "cat": "recompute",
                "name": f"slice {ev.slice_id}", "dur": _us(max(0.0, ev.ns)),
            })
        elif isinstance(ev, LogWrite):
            if ev.taken:
                log_taken += ev.size_bytes
            else:
                log_skipped += ev.size_bytes
            out.append({
                **base(ev, _MACHINE_TID), "ph": "C", "name": "log bytes",
                "args": {"taken": log_taken, "skipped": log_skipped},
            })
        elif isinstance(ev, (AddrMapInsert, AddrMapEvict, AddrMapHit)):
            if isinstance(ev, AddrMapInsert):
                am_inserts += 1
            elif isinstance(ev, AddrMapEvict):
                am_evicts += 1
            else:
                am_hits += 1
            out.append({
                **base(ev, _MACHINE_TID), "ph": "C", "name": "addrmap",
                "args": {
                    "inserts": am_inserts,
                    "evicts": am_evicts,
                    "hits": am_hits,
                },
            })
        elif isinstance(ev, FaultInjected):
            out.append({
                **base(ev, ev.core + 1 if ev.core >= 0 else _MACHINE_TID),
                "ph": "i", "s": "t", "cat": "inject",
                "name": f"fault {ev.target}@{ev.address:#x}",
                "args": {"bit": ev.bit},
            })
        elif isinstance(ev, RecoveryVerified):
            out.append({
                **base(ev, _MACHINE_TID), "ph": "i", "s": "g",
                "cat": "inject", "name": "recovery verified",
                "args": {
                    "safe_checkpoint": ev.safe_checkpoint,
                    "addresses_checked": ev.addresses_checked,
                },
            })
        elif isinstance(ev, RecoveryDiverged):
            out.append({
                **base(ev, _MACHINE_TID), "ph": "i", "s": "g",
                "cat": "inject", "name": f"DIVERGED @{ev.address:#x}",
                "args": {
                    "interval": ev.interval,
                    "expected": ev.expected,
                    "actual": ev.actual,
                },
            })
        # Unknown event types are skipped — exporters must tolerate a
        # newer event vocabulary than they know how to visualise.

    meta: List[Dict[str, Any]] = [{
        "ph": "M", "pid": _PID, "tid": _MACHINE_TID, "name": "process_name",
        "args": {"name": process_name},
    }]
    for tid in sorted(used_tids):
        label = "machine" if tid == _MACHINE_TID else f"core {tid - 1}"
        meta.append({
            "ph": "M", "pid": _PID, "tid": tid, "name": "thread_name",
            "args": {"name": label},
        })
    return {
        "traceEvents": meta + out,
        "displayTimeUnit": "ns",
        "otherData": {"generator": "acr-repro trace"},
    }


def write_chrome_trace(
    events: Sequence[TraceEvent],
    path: Union[str, Path],
    process_name: str = "acr-sim",
) -> Path:
    """Write the Chrome trace document for ``events``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(events, process_name)))
    return path


def validate_chrome_trace(doc: Any) -> List[str]:
    """Structural check of a ``trace_event`` document we emitted.

    Returns a list of problems (empty == valid): top-level shape, the
    per-event required fields for each phase we produce, and balanced
    ``B``/``E`` span nesting per (tid, name).
    """
    errors: List[str] = []
    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        return ["document must be an object with a traceEvents list"]

    open_spans: Dict[Any, int] = {}
    for idx, ev in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{idx}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing name")
        if not isinstance(ev.get("pid"), int):
            errors.append(f"{where}: missing integer pid")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event needs non-negative dur")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                errors.append(
                    f"{where}: C event needs numeric args series"
                )
        if ph == "i" and ev.get("s") not in ("g", "p", "t", None):
            errors.append(f"{where}: invalid instant scope {ev.get('s')!r}")
        if ph in ("B", "E"):
            key = (ev.get("pid"), ev.get("tid"), ev.get("name"))
            depth = open_spans.get(key, 0) + (1 if ph == "B" else -1)
            if depth < 0:
                errors.append(f"{where}: E without matching B for {key}")
                depth = 0
            open_spans[key] = depth
    for key, depth in sorted(open_spans.items(), key=str):
        if depth:
            errors.append(f"unclosed span: {key} (depth {depth})")
    return errors
