"""The abstract address domain: stepped ranges with exact footprints.

Every memory stream in the IR is an :class:`AddressPattern` swept over a
trip count — byte address ``base + ((offset + i*stride) % length) * 8``
for iteration ``i``.  That makes the *footprint* of a stream a modular
arithmetic object, not an opaque set: the index sequence
``(offset + i*stride) mod length`` is periodic with period
``length / gcd(|stride|, length)`` and its first period visits distinct
indices, so the footprint of ``trip`` iterations is exactly the first
``min(trip, period)`` addresses.  :func:`range_of` evaluates that closed
form; no simulation, no sampling.

The abstraction layered on top is the classic interval: ``[lo, hi]``
byte bounds per stream.  Disjoint intervals prove disjoint footprints
without materialising anything — :func:`ranges_intersect` only falls
back to the exact sets when the intervals touch.  The certifier
(:mod:`repro.verify.absint.certify`) never answers "maybe": intersection
queries on these ranges are sound *and complete* for this ISA, which is
what lets certificate denials double as explanations.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import FrozenSet, Optional

from repro.isa.instructions import WORD_BYTES, AddressPattern

__all__ = ["AccessRange", "range_of", "ranges_intersect", "witness_address"]


@dataclass(frozen=True)
class AccessRange:
    """The footprint of one access pattern over a trip count.

    ``lo``/``hi`` are inclusive byte-address bounds (the interval
    abstraction); ``addresses`` is the exact footprint (word-aligned
    byte addresses).  ``distinct`` is the period of the index sequence —
    ``len(addresses)`` equals ``min(trip, distinct)``.
    """

    base: int
    stride: int
    length: int
    offset: int
    trip: int
    distinct: int
    lo: int
    hi: int
    addresses: FrozenSet[int]

    def intersects(self, other: "AccessRange") -> bool:
        """Exact footprint intersection (interval prescreen first)."""
        return ranges_intersect(self, other)


def range_of(pattern: AddressPattern, trip: int) -> AccessRange:
    """Evaluate the closed-form footprint of ``pattern`` over ``trip``
    iterations.

    The index sequence ``(offset + i*stride) mod length`` has period
    ``length // gcd(|stride|, length)`` and visits pairwise-distinct
    indices within one period, so enumerating ``min(trip, period)``
    iterations yields the complete footprint of any trip count.
    """
    if trip <= 0:
        raise ValueError(f"trip count must be positive, got {trip}")
    if pattern.stride == 0:
        period = 1
    else:
        period = pattern.length // gcd(abs(pattern.stride), pattern.length)
    addresses = frozenset(
        pattern.base
        + ((pattern.offset + i * pattern.stride) % pattern.length) * WORD_BYTES
        for i in range(min(trip, period))
    )
    return AccessRange(
        base=pattern.base,
        stride=pattern.stride,
        length=pattern.length,
        offset=pattern.offset,
        trip=trip,
        distinct=period,
        lo=min(addresses),
        hi=max(addresses),
        addresses=addresses,
    )


def ranges_intersect(a: AccessRange, b: AccessRange) -> bool:
    """Do two footprints share a word?  Interval prescreen, then exact."""
    if a.hi < b.lo or b.hi < a.lo:
        return False
    small, large = (
        (a.addresses, b.addresses)
        if len(a.addresses) <= len(b.addresses)
        else (b.addresses, a.addresses)
    )
    return not small.isdisjoint(large)


def witness_address(
    a: AccessRange, words: FrozenSet[int]
) -> Optional[int]:
    """The smallest address ``a`` shares with ``words`` (None if disjoint).

    Denial messages quote this witness so an explained fallback points at
    a concrete aliased word, not just a pair of ranges.
    """
    common = a.addresses & words
    return min(common) if common else None
