#!/usr/bin/env python
"""Calibration readout: per-benchmark metrics vs. paper targets.

Run while tuning workload specs:

    python scripts/calibrate.py [bench ...]

Prints, per benchmark: Ckpt_NE/ReCkpt_NE time & energy overheads and the
ACR reductions (Fig. 6/7 targets), checkpoint-size reductions Overall/Max
(Fig. 9), and the threshold sweep (Table II).
"""

import sys
import time

from repro.experiments.runner import ExperimentRunner
from repro.experiments.configs import ConfigRequest
from repro.experiments.tables_ import PAPER_TABLE2
from repro.sim.results import energy_overhead, time_overhead


def main() -> None:
    benches = sys.argv[1:] or None
    runner = ExperimentRunner(num_cores=8)
    names = benches or runner.workloads()
    for wl in names:
        t0 = time.time()
        base = runner.baseline(wl)
        thr = runner.default_threshold(wl)
        ck = runner.run_default(wl, "Ckpt_NE")
        re = runner.run_default(wl, "ReCkpt_NE")
        ot_c = time_overhead(ck, base)
        ot_r = time_overhead(re, base)
        oe_c = energy_overhead(ck, base)
        oe_r = energy_overhead(re, base)
        overall = 1 - re.total_checkpoint_bytes / ck.total_checkpoint_bytes
        mx = 1 - re.max_checkpoint_bytes / ck.max_checkpoint_bytes
        print(
            f"{wl}: thr={thr} Tovh {ot_c*100:5.1f}->{ot_r*100:5.1f}% "
            f"(red {100*(1-ot_r/ot_c):5.1f}%) "
            f"Eovh {oe_c*100:5.1f}->{oe_r*100:5.1f}% "
            f"(red {100*(1-oe_r/oe_c):5.1f}%) "
            f"size red overall {overall*100:5.1f}% max {mx*100:5.1f}%"
        )
        sweep = []
        for t in (10, 20, 30, 40, 50):
            r = runner.run(wl, ConfigRequest("ReCkpt_NE", threshold=t))
            sweep.append(100 * (1 - r.total_checkpoint_bytes / ck.total_checkpoint_bytes))
        target = PAPER_TABLE2.get(wl)
        print(
            f"    sweep  {' '.join(f'{v:5.1f}' for v in sweep)}"
            + (f"   paper {' '.join(f'{v:5.1f}' for v in target)}" if target else "")
            + f"   [{time.time()-t0:.1f}s]"
        )


if __name__ == "__main__":
    main()
