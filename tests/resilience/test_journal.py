"""Journal format contracts: round-trip, torn tails, schema drift."""

import json
import tempfile
import warnings
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.resilience.journal import (
    JOURNAL_SCHEMA_VERSION,
    CompletionJournal,
    JournalRecord,
)

records = st.builds(
    JournalRecord,
    key=st.text(alphabet="0123456789abcdef", min_size=1, max_size=64),
    kind=st.sampled_from(["run", "inject-trial"]),
    label=st.text(max_size=30),
    attempts=st.integers(min_value=1, max_value=50),
    seconds=st.floats(
        min_value=0.0, allow_nan=False, allow_infinity=False, width=64
    ),
)


def _sample(key="ab12", attempts=1):
    return JournalRecord(
        key=key, kind="run", label="bt/ReCkpt_E",
        attempts=attempts, seconds=0.25,
    )


@settings(max_examples=50, deadline=None)
@given(batch=st.lists(records, max_size=20))
def test_append_load_round_trip_last_wins(batch):
    with tempfile.TemporaryDirectory() as td:
        journal = CompletionJournal(Path(td) / "journal.jsonl")
        for record in batch:
            journal.append(record)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            loaded = journal.load()
    assert loaded == {r.key: r for r in batch}


def test_missing_file_is_empty(tmp_path):
    assert CompletionJournal(tmp_path / "absent.jsonl").load() == {}


def test_torn_final_line_is_ignored_silently(tmp_path):
    journal = CompletionJournal(tmp_path / "journal.jsonl")
    journal.append(_sample("aa"))
    journal.append(_sample("bb"))
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write('{"v": 1, "key": "cc", "kind": "ru')  # crash mid-append
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        loaded = journal.load()
    assert set(loaded) == {"aa", "bb"}


def test_corrupt_interior_line_warns_and_skips(tmp_path):
    journal = CompletionJournal(tmp_path / "journal.jsonl")
    journal.append(_sample("aa"))
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write("not json at all\n")
    journal.append(_sample("bb"))
    with pytest.warns(UserWarning, match="undecodable"):
        loaded = journal.load()
    assert set(loaded) == {"aa", "bb"}


def test_schema_version_mismatch_discards_whole_journal(tmp_path):
    journal = CompletionJournal(tmp_path / "journal.jsonl")
    journal.append(_sample("aa"))
    doc = _sample("bb").to_dict()
    doc["v"] = JOURNAL_SCHEMA_VERSION + 1
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(doc) + "\n")
    with pytest.warns(UserWarning, match="schema version"):
        loaded = journal.load()
    assert loaded == {}


def test_record_with_drifted_fields_warns_and_skips(tmp_path):
    journal = CompletionJournal(tmp_path / "journal.jsonl")
    doc = _sample("aa").to_dict()
    doc["surprise"] = True
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(doc) + "\n")
    journal.append(_sample("bb"))
    with pytest.warns(UserWarning, match="bad journal record"):
        loaded = journal.load()
    assert set(loaded) == {"bb"}


def test_rejournaled_key_last_record_wins(tmp_path):
    journal = CompletionJournal(tmp_path / "journal.jsonl")
    journal.append(_sample("aa", attempts=1))
    journal.append(_sample("aa", attempts=3))
    assert journal.load()["aa"].attempts == 3
    assert len(journal) == 1
    assert "aa" in journal


def test_record_validation():
    with pytest.raises(ValueError):
        JournalRecord(key="", kind="run", label="x", attempts=1, seconds=0.0)
    with pytest.raises(ValueError):
        JournalRecord(key="a", kind="run", label="x", attempts=0, seconds=0.0)
    with pytest.raises(ValueError):
        JournalRecord.from_dict(["not", "a", "dict"])


class TestLoadCache:
    # `_parses` counts full file re-parses — the caching contract's
    # test hook.  Warm membership probes must not re-read the file;
    # any append (ours or an external writer's) must invalidate.

    def test_membership_probes_do_not_reparse(self, tmp_path):
        journal = CompletionJournal(tmp_path / "journal.jsonl")
        for key in ("aa", "bb", "cc"):
            journal.append(_sample(key))
        assert len(journal) == 3
        parses = journal._parses
        for _ in range(25):
            assert "aa" in journal
            assert "zz" not in journal
            assert len(journal) == 3
        assert journal._parses == parses

    def test_append_invalidates_cache(self, tmp_path):
        journal = CompletionJournal(tmp_path / "journal.jsonl")
        journal.append(_sample("aa"))
        assert "aa" in journal
        journal.append(_sample("bb"))
        assert "bb" in journal  # stale cache would miss this

    def test_external_append_detected_by_stamp(self, tmp_path):
        journal = CompletionJournal(tmp_path / "journal.jsonl")
        journal.append(_sample("aa"))
        assert len(journal) == 1
        writer = CompletionJournal(journal.path)  # another process
        writer.append(_sample("bb"))
        assert set(journal.load()) == {"aa", "bb"}

    def test_loaded_mapping_is_a_private_copy(self, tmp_path):
        journal = CompletionJournal(tmp_path / "journal.jsonl")
        journal.append(_sample("aa"))
        journal.load().clear()  # caller mutation must not poison cache
        assert "aa" in journal
