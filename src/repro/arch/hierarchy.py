"""Per-core cache hierarchy: private L1-D and L2 with miss propagation.

The hierarchy turns a data access into a latency and a set of countable
events (L1 hit / L2 hit / memory access / dirty write-backs), which the
simulator charges against the core clock and the energy ledger.  L1-I is
modelled as an always-hitting stream (instruction fetch energy is charged
per instruction by the energy model; its latency is hidden by the in-order
frontend).
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.arch.cache import SetAssociativeCache
from repro.arch.config import MachineConfig

__all__ = ["DataAccess", "CoreCacheHierarchy"]


@dataclass(frozen=True, slots=True)
class DataAccess:
    """Timing/energy-relevant outcome of one data access."""

    latency_ns: float
    l1_hit: bool
    l2_hit: bool
    memory_access: bool
    writebacks: int  # dirty lines pushed to memory by evictions


class CoreCacheHierarchy:
    """Private L1-D + L2 for one core."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.l1d = SetAssociativeCache(config.l1d)
        self.l2 = SetAssociativeCache(config.l2)
        self.memory_accesses = 0
        self.writebacks = 0

    def access(self, address: int, is_write: bool) -> DataAccess:
        """Access a byte address; returns latency and event counts."""
        line = address // self.config.line_bytes
        cfg = self.config

        r1 = self.l1d.access(line, is_write)
        writebacks = 0
        if r1.victim_dirty:
            # L1 victim lands in L2 (it may evict there in turn).
            r_wb = self.l2.access(r1.victim_line, True)
            if r_wb.victim_dirty:
                writebacks += 1
        if r1.hit:
            if writebacks:
                self.writebacks += writebacks
            return DataAccess(cfg.l1d.latency_ns, True, False, False, writebacks)

        r2 = self.l2.access(line, False)
        if r2.victim_dirty:
            writebacks += 1
        if r2.hit:
            self.writebacks += writebacks
            return DataAccess(
                cfg.l1d.latency_ns + cfg.l2.latency_ns, False, True, False, writebacks
            )

        self.memory_accesses += 1
        self.writebacks += writebacks
        latency = cfg.l1d.latency_ns + cfg.l2.latency_ns + cfg.mem_latency_ns
        return DataAccess(latency, False, False, True, writebacks)

    def flush_dirty_lines(self) -> int:
        """Checkpoint flush: write every dirty line back to memory.

        Returns the number of lines flushed (both levels; an address dirty
        in both is counted once — L1 dirty implies the L2 copy is stale and
        only one line's worth of data goes to memory).
        """
        l1_dirty = set(self.l1d.flush_dirty())
        l2_dirty = set(self.l2.flush_dirty())
        flushed = l1_dirty | l2_dirty
        self.writebacks += len(flushed)
        return len(flushed)

    def dirty_line_count(self) -> int:
        """Distinct dirty lines across both levels."""
        dirty = {line for line in self.l1d.resident_lines() if self.l1d.is_dirty(line)}
        dirty.update(
            line for line in self.l2.resident_lines() if self.l2.is_dirty(line)
        )
        return len(dirty)
