"""Differential recompute oracle (rule ``ACR008 recompute-divergence``).

The static rules prove structural soundness; the oracle proves *semantic*
soundness: it replays the compiled program through
:mod:`repro.isa.interpreter` over seeded memory images, and at every
dynamic store covered by an embedded slice it captures the frontier-operand
snapshot exactly the way the ACR checkpoint handler does (``regs[r] for r
in slice.frontier``), executes the slice on it, and checks that the
recomputed value equals the value the store wrote — the value whose
logging would be omitted at the next interval's first modification.

Divergence means a recovery would silently write back a corrupted value,
so every mismatch is an error-severity finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.compiler.slices import SliceTable
from repro.isa.interpreter import Interpreter, MemoryImage, StoreEvent
from repro.isa.program import Program
from repro.verify.diagnostics import Diagnostic, Severity

__all__ = ["OracleResult", "run_differential_oracle"]

#: Rule identity of oracle findings (registered prose lives in rules.py).
ORACLE_RULE_ID = "ACR008"
ORACLE_RULE_SLUG = "recompute-divergence"

#: Iterations interpreted per chunk while sampling.
_CHUNK = 1024


@dataclass(frozen=True)
class OracleResult:
    """Outcome of one oracle run."""

    findings: Tuple[Diagnostic, ...]
    #: Dynamic (site, seed) recomputations checked.
    values_checked: int
    #: Sites excluded up front (static errors make replay meaningless).
    sites_skipped: int

    @property
    def ok(self) -> bool:
        """True when every replayed recomputation matched."""
        return not self.findings


def run_differential_oracle(
    program: Program,
    slices: SliceTable,
    *,
    seeds: Sequence[int] = (0, 1),
    samples_per_site: int = 3,
    skip_sites: FrozenSet[int] = frozenset(),
) -> OracleResult:
    """Replay every embedded slice against the interpreter.

    For each memory seed the compiled program runs until every covered
    site (minus ``skip_sites``) has been checked ``samples_per_site``
    times, or the program completes.  A site stops being sampled after its
    first divergence so a broken slice yields one finding per seed, not
    one per dynamic store.
    """
    findings: List[Diagnostic] = []
    values_checked = 0
    target_sites = [s for s in slices.sites if s not in skip_sites]

    for seed in seeds:
        remaining: Dict[int, int] = {s: samples_per_site for s in target_sites}
        if not remaining:
            break

        def on_store(ev: StoreEvent, _seed: int = seed, _rem: Dict[int, int] = remaining) -> None:
            nonlocal values_checked
            want = _rem.get(ev.site, 0)
            if want <= 0:
                return
            sl = slices.get(ev.site)
            assert sl is not None  # sites come from the table
            problem: str | None = None
            try:
                operands = tuple(ev.regs[r] for r in sl.frontier)
            except IndexError:
                problem = (
                    f"frontier register(s) {sorted(sl.frontier)} exceed the "
                    f"kernel's register file — no snapshot can be captured"
                )
            else:
                try:
                    recomputed = sl.execute(operands)
                except (ValueError, TypeError) as exc:
                    problem = f"slice execution failed: {exc}"
                else:
                    values_checked += 1
                    if recomputed != ev.new_value:
                        problem = (
                            f"recompute(snapshot) = {recomputed:#x} but the "
                            f"store wrote {ev.new_value:#x} "
                            f"(memory seed {_seed}, iteration {ev.iteration})"
                        )
            if problem is None:
                _rem[ev.site] = want - 1
            else:
                findings.append(
                    Diagnostic(
                        ORACLE_RULE_ID,
                        ORACLE_RULE_SLUG,
                        Severity.ERROR,
                        problem,
                        ev.site,
                    )
                )
                _rem[ev.site] = 0  # one finding per (site, seed)

        interp = Interpreter(program, MemoryImage(seed), on_store=on_store)
        while not interp.done:
            interp.step_iterations(_CHUNK)
            if not any(remaining.values()):
                break

    return OracleResult(tuple(findings), values_checked, len(skip_sites))
