"""Tests for repro.sim.results (derived metrics and stats containers)."""

import pytest

from repro.energy.accounting import EnergyLedger
from repro.sim.results import (
    BaselineProfile,
    IntervalStats,
    RecoveryStats,
    RunResult,
    energy_overhead,
    time_overhead,
)


def make_result(wall=200.0, useful=(100.0, 90.0), energy_pj=1000.0, **kw):
    ledger = EnergyLedger()
    ledger.add("core.alu", energy_pj)
    defaults = dict(
        label="r",
        scheme="global",
        acr=False,
        num_cores=len(useful),
        wall_ns=wall,
        per_core_useful_ns=list(useful),
        per_core_overhead_ns=[wall - u for u in useful],
        energy=ledger,
        intervals=[],
        recoveries=[],
        instructions=10,
        alu_ops=5,
        loads=3,
        stores=2,
        assoc_ops=0,
        l1d_accesses=5,
        l2_accesses=1,
        memory_accesses=1,
        writebacks=0,
        compile_stats=None,
        addrmap_records=0,
        addrmap_rejections=0,
        omissions=0,
        omission_lookups=0,
    )
    defaults.update(kw)
    return RunResult(**defaults)


def interval(idx, logged, omitted):
    return IntervalStats(
        index=idx,
        useful_ns=100.0 * (idx + 1),
        logged_records=logged,
        omitted_records=omitted,
        logged_bytes=logged * 16,
        omitted_bytes=omitted * 16,
        flushed_bytes=0,
        boundary_ns=10.0,
        clusters=1,
    )


class TestRunResult:
    def test_useful_is_max_core(self):
        r = make_result(useful=(100.0, 90.0))
        assert r.useful_ns == 100.0
        assert r.overhead_ns == pytest.approx(100.0)

    def test_checkpoint_aggregates(self):
        r = make_result(intervals=[interval(0, 10, 0), interval(1, 4, 6)])
        assert r.checkpoint_count == 2
        assert r.total_checkpoint_bytes == 14 * 16
        assert r.total_baseline_checkpoint_bytes == 20 * 16
        assert r.max_checkpoint_bytes == 10 * 16
        assert r.checkpoint_time_ns == pytest.approx(20.0)

    def test_empty_interval_stats(self):
        r = make_result()
        assert r.max_checkpoint_bytes == 0
        assert r.total_checkpoint_bytes == 0

    def test_recovery_aggregates(self):
        rec = RecoveryStats(
            error_index=0,
            occurred_useful_ns=10.0,
            detected_useful_ns=12.0,
            safe_checkpoint=0,
            skipped_corrupted=False,
            participants=2,
            waste_ns=5.0,
            rollback_ns=3.0,
            recompute_ns=2.0,
            restored_records=4,
            recomputed_values=1,
            recompute_instructions=5,
        )
        r = make_result(recoveries=[rec])
        assert r.recovery_count == 1
        assert r.recovery_time_ns == pytest.approx(10.0)
        assert rec.total_ns == pytest.approx(10.0)

    def test_baseline_profile_roundtrip(self):
        r = make_result(useful=(70.0, 80.0))
        prof = r.baseline_profile()
        assert isinstance(prof, BaselineProfile)
        assert prof.useful_ns == 80.0
        assert prof.per_core_useful_ns == [70.0, 80.0]


class TestDescribe:
    def test_renders_headline_quantities(self):
        r = make_result(
            label="ReCkpt_E",
            acr=True,
            intervals=[interval(0, 10, 0), interval(1, 4, 6)],
        )
        out = r.describe()
        assert out.startswith("run ReCkpt_E")
        assert "global+ACR" in out
        assert "checkpoints" in out
        # wall 200 ns = 0.20 us; total energy 1000 pJ = 0.00 uJ (2 dp).
        assert "0.20" in out
        lines = out.splitlines()
        assert all("|" in line for line in lines[1:] if "-+-" not in line)

    def test_scheme_without_acr_is_plain(self):
        out = make_result(label="Ckpt_NE").describe()
        assert "global" in out
        assert "+ACR" not in out
        assert "trace events" not in out

    def test_obs_row_appears_only_when_present(self):
        from repro.obs.metrics import ObsReport

        r = make_result(
            obs=ObsReport(events_captured=12, events_dropped=3)
        )
        out = r.describe()
        assert "trace events" in out
        assert "12 captured / 3 dropped" in out


class TestIntervalStats:
    def test_reduction(self):
        iv = interval(0, 3, 1)
        assert iv.baseline_bytes == 64
        assert iv.reduction == pytest.approx(0.25)

    def test_reduction_empty_interval(self):
        assert interval(0, 0, 0).reduction == 0.0


class TestOverheadFunctions:
    def test_time_overhead(self):
        base = make_result(wall=100.0, useful=(100.0, 100.0))
        run = make_result(wall=130.0, useful=(100.0, 100.0))
        assert time_overhead(run, base) == pytest.approx(0.30)

    def test_energy_overhead(self):
        base = make_result(energy_pj=1000.0)
        run = make_result(energy_pj=1200.0)
        assert energy_overhead(run, base) == pytest.approx(0.20)

    def test_zero_baseline_rejected(self):
        bad = make_result(wall=0.0, useful=(0.0001, 0.0001))
        bad2 = make_result(energy_pj=0.0)
        ok = make_result()
        with pytest.raises(ValueError):
            time_overhead(ok, bad)
        with pytest.raises(ValueError):
            energy_overhead(ok, bad2)
