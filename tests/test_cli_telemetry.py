"""CLI surfaces for the telemetry layer: --limit, --live, monitor.

All through ``main([...])`` so flag plumbing, footer wiring and exit
codes are pinned end to end.  ``TERM`` is forced to ``dumb`` wherever a
dashboard could render: captured streams are not TTYs, so output must be
plain rule-separated blocks with no escape codes.
"""

import json

import pytest

from repro.cli import main
from repro.obs.telemetry.snapshots import read_snapshots

SMALL = ["--scale", "0.1", "--cores", "2", "--reps", "10"]
INJECT_SMALL = [
    "--trials", "1", "--scale", "0.05", "--cores", "2", "--reps", "2",
    "--steps-per-interval", "2", "--iters-per-step", "4",
]


@pytest.fixture(autouse=True)
def dumb_terminal(monkeypatch):
    monkeypatch.setenv("TERM", "dumb")


class TestStatsLimit:
    def test_limit_surfaces_dropped_events(self, capsys):
        argv = ["stats", "is", "ReCkpt_E", "--checkpoints", "5",
                "--limit", "20"] + SMALL
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "trace: 20 events captured" in captured.out
        assert "dropped" in captured.out
        assert "events dropped at --limit 20" in captured.err
        assert "raise the cap" in captured.err

    def test_without_limit_no_tracing_line(self, capsys):
        argv = ["stats", "is", "ReCkpt_E", "--checkpoints", "5"] + SMALL
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "trace:" not in captured.out
        assert "dropped" not in captured.err

    def test_limit_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["stats", "is", "ReCkpt_E", "--limit", "0"] + SMALL)


class TestLiveCampaign:
    def test_inject_live_streams_and_snapshots(self, tmp_path, capsys):
        snaps = tmp_path / "telemetry.jsonl"
        argv = ["inject", "cg", "--jobs", "1",
                "--cache-dir", str(tmp_path / "cache"),
                "--live", "--snapshots", str(snaps)] + INJECT_SMALL
        assert main(argv) == 0
        captured = capsys.readouterr()
        # Dashboard blocks went to stderr, plain (dumb terminal).
        assert "campaign telemetry" in captured.err
        assert "\x1b[" not in captured.err
        # The footer accounted for the stream and named the file.
        assert "frames streamed" in captured.out
        assert "campaign wall-clock attribution" in captured.out
        assert str(snaps) in captured.out
        docs = read_snapshots(snaps)
        assert docs and docs[-1]["tasks_finished"] >= 1

    def test_snapshots_without_live_stays_quiet(self, tmp_path, capsys):
        snaps = tmp_path / "telemetry.jsonl"
        argv = ["inject", "cg", "--jobs", "1",
                "--cache-dir", str(tmp_path / "cache"),
                "--snapshots", str(snaps)] + INJECT_SMALL
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "campaign telemetry" not in captured.err  # no dashboard
        assert "frames streamed" in captured.out
        assert read_snapshots(snaps)

    def test_plain_campaign_emits_no_telemetry_footer(self, tmp_path, capsys):
        argv = ["inject", "cg", "--jobs", "1",
                "--cache-dir", str(tmp_path / "cache")] + INJECT_SMALL
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "frames streamed" not in captured.out
        assert "campaign telemetry" not in captured.err
        assert not (tmp_path / "cache" / "telemetry.jsonl").exists()


class TestMonitorReplay:
    def _campaign(self, tmp_path):
        snaps = tmp_path / "telemetry.jsonl"
        main(["inject", "cg", "--jobs", "1",
              "--cache-dir", str(tmp_path / "cache"),
              "--snapshots", str(snaps)] + INJECT_SMALL)
        return snaps

    def test_replay_renders_snapshots(self, tmp_path, capsys):
        snaps = self._campaign(tmp_path)
        capsys.readouterr()
        assert main(["monitor", "--replay", str(snaps)]) == 0
        out = capsys.readouterr().out
        assert "campaign telemetry" in out
        assert "replayed" in out

    def test_replay_missing_file_exits_2(self, tmp_path, capsys):
        code = main(["monitor", "--replay", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "no snapshot file" in capsys.readouterr().out

    def test_replay_empty_stream_exits_1(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["monitor", "--replay", str(empty)]) == 1
        assert "no committed snapshots" in capsys.readouterr().out

    def test_replay_rejects_non_snapshot_stream(self, tmp_path, capsys):
        foreign = tmp_path / "foreign.jsonl"
        foreign.write_text(
            json.dumps({"v": 1, "kind": "something-else"}) + "\n"
        )
        with pytest.warns(UserWarning, match="unexpected record kind"):
            code = main(["monitor", "--replay", str(foreign)])
        assert code == 1
