"""Property tests: the ``obs`` payload through serialisation and cache.

Mirrors ``tests/experiments/test_cache.py`` for the observability layer:
arbitrary metrics registries round-trip losslessly through
``RunResult.to_dict``/``from_dict`` and the persistent cache, and a
corrupt ``obs`` blob inside a cache entry degrades to a *miss* (with the
entry quarantined) — never a crash, never a half-built result.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.energy.accounting import EnergyLedger
from repro.experiments.cache import ResultCache
from repro.obs.metrics import MetricsRegistry, ObsReport
from repro.sim.results import RunResult

nonneg = st.integers(min_value=0, max_value=2**40)
nonneg_f = st.floats(
    min_value=0.0, max_value=1e18, allow_nan=False, allow_infinity=False
)
metric_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz._", min_size=1, max_size=20
)


@st.composite
def metrics_registries(draw):
    reg = MetricsRegistry()
    for name, value in draw(
        st.dictionaries(metric_names, nonneg, max_size=6)
    ).items():
        reg.counter(name).inc(value)
    for name, values in draw(
        st.dictionaries(
            metric_names, st.lists(nonneg_f, max_size=8), max_size=4
        )
    ).items():
        h = reg.histogram(name)
        for v in values:
            h.observe(v)
    for index in range(draw(st.integers(min_value=0, max_value=3))):
        reg.snapshot_interval(index)
    return reg


obs_reports = st.builds(
    ObsReport,
    metrics=metrics_registries(),
    events_captured=nonneg,
    events_dropped=nonneg,
)

KEY = "cd" * 32


def result_with_obs(obs):
    return RunResult(
        label="ReCkpt_E",
        scheme="global",
        acr=True,
        num_cores=2,
        wall_ns=100.0,
        per_core_useful_ns=[90.0, 80.0],
        per_core_overhead_ns=[10.0, 5.0],
        energy=EnergyLedger.from_dict({"core.alu": 10.0}),
        intervals=[],
        recoveries=[],
        instructions=1000,
        alu_ops=600,
        loads=200,
        stores=200,
        assoc_ops=10,
        l1d_accesses=400,
        l2_accesses=40,
        memory_accesses=4,
        writebacks=2,
        compile_stats=None,
        addrmap_records=5,
        addrmap_rejections=0,
        omissions=3,
        omission_lookups=9,
        obs=obs,
    )


class TestRoundTrip:
    @given(obs=st.none() | obs_reports)
    @settings(max_examples=50, deadline=None)
    def test_run_result_with_obs_round_trips_losslessly(self, obs):
        result = result_with_obs(obs)
        wire = json.dumps(result.to_dict(), sort_keys=True)
        rebuilt = RunResult.from_dict(json.loads(wire))
        assert rebuilt.to_dict() == result.to_dict()
        if obs is None:
            assert rebuilt.obs is None
        else:
            assert rebuilt.obs is not None
            assert rebuilt.obs.to_dict() == obs.to_dict()

    @given(obs=obs_reports)
    @settings(max_examples=30, deadline=None)
    def test_obs_report_json_round_trip(self, obs):
        rebuilt = ObsReport.from_dict(json.loads(json.dumps(obs.to_dict())))
        assert rebuilt.to_dict() == obs.to_dict()

    @given(obs=st.none() | obs_reports)
    @settings(max_examples=20, deadline=None)
    def test_store_load_through_cache(self, tmp_path_factory, obs):
        cache = ResultCache(tmp_path_factory.mktemp("cache"))
        cache.store(KEY, result_with_obs(obs))
        loaded = cache.load(KEY)
        assert loaded is not None
        assert loaded.equivalent(result_with_obs(obs))


class TestStrictObsField:
    def test_missing_obs_key_rejected(self):
        doc = result_with_obs(None).to_dict()
        del doc["obs"]
        with pytest.raises((ValueError, TypeError, KeyError)):
            RunResult.from_dict(doc)

    @pytest.mark.parametrize("blob", [
        [1, 2, 3],
        "garbage",
        {"metrics": {}, "events_captured": 1},        # missing key
        {"metrics": {"counters": {}, "histograms": {}, "intervals": []},
         "events_captured": -1, "events_dropped": 0},  # negative count
        {"metrics": {"counters": {"c": "NaN"}, "histograms": {},
         "intervals": []}, "events_captured": 0, "events_dropped": 0},
    ])
    def test_corrupt_obs_blob_rejected(self, blob):
        doc = result_with_obs(None).to_dict()
        doc["obs"] = blob
        with pytest.raises((ValueError, TypeError, KeyError)):
            RunResult.from_dict(doc)


class TestCorruptObsInCache:
    def _poison(self, cache, mutate):
        path = cache.path_for(KEY)
        envelope = json.loads(path.read_text())
        mutate(envelope["result"])
        path.write_text(json.dumps(envelope))
        return path

    @pytest.mark.parametrize("mutate", [
        lambda r: r.__setitem__("obs", [1]),
        lambda r: r.__setitem__("obs", {"metrics": "?"}),
        lambda r: r.pop("obs"),
        lambda r: r["obs"]["metrics"].pop("counters"),
        lambda r: r["obs"].__setitem__("events_dropped", "lots"),
    ])
    def test_corrupt_obs_is_a_miss_and_quarantined(self, tmp_path, mutate):
        cache = ResultCache(tmp_path / "cache")
        reg = MetricsRegistry()
        reg.counter("ckpt.count").inc(5)
        cache.store(KEY, result_with_obs(ObsReport(metrics=reg)))
        path = self._poison(cache, mutate)
        assert cache.load(KEY) is None  # miss, not a crash
        assert not path.exists()  # quarantined for a clean rewrite
