"""Telemetry frame contracts: round-trip, strict decode, ambient emit."""

import pytest

from repro.obs.telemetry.emit import (
    current_task,
    emit,
    frame_context,
    task_telemetry,
    telemetry_active,
)
from repro.obs.telemetry.frames import (
    FRAME_TYPES,
    MetricsDelta,
    PhaseChanged,
    TaskFinished,
    TaskHeartbeat,
    TaskStarted,
    frame_from_dict,
)

SAMPLES = {
    "task_started": TaskStarted(ts_s=1.5, task="bt/ReCkpt_E", pid=42),
    "task_heartbeat": TaskHeartbeat(
        ts_s=2.0, task="bt/ReCkpt_E", interval=3, instructions=1000
    ),
    "phase_changed": PhaseChanged(ts_s=2.5, task="bt/ReCkpt_E",
                                  phase="simulate"),
    "metrics_delta": MetricsDelta(
        ts_s=3.0, task="bt/ReCkpt_E", interval=3,
        counters={"logged_records": 7, "logged_bytes": 112},
    ),
    "task_finished": TaskFinished(
        ts_s=4.0, task="bt/ReCkpt_E", ok=True, seconds=2.5,
        phase_seconds={"simulate": 2.0, "compile": 0.5},
        phase_counts={"simulate": 1, "compile": 1},
    ),
}


class TestRoundTrip:
    def test_samples_cover_every_registered_frame_type(self):
        assert set(SAMPLES) == set(FRAME_TYPES)

    @pytest.mark.parametrize("name", sorted(FRAME_TYPES))
    def test_to_dict_from_dict_round_trip(self, name):
        frame = SAMPLES[name]
        doc = frame.to_dict()
        assert doc["frame"] == name
        assert frame_from_dict(doc) == frame

    def test_wire_dicts_use_frame_not_name(self):
        # The shared JSONL linter dispatches on the discriminator key:
        # trace events use "name", frames must use "frame".
        for frame in SAMPLES.values():
            doc = frame.to_dict()
            assert "frame" in doc
            assert "name" not in doc


class TestStrictDecode:
    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="not an object"):
            frame_from_dict(["task_started"])

    def test_unknown_frame_name_rejected(self):
        with pytest.raises(ValueError, match="unknown frame name"):
            frame_from_dict({"frame": "task_vanished", "ts_s": 0.0,
                             "task": "x"})

    def test_missing_field_rejected(self):
        doc = SAMPLES["task_started"].to_dict()
        del doc["pid"]
        with pytest.raises(ValueError, match="fields"):
            frame_from_dict(doc)

    def test_extra_field_rejected(self):
        doc = SAMPLES["task_heartbeat"].to_dict()
        doc["surprise"] = 1
        with pytest.raises(ValueError, match="fields"):
            frame_from_dict(doc)

    def test_bool_is_not_an_int(self):
        doc = SAMPLES["task_heartbeat"].to_dict()
        doc["interval"] = True
        with pytest.raises(ValueError, match="must be an int"):
            frame_from_dict(doc)

    def test_ok_must_be_a_bool(self):
        doc = SAMPLES["task_finished"].to_dict()
        doc["ok"] = 1
        with pytest.raises(ValueError, match="must be a bool"):
            frame_from_dict(doc)

    def test_task_must_be_a_string(self):
        doc = SAMPLES["phase_changed"].to_dict()
        doc["task"] = 7
        with pytest.raises(ValueError, match="must be a string"):
            frame_from_dict(doc)

    def test_counters_values_must_be_ints(self):
        doc = SAMPLES["metrics_delta"].to_dict()
        doc["counters"] = {"logged_records": "seven"}
        with pytest.raises(ValueError, match="values must be numbers"):
            frame_from_dict(doc)

    def test_phase_seconds_accepts_floats(self):
        doc = SAMPLES["task_finished"].to_dict()
        doc["phase_seconds"] = {"simulate": 2}
        assert frame_from_dict(doc).phase_seconds == {"simulate": 2.0}


class TestAmbientEmit:
    def test_disabled_by_default(self):
        assert telemetry_active() is False
        assert current_task() == ""
        emit(TaskStarted, pid=1)  # must be a silent no-op

    def test_emit_stamps_time_and_task(self):
        frames = []
        with frame_context("bt/Ckpt_E", frames.append):
            assert telemetry_active() is True
            assert current_task() == "bt/Ckpt_E"
            emit(TaskHeartbeat, interval=0, instructions=10)
        assert telemetry_active() is False
        [frame] = frames
        assert frame.task == "bt/Ckpt_E"
        assert frame.interval == 0
        assert frame.ts_s > 0

    def test_contexts_nest_and_restore(self):
        outer, inner = [], []
        with frame_context("outer", outer.append):
            with frame_context("inner", inner.append):
                emit(PhaseChanged, phase="simulate")
            emit(PhaseChanged, phase="accounting")
        assert [f.task for f in inner] == ["inner"]
        assert [f.task for f in outer] == ["outer"]

    def test_sink_exceptions_are_swallowed(self):
        def broken(frame):
            raise BrokenPipeError("parent went away")

        with frame_context("t", broken):
            emit(TaskStarted, pid=1)  # must not raise


class TestTaskTelemetry:
    def test_emits_started_and_finished(self):
        frames = []
        with task_telemetry("is/ReCkpt_E", frames.append):
            pass
        assert [type(f).__name__ for f in frames] == [
            "TaskStarted", "TaskFinished",
        ]
        assert frames[1].ok is True
        assert frames[1].seconds >= 0.0

    def test_finished_carries_profiler_attribution(self):
        from repro.obs.telemetry import profile

        frames = []
        with task_telemetry("t", frames.append):
            with profile.phase("simulate"):
                pass
        finished = frames[-1]
        assert finished.phase_counts == {"simulate": 1}
        assert set(finished.phase_seconds) == {"simulate"}
        # Entering the phase also announced it as a frame.
        assert any(
            isinstance(f, PhaseChanged) and f.phase == "simulate"
            for f in frames
        )

    def test_exception_reports_ok_false_and_propagates(self):
        frames = []
        with pytest.raises(RuntimeError):
            with task_telemetry("t", frames.append):
                raise RuntimeError("boom")
        assert frames[-1].ok is False
        assert telemetry_active() is False

    def test_none_sink_disables_emission_entirely(self):
        with task_telemetry("t", None):
            assert telemetry_active() is False
