"""Figure 9: checkpoint-size reduction, Overall vs Max.

Paper shape: `is` has by far the highest Overall reduction but a
near-zero Max reduction (its largest checkpoint is an unrecomputable
fresh scatter); `ft`'s Max is also ~0 at threshold 10 (long slices);
`dc` has the highest Max reduction; average Overall ≈38%.
"""

from _bench_lib import run_once

from repro.experiments.figures import fig9_checkpoint_size


def test_fig9(benchmark, runner, emit):
    fig = run_once(benchmark, lambda: fig9_checkpoint_size(runner))
    emit("fig09_ckpt_size", fig.render())
    s = fig.series

    overall = {wl: v["overall"] for wl, v in s.items()}
    mx = {wl: v["max"] for wl, v in s.items()}

    # is: top-tier overall with a tiny Max — the largest Overall-vs-Max
    # gap of all benchmarks (its Max checkpoint is the fresh scatter).
    assert overall["is"] >= sorted(overall.values())[-2]
    assert mx["is"] < 0.25
    gaps = {wl: overall[wl] - mx[wl] for wl in overall}
    assert gaps["is"] == max(gaps.values())
    assert gaps["is"] > 0.3
    # ft: small Max at threshold 10.
    assert mx["ft"] < 0.15
    # dc: the largest Max reduction of all benchmarks.
    assert mx["dc"] == max(mx.values())
    assert mx["dc"] > 0.3
    # cg: least reducible overall.
    assert overall["cg"] == min(overall.values())
    # Average overall in the right band (paper 38.31%).
    avg = sum(overall.values()) / len(overall)
    assert 0.2 < avg < 0.55
