#!/usr/bin/env python
"""Coordinated local vs global checkpointing (paper §V-E / Fig. 13).

Shows how the directory-observed communication clusters drive the benefit
of local coordination: `ft` (pairwise communication) gains, `bt`
(all-to-all) does not.

    python examples/local_checkpointing.py [--scale S]
"""

import argparse

from repro import ExperimentRunner, get_workload, time_overhead
from repro.util.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    runner = ExperimentRunner(num_cores=8, region_scale=args.scale)

    rows = []
    for wl in ("ft", "is", "mg", "bt", "cg"):
        spec = get_workload(wl)
        base = runner.baseline(wl)
        glob = runner.run_default(wl, "Ckpt_NE")
        loc = runner.run_default(wl, "Ckpt_NE_Loc")
        clusters = loc.intervals[len(loc.intervals) // 2].clusters
        rows.append(
            [
                wl,
                spec.cluster_size if spec.cluster_size else 8,
                clusters,
                round(100 * time_overhead(glob, base), 1),
                round(100 * time_overhead(loc, base), 1),
                round(loc.wall_ns / glob.wall_ns, 3),
            ]
        )
    print(
        format_table(
            [
                "bench",
                "spec cluster",
                "observed clusters",
                "global ovh %",
                "local ovh %",
                "norm. time",
            ],
            rows,
            title="Local vs global coordinated checkpointing (8 cores)",
        )
    )
    print(
        "\nThe directory derives the clusters at run time from observed "
        "line sharing;\nall-to-all communicators (bt, cg) form one big "
        "cluster and gain nothing."
    )


if __name__ == "__main__":
    main()
