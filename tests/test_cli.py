"""Tests for the CLI (small scales, captured output)."""

import pytest

from repro.cli import build_parser, main

SMALL = ["--scale", "0.1", "--cores", "2", "--reps", "10"]

TINY_WORKLOADS = ["bt", "is"]


@pytest.fixture()
def tiny_registry(monkeypatch):
    """Restrict report generation to two benchmarks (speed)."""
    monkeypatch.setattr(
        "repro.experiments.runner.all_workload_names",
        lambda: list(TINY_WORKLOADS),
    )


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope", "Ckpt_NE"])

    def test_nockpt_not_runnable(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bt", "NoCkpt"])


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "bt", "ReCkpt_E", "--checkpoints", "5"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "ReCkpt_E" in out
        assert "TOTAL overhead" in out
        assert "recoveries: 1" in out
        assert "vs NoCkpt" in out

    def test_compare(self, capsys):
        assert main(["compare", "is"] + SMALL) == 0
        out = capsys.readouterr().out
        for name in ("Ckpt_NE", "ReCkpt_E_Loc"):
            assert name in out

    def test_slices(self, capsys):
        assert main(["slices", "mg", "--threshold", "30"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "slice-length histogram" in out

    def test_slices_reports_rejections_and_lint_summary(self, capsys):
        assert main(["slices", "mg", "--threshold", "30"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "slice rejections by reason" in out
        assert "loop-carried" in out
        assert "lint: 0 finding(s)" in out

    def test_baselines(self, capsys):
        assert main(["baselines", "bt", "--every-k", "3"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "full snapshots would" in out
        assert "level-2 drain" in out


class TestTraceAndStats:
    def test_trace_exports_valid_chrome_and_jsonl(self, tmp_path, capsys):
        import json

        from repro.obs.export import validate_chrome_trace
        from repro.obs.lint import lint_jsonl

        out = tmp_path / "run.trace.json"
        jsonl = tmp_path / "run.trace.jsonl"
        assert main(
            ["trace", "is", "ReCkpt_E", "--checkpoints", "5",
             "--out", str(out), "--jsonl", str(jsonl)] + SMALL
        ) == 0
        text = capsys.readouterr().out
        assert "run ReCkpt_E" in text
        assert "perfetto" in text.lower()
        assert "captured" in text

        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        names = {e.get("name") for e in doc["traceEvents"]}
        assert "checkpoint 0" in names
        assert "log bytes" in names
        assert "addrmap" in names
        assert any(n.startswith("recovery") for n in names)

        count, errors = lint_jsonl(jsonl)
        assert errors == []
        assert count > 0

    def test_trace_limit_caps_capture(self, tmp_path, capsys):
        import re

        out = tmp_path / "t.json"
        assert main(
            ["trace", "is", "ReCkpt_E", "--checkpoints", "5",
             "--out", str(out), "--limit", "10"] + SMALL
        ) == 0
        text = capsys.readouterr().out
        match = re.search(r"10 captured / (\d+) dropped", text)
        assert match, text
        assert int(match.group(1)) > 0  # the rest was counted as dropped

    def test_trace_default_config(self, tmp_path):
        args = build_parser().parse_args(
            ["trace", "is", "--out", str(tmp_path / "t.json")]
        )
        assert args.config == "ReCkpt_E"

    def test_stats_prints_metric_tables(self, capsys):
        assert main(
            ["stats", "is", "ReCkpt_E", "--checkpoints", "5"] + SMALL
        ) == 0
        text = capsys.readouterr().out
        assert "run ReCkpt_E" in text
        assert "counters" in text
        assert "histograms" in text
        assert "log.writes_taken" in text
        assert "ckpt.logged_bytes" in text
        assert "events: 0 captured / 0 dropped" in text


class TestLintCommand:
    TINY = ["--scale", "0.1", "--reps", "8"]

    def test_clean_benchmark_exits_zero(self, capsys):
        assert main(["lint", "bt"] + self.TINY) == 0
        out = capsys.readouterr().out
        assert "bt: lint: 0 finding(s)" in out
        assert "replayed" in out

    def test_explicit_threshold_and_no_oracle(self, capsys):
        assert main(
            ["lint", "mg", "--threshold", "5", "--no-oracle"] + self.TINY
        ) == 0
        assert "0 value(s) replayed" in capsys.readouterr().out

    def test_json_format(self, capsys):
        import json

        assert main(["lint", "is", "--format", "json"] + self.TINY) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["benchmark"] == "is"
        assert doc["summary"]["ok"] is True
        assert doc["summary"]["total"] == 0
        assert doc["sites_embedded"] > 0

    def test_all_benchmarks(self, capsys, monkeypatch):
        import json

        monkeypatch.setattr(
            "repro.cli.all_workload_names", lambda: list(TINY_WORKLOADS)
        )
        assert main(["lint", "--all", "--format", "json"] + self.TINY) == 0
        docs = json.loads(capsys.readouterr().out)
        assert [d["benchmark"] for d in docs] == TINY_WORKLOADS
        assert all(d["summary"]["ok"] for d in docs)

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("ACR001", "ACR004", "ACR007", "ACR008"):
            assert rule in out
        assert "recompute-divergence" in out

    def test_select_and_ignore(self, capsys):
        assert main(["lint", "bt", "--select", "ACR003"] + self.TINY) == 0
        assert main(
            ["lint", "bt", "--ignore", "ACR008,ACR005"] + self.TINY
        ) == 0

    def test_unknown_rule_pattern_exits_two(self, capsys):
        assert main(["lint", "bt", "--select", "ACR9"] + self.TINY) == 2
        assert "unknown rule pattern" in capsys.readouterr().err

    def test_missing_benchmark_exits_two(self, capsys):
        assert main(["lint"] + self.TINY) == 2
        assert "--all" in capsys.readouterr().err

    def test_error_findings_exit_one(self, capsys, monkeypatch):
        from repro.verify import Diagnostic, LintReport, Severity

        def fake_verify(cp, **kwargs):
            return LintReport(
                findings=[
                    Diagnostic(
                        "ACR003", "dangling-assoc", Severity.ERROR,
                        "planted for the exit-code test", site=0,
                    )
                ],
                slices_checked=1,
            )

        monkeypatch.setattr("repro.cli.verify_program", fake_verify)
        assert main(["lint", "bt"] + self.TINY) == 1
        out = capsys.readouterr().out
        assert "ACR003" in out
        assert "planted" in out


class TestJobsAndCacheFlags:
    def test_every_subcommand_accepts_jobs_and_cache_dir(self, tmp_path):
        parser = build_parser()
        for argv in (
            ["report", "--jobs", "4", "--cache-dir", str(tmp_path)],
            ["run", "bt", "Ckpt_NE", "--jobs", "2", "--cache-dir", "c"],
            ["compare", "is", "--jobs", "2"],
            ["baselines", "bt", "--cache-dir", "c"],
        ):
            args = parser.parse_args(argv)
            assert args.jobs >= 1
            assert hasattr(args, "cache_dir")

    @pytest.mark.parametrize("bad", ["0", "-2", "four"])
    def test_non_positive_jobs_rejected_cleanly(self, bad, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "bt", "Ckpt_NE", "--jobs", bad] + SMALL)
        assert exc.value.code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_cache_dir_colliding_with_file_errors_cleanly(
        self, tmp_path, capsys
    ):
        blocker = tmp_path / "notadir"
        blocker.write_text("")
        code = main(
            ["run", "bt", "Ckpt_NE", "--cache-dir", str(blocker)] + SMALL
        )
        assert code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_run_with_cache_dir_is_deterministic_across_invocations(
        self, tmp_path, capsys
    ):
        argv = ["run", "bt", "ReCkpt_E", "--checkpoints", "5",
                "--cache-dir", str(tmp_path / "cache")] + SMALL
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert len(list((tmp_path / "cache").glob("*/*.json"))) >= 2
        assert main(argv) == 0  # second invocation: served from disk
        warm = capsys.readouterr().out
        assert warm == cold

    def test_compare_with_jobs_matches_serial(self, capsys):
        assert main(["compare", "is"] + SMALL) == 0
        serial = capsys.readouterr().out
        assert main(["compare", "is", "--jobs", "2"] + SMALL) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial


class TestReportCommand:
    def test_report_end_to_end_serial_vs_parallel_identical(
        self, tmp_path, tiny_registry, capsys
    ):
        tiny = ["--scale", "0.1", "--cores", "2", "--reps", "12"]
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        assert main(["report", "--out", str(serial_dir)] + tiny) == 0
        capsys.readouterr()
        assert main(
            ["report", "--out", str(parallel_dir), "--jobs", "2",
             "--cache-dir", str(tmp_path / "cache")] + tiny
        ) == 0
        out = capsys.readouterr().out
        assert "run summary" in out

        names = sorted(p.name for p in serial_dir.glob("*.txt"))
        assert names == sorted(p.name for p in parallel_dir.glob("*.txt"))
        assert "fig06_time_overhead.txt" in names
        assert "table2_threshold.txt" in names
        for name in names:
            if name == "run_summary.txt":  # timings legitimately differ
                continue
            assert (
                (serial_dir / name).read_text()
                == (parallel_dir / name).read_text()
            ), f"{name} differs between serial and parallel report"


class TestInjectCommand:
    def test_campaign_exits_zero_when_bit_exact(self, tmp_path, capsys):
        out_json = tmp_path / "report.json"
        assert main([
            "inject", "cg", "dc", "--trials", "4",
            "--cache-dir", str(tmp_path / "cache"),
            "--json", str(out_json),
        ]) == 0
        out = capsys.readouterr().out
        assert "fault-injection campaign" in out
        assert "recovered bit-exactly" in out
        assert out_json.exists()

    def test_warm_cache_serves_from_disk(self, tmp_path, capsys):
        args = ["inject", "cg", "--trials", "2",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        # 2 trials per configuration x {BER, ACR} = 4 disk hits.
        assert "disk 4" in capsys.readouterr().out

    def test_seeded_defect_fails_with_provenance(self, capsys):
        code = main([
            "inject", "dc", "--trials", "4", "--seed", "1",
            "--configs", "ACR", "--targets", "mem",
            "--defect", "skip-recompute",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "skipped recompute of address" in out
        assert "diverged: dc/ACR" in out

    def test_unknown_benchmark_exits_two(self, capsys):
        assert main(["inject", "nosuch", "--trials", "1"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_bad_config_list_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["inject", "--configs", "Ckpt_E"])

    def test_parallel_matches_serial(self, capsys):
        assert main(["inject", "cg", "--trials", "3"]) == 0
        serial = capsys.readouterr().out
        assert main(["inject", "cg", "--trials", "3", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out

        # Identical campaign table/verdict; only the runs: footer differs
        # (sim vs worker attribution).  The resilience footer shows
        # visible zeros on both paths.
        def stable(text):
            return [
                line for line in text.splitlines()
                if not line.startswith("runs:")
            ]

        assert stable(parallel) == stable(serial)
        assert "resilience: 0 retried" in serial


class TestAnalyzeCommand:
    TINY = ["--scale", "0.1", "--cores", "2", "--reps", "8"]

    def test_clean_benchmark_exits_zero(self, capsys):
        assert main(["analyze", "bt"] + self.TINY) == 0
        out = capsys.readouterr().out
        assert "vector-safety certificates" in out
        assert "bt" in out

    def test_json_with_coverage(self, capsys):
        import json

        assert main(
            ["analyze", "cg", "--format", "json", "--explain-fallbacks"]
            + self.TINY
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["benchmark"] == "cg"
        assert doc["safe"] + doc["denied"] == doc["segments"] > 0
        assert doc["coverage"]["replayed_iterations"] > 0

    def test_missing_benchmark_exits_two(self, capsys):
        assert main(["analyze"] + self.TINY) == 2
        assert "--all" in capsys.readouterr().err

    def test_denials_render_rule_and_span(self, capsys, monkeypatch):
        # A forged workload whose kernel reloads its own store window
        # after a wrap: ACR009 denies the certificate, the runtime
        # degrades the same segment, and the explain output must tie
        # the two together.
        from repro.isa.builder import chain_kernel
        from repro.isa.instructions import AddressPattern
        from repro.isa.program import Program

        class ClashSpec:
            def build_programs(self, num_cores, region_scale=1.0, reps=None):
                programs = []
                for t in range(num_cores):
                    base = (t + 1) << 24
                    kernel = chain_kernel(
                        "clash",
                        AddressPattern(base, 1, 8),
                        [AddressPattern(base, 1, 8, offset=6)],
                        chain_depth=2,
                        trip_count=8,
                        salt=t + 1,
                    )
                    programs.append(Program([kernel], t))
                return programs

        monkeypatch.setattr(
            "repro.cli.get_workload", lambda name: ClashSpec()
        )
        # Advisory denials explain the fallback; they never fail the run.
        assert main(
            ["analyze", "bt", "--explain-fallbacks"] + self.TINY
        ) == 0
        out = capsys.readouterr().out
        assert "ACR009" in out
        assert "instr" in out  # the offending instruction span
        assert "runtime fallback ACR009" in out

    def test_unexplained_fallback_exits_one(self, capsys, monkeypatch):
        monkeypatch.setattr(
            "repro.cli._vector_runtime_coverage",
            lambda programs, cores: {
                "replayed_iterations": 10,
                "fallback_iterations": 5,
                "fallback.mystery": 5,
            },
        )
        assert main(
            ["analyze", "bt", "--explain-fallbacks"] + self.TINY
        ) == 1
        assert "UNEXPLAINED" in capsys.readouterr().out
