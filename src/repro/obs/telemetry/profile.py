"""Lightweight self-profiling: where does a task's wall-clock go?

The harness has exactly five interesting phases per task —

* ``compile``    — ACR compilation (slice selection + embedding);
* ``plan-build`` — vector-engine trace-plan construction (cache miss);
* ``simulate``   — the execution loop itself;
* ``accounting`` — energy flush + ``RunResult`` assembly;
* ``cache-io``   — persistent result-cache reads/writes —

and a :class:`PhaseProfiler` accumulates seconds (and entry counts) per
phase.  Like :mod:`repro.obs.telemetry.emit`, activation is ambient:
instrumented code calls the module-level :func:`phase` context manager,
which costs one ``is None`` check when no profiler is active, so the
plain path stays untouched.  Entering a phase with telemetry enabled
also emits a ``phase_changed`` frame, and the per-task totals ride home
on the ``task_finished`` frame for campaign-wide attribution
(:meth:`PhaseProfiler.attribution_table`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs.telemetry import emit as _emit_mod
from repro.obs.telemetry.frames import PhaseChanged
from repro.util.tables import format_table

__all__ = ["PHASES", "PhaseProfiler", "activate", "active", "phase", "count"]

#: The harness's phase vocabulary (profilers accept any name; these are
#: the ones the instrumented pipeline emits).
PHASES = ("compile", "plan-build", "simulate", "accounting", "cache-io")


class PhaseProfiler:
    """Per-phase wall-clock accumulator (seconds + entry counts)."""

    __slots__ = ("seconds", "counts")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    def add(self, name: str, seconds: float, n: int = 1) -> None:
        """Fold ``seconds`` (one or more entries) into phase ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + n

    def merge(
        self, seconds: Dict[str, float], counts: Optional[Dict[str, int]] = None
    ) -> None:
        """Fold another profiler's totals (e.g. off a ``task_finished``
        frame) into this one."""
        for name, s in seconds.items():
            self.seconds[name] = self.seconds.get(name, 0.0) + s
        for name, n in (counts or {}).items():
            self.counts[name] = self.counts.get(name, 0) + n

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one phase entry (emits ``phase_changed`` when telemetry
        is enabled)."""
        _emit_mod.emit(PhaseChanged, phase=name)
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def attribution_table(self, title: str = "wall-clock attribution") -> str:
        """Per-phase seconds/%/entries, largest first."""
        total = self.total_seconds
        rows = [
            [
                name,
                round(self.seconds[name], 3),
                f"{100.0 * self.seconds[name] / total:.1f}%" if total else "n/a",
                self.counts.get(name, 0),
            ]
            for name in sorted(
                self.seconds, key=lambda n: -self.seconds[n]
            )
        ]
        rows.append(["TOTAL", round(total, 3), "100.0%" if total else "n/a",
                     sum(self.counts.values())])
        return format_table(
            ["phase", "seconds", "share", "entries"], rows, title=title
        )


#: The ambient profiler (None = self-profiling disabled).
_ACTIVE: Optional[PhaseProfiler] = None


def active() -> Optional[PhaseProfiler]:
    """The currently-installed profiler, if any."""
    return _ACTIVE


@contextmanager
def activate(profiler: PhaseProfiler) -> Iterator[PhaseProfiler]:
    """Install ``profiler`` as the ambient one for the duration; nests
    (an inner task's profiler shadows the campaign's)."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = profiler
    try:
        yield profiler
    finally:
        _ACTIVE = prev


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time one phase entry on the ambient profiler — free when none."""
    prof = _ACTIVE
    if prof is None:
        yield
        return
    with prof.phase(name):
        yield


def count(name: str, n: int = 1) -> None:
    """Bump a phase's entry count without timing (e.g. cache hits)."""
    prof = _ACTIVE
    if prof is not None:
        prof.counts[name] = prof.counts.get(name, 0) + n
