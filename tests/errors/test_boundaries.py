"""Error-path boundary pins: tie-breaks, latency == period, schedules.

Three edge cases the fault-injection campaigns lean on, pinned as
standalone unit tests so a regression is locatable without running a
campaign:

* occurrence *exactly at* a checkpoint's establishment time — the
  boundary checkpoint reflects state strictly before the error and is
  SAFE (paper Fig. 2);
* ``ErrorModel`` with ``detection_latency_fraction == 1.0`` — the
  paper's worst admissible latency; detection lands exactly one period
  later, and the safe checkpoint stays within the two-retained-
  checkpoints horizon (second-oldest retained, never index −1);
* ``PoissonErrors.occurrence_times`` — strictly inside the run,
  strictly increasing, a pure function of the seed.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors.detection import choose_safe_checkpoint
from repro.errors.injection import PoissonErrors
from repro.errors.model import ErrorModel, ErrorOccurrence
from repro.inject.harness import TrialSpec, run_trial


class TestBoundaryTieBreaks:
    """Satellite 1: occurrence/detection coinciding with checkpoints."""

    CKPTS = [1.0, 2.0, 3.0, 4.0]

    def choice(self, occurred, detected):
        return choose_safe_checkpoint(
            ErrorOccurrence(occurred, detected), self.CKPTS
        )

    def test_occurrence_at_checkpoint_keeps_it_safe(self):
        # The checkpoint established at t captures state strictly before
        # an error occurring at t, so it must NOT be skipped (Fig. 2).
        c = self.choice(3.0, 3.5)
        assert c.checkpoint_index == 2
        assert not c.skipped_corrupted

    def test_detection_at_checkpoint_marks_it_suspect(self):
        # A checkpoint established exactly at detection time exists and
        # was written while the error was latent: skip it.
        c = self.choice(2.5, 3.0)
        assert c.checkpoint_index == 1
        assert c.skipped_corrupted

    def test_both_boundaries_coincide(self):
        # occurred == ckpt k, detected == ckpt k+1: k safe, k+1 suspect.
        c = self.choice(3.0, 4.0)
        assert c.checkpoint_index == 2
        assert c.skipped_corrupted

    def test_occurrence_just_after_checkpoint_still_safe(self):
        c = self.choice(3.0 + 1e-9, 3.5)
        assert c.checkpoint_index == 2
        assert not c.skipped_corrupted


class TestLatencyEqualsPeriod:
    """Satellite 2: the ``detection_latency_fraction == 1.0`` boundary."""

    def test_full_period_latency_accepted(self):
        m = ErrorModel(1.0)
        assert m.detection_latency_ns(100.0) == 100.0

    def test_above_period_rejected(self):
        with pytest.raises(ValueError):
            ErrorModel(1.0 + 1e-9)

    def test_safe_stays_within_retention(self):
        # Worst case: error at checkpoint k's establishment, detected a
        # full period later, exactly as checkpoint k+1 establishes.  The
        # safe checkpoint is k — the second-oldest of the two retained
        # checkpoints {k, k+1} — never index −1 (that would roll back
        # past the retention horizon for no reason).
        times = [1.0, 2.0, 3.0, 4.0]
        occ = ErrorModel(1.0).occurrence(3.0, 1.0)
        assert occ.detected_ns == 4.0
        c = choose_safe_checkpoint(occ, times)
        assert c.checkpoint_index == len(times) - 2
        assert c.skipped_corrupted

    @pytest.mark.parametrize("config", ["BER", "ACR"])
    def test_end_to_end_recovery_at_full_latency(self, config):
        # Driven through the real machinery: with latency == period the
        # rollback spans at most the retained window, logs_to_rollback
        # never raises, and recovery is still bit-exact.
        for seed in range(3):
            spec = TrialSpec(
                workload="dc", config=config, target="mem", seed=seed,
                memory_seed=seed, detection_latency_fraction=1.0,
            )
            result = run_trial(spec)
            assert result.outcome == "recovered-exact"
            assert result.safe_checkpoint >= result.checkpoints - 2


class TestPoissonScheduleProperties:
    """Satellite 3: schedule guarantees, property-tested."""

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        expected=st.floats(min_value=0.1, max_value=50.0),
        total=st.floats(min_value=1e-3, max_value=1e9),
    )
    @settings(max_examples=100, deadline=None)
    def test_in_range_sorted_deterministic(self, seed, expected, total):
        sched = PoissonErrors(expected, seed=seed)
        times = sched.occurrence_times(total)
        assert all(0.0 < t < total for t in times)
        assert all(a < b for a, b in zip(times, times[1:]))
        assert times == PoissonErrors(expected, seed=seed).occurrence_times(
            total
        )

    def test_tiny_run_never_emits_out_of_range(self):
        # A run shorter than the mean inter-arrival gap usually yields no
        # errors; when it does yield one it must still be inside the run.
        for seed in range(200):
            times = PoissonErrors(10.0, seed=seed).occurrence_times(1e-6)
            assert all(0.0 < t < 1e-6 for t in times)

    def test_high_rate_stays_strictly_increasing(self):
        # Rate high enough that float absorption (t + gap == t) becomes
        # plausible; duplicates would break downstream bisect logic.
        times = PoissonErrors(5000.0, seed=7).occurrence_times(1e12)
        assert len(times) > 1000
        assert all(a < b for a, b in zip(times, times[1:]))
