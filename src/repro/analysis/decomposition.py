"""Overhead and energy decomposition of a finished run.

The paper's cost model (Eqs. 1–3) splits BER overhead into checkpointing
(o_chk) and recovery (o_rec = o_waste + o_roll-back [+ o_rcmp]) terms;
these helpers extract exactly those terms from a :class:`RunResult` so
reports and tests can reason about *where* ACR's savings come from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.results import RunResult
from repro.util.tables import format_table

__all__ = [
    "OverheadDecomposition",
    "RecoveryAnatomy",
    "decompose_overhead",
    "recovery_anatomy",
    "energy_by_category",
]


@dataclass(frozen=True)
class OverheadDecomposition:
    """Critical-path overhead split (all in nanoseconds)."""

    boundary_ns: float       # barriers + flushes + arch-state writes
    recovery_ns: float       # waste + rollback + recomputation
    execution_ns: float      # in-interval costs: log stalls, ASSOC-ADDR
    total_ns: float

    def rows(self) -> List[List[object]]:
        def pct(x: float) -> float:
            return round(100.0 * x / self.total_ns, 1) if self.total_ns else 0.0

        return [
            ["boundary (o_chk: barrier+flush+arch)", round(self.boundary_ns, 1), pct(self.boundary_ns)],
            ["in-interval (log writes, ASSOC-ADDR)", round(self.execution_ns, 1), pct(self.execution_ns)],
            ["recovery (o_waste+o_rollback+o_rcmp)", round(self.recovery_ns, 1), pct(self.recovery_ns)],
            ["TOTAL overhead", round(self.total_ns, 1), 100.0],
        ]

    def describe(self) -> str:
        """Rendered decomposition table."""
        return format_table(["component", "ns", "%"], self.rows())


def decompose_overhead(run: RunResult) -> OverheadDecomposition:
    """Split a run's critical-path overhead into Eq. 1–3 components.

    ``execution_ns`` is the residual after boundaries and recoveries —
    the log-write stalls and ASSOC-ADDR slots charged during intervals
    (plus barrier-wait imbalance, which is also an execution artifact).
    """
    boundary = sum(iv.boundary_ns for iv in run.intervals)
    recovery = run.recovery_time_ns
    total = run.overhead_ns
    execution = max(0.0, total - boundary - recovery)
    return OverheadDecomposition(
        boundary_ns=boundary,
        recovery_ns=recovery,
        execution_ns=execution,
        total_ns=total,
    )


@dataclass(frozen=True)
class RecoveryAnatomy:
    """Aggregate Eq. 2/3 terms over all of a run's recoveries."""

    count: int
    waste_ns: float
    rollback_ns: float
    recompute_ns: float
    restored_records: int
    recomputed_values: int

    @property
    def total_ns(self) -> float:
        """o_rec summed over recoveries."""
        return self.waste_ns + self.rollback_ns + self.recompute_ns


def recovery_anatomy(run: RunResult) -> RecoveryAnatomy:
    """Aggregate the recovery cost terms of a run."""
    return RecoveryAnatomy(
        count=run.recovery_count,
        waste_ns=sum(r.waste_ns for r in run.recoveries),
        rollback_ns=sum(r.rollback_ns for r in run.recoveries),
        recompute_ns=sum(r.recompute_ns for r in run.recoveries),
        restored_records=sum(r.restored_records for r in run.recoveries),
        recomputed_values=sum(r.recomputed_values for r in run.recoveries),
    )


#: Ledger-bucket prefix -> human category.
_CATEGORIES: Tuple[Tuple[str, str], ...] = (
    ("core.", "execution (cores)"),
    ("mem.", "memory hierarchy"),
    ("ckpt.", "checkpointing"),
    ("acr.", "ACR structures"),
    ("rec.", "recovery"),
    ("static.", "leakage"),
)


def energy_by_category(run: RunResult) -> Dict[str, float]:
    """Group the energy ledger into the standard report categories (pJ)."""
    out: Dict[str, float] = {}
    for prefix, label in _CATEGORIES:
        pj = run.energy.total_pj(prefix)
        if pj:
            out[label] = pj
    other = run.energy.total_pj() - sum(out.values())
    if other > 1e-9:
        out["other"] = other
    return out
