"""Tests for repro.compiler.ddg."""

from repro.compiler.ddg import DataDependenceGraph
from repro.isa.builder import KernelBuilder, chain_kernel
from repro.isa.instructions import AddressPattern
from repro.isa.opcodes import Opcode

STORE = AddressPattern(0, 1, 8)
INPUT = AddressPattern(4096, 1, 8)


class TestDataDependenceGraph:
    def test_chain_deps(self):
        b = KernelBuilder("k")
        x = b.movi(1)          # 0
        y = b.movi(2)          # 1
        z = b.alu(Opcode.ADD, x, y)  # 2
        b.store(z, STORE)      # 3
        ddg = DataDependenceGraph(b.build(1))
        assert set(ddg.deps_of(2)) == {0, 1}
        assert ddg.deps_of(3) == (2,)
        assert len(ddg) == 4

    def test_backward_closure(self):
        b = KernelBuilder("k")
        x = b.movi(1)
        y = b.movi(2)
        z = b.alu(Opcode.ADD, x, y)
        w = b.alu(Opcode.MUL, z, z)
        b.store(w, STORE)
        ddg = DataDependenceGraph(b.build(1))
        closure, live_in = ddg.backward_closure(4)
        assert closure == {0, 1, 2, 3}
        assert live_in == set()

    def test_closure_excludes_unrelated(self):
        b = KernelBuilder("k")
        x = b.movi(1)
        unrelated = b.movi(99)
        b.store(unrelated, AddressPattern(64, 1, 8))
        b.store(x, STORE)
        ddg = DataDependenceGraph(b.build(1))
        closure, _ = ddg.backward_closure(3)
        assert closure == {0}

    def test_live_in_detection(self):
        b = KernelBuilder("k")
        acc = b.fresh_reg()
        x = b.movi(1)
        b.alu_into(Opcode.ADD, acc, acc, x)
        b.store(acc, STORE)
        ddg = DataDependenceGraph(b.build(1))
        _, live_in = ddg.backward_closure(2)
        assert acc in live_in

    def test_redefinition_uses_latest(self):
        b = KernelBuilder("k")
        x = b.movi(1)          # 0
        b.alu_into(Opcode.ADD, x, x, x)  # 1: x = x+x
        b.store(x, STORE)      # 2
        ddg = DataDependenceGraph(b.build(1))
        assert ddg.deps_of(2) == (1,)

    def test_load_terminates_chain(self):
        k = chain_kernel("k", STORE, [INPUT], 2, 1)
        ddg = DataDependenceGraph(k)
        store_idx = len(k.body) - 1
        closure, live_in = ddg.backward_closure(store_idx)
        assert live_in == set()
        # closure includes the load (frontier) and chain instructions
        assert 0 in closure

    def test_live_in_reads_accessor(self):
        b = KernelBuilder("k")
        phantom = b.fresh_reg()
        b.store(phantom, STORE)
        ddg = DataDependenceGraph(b.build(1))
        assert ddg.live_in_reads(0) == (phantom,)
