"""Tracer protocol: the zero-overhead-when-disabled event sink.

The simulator threads a :class:`Tracer` through every instrumented
layer.  The contract is deliberately tiny:

* ``enabled`` — hoisted by callers into a local guard, so a disabled
  tracer costs one attribute read at construction time and *nothing*
  per event (callers never build event objects when disabled);
* ``emit(event)`` — consume one :class:`~repro.obs.events.TraceEvent`.

:class:`NullTracer` is the default (disabled, no-op); a run with it is
bit-identical to an uninstrumented run — the simulator selects the
untraced fast path at construction.  :class:`RecordingTracer` captures
events in memory with an optional capacity bound; overflowing events
are counted as *dropped* rather than silently discarded, so the
"events captured / dropped" summary is always truthful.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, runtime_checkable

from repro.obs.events import TraceEvent

__all__ = ["Tracer", "NullTracer", "RecordingTracer"]


@runtime_checkable
class Tracer(Protocol):
    """Structural interface every event sink implements."""

    #: When False, instrumented code paths must not emit (and the
    #: simulator falls back to the untraced hot path entirely).
    enabled: bool

    def emit(self, event: TraceEvent) -> None:
        """Consume one event."""
        ...


class NullTracer:
    """The default sink: disabled, drops everything, costs nothing."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:
        """No-op (callers normally early-out before even building the
        event; this exists so the protocol is still honoured)."""


class RecordingTracer:
    """In-memory event capture with an optional capacity bound.

    ``capacity=None`` captures without bound; with a bound, events past
    the limit increment ``dropped`` instead of growing the buffer (the
    earliest events are kept — the interesting transient is usually the
    start of a run, and a stable prefix keeps exports deterministic).
    """

    enabled = True

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0

    @property
    def captured(self) -> int:
        """Events retained in the buffer."""
        return len(self.events)

    def emit(self, event: TraceEvent) -> None:
        """Append ``event``, or count it as dropped past capacity."""
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(event)

    def clear(self) -> None:
        """Drop the buffer and reset the drop counter."""
        self.events.clear()
        self.dropped = 0
