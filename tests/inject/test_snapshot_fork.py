"""Fork-from-snapshot bit-identity: the tentpole acceptance contract.

A trial that forks its faulty pass from a golden boundary snapshot must
be indistinguishable — field for field, byte for byte — from the same
trial run straight through from step 0.  These tests pin that contract
at three layers: single trials across the full workload × engine
matrix, campaign reports hashed as JSON, and the snapshot store's
persistence / quarantine behaviour.
"""

import hashlib
import json

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.inject import campaign as campaign_mod
from repro.inject import harness
from repro.inject.harness import (
    GoldenRun,
    TrialSpec,
    fork,
    golden_key,
    run_golden,
    run_trial,
)
from repro.sim.snapshot import SnapshotStore
from repro.workloads import all_workload_names


@pytest.fixture(autouse=True)
def clean_golden_memo():
    # Tests about store hits/misses need the in-process memo empty.
    harness._GOLDEN_MEMO.clear()
    yield
    harness._GOLDEN_MEMO.clear()


class TestTrialBitIdentity:
    @pytest.mark.parametrize("workload", all_workload_names())
    @pytest.mark.parametrize("engine", ["interp", "vector"])
    def test_forked_equals_straight(self, workload, engine):
        spec = TrialSpec(workload=workload, seed=7)
        straight = run_trial(spec, engine=engine)
        forked = run_trial(spec, engine=engine, snapshots=True)
        assert forked.to_dict() == straight.to_dict()

    @pytest.mark.parametrize("config", ["ACR", "BER"])
    @pytest.mark.parametrize("target", ["mem", "log", "addrmap", "arch"])
    def test_all_targets_both_configs(self, config, target):
        spec = TrialSpec(
            workload="cg", config=config, target=target, seed=3
        )
        straight = run_trial(spec)
        forked = run_trial(spec, snapshots=True)
        assert forked.to_dict() == straight.to_dict()

    def test_divergent_outcome_reproduced(self):
        # Forking must not launder real divergence (dc + skip-recompute
        # is the suite's known-diverging defect combination).
        spec = TrialSpec(
            workload="dc", config="ACR", target="mem", seed=1,
            defect="skip-recompute",
        )
        straight = run_trial(spec)
        forked = run_trial(spec, snapshots=True)
        assert forked.to_dict() == straight.to_dict()


class TestGoldenRun:
    def test_boundary_resnapshot_is_fixed_point(self):
        # Restoring a boundary into a fresh pass and re-capturing it
        # must reproduce the snapshot bytes exactly: capture and
        # restore are inverses on live mid-run state.
        spec = TrialSpec(workload="cg", seed=5)
        golden = run_golden(spec)
        assert len(golden.boundaries) >= 2
        mid = golden.boundaries[len(golden.boundaries) // 2]
        child = fork(spec, mid)[0]
        assert child.snapshot().to_bytes() == mid.to_bytes()

    def test_resumed_fork_reaches_golden_end_state(self):
        spec = TrialSpec(workload="is", seed=2)
        golden = run_golden(spec)
        child = fork(spec, golden.boundaries[-1])[0]
        child.run_to_end()
        assert child.memory.snapshot() == dict(
            (a, v) for a, v in golden.final_words
        )
        assert child.steps == golden.total_steps

    def test_bytes_round_trip_fixed_point(self):
        spec = TrialSpec(workload="cg", seed=5)
        golden = run_golden(spec)
        blob = golden.to_bytes()
        again = GoldenRun.from_bytes(blob)
        assert again.to_bytes() == blob
        assert again.total_steps == golden.total_steps
        assert len(again.boundaries) == len(golden.boundaries)

    def test_key_distinguishes_engine_and_spec(self):
        spec = TrialSpec(workload="cg", seed=5)
        assert golden_key(spec) != golden_key(spec, engine="vector")
        other = TrialSpec(workload="cg", seed=5, steps_per_interval=7)
        assert golden_key(spec) != golden_key(other)
        # Trial-randomization fields do not fragment the golden cache.
        retargeted = TrialSpec(workload="cg", seed=99, target="arch")
        assert golden_key(spec) == golden_key(retargeted)


class TestSnapshotStorePath:
    def test_store_reused_without_reexecution(self, tmp_path, monkeypatch):
        store = SnapshotStore(tmp_path)
        warm = run_trial(TrialSpec(workload="cg", seed=1),
                         snapshots=True, snapshot_store=store)
        harness._GOLDEN_MEMO.clear()

        def boom(spec, engine="interp"):
            raise AssertionError("golden pass re-executed despite store")

        monkeypatch.setattr(harness, "run_golden", boom)
        # Different trial seed, same golden key: must come from disk.
        again = run_trial(TrialSpec(workload="cg", seed=1),
                          snapshots=True, snapshot_store=store)
        assert again.to_dict() == warm.to_dict()

    def test_corrupt_blob_quarantined_and_recomputed(self, tmp_path):
        store = SnapshotStore(tmp_path)
        spec = TrialSpec(workload="cg", seed=1)
        key = golden_key(spec)
        store.save(key, b"not a snapshot")
        result = run_trial(spec, snapshots=True, snapshot_store=store)
        assert result.to_dict() == run_trial(spec).to_dict()
        # The bad blob was replaced by a loadable one.
        GoldenRun.from_bytes(store.load(key))


class TestCampaignReportIdentity:
    def _report_sha(self, runner, specs, path):
        results = runner.run_trials(specs)
        report = campaign_mod.CampaignReport(results)
        report.write_json(path)
        return hashlib.sha256(path.read_bytes()).hexdigest()

    def test_forked_campaign_report_hash_matches(self, tmp_path):
        specs = campaign_mod.build_trials(["cg", "is"], trials=4, seed=11)
        straight = ExperimentRunner(snapshots=False)
        forked = ExperimentRunner(
            snapshots=True, snapshot_dir=tmp_path / "snaps"
        )
        sha_straight = self._report_sha(
            straight, specs, tmp_path / "straight.json"
        )
        sha_forked = self._report_sha(
            forked, specs, tmp_path / "forked.json"
        )
        assert sha_forked == sha_straight
        assert forked.progress.forked_trials == len(specs)
        assert straight.progress.forked_trials == 0
        assert "forked from golden boundaries" in (
            forked.progress.summary_table()
        )
        # The snapshot dir actually holds the persisted goldens.
        saved = list((tmp_path / "snaps").rglob("*.snap"))
        assert saved, "no snapshots persisted to --snapshot-dir"
        doc = json.loads((tmp_path / "forked.json").read_text())
        assert doc["ok"] is True
