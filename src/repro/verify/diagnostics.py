"""Structured lint findings and reports.

A :class:`Diagnostic` is one finding of the slice soundness verifier: a
stable rule id (``ACR001`` ...), a severity, the store site and program
location it anchors to, and a human-readable message.  A
:class:`LintReport` aggregates the findings of one verification run and
renders them either as an aligned human table or as a machine-readable
JSON document (``repro lint --format json``).
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.util.tables import format_table

__all__ = ["Severity", "Diagnostic", "LintReport"]


@functools.total_ordering
class Severity(enum.Enum):
    """Finding severity; orders ``INFO < WARNING < ERROR``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        """Numeric rank used for ordering and exit-code decisions."""
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    def __lt__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank < other.rank


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding.

    Attributes
    ----------
    rule:
        Stable rule id, e.g. ``"ACR001"``.
    slug:
        Short rule name, e.g. ``"slice-impure"``.
    severity:
        Finding severity.
    message:
        Human-readable description of the defect.
    site:
        Store-site id the finding anchors to (``None`` for program-level
        findings).
    location:
        Program location string, e.g. ``"kernel 'bt/s3/r0' instr 4"``.
    """

    rule: str
    slug: str
    severity: Severity
    message: str
    site: Optional[int] = None
    location: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form of the finding."""
        return {
            "rule": self.rule,
            "slug": self.slug,
            "severity": self.severity.value,
            "message": self.message,
            "site": self.site,
            "location": self.location,
        }

    def render(self) -> str:
        """One-line human rendering."""
        where = f" site {self.site}" if self.site is not None else ""
        return f"{self.rule} [{self.severity.value}]{where}: {self.message}"


@dataclass
class LintReport:
    """All findings of one verification run, plus coverage counters."""

    findings: List[Diagnostic] = field(default_factory=list)
    #: Embedded slices inspected by the static rules.
    slices_checked: int = 0
    #: Slice recomputations replayed by the differential oracle.
    oracle_values_checked: int = 0
    #: Sites the oracle skipped because static errors made replay moot.
    oracle_sites_skipped: int = 0

    def extend(self, diagnostics: Sequence[Diagnostic]) -> None:
        """Append findings (engine-internal)."""
        self.findings.extend(diagnostics)

    # -- queries -------------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        """Error-severity findings (drive the non-zero exit code)."""
        return [d for d in self.findings if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        """Warning-severity findings."""
        return [d for d in self.findings if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was produced."""
        return not self.errors

    def rule_ids(self) -> List[str]:
        """Distinct rule ids that fired, sorted."""
        return sorted({d.rule for d in self.findings})

    def count_by_rule(self) -> Dict[str, int]:
        """Map rule id -> number of findings."""
        counts: Dict[str, int] = {}
        for d in self.findings:
            counts[d.rule] = counts.get(d.rule, 0) + 1
        return counts

    # -- output --------------------------------------------------------------
    def summary_line(self) -> str:
        """One-line summary, suitable under a stats table."""
        return (
            f"lint: {len(self.findings)} finding(s) "
            f"({len(self.errors)} errors, {len(self.warnings)} warnings) "
            f"across {self.slices_checked} slice(s), "
            f"{self.oracle_values_checked} value(s) replayed"
        )

    def render(self) -> str:
        """Human-readable report: findings table + summary line."""
        if not self.findings:
            return self.summary_line()
        ordered = sorted(
            self.findings,
            key=lambda d: (-d.severity.rank, d.rule, d.site if d.site is not None else -1),
        )
        table = format_table(
            ["rule", "severity", "site", "location", "message"],
            [
                [
                    d.rule,
                    d.severity.value,
                    "-" if d.site is None else d.site,
                    d.location or "-",
                    d.message,
                ]
                for d in ordered
            ],
        )
        return f"{table}\n{self.summary_line()}"

    def to_json_dict(self) -> Dict[str, object]:
        """Machine-readable form (``repro lint --format json``)."""
        return {
            "findings": [d.to_dict() for d in self.findings],
            "summary": {
                "total": len(self.findings),
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "by_rule": self.count_by_rule(),
                "slices_checked": self.slices_checked,
                "oracle_values_checked": self.oracle_values_checked,
                "oracle_sites_skipped": self.oracle_sites_skipped,
                "ok": self.ok,
            },
        }
