"""Backoff determinism: reruns schedule byte-identical retry delays."""

import pytest
from hypothesis import given, strategies as st

from repro.resilience.policy import ResiliencePolicy


def test_default_schedule_is_pinned():
    # Literal values: any drift in the hash, the cap order or the jitter
    # formula breaks reproducibility of recorded campaigns.
    policy = ResiliencePolicy()
    assert policy.schedule("deadbeef") == [
        0.062111027544664334,
        0.08977937980888445,
    ]


def test_seeded_schedule_is_pinned():
    policy = ResiliencePolicy(
        seed=7, max_retries=4, backoff_base_s=0.1, backoff_max_s=0.3
    )
    # The cap applies to the raw exponential *before* jitter, so the
    # jittered delay may exceed backoff_max_s by at most the jitter
    # fraction.
    assert policy.schedule("cafe") == [
        0.10087820540603352,
        0.22170151566262183,
        0.3361357793048227,
        0.3281519953594303,
    ]


def test_rerun_schedules_identically():
    a = ResiliencePolicy(seed=3)
    b = ResiliencePolicy(seed=3)
    for key in ("a", "b", "0123abcd"):
        assert a.schedule(key) == b.schedule(key)


def test_distinct_tasks_decorrelate():
    policy = ResiliencePolicy()
    assert policy.backoff_s("task-a", 1) != policy.backoff_s("task-b", 1)


def test_seed_changes_the_schedule():
    assert (
        ResiliencePolicy(seed=0).schedule("k")
        != ResiliencePolicy(seed=1).schedule("k")
    )


@given(
    key=st.text(min_size=1, max_size=32),
    attempt=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2**32),
)
def test_backoff_stays_within_jitter_band(key, attempt, seed):
    policy = ResiliencePolicy(seed=seed, max_retries=10)
    raw = min(
        policy.backoff_max_s,
        policy.backoff_base_s * policy.backoff_factor ** (attempt - 1),
    )
    value = policy.backoff_s(key, attempt)
    assert raw * (1 - policy.jitter_fraction) <= value
    assert value <= raw * (1 + policy.jitter_fraction)


def test_max_attempts():
    assert ResiliencePolicy(max_retries=0).max_attempts == 1
    assert ResiliencePolicy(max_retries=3).max_attempts == 4


def test_validation():
    with pytest.raises(ValueError):
        ResiliencePolicy(max_retries=-1)
    with pytest.raises(ValueError):
        ResiliencePolicy(timeout_s=0.0)
    with pytest.raises(ValueError):
        ResiliencePolicy(jitter_fraction=1.5)
    with pytest.raises(ValueError):
        ResiliencePolicy().backoff_s("k", 0)
