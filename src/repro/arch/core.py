"""In-order core timing model.

A 4-issue in-order core with 8 outstanding loads/stores (Table I).  The
model charges:

* ``instructions / issue_width`` cycles of pipeline occupancy, and
* memory stall time, with miss latencies divided by the effective
  memory-level parallelism (``mlp``, bounded by the outstanding-ld/st
  budget) to reflect overlap, while L1 hits are considered fully hidden by
  the in-order pipeline (their occupancy slot already paid).

This is a deliberate simplification of Sniper's interval model: the shape
of all paper results depends on relative magnitudes (compute vs. log vs.
flush traffic), which this level of detail preserves.
"""

from __future__ import annotations

from repro.arch.config import MachineConfig
from repro.arch.hierarchy import DataAccess

__all__ = ["CoreTimingModel"]


class CoreTimingModel:
    """Accumulates one core's execution time in nanoseconds."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self._cycle = config.cycle_ns
        self._issue = config.issue_width
        self._mlp = config.mlp
        self._l1_latency = config.l1d.latency_ns

    def issue_time_ns(self, instructions: int) -> float:
        """Pipeline occupancy of ``instructions`` dynamic instructions."""
        return instructions / self._issue * self._cycle

    def stall_time_ns(self, access: DataAccess) -> float:
        """Stall contributed by one data access beyond its occupancy slot."""
        if access.l1_hit:
            return 0.0
        # Miss latency beyond L1, amortised over overlapping misses.
        extra = access.latency_ns - self._l1_latency
        return extra / self._mlp

    def alu_burst_time_ns(self, instructions: int) -> float:
        """Serial ALU execution time (used for Slice recomputation, which
        runs as a dependent chain: no issue-width parallelism)."""
        return instructions * self._cycle
