"""Test package."""
