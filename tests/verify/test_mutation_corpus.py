"""The corpus contract: each seeded defect fires its rule — and only it.

This is simultaneously the verifier's sensitivity suite (every defect
class is detected) and its precision suite (no mutation triggers a
bystander rule, so a finding always names the actual defect).
"""

import pytest

from repro.compiler.policy import ThresholdPolicy
from repro.verify import (
    DEFECT_RULE_IDS,
    RULES,
    Severity,
    seed_defect,
    verify_program,
)
from repro.verify.oracle import ORACLE_RULE_ID

from tests.verify.conftest import CORPUS_THRESHOLD, make_cp


def lint(compiled):
    return verify_program(compiled, policy=ThresholdPolicy(CORPUS_THRESHOLD))


def is_error_rule(rule_id: str) -> bool:
    """Does this rule's registry severity make the report fail?"""
    if rule_id == ORACLE_RULE_ID:
        return True  # the differential oracle always reports errors
    return RULES[rule_id].severity is Severity.ERROR


class TestCorpusPrecision:
    def test_clean_baseline_has_zero_findings(self):
        report = lint(make_cp())
        assert report.findings == []
        assert report.ok
        assert report.slices_checked == 2  # copy + accumulate rejected
        assert report.oracle_values_checked > 0

    @pytest.mark.parametrize("rule_id", DEFECT_RULE_IDS)
    def test_each_defect_fires_exactly_its_rule(self, rule_id):
        mutated = seed_defect(make_cp(), rule_id)
        report = lint(mutated)
        assert report.rule_ids() == [rule_id]
        # Soundness rules fail the report; the advisory vector-safety
        # rules (ACR009-ACR012) explain fallbacks without rejecting.
        assert report.ok == (not is_error_rule(rule_id))

    def test_corpus_covers_every_rule(self):
        from repro.verify import ALL_RULE_IDS

        assert tuple(DEFECT_RULE_IDS) == tuple(ALL_RULE_IDS)

    def test_seed_defect_does_not_mutate_input(self):
        cp = make_cp()
        for rule_id in DEFECT_RULE_IDS:
            seed_defect(cp, rule_id)
        assert lint(cp).findings == []

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="no mutator"):
            seed_defect(make_cp(), "ACR999")


class TestDefectDetails:
    def test_defect_findings_carry_registry_severity(self):
        for rule_id in DEFECT_RULE_IDS:
            report = lint(seed_defect(make_cp(), rule_id))
            assert report.findings, rule_id
            expected = (
                Severity.ERROR if rule_id == ORACLE_RULE_ID
                else RULES[rule_id].severity
            )
            for d in report.findings:
                assert d.rule == rule_id
                assert d.severity is expected
                assert d.message
                if is_error_rule(rule_id):
                    assert d.site is not None
                else:
                    # Advisory findings are kernel-scoped, not per-site,
                    # and must carry the offending instruction span.
                    assert d.location and "kernel" in d.location

    def test_oracle_skips_statically_broken_sites(self):
        # A slice with a missing frontier slot cannot be replayed; the
        # oracle must not pile an ACR008 finding onto ACR002's.
        report = lint(seed_defect(make_cp(), "ACR002"))
        assert report.rule_ids() == ["ACR002"]
        assert report.oracle_sites_skipped >= 1

    def test_divergence_message_names_values(self):
        report = lint(seed_defect(make_cp(), "ACR008"))
        msg = report.findings[0].message
        assert "recompute(snapshot)" in msg
        assert "0x" in msg
