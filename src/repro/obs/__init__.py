"""Observability: event tracing, metrics and trace exporters.

This package is the profiling layer of the reproduction — per-event
visibility into the write path (which stores were amnesic and why),
the AddrMap (inserts, evictions, omission hits), checkpoint boundaries
and the recovery handler, plus aggregate counters/histograms that ride
on ``RunResult.obs`` through the result cache.

The layer is zero-overhead when disabled: the default
:class:`NullTracer` makes the simulator keep its untraced hot path
(guards are hoisted at run construction), and a guardrail bench pins
the disabled-path cost.  With a :class:`RecordingTracer`, runs export
to JSONL (:func:`write_jsonl`, linted by :mod:`repro.obs.lint`) and to
Chrome ``trace_event`` JSON (:func:`chrome_trace`) that opens directly
in Perfetto — see ``acr-repro trace`` / ``acr-repro stats``.
"""

from repro.obs.events import (
    EVENT_TYPES,
    AddrMapEvict,
    AddrMapHit,
    AddrMapInsert,
    CampaignResumed,
    CheckpointBegin,
    CheckpointEnd,
    IntervalBoundary,
    LogWrite,
    PoolDegraded,
    RecoveryBegin,
    RecoveryEnd,
    SliceRecompute,
    TaskRetried,
    TraceEvent,
    WorkerDied,
)
from repro.obs.export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.lint import lint_event_dict, lint_jsonl
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    ObsReport,
)
from repro.obs.tracer import NullTracer, RecordingTracer, Tracer

__all__ = [
    # events
    "TraceEvent",
    "CheckpointBegin",
    "CheckpointEnd",
    "IntervalBoundary",
    "LogWrite",
    "AddrMapInsert",
    "AddrMapEvict",
    "AddrMapHit",
    "SliceRecompute",
    "RecoveryBegin",
    "RecoveryEnd",
    "TaskRetried",
    "WorkerDied",
    "PoolDegraded",
    "CampaignResumed",
    "EVENT_TYPES",
    # tracers
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    # metrics
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "ObsReport",
    "DEFAULT_BUCKETS",
    # exporters / lint
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "validate_chrome_trace",
    "lint_event_dict",
    "lint_jsonl",
]
