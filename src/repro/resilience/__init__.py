"""Supervised, resumable execution for the experiment engine.

ACR's premise is that recovery from rare faults must be cheap and
bit-exact; this package applies the same discipline to the harness that
fans thousands of simulations and injection trials out over worker
processes.  The layers mirror the paper's vocabulary (DESIGN §3.4):

* :class:`ResiliencePolicy` — retry/timeout/backoff knobs.  Backoff is
  exponential with *seeded, deterministic* jitter, so a rerun of a flaky
  campaign schedules byte-identical retry delays (the harness analogue
  of deterministic re-execution).
* :class:`Supervisor` — a crash-tolerant worker pool: per-task
  wall-clock timeouts enforced by a watchdog, dead-worker detection
  with respawn (the "rollback + re-execute" of the harness), and a
  circuit breaker that degrades to serial in-process execution after
  repeated pool failures.
* :class:`CompletionJournal` — a write-ahead completion log (JSONL,
  atomic appends) beside the result cache: the harness's checkpoint.
  An interrupted regeneration or campaign resumes exactly where it
  stopped, and a resumed run's report is bit-identical to an
  undisturbed one.
* :class:`KeyLock` — best-effort per-cache-key lockfiles so concurrent
  invocations sharing one cache directory do not redundantly simulate.
* :class:`FailureReport` — per-task attempt history (what retried, why,
  after which backoff), attached to campaign/report output.

Everything here is harness-level: simulation results are bit-identical
whether a task succeeded first try, was retried after a SIGKILL, or ran
serially after the pool degraded (chaos tests pin this).
"""

from repro.resilience.journal import (
    JOURNAL_SCHEMA_VERSION,
    CompletionJournal,
    JournalRecord,
)
from repro.resilience.locks import KeyLock
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.report import AttemptRecord, FailureReport, TaskHistory
from repro.resilience.supervisor import (
    SupervisedTask,
    Supervisor,
    TaskFailedError,
)

__all__ = [
    "AttemptRecord",
    "CompletionJournal",
    "FailureReport",
    "JOURNAL_SCHEMA_VERSION",
    "JournalRecord",
    "KeyLock",
    "ResiliencePolicy",
    "SupervisedTask",
    "Supervisor",
    "TaskFailedError",
    "TaskHistory",
]
