"""Checkpoint coordination: boundary placement and cost models.

Boundary placement follows the paper's setup: N checkpoints uniformly
distributed over the (error-free) execution time.  The cost of one
boundary comprises

* a coordination barrier among the participating cores (NoC model),
* flushing every participant's dirty cache lines to memory
  (bandwidth-limited through the participants' memory controllers), and
* writing each participant's architectural state.

Under **global** coordination all cores participate in every boundary and
contend for all controllers simultaneously.  Under **local** coordination
only the cores of one communicating cluster synchronize; clusters take
their checkpoints *staggered*, so a cluster's flush traffic contends only
with itself — the two effects (smaller barrier, less controller contention)
are exactly the scalability advantages §V-E attributes to local schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.arch.config import MachineConfig
from repro.arch.hierarchy import CoreCacheHierarchy
from repro.arch.memctrl import MemorySystem
from repro.arch.noc import MeshNoc
from repro.energy.accounting import EnergyLedger
from repro.energy.model import EnergyModel
from repro.obs.metrics import MetricsRegistry
from repro.util.validation import check_positive

__all__ = [
    "uniform_boundaries",
    "BoundaryCost",
    "CheckpointCostModel",
    "GlobalCoordinator",
    "LocalCoordinator",
]


def uniform_boundaries(total_useful_ns: float, num_checkpoints: int) -> List[float]:
    """Useful-time targets of N uniformly distributed checkpoints.

    The k-th checkpoint (1-based) triggers when useful progress reaches
    ``k * total / N`` — the last one coincides with program completion.
    """
    check_positive("total_useful_ns", total_useful_ns)
    check_positive("num_checkpoints", num_checkpoints)
    step = total_useful_ns / num_checkpoints
    return [step * k for k in range(1, num_checkpoints + 1)]


@dataclass(frozen=True, slots=True)
class BoundaryCost:
    """Time/traffic breakdown of one checkpoint boundary for one cluster."""

    barrier_ns: float
    flush_ns: float
    arch_ns: float
    flushed_lines: int
    flushed_bytes: int
    arch_bytes: int

    @property
    def total_ns(self) -> float:
        """Wall-clock cost charged to every participant."""
        return self.barrier_ns + self.flush_ns + self.arch_ns


class CheckpointCostModel:
    """Computes boundary costs from live machine state."""

    def __init__(
        self,
        config: MachineConfig,
        noc: MeshNoc,
        memsys: MemorySystem,
        energy: EnergyModel,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.noc = noc
        self.memsys = memsys
        self.energy = energy
        #: Optional observability sink: per-cluster boundary costs feed
        #: the ``ckpt.flushed_bytes`` / ``ckpt.barrier_ns`` histograms.
        self.metrics = metrics

    def boundary_cost(
        self,
        participants: Sequence[int],
        hierarchies: Sequence[CoreCacheHierarchy],
        ledger: EnergyLedger,
    ) -> BoundaryCost:
        """Cost of one boundary for ``participants``; flushes their caches.

        Mutates cache state (dirty lines become clean) and accumulates the
        boundary's energy into ``ledger``.
        """
        cfg = self.config
        barrier_ns = self.noc.barrier_latency_ns(len(participants))

        flush_bytes_per_core: Dict[int, int] = {}
        flushed_lines = 0
        for core in participants:
            lines = hierarchies[core].flush_dirty_lines()
            flushed_lines += lines
            flush_bytes_per_core[core] = lines * cfg.line_bytes
        flushed_bytes = flushed_lines * cfg.line_bytes
        flush_ns = self.memsys.bulk_transfer_time_ns(flush_bytes_per_core)

        arch_bytes = cfg.arch_state_bytes * len(participants)
        arch_ns = self.memsys.bulk_transfer_time_ns(
            {core: cfg.arch_state_bytes for core in participants}
        )

        ledger.add("ckpt.flush", self.energy.dram_transfer_pj(flushed_bytes))
        ledger.add("ckpt.arch", self.energy.dram_transfer_pj(arch_bytes))
        ledger.add(
            "ckpt.arch",
            (arch_bytes / 8) * self.energy.regfile_access_pj,
        )
        hops = self.noc.diameter_hops(len(participants))
        ledger.add(
            "ckpt.barrier",
            2 * hops * len(participants) * self.energy.noc_hop_pj,
        )
        if self.metrics is not None:
            self.metrics.histogram("ckpt.flushed_bytes").observe(flushed_bytes)
            self.metrics.histogram("ckpt.barrier_ns").observe(barrier_ns)
        return BoundaryCost(
            barrier_ns=barrier_ns,
            flush_ns=flush_ns,
            arch_ns=arch_ns,
            flushed_lines=flushed_lines,
            flushed_bytes=flushed_bytes,
            arch_bytes=arch_bytes,
        )


class GlobalCoordinator:
    """Coordinated global checkpointing: every boundary involves all cores."""

    scheme = "global"

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores

    def clusters(self, directory) -> List[FrozenSet[int]]:
        """One cluster spanning every core."""
        return [frozenset(range(self.num_cores))]

    def contention_groups(
        self, clusters: List[FrozenSet[int]]
    ) -> List[List[FrozenSet[int]]]:
        """All clusters flush simultaneously (a single contention group)."""
        return [clusters]


class LocalCoordinator:
    """Coordinated local checkpointing: clusters from directory tracking.

    Clusters are the communicating-core groups the directory observed in
    the closing interval.  Staggered establishment means each cluster's
    flush traffic only contends with itself (its own contention group).
    """

    scheme = "local"

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores

    def clusters(self, directory) -> List[FrozenSet[int]]:
        """The directory's communicating clusters for this interval."""
        return directory.communication_groups()

    def contention_groups(
        self, clusters: List[FrozenSet[int]]
    ) -> List[List[FrozenSet[int]]]:
        """Each cluster checkpoints on its own (staggered)."""
        return [[c] for c in clusters]
