"""Per-kernel data-dependence graphs.

The graph is over *body indices* of a single kernel iteration: node ``i``
depends on node ``j`` when instruction ``i`` reads a register whose most
recent definition (within the same iteration, scanning backwards) is
instruction ``j``.  A register read with no earlier in-iteration definition
is *live-in* — its value is carried from a previous iteration or kernel
entry, which is what makes a dependent store non-sliceable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.isa.instructions import AluInstr, LoadInstr, MoviInstr, StoreInstr
from repro.isa.program import Kernel

__all__ = ["DataDependenceGraph"]


@dataclass(slots=True)
class _Node:
    """Dependence info for one body instruction."""

    deps: Tuple[int, ...]
    live_in_reads: Tuple[int, ...]


class DataDependenceGraph:
    """Def-use graph of one kernel body (single iteration scope)."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._nodes: List[_Node] = []
        last_def: Dict[int, int] = {}
        for idx, ins in enumerate(kernel.body):
            reads: List[int] = []
            if isinstance(ins, AluInstr):
                reads = [ins.src_a, ins.src_b]
            elif isinstance(ins, StoreInstr):
                reads = [ins.src]
            deps: List[int] = []
            live_in: List[int] = []
            for reg in reads:
                if reg in last_def:
                    deps.append(last_def[reg])
                else:
                    live_in.append(reg)
            self._nodes.append(_Node(tuple(deps), tuple(live_in)))
            if isinstance(ins, (AluInstr, MoviInstr, LoadInstr)):
                last_def[ins.dst] = idx

    def deps_of(self, index: int) -> Tuple[int, ...]:
        """Body indices this instruction directly depends on."""
        return self._nodes[index].deps

    def live_in_reads(self, index: int) -> Tuple[int, ...]:
        """Registers this instruction reads that are live-in (loop-carried)."""
        return self._nodes[index].live_in_reads

    def backward_closure(self, index: int) -> Tuple[Set[int], Set[int]]:
        """Transitive dependence closure of a body index.

        Returns ``(indices, live_in_regs)``: every body index reachable
        backwards through def-use edges (excluding ``index`` itself), and
        the union of live-in registers read anywhere in the closure
        (including by ``index``).
        """
        seen: Set[int] = set()
        live_in: Set[int] = set(self._nodes[index].live_in_reads)
        stack: List[int] = list(self._nodes[index].deps)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            live_in.update(self._nodes[node].live_in_reads)
            stack.extend(self._nodes[node].deps)
        return seen, live_in

    def __len__(self) -> int:
        return len(self._nodes)
