"""Mutation corpus: seed one known defect class into a compiled program.

Each mutator takes a clean :class:`~repro.compiler.embed.CompiledProgram`
and returns a copy carrying exactly one defect, chosen so that *only* the
matching rule fires — the corpus doubles as the verifier's
false-positive regression suite.

Because :class:`~repro.compiler.slices.Slice` validates at construction
(a satellite of the same invariant), defective slices are *forged* through
``object.__new__``, bypassing ``__post_init__`` — which models precisely
the threat the verifier exists for: a hand-built slice, a buggy policy, or
a future IR change that sidesteps the constructor's checks.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.config import MachineConfig
from repro.compiler.embed import CompiledProgram
from repro.compiler.slices import Slice, SliceTable
from repro.isa.instructions import (
    AddressPattern,
    AluInstr,
    Instruction,
    LoadInstr,
    MoviInstr,
    StoreInstr,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import Kernel, Program
from repro.verify.rules import slice_required_inputs

__all__ = ["DEFECT_RULE_IDS", "seed_defect"]

#: Registers far above anything the builders allocate; forged defects use
#: them so they never collide with live program registers.
_FORGE_REG_BASE = 1_000_000

#: Opcode substitution used by the recompute-divergence mutator: each op
#: maps to one with different semantics on generic operands.
_OP_SWAP = {
    Opcode.ADD: Opcode.SUB,
    Opcode.SUB: Opcode.ADD,
    Opcode.MUL: Opcode.ADD,
    Opcode.AND: Opcode.OR,
    Opcode.OR: Opcode.AND,
    Opcode.XOR: Opcode.ADD,
    Opcode.SHL: Opcode.SHR,
    Opcode.SHR: Opcode.SHL,
}


def _forge_slice(
    site: int,
    instructions: Tuple[object, ...],
    frontier: Tuple[int, ...],
    result_reg: int,
) -> Slice:
    """Construct a Slice without running its validation."""
    sl = object.__new__(Slice)
    object.__setattr__(sl, "site", site)
    object.__setattr__(sl, "instructions", instructions)
    object.__setattr__(sl, "frontier", frontier)
    object.__setattr__(sl, "result_reg", result_reg)
    return sl


def _rebuild_table(
    compiled: CompiledProgram,
    replace: Optional[Slice] = None,
    drop_site: Optional[int] = None,
) -> SliceTable:
    """Copy the slice table, replacing or dropping one entry."""
    table = SliceTable()
    for sl in compiled.slices:
        if drop_site is not None and sl.site == drop_site:
            continue
        if replace is not None and sl.site == replace.site:
            sl = replace
        table._slices[sl.site] = sl  # bypass add(): forged slices allowed
    if replace is not None and replace.site not in table._slices:
        table._slices[replace.site] = replace
    return table


def _with_table(compiled: CompiledProgram, table: SliceTable) -> CompiledProgram:
    return dataclasses.replace(compiled, slices=table)


def _victim(compiled: CompiledProgram, need_frontier: bool = False) -> Slice:
    """Deterministically pick the slice a mutator corrupts."""
    for site in compiled.slices.sites:
        sl = compiled.slices.get(site)
        assert sl is not None
        if not need_frontier:
            return sl
        if slice_required_inputs(sl) & (set(sl.frontier) - {sl.result_reg}):
            return sl
    raise ValueError("program has no embedded slice suitable for this defect")


def _impure(compiled: CompiledProgram) -> CompiledProgram:
    """ACR001: smuggle a load into a slice body."""
    sl = _victim(compiled)
    bad = _forge_slice(
        sl.site,
        sl.instructions
        + (LoadInstr(_FORGE_REG_BASE, AddressPattern(0, 1, 1)),),
        sl.frontier,
        sl.result_reg,
    )
    return _with_table(compiled, _rebuild_table(compiled, replace=bad))


def _frontier_incomplete(compiled: CompiledProgram) -> CompiledProgram:
    """ACR002: drop a frontier slot the slice actually consumes."""
    sl = _victim(compiled, need_frontier=True)
    required = slice_required_inputs(sl)
    dropped = next(
        r for r in sl.frontier if r in required and r != sl.result_reg
    )
    bad = _forge_slice(
        sl.site,
        sl.instructions,
        tuple(r for r in sl.frontier if r != dropped),
        sl.result_reg,
    )
    return _with_table(compiled, _rebuild_table(compiled, replace=bad))


def _dangling_assoc(compiled: CompiledProgram) -> CompiledProgram:
    """ACR003: drop a covered site's slice, leaving its ASSOC_ADDR flag."""
    sl = _victim(compiled)
    return _with_table(compiled, _rebuild_table(compiled, drop_site=sl.site))


def _operand_budget(compiled: CompiledProgram) -> CompiledProgram:
    """ACR004: pad the frontier past the Table-I operand-buffer budget."""
    sl = _victim(compiled)
    capacity = MachineConfig().operand_buffer_capacity
    pad = tuple(
        range(_FORGE_REG_BASE, _FORGE_REG_BASE + capacity + 1 - len(sl.frontier))
    )
    bad = _forge_slice(
        sl.site, sl.instructions, sl.frontier + pad, sl.result_reg
    )
    return _with_table(compiled, _rebuild_table(compiled, replace=bad))


def _threshold_violation(compiled: CompiledProgram) -> CompiledProgram:
    """ACR005: pad a slice with pure dead code past any sane threshold.

    The padding reads only registers it defines itself, so the slice stays
    pure, complete and result-defined — only its length breaks the policy.
    (Assumes the active threshold is below ``length + 24``.)
    """
    sl = _victim(compiled)
    pad: List[object] = [MoviInstr(_FORGE_REG_BASE, 1)]
    for i in range(23):
        pad.append(
            AluInstr(
                Opcode.ADD,
                _FORGE_REG_BASE + i + 1,
                _FORGE_REG_BASE + i,
                _FORGE_REG_BASE + i,
            )
        )
    bad = _forge_slice(
        sl.site, sl.instructions + tuple(pad), sl.frontier, sl.result_reg
    )
    return _with_table(compiled, _rebuild_table(compiled, replace=bad))


def _result_undefined(compiled: CompiledProgram) -> CompiledProgram:
    """ACR006: point the result register at one nothing defines."""
    sl = _victim(compiled)
    bad = _forge_slice(
        sl.site, sl.instructions, sl.frontier, _FORGE_REG_BASE
    )
    return _with_table(compiled, _rebuild_table(compiled, replace=bad))


def _aliasing_hazard(compiled: CompiledProgram) -> CompiledProgram:
    """ACR007: clobber a frontier register between its load and the store.

    The inserted MOVI is dead code for the stored value (every slice use
    binds to the earlier load), but the ASSOC_ADDR snapshot — taken at
    store time — now captures the clobbered value.
    """
    sl = _victim(compiled, need_frontier=True)
    required = slice_required_inputs(sl)
    reg = next(r for r in sl.frontier if r in required and r != sl.result_reg)
    loc = compiled.program.store_sites[sl.site]

    kernels: List[Kernel] = []
    for k_idx, kernel in enumerate(compiled.program.kernels):
        body: List[Instruction] = list(kernel.body)
        if k_idx == loc.kernel_index:
            body.insert(loc.instr_index, MoviInstr(reg, 0xDEAD))
        kernels.append(
            Kernel(kernel.name, body, kernel.trip_count, kernel.phase,
                   kernel.ghost_alu)
        )
    # Store order is unchanged, so Program re-assigns identical site ids.
    program = Program(kernels, compiled.program.thread_id)
    return dataclasses.replace(compiled, program=program)


def _fresh_register(program: Program) -> int:
    """One register above everything the program touches.

    Vector-safety mutators insert *body* instructions; a tiny fresh
    index (instead of ``_FORGE_REG_BASE``) keeps the interpreter's
    register file — sized ``max register + 1`` — from ballooning when
    the differential oracle replays the mutated program.
    """
    width = 0
    for kernel in program.kernels:
        for ins in kernel.body:
            if isinstance(ins, AluInstr):
                width = max(width, ins.dst, ins.src_a, ins.src_b)
            elif isinstance(ins, StoreInstr):
                width = max(width, ins.src)
            else:
                width = max(width, ins.dst)
    return width + 1


def _replace_kernel_body(
    program: Program, kernel_index: int, body: List[Instruction]
) -> Program:
    """Rebuild ``program`` with one kernel's body swapped out."""
    kernels = [
        Kernel(k.name, body if i == kernel_index else list(k.body),
               k.trip_count, k.phase, k.ghost_alu)
        for i, k in enumerate(program.kernels)
    ]
    return Program(kernels, program.thread_id)


def _vector_overlap(compiled: CompiledProgram) -> CompiledProgram:
    """ACR009: load the footprint a store of the same kernel writes.

    The load lands *before* the store into a fresh register, so the
    kernel stays register-stable and no slice's frontier is clobbered —
    only the self-aliasing invariant breaks.
    """
    sl = _victim(compiled)
    loc = compiled.program.store_sites[sl.site]
    kernel = compiled.program.kernels[loc.kernel_index]
    store = kernel.body[loc.instr_index]
    assert isinstance(store, StoreInstr)
    body: List[Instruction] = list(kernel.body)
    body.insert(
        loc.instr_index,
        LoadInstr(_fresh_register(compiled.program), store.pattern),
    )
    # Store order is unchanged, so Program re-assigns identical site ids.
    program = _replace_kernel_body(compiled.program, loc.kernel_index, body)
    return dataclasses.replace(compiled, program=program)


def _cross_core_alias(compiled: CompiledProgram) -> CompiledProgram:
    """ACR010: forge a peer program storing to a word this one loads."""
    pattern = next(
        (
            ins.pattern
            for kernel in compiled.program.kernels
            for ins in kernel.body
            if isinstance(ins, LoadInstr)
        ),
        None,
    )
    if pattern is None:
        raise ValueError("program has no load for a peer to race against")
    peer = Program(
        [
            Kernel(
                "forged-peer",
                [MoviInstr(0, 1), StoreInstr(0, pattern)],
                1,
            )
        ],
        compiled.program.thread_id + 1,
    )
    return dataclasses.replace(compiled, peers=compiled.peers + (peer,))


def _unstable_register(compiled: CompiledProgram) -> CompiledProgram:
    """ACR011: redefine a (fresh) register after a covered store.

    The MOVI is dead code — it writes a register nothing reads — so
    stored values, slices and frontiers are untouched; only the
    store-time-observed register file stops matching the
    end-of-iteration row.
    """
    sl = _victim(compiled)
    loc = compiled.program.store_sites[sl.site]
    kernel = compiled.program.kernels[loc.kernel_index]
    body: List[Instruction] = list(kernel.body)
    body.insert(
        loc.instr_index + 1,
        MoviInstr(_fresh_register(compiled.program), 1),
    )
    program = _replace_kernel_body(compiled.program, loc.kernel_index, body)
    return dataclasses.replace(compiled, program=program)


def _external_load(compiled: CompiledProgram) -> CompiledProgram:
    """ACR012: append a load-only kernel reading an earlier store's words.

    The new kernel stores nothing, so every existing site id survives;
    its load intersecting a *previous* kernel's store footprint is the
    one new fact the certifier must refuse.
    """
    pattern = next(
        (
            ins.pattern
            for kernel in compiled.program.kernels
            for ins in kernel.body
            if isinstance(ins, StoreInstr)
        ),
        None,
    )
    if pattern is None:
        raise ValueError("program has no store for a later kernel to read")
    kernels = [
        Kernel(k.name, list(k.body), k.trip_count, k.phase, k.ghost_alu)
        for k in compiled.program.kernels
    ]
    kernels.append(
        Kernel(
            "forged-reader",
            [LoadInstr(_fresh_register(compiled.program), pattern)],
            1,
        )
    )
    program = Program(kernels, compiled.program.thread_id)
    return dataclasses.replace(compiled, program=program)


def _recompute_divergence(compiled: CompiledProgram) -> CompiledProgram:
    """ACR008: corrupt slice semantics while staying structurally clean."""
    sl = _victim(compiled)
    instructions = list(sl.instructions)
    for pos, ins in enumerate(instructions):
        if isinstance(ins, AluInstr) and ins.op in _OP_SWAP:
            instructions[pos] = dataclasses.replace(ins, op=_OP_SWAP[ins.op])
            break
    else:
        for pos, ins in enumerate(instructions):
            if isinstance(ins, MoviInstr):
                instructions[pos] = dataclasses.replace(ins, imm=ins.imm ^ 1)
                break
        else:
            raise ValueError("slice has no instruction to corrupt")
    bad = _forge_slice(
        sl.site, tuple(instructions), sl.frontier, sl.result_reg
    )
    return _with_table(compiled, _rebuild_table(compiled, replace=bad))


_MUTATORS: Dict[str, Callable[[CompiledProgram], CompiledProgram]] = {
    "ACR001": _impure,
    "ACR002": _frontier_incomplete,
    "ACR003": _dangling_assoc,
    "ACR004": _operand_budget,
    "ACR005": _threshold_violation,
    "ACR006": _result_undefined,
    "ACR007": _aliasing_hazard,
    # Advisory vector-safety defects, in registry order (the oracle's
    # ACR008 stays last, mirroring ``ALL_RULE_IDS``).
    "ACR009": _vector_overlap,
    "ACR010": _cross_core_alias,
    "ACR011": _unstable_register,
    "ACR012": _external_load,
    "ACR008": _recompute_divergence,
}

#: Rule ids the corpus can seed, in rule order.
DEFECT_RULE_IDS: Tuple[str, ...] = tuple(_MUTATORS)


def seed_defect(compiled: CompiledProgram, rule_id: str) -> CompiledProgram:
    """Return a copy of ``compiled`` carrying the defect for ``rule_id``.

    The input is never mutated.  Raises ``ValueError`` for unknown rule
    ids or programs without a suitable embedded slice.
    """
    try:
        mutator = _MUTATORS[rule_id]
    except KeyError:
        raise ValueError(
            f"no mutator for {rule_id!r}; corpus covers "
            f"{', '.join(DEFECT_RULE_IDS)}"
        ) from None
    return mutator(compiled)
