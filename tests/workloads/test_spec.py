"""Tests for repro.workloads.spec and kernels (structure and generation)."""

import pytest

from repro.compiler.embed import compile_program
from repro.compiler.policy import ThresholdPolicy
from repro.isa.instructions import StoreInstr
from repro.workloads.kernels import assign_sites
from repro.workloads.spec import BurstSpec, SliceLenBucket, WorkloadSpec

from tests.conftest import tiny_workload


class TestSpecValidation:
    def test_mix_weights_bounded(self):
        with pytest.raises(ValueError, match="exceed 1"):
            WorkloadSpec(
                name="bad",
                len_mix=(SliceLenBucket(0.9, 2, 10), SliceLenBucket(0.3, 11, 20)),
                copy_frac=0.0,
                accum_frac=0.0,
            )

    def test_bucket_bounds(self):
        with pytest.raises(ValueError):
            SliceLenBucket(0.5, 1, 5)  # lo must be >= 2
        with pytest.raises(ValueError):
            SliceLenBucket(0.5, 10, 5)  # lo <= hi

    def test_burst_kinds(self):
        with pytest.raises(ValueError):
            BurstSpec(0.5, 1.0, kind="explode")
        BurstSpec(0.5, 1.0, kind="widen")

    def test_sites_need_words(self):
        with pytest.raises(ValueError, match="one word per site"):
            WorkloadSpec(
                name="bad",
                region_words=4,
                sites=8,
                len_mix=(SliceLenBucket(0.9, 2, 10),),
                copy_frac=0.0,
                accum_frac=0.0,
            )


class TestAssignSites:
    def test_apportionment_matches_weights(self):
        spec = tiny_workload(sites=20, copy_frac=0.1, accum_frac=0.1)
        assignments = assign_sites(spec, 100)
        kinds = [a.kind for a in assignments]
        assert kinds.count("copy") == 2
        assert kinds.count("accum") == 2
        assert kinds.count("chain") == 16
        assert len(assignments) == 20

    def test_chain_lengths_within_buckets(self):
        spec = tiny_workload()
        lens = [a.slice_len for a in assign_sites(spec, 64) if a.kind == "chain"]
        assert all((2 <= l <= 8) or (12 <= l <= 20) for l in lens)

    def test_words_sum_to_region(self):
        spec = tiny_workload(sites=7)
        assignments = assign_sites(spec, 61)
        assert sum(a.words for a in assignments) == 61

    def test_sparse_fraction_respected(self):
        spec = tiny_workload(sites=20, sparse_frac=0.5)
        sparse = sum(a.sparse for a in assign_sites(spec, 100))
        assert 8 <= sparse <= 12

    def test_deterministic(self):
        spec = tiny_workload()
        assert assign_sites(spec, 64) == assign_sites(spec, 64)


class TestBuildPrograms:
    def test_one_program_per_core(self):
        programs = tiny_workload().build_programs(4)
        assert len(programs) == 4
        assert [p.thread_id for p in programs] == [0, 1, 2, 3]

    def test_deterministic_build(self):
        a = tiny_workload().build_programs(2)
        b = tiny_workload().build_programs(2)
        assert a[0].dynamic_instructions == b[0].dynamic_instructions
        assert len(a[0].store_sites) == len(b[0].store_sites)

    def test_region_scale_shrinks_footprint(self):
        big = tiny_workload(region_words=128).build_programs(1)[0]
        small = tiny_workload(region_words=128).build_programs(
            1, region_scale=0.5
        )[0]
        assert small.dynamic_stores < big.dynamic_stores

    def test_reps_override(self):
        p12 = tiny_workload().build_programs(1, reps=12)[0]
        p24 = tiny_workload().build_programs(1, reps=24)[0]
        assert p24.dynamic_stores > p12.dynamic_stores

    def test_threads_use_disjoint_private_regions(self):
        programs = tiny_workload(cluster_size=0).build_programs(2)
        def private_stores(p):
            out = set()
            for k in p.kernels:
                for ins in k.body:
                    if isinstance(ins, StoreInstr) and ins.pattern.base < (1 << 40):
                        out.add(ins.pattern.base)
            return out
        assert not (private_stores(programs[0]) & private_stores(programs[1]))

    def test_shared_region_per_cluster(self):
        programs = tiny_workload(cluster_size=2).build_programs(4)
        def shared_bases(p):
            return {
                ins.pattern.base
                for k in p.kernels
                for ins in k.body
                if isinstance(ins, StoreInstr) and ins.pattern.base >= (1 << 40)
            }
        # threads 0,1 share a region distinct from threads 2,3.
        s0, s1, s2 = (shared_bases(programs[i]) for i in (0, 1, 2))
        assert s0 and s2
        region = lambda bases: {b >> 20 for b in bases}
        assert region(s0) == region(s1)
        assert region(s0) != region(s2)

    def test_compile_coverage_tracks_mix(self):
        spec = tiny_workload()
        program = spec.build_programs(1)[0]
        cp = compile_program(program, ThresholdPolicy(10))
        # mix: 50% of sites <= len 8 (embeddable at 10), 30% at 12..20
        # (not embeddable), 20% copy/accum (never).
        assert 0.3 < cp.stats.coverage < 0.75

    def test_exclusive_burst_replaces_sites(self):
        spec = tiny_workload(
            bursts=(BurstSpec(0.5, 2.0, "copy", passes=2, exclusive=True),),
        )
        program = spec.build_programs(1)[0]
        burst_reps = {
            k.phase for k in program.kernels if ".burst" in k.name
        }
        assert burst_reps
        for rep in burst_reps:
            site_kernels = [
                k
                for k in program.kernels
                if k.phase == rep and ".s" in k.name and ".burst" not in k.name
                and ".shared" not in k.name
            ]
            assert site_kernels == []

    def test_widen_burst_increases_footprint(self):
        plain = tiny_workload()
        widened = tiny_workload(
            bursts=(BurstSpec(0.5, 1.0, "widen", passes=4),),
        )
        def store_words(spec):
            p = spec.build_programs(1)[0]
            return p.dynamic_stores
        assert store_words(widened) > store_words(plain)
