#!/usr/bin/env python
"""Regenerate the paper's full evaluation section.

Thin wrapper over :mod:`repro.experiments.report`; at the default scale of
0.5 the full report takes a few minutes on a laptop.  Use ``--scale 1.0``
for the calibrated fidelity (what the benchmark harness uses).

    python examples/paper_report.py [--scale S] [--scalability]
"""

from repro.experiments.report import main

if __name__ == "__main__":
    main()
