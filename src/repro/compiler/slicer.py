"""Backward slice extraction (paper Fig. 3).

Starting from a store's source register, the slicer walks def-use edges
backwards through the kernel body.  Loads terminate the walk — their
destination registers become the slice frontier (input operands to be kept
in the operand buffer).  A walk that reaches a *live-in* register (one
defined in a previous iteration: an accumulator) makes the store
non-sliceable, because the slice would have to span loop iterations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Set

from repro.compiler.ddg import DataDependenceGraph
from repro.compiler.slices import Slice
from repro.isa.instructions import AluInstr, LoadInstr, MoviInstr, StoreInstr
from repro.isa.program import Kernel

__all__ = ["SliceRejection", "SliceExtraction", "extract_slice"]


class SliceRejection(enum.Enum):
    """Why a store site could not get a usable slice."""

    #: Backward walk reached a register carried across iterations.
    LOOP_CARRIED = "loop-carried dependence"
    #: The slice recomputes nothing (stored value is a plain loaded value);
    #: buffering the operand equals buffering the value — no benefit.
    TRIVIAL = "trivial (copy of a load)"


@dataclass(frozen=True)
class SliceExtraction:
    """Result of slicing one store site."""

    site: int
    slice: Optional[Slice]
    rejection: Optional[SliceRejection]

    @property
    def sliceable(self) -> bool:
        """True when a non-trivial slice was extracted."""
        return self.slice is not None


def extract_slice(
    kernel: Kernel,
    store_index: int,
    ddg: Optional[DataDependenceGraph] = None,
) -> SliceExtraction:
    """Extract the backward slice of the store at ``kernel.body[store_index]``.

    Returns a :class:`SliceExtraction`; ``slice`` is ``None`` when the site
    is rejected (loop-carried or trivial).
    """
    store = kernel.body[store_index]
    if not isinstance(store, StoreInstr):
        raise ValueError(f"body[{store_index}] is not a store: {store!r}")
    if ddg is None:
        ddg = DataDependenceGraph(kernel)

    closure, live_in = ddg.backward_closure(store_index)
    if live_in:
        return SliceExtraction(store.site, None, SliceRejection.LOOP_CARRIED)

    # Partition the closure: loads form the frontier, ALU/MOVI form the
    # slice body.  Keep body order to preserve execution semantics.
    body_indices: List[int] = sorted(closure)
    instructions: List[object] = []
    frontier: Set[int] = set()
    for idx in body_indices:
        ins = kernel.body[idx]
        if isinstance(ins, LoadInstr):
            frontier.add(ins.dst)
        elif isinstance(ins, (AluInstr, MoviInstr)):
            instructions.append(ins)
        elif isinstance(ins, StoreInstr):  # pragma: no cover
            # Stores define no register, so they can never be in a closure.
            raise AssertionError("store inside a backward value closure")

    if not instructions:
        return SliceExtraction(store.site, None, SliceRejection.TRIVIAL)

    sl = Slice(
        site=store.site,
        instructions=tuple(instructions),
        frontier=tuple(sorted(frontier)),
        result_reg=store.src,
    )
    return SliceExtraction(store.site, sl, None)
