"""Typed trace events emitted by the instrumented simulation pipeline.

Each event is a frozen dataclass stamped with the emitting core's
simulated time (``ts_ns``, wall-clock axis: useful + overhead) and the
core id (``-1`` for machine-wide events such as checkpoint boundaries).
The event vocabulary mirrors the paper's mechanisms:

* ``CheckpointBegin``/``CheckpointEnd``/``IntervalBoundary`` — the
  coordinated boundary protocol (§II-A);
* ``LogWrite`` — the memory controller's first-modification handling:
  ``taken=True`` is a baseline log append, ``taken=False`` an ACR
  omission (§III-A);
* ``AddrMapInsert``/``AddrMapEvict``/``AddrMapHit`` — the checkpoint
  handler's AddrMap traffic (Fig. 4a);
* ``SliceRecompute`` — one omitted value regenerated during recovery
  (Fig. 4b);
* ``RecoveryBegin``/``RecoveryEnd`` — the rollback + recomputation
  episode (Eqs. 2/3);
* ``FaultInjected``/``RecoveryVerified``/``RecoveryDiverged`` — the
  fault-injection campaign engine (``repro.inject``): a bit flip landed
  in live state, and the recovered state either matched the golden
  re-execution bit-exactly or did not (§III-B's consistent recovery
  line, checked rather than assumed);
* ``TaskRetried``/``WorkerDied``/``PoolDegraded``/``CampaignResumed`` —
  the supervised execution layer (``repro.resilience``): harness-level
  recovery applied to the experiment engine itself.  These stamp
  harness wall time (ns since the supervisor started) rather than
  simulated time, and always carry the machine-wide core id.

``EVENT_TYPES`` maps wire names back to classes; the JSONL linter and
the round-trip tests are driven from it, so a new event type only needs
to be added here.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Tuple, Type

__all__ = [
    "TraceEvent",
    "CheckpointBegin",
    "CheckpointEnd",
    "IntervalBoundary",
    "LogWrite",
    "AddrMapInsert",
    "AddrMapEvict",
    "AddrMapHit",
    "SliceRecompute",
    "RecoveryBegin",
    "RecoveryEnd",
    "FaultInjected",
    "RecoveryVerified",
    "RecoveryDiverged",
    "TaskRetried",
    "WorkerDied",
    "PoolDegraded",
    "CampaignResumed",
    "EVENT_TYPES",
]

#: Core id used for machine-wide events (boundaries, recoveries).
MACHINE = -1


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """Base event: simulated timestamp (ns, wall axis) plus core id."""

    ts_ns: float
    core: int

    #: Wire name of the event (stable across refactors; used by the
    #: exporters and the JSONL schema linter).
    name: ClassVar[str] = "event"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe mapping: ``name`` plus every dataclass field."""
        doc: Dict[str, Any] = {"name": self.name}
        for f in fields(self):
            doc[f.name] = getattr(self, f.name)
        return doc


@dataclass(frozen=True, slots=True)
class CheckpointBegin(TraceEvent):
    """The boundary protocol of checkpoint ``index`` started."""

    index: int

    name: ClassVar[str] = "checkpoint_begin"


@dataclass(frozen=True, slots=True)
class CheckpointEnd(TraceEvent):
    """Checkpoint ``index`` was established; closing-interval totals."""

    index: int
    duration_ns: float
    logged_records: int
    omitted_records: int
    logged_bytes: int
    flushed_bytes: int

    name: ClassVar[str] = "checkpoint_end"


@dataclass(frozen=True, slots=True)
class IntervalBoundary(TraceEvent):
    """Interval ``index`` closed (stamped on the useful-time axis)."""

    index: int

    name: ClassVar[str] = "interval_boundary"


@dataclass(frozen=True, slots=True)
class LogWrite(TraceEvent):
    """A first-modification reached the log: taken (logged) or skipped
    (ACR proved the old value recomputable — no log traffic)."""

    address: int
    line: int
    size_bytes: int
    taken: bool

    name: ClassVar[str] = "log_write"


@dataclass(frozen=True, slots=True)
class AddrMapInsert(TraceEvent):
    """An ``ASSOC-ADDR`` recorded an association (operand count noted)."""

    address: int
    operands: int

    name: ClassVar[str] = "addrmap_insert"


@dataclass(frozen=True, slots=True)
class AddrMapEvict(TraceEvent):
    """An association was masked or refused.

    ``reason``: ``invalidated`` (plain store planted a tombstone),
    ``rejected`` (AddrMap / operand-buffer capacity), ``replaced``
    (re-association within the open generation).
    """

    address: int
    reason: str

    name: ClassVar[str] = "addrmap_evict"


@dataclass(frozen=True, slots=True)
class AddrMapHit(TraceEvent):
    """A committed-generation lookup justified omitting a log write."""

    address: int

    name: ClassVar[str] = "addrmap_hit"


@dataclass(frozen=True, slots=True)
class SliceRecompute(TraceEvent):
    """Recovery regenerated one omitted value via its embedded Slice."""

    slice_id: int
    ns: float

    name: ClassVar[str] = "slice_recompute"


@dataclass(frozen=True, slots=True)
class RecoveryBegin(TraceEvent):
    """Error ``error_index`` was detected; rollback starts."""

    error_index: int
    safe_checkpoint: int

    name: ClassVar[str] = "recovery_begin"


@dataclass(frozen=True, slots=True)
class RecoveryEnd(TraceEvent):
    """Recovery for ``error_index`` completed; cost breakdown attached."""

    error_index: int
    duration_ns: float
    waste_ns: float
    rollback_ns: float
    recompute_ns: float

    name: ClassVar[str] = "recovery_end"


@dataclass(frozen=True, slots=True)
class FaultInjected(TraceEvent):
    """The injection engine flipped ``bit`` in live state.

    ``target`` is the state class hit (``mem``, ``log``, ``addrmap`` or
    ``arch``); ``address`` is the corrupted memory address (or the
    address keying the corrupted log record / AddrMap entry; ``-1`` for
    architectural-register flips).
    """

    target: str
    address: int
    bit: int

    name: ClassVar[str] = "fault_injected"


@dataclass(frozen=True, slots=True)
class RecoveryVerified(TraceEvent):
    """Recovered state matched the golden re-execution bit-exactly."""

    safe_checkpoint: int
    addresses_checked: int

    name: ClassVar[str] = "recovery_verified"


@dataclass(frozen=True, slots=True)
class RecoveryDiverged(TraceEvent):
    """One address disagreed with the golden state after recovery."""

    address: int
    interval: int
    expected: int
    actual: int

    name: ClassVar[str] = "recovery_diverged"


@dataclass(frozen=True, slots=True)
class TaskRetried(TraceEvent):
    """A supervised task's attempt failed; a retry was scheduled.

    ``reason`` is the failed attempt's outcome (``error``, ``timeout``
    or ``worker-died``); ``backoff_s`` the deterministic delay before
    the next attempt.
    """

    label: str
    attempt: int
    reason: str
    backoff_s: float

    name: ClassVar[str] = "task_retried"


@dataclass(frozen=True, slots=True)
class WorkerDied(TraceEvent):
    """A pool worker process died (SIGKILL, OOM, crash) mid-task."""

    label: str
    pid: int

    name: ClassVar[str] = "worker_died"


@dataclass(frozen=True, slots=True)
class PoolDegraded(TraceEvent):
    """The circuit breaker tripped after ``failures`` consecutive
    pool-level failures; remaining tasks run serially in-process."""

    failures: int

    name: ClassVar[str] = "pool_degraded"


@dataclass(frozen=True, slots=True)
class CampaignResumed(TraceEvent):
    """A run resumed against a completion journal: ``journaled`` of the
    requested tasks were already done, ``pending`` remained."""

    journaled: int
    pending: int

    name: ClassVar[str] = "campaign_resumed"


_EVENT_CLASSES: Tuple[Type[TraceEvent], ...] = (
    CheckpointBegin,
    CheckpointEnd,
    IntervalBoundary,
    LogWrite,
    AddrMapInsert,
    AddrMapEvict,
    AddrMapHit,
    SliceRecompute,
    RecoveryBegin,
    RecoveryEnd,
    FaultInjected,
    RecoveryVerified,
    RecoveryDiverged,
    TaskRetried,
    WorkerDied,
    PoolDegraded,
    CampaignResumed,
)

#: Wire name -> event class (drives the exporters and the JSONL linter).
EVENT_TYPES: Dict[str, Type[TraceEvent]] = {
    cls.name: cls for cls in _EVENT_CLASSES
}
