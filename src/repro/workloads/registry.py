"""Workload lookup."""

from __future__ import annotations

from typing import List

from repro.workloads.nas import NAS_BENCHMARKS
from repro.workloads.spec import WorkloadSpec

__all__ = ["get_workload", "all_workload_names"]


def get_workload(name: str) -> WorkloadSpec:
    """Fetch a benchmark spec by name; raises ``KeyError`` with the
    available names on a miss."""
    try:
        return NAS_BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(sorted(NAS_BENCHMARKS))}"
        ) from None


def all_workload_names() -> List[str]:
    """All benchmark names in the paper's order."""
    return list(NAS_BENCHMARKS)
