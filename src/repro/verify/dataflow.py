"""Dataflow queries over a kernel body for the soundness rules.

:class:`KernelDataflow` wraps the compiler's
:class:`~repro.compiler.ddg.DataDependenceGraph` (which answers "which
instruction produced the value this one reads") and adds the register-level
queries the verifier needs on top of it:

* *reaching definitions* — the last definition of a register strictly
  before a body index, answered in O(log defs) via per-register sorted
  definition lists;
* *def-use chains* — for every definition, the body indices whose reads
  bind to it;
* *live-in registers* — registers read before any in-iteration definition
  (loop-carried values, which make a dependent store non-sliceable).

The frontier-aliasing rule (``ACR007``) is the main consumer: an operand
snapshot taken at store time is only sound when the reaching definition of
every frontier register *at the store* is the very load the slice's
backward closure bound it to.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.compiler.ddg import DataDependenceGraph
from repro.isa.instructions import AluInstr, LoadInstr, MoviInstr, StoreInstr
from repro.isa.program import Kernel

__all__ = ["KernelDataflow"]


def _reads_of(ins: object) -> Tuple[int, ...]:
    """Registers an instruction reads."""
    if isinstance(ins, AluInstr):
        return (ins.src_a, ins.src_b)
    if isinstance(ins, StoreInstr):
        return (ins.src,)
    return ()


def _def_of(ins: object) -> Optional[int]:
    """Register an instruction defines, if any."""
    if isinstance(ins, (AluInstr, MoviInstr, LoadInstr)):
        return ins.dst
    return None


class KernelDataflow:
    """Register-level dataflow facts for one kernel body."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.ddg = DataDependenceGraph(kernel)
        self._defs_by_reg: Dict[int, List[int]] = {}
        self._reads: List[Tuple[int, ...]] = []
        self._defs: List[Optional[int]] = []
        live_in: Set[int] = set()
        for idx, ins in enumerate(kernel.body):
            reads = _reads_of(ins)
            self._reads.append(reads)
            for reg in reads:
                if reg not in self._defs_by_reg:
                    live_in.add(reg)
            reg = _def_of(ins)
            self._defs.append(reg)
            if reg is not None:
                self._defs_by_reg.setdefault(reg, []).append(idx)
        self._live_in = frozenset(live_in)

    # -- per-instruction facts ----------------------------------------------
    def reads(self, index: int) -> Tuple[int, ...]:
        """Registers read by the instruction at ``index``."""
        return self._reads[index]

    def def_reg(self, index: int) -> Optional[int]:
        """Register defined by the instruction at ``index`` (if any)."""
        return self._defs[index]

    # -- register-level queries ----------------------------------------------
    def defs_of_reg(self, reg: int) -> Tuple[int, ...]:
        """All body indices defining ``reg``, in order."""
        return tuple(self._defs_by_reg.get(reg, ()))

    def reaching_def(self, index: int, reg: int) -> Optional[int]:
        """Last definition of ``reg`` strictly before ``index``.

        ``None`` means the value is live-in at that point (carried from a
        previous iteration or kernel entry).
        """
        defs = self._defs_by_reg.get(reg)
        if not defs:
            return None
        pos = bisect_left(defs, index)
        if pos == 0:
            return None
        return defs[pos - 1]

    def du_chains(self) -> Dict[int, Tuple[int, ...]]:
        """Map definition index -> body indices whose reads bind to it."""
        chains: Dict[int, List[int]] = {}
        for idx in range(len(self.kernel.body)):
            for reg in self._reads[idx]:
                d = self.reaching_def(idx, reg)
                if d is not None:
                    chains.setdefault(d, []).append(idx)
        return {d: tuple(uses) for d, uses in chains.items()}

    @property
    def live_in(self) -> FrozenSet[int]:
        """Registers read before any in-iteration definition."""
        return self._live_in

    # -- slice-oriented helpers ----------------------------------------------
    def closure_of(self, index: int) -> Tuple[Set[int], Set[int]]:
        """Backward value closure of a body index (see the DDG)."""
        return self.ddg.backward_closure(index)

    def __len__(self) -> int:
        return len(self.kernel.body)
