"""Programs, kernels and store-site bookkeeping.

A :class:`Kernel` is a counted loop whose body is a straight-line
instruction sequence.  A :class:`Program` is the per-thread unit of
execution: an ordered list of kernels grouped into *phases* (the workload
generators use phases to shape the temporal distribution of recomputable
values, cf. paper Fig. 10).

Store sites
-----------
Every static ``STORE`` in a program gets a program-unique *site id* at
:class:`Program` construction.  The compiler pass keys extracted Slices on
site ids, and the simulator uses them to find the Slice associated with a
dynamic store.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Set

from repro.isa.instructions import (
    AluInstr,
    Instruction,
    LoadInstr,
    MoviInstr,
    StoreInstr,
)
from repro.util.validation import check_non_negative, check_positive

__all__ = ["Kernel", "Program", "StoreSite"]


@dataclass(frozen=True, slots=True)
class StoreSite:
    """Location of a static store: (kernel index, body index, site id)."""

    site: int
    kernel_index: int
    instr_index: int


@dataclass(slots=True)
class Kernel:
    """A counted loop with a straight-line body.

    ``phase`` tags the kernel with a program phase (used by experiment
    reports to show per-interval behaviour); kernels run in list order.

    ``ghost_alu`` models the per-iteration computation a real kernel
    performs *around* its stored values — loop control, address
    arithmetic, temporaries that never reach memory.  Ghost instructions
    are charged in timing and energy but carry no dataflow, so they are
    not interpreted and can never appear in a Slice.  This keeps the
    interpreted instruction count (the simulator's hot loop) proportional
    to the *memory-relevant* work while preserving realistic
    compute-to-traffic ratios.
    """

    name: str
    body: List[Instruction]
    trip_count: int
    phase: int = 0
    ghost_alu: int = 0

    def __post_init__(self) -> None:
        check_positive("trip_count", self.trip_count)
        check_non_negative("phase", self.phase)
        check_non_negative("ghost_alu", self.ghost_alu)
        if not self.body:
            raise ValueError(f"kernel {self.name!r} has an empty body")

    # -- static properties --------------------------------------------------
    @property
    def alu_count(self) -> int:
        """Static ALU (incl. MOVI and ghost) instructions per iteration."""
        return self.ghost_alu + sum(
            1 for ins in self.body if isinstance(ins, (AluInstr, MoviInstr))
        )

    @property
    def load_count(self) -> int:
        """Static loads per iteration."""
        return sum(1 for ins in self.body if isinstance(ins, LoadInstr))

    @property
    def store_count(self) -> int:
        """Static stores per iteration."""
        return sum(1 for ins in self.body if isinstance(ins, StoreInstr))

    @property
    def instructions_per_iteration(self) -> int:
        """All instructions per iteration (ASSOC-ADDR flags not counted)."""
        return len(self.body) + self.ghost_alu

    @property
    def dynamic_instructions(self) -> int:
        """Total dynamic instructions over the whole loop."""
        return (len(self.body) + self.ghost_alu) * self.trip_count

    def live_in_registers(self) -> Set[int]:
        """Registers read before being written within one body iteration.

        A live-in register carries a value across iterations (or from
        kernel entry); any store whose backward slice reaches one is not
        sliceable, because the slice would be loop-carried.
        """
        defined: Set[int] = set()
        live_in: Set[int] = set()
        for ins in self.body:
            if isinstance(ins, AluInstr):
                if ins.src_a not in defined:
                    live_in.add(ins.src_a)
                if ins.src_b not in defined:
                    live_in.add(ins.src_b)
                defined.add(ins.dst)
            elif isinstance(ins, MoviInstr):
                defined.add(ins.dst)
            elif isinstance(ins, LoadInstr):
                defined.add(ins.dst)
            elif isinstance(ins, StoreInstr):
                if ins.src not in defined:
                    live_in.add(ins.src)
        return live_in


class Program:
    """Per-thread program: an ordered list of kernels with site numbering.

    Construction rewrites every :class:`StoreInstr` so that ``site`` holds
    a program-unique id (stores arrive from the builder with ``site=-1``).
    """

    def __init__(self, kernels: Sequence[Kernel], thread_id: int = 0) -> None:
        if not kernels:
            raise ValueError("a program needs at least one kernel")
        check_non_negative("thread_id", thread_id)
        self.thread_id = thread_id
        self.kernels: List[Kernel] = []
        self._sites: List[StoreSite] = []
        #: Per-kernel precompiled dispatch tuples, filled lazily by the
        #: interpreter; keyed by kernel index.  Lives on the program so
        #: repeated runs over the same program skip recompilation.
        self.op_cache: Dict[int, tuple] = {}
        next_site = 0
        for k_idx, kernel in enumerate(kernels):
            body: List[Instruction] = []
            for i_idx, ins in enumerate(kernel.body):
                if isinstance(ins, StoreInstr):
                    ins = dataclasses.replace(ins, site=next_site)
                    self._sites.append(StoreSite(next_site, k_idx, i_idx))
                    next_site += 1
                body.append(ins)
            self.kernels.append(
                Kernel(
                    kernel.name, body, kernel.trip_count, kernel.phase,
                    kernel.ghost_alu,
                )
            )

    # -- site lookups --------------------------------------------------------
    @property
    def store_sites(self) -> List[StoreSite]:
        """All static store sites, in program order."""
        return list(self._sites)

    def site_store(self, site: int) -> StoreInstr:
        """The :class:`StoreInstr` for a site id."""
        loc = self._sites[site]
        ins = self.kernels[loc.kernel_index].body[loc.instr_index]
        assert isinstance(ins, StoreInstr)
        return ins

    def site_kernel(self, site: int) -> Kernel:
        """The kernel containing a site id."""
        return self.kernels[self._sites[site].kernel_index]

    # -- aggregate statistics --------------------------------------------------
    @property
    def dynamic_instructions(self) -> int:
        """Total dynamic instruction count of the program."""
        return sum(k.dynamic_instructions for k in self.kernels)

    @property
    def dynamic_stores(self) -> int:
        """Total dynamic store count of the program."""
        return sum(k.store_count * k.trip_count for k in self.kernels)

    def phases(self) -> List[int]:
        """Sorted list of distinct phase tags."""
        return sorted({k.phase for k in self.kernels})

    def __iter__(self) -> Iterator[Kernel]:
        return iter(self.kernels)

    def __len__(self) -> int:
        return len(self.kernels)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Program(thread={self.thread_id}, kernels={len(self.kernels)}, "
            f"dyn_instrs={self.dynamic_instructions})"
        )
