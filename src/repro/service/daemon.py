"""The campaign scheduler daemon: submissions in, replicated results out.

One :class:`CampaignDaemon` owns the disk cache, the
:class:`~repro.service.store.ReplicatedStore` shard tier, and a Unix
socket listener.  Each client connection gets a handler thread and — per
``submit`` — its own :class:`~repro.experiments.runner.ExperimentRunner`
(injected with the shared store via the runner's ``cache=`` parameter)
plus its own :class:`~repro.service.registry.InFlightRegistry`, so
concurrent submissions dedupe through filesystem leases exactly like
independent processes would.  The accept loop doubles as the shard
heartbeat: every ``heartbeat_s`` the store pings its shards, respawning
and re-replicating dead ones (or tripping the degradation breaker).

Submissions run in two claimed phases — baselines, then dependents — so
a client whose baseline lease went to a peer *waits* for the published
entry instead of re-simulating it; that ordering is what makes the
dedupe proof exact (total simulations == unique canonical keys).

Telemetry frames stream back over the wire: the submitting connection
(``stream``) and any global ``watch`` subscribers receive every frame a
campaign emits, so ``acr-repro monitor --attach`` renders a remote
campaign live.  A client that disappears mid-stream is dropped, never
crashed into — the campaign completes and stores regardless.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.experiments.cache import ResultCache
from repro.experiments.progress import ProgressTracker
from repro.experiments.runner import ExperimentRunner
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry.aggregate import CampaignTelemetry
from repro.resilience.policy import ResiliencePolicy
from repro.service.campaigns import CampaignSpec, campaign_report
from repro.service.protocol import decode_stream, encode_frame
from repro.service.registry import InFlightRegistry
from repro.service.store import ReplicatedStore
from repro.util.atomicio import append_line

__all__ = ["CampaignDaemon", "check_socket_path"]

#: Portable AF_UNIX ``sun_path`` budget (Linux 108, macOS 104, minus NUL).
_MAX_SOCKET_PATH = 100


def check_socket_path(path: Union[str, Path]) -> Path:
    """Validate an AF_UNIX socket path (length is the silent killer:
    overlong paths fail with EINVAL deep inside ``bind``)."""
    path = Path(path)
    if len(os.fsencode(str(path))) > _MAX_SOCKET_PATH:
        raise ValueError(
            f"socket path too long for AF_UNIX ({len(str(path))} chars > "
            f"{_MAX_SOCKET_PATH}): {path} — use a shorter path, e.g. "
            f"under /tmp"
        )
    return path


class _Connection:
    """One client connection: the socket plus its send discipline.

    Sends are serialised under a lock (campaign threads forward frames
    into connections owned by other threads) and failures flip ``alive``
    — a vanished client stops receiving, the campaign keeps running.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.lock = threading.Lock()
        self.alive = True
        self.watching = False

    def send(self, doc: Dict[str, Any]) -> bool:
        if not self.alive:
            return False
        try:
            data = encode_frame(doc)
            with self.lock:
                self.sock.sendall(data)
            return True
        except OSError:
            self.alive = False
            return False


class _ForwardingTelemetry(CampaignTelemetry):
    """Campaign telemetry that also forwards each wire frame dict to the
    service's subscribers (the submitting client + global watchers)."""

    def __init__(self, forward, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._forward = forward

    def on_frame(self, frame, worker: int = -1) -> None:
        super().on_frame(frame, worker=worker)
        try:
            self._forward(frame.to_dict())
        except Exception:
            pass  # advisory: a broken subscriber must not kill a run


class CampaignDaemon:
    """Long-running scheduler over one shared replicated store."""

    def __init__(
        self,
        cache_dir: Union[str, Path],
        socket_path: Union[str, Path],
        shards: int = 4,
        replicas: int = 2,
        jobs: int = 1,
        heartbeat_s: float = 0.5,
        resilience: Optional[ResiliencePolicy] = None,
        wait_timeout_s: float = 600.0,
        echo=None,
    ) -> None:
        self.socket_path = check_socket_path(socket_path)
        self.metrics = MetricsRegistry()
        self.cache = ResultCache(cache_dir, metrics=self.metrics)
        self.store = ReplicatedStore(
            self.cache, shards=shards, replicas=replicas,
            metrics=self.metrics,
        )
        self.jobs = jobs
        self.heartbeat_s = heartbeat_s
        self.resilience = resilience or ResiliencePolicy()
        self.wait_timeout_s = wait_timeout_s
        self.echo = echo or (lambda line: None)
        self._stop = threading.Event()
        self._state_lock = threading.Lock()
        self._connections: List[_Connection] = []
        self._handlers: List[threading.Thread] = []
        self.campaigns_served = 0
        self.campaigns_active = 0
        self.simulations = 0
        self.wire_malformed = 0
        self._listener: Optional[socket.socket] = None

    # ---------------------------------------------------------------- server --
    @property
    def running(self) -> bool:
        return self._listener is not None and not self._stop.is_set()

    def stop(self) -> None:
        """Ask the serve loop to exit (idempotent, thread-safe)."""
        self._stop.set()

    def serve_forever(self) -> None:
        """Bind, listen, heartbeat, dispatch — until :meth:`stop`.

        The accept timeout doubles as the shard heartbeat period, so
        death detection needs no extra thread.
        """
        try:
            self.socket_path.unlink()
        except OSError:
            pass
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(self.socket_path))
        listener.listen(16)
        listener.settimeout(self.heartbeat_s)
        self._listener = listener
        self.echo(
            f"serving on {self.socket_path} "
            f"({self.store.num_shards} shards, R={self.store.replicas}, "
            f"jobs={self.jobs})"
        )
        self._audit("serve", socket=str(self.socket_path))
        last_beat = time.monotonic()
        try:
            while not self._stop.is_set():
                now = time.monotonic()
                if now - last_beat >= self.heartbeat_s:
                    self.store.heartbeat()
                    last_beat = now
                try:
                    sock, _ = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                conn = _Connection(sock)
                with self._state_lock:
                    self._connections.append(conn)
                thread = threading.Thread(
                    target=self._handle, args=(conn,), daemon=True,
                    name="acr-service-conn",
                )
                self._handlers.append(thread)
                thread.start()
        finally:
            self._listener = None
            listener.close()
            try:
                self.socket_path.unlink()
            except OSError:
                pass
            for thread in self._handlers:
                thread.join(timeout=5.0)
            self.store.close()
            self._audit("stopped")
            self.echo("service stopped")

    # -------------------------------------------------------------- handlers --
    def _handle(self, conn: _Connection) -> None:
        """One connection's read loop: decode messages, dispatch ops."""
        registry = InFlightRegistry(self.cache)
        buf = b""
        conn.sock.settimeout(0.5)
        try:
            while conn.alive and not self._stop.is_set():
                try:
                    data = conn.sock.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    break
                buf += data
                messages, buf, malformed = decode_stream(buf)
                if malformed:
                    with self._state_lock:
                        self.wire_malformed += malformed
                for msg in messages:
                    if not self._dispatch(conn, msg, registry):
                        return
        finally:
            registry.release_all()
            conn.alive = False
            with self._state_lock:
                if conn in self._connections:
                    self._connections.remove(conn)
            try:
                conn.sock.close()
            except OSError:
                pass

    def _dispatch(
        self, conn: _Connection, msg: Dict[str, Any],
        registry: InFlightRegistry,
    ) -> bool:
        """Handle one message; returns False to end the connection."""
        op = msg["op"]
        if op == "ping":
            conn.send(self.status())
            return True
        if op == "watch":
            conn.watching = True
            conn.send({"op": "accepted", "watch": True})
            return True
        if op == "shutdown":
            self._audit("shutdown")
            conn.send({"op": "bye"})
            self.stop()
            return False
        if op == "submit":
            self._serve_campaign(conn, msg, registry)
            return True
        conn.send({"op": "error", "message": f"client cannot send {op!r}"})
        return True

    # -------------------------------------------------------------- campaigns --
    def _serve_campaign(
        self, conn: _Connection, msg: Dict[str, Any],
        registry: InFlightRegistry,
    ) -> None:
        try:
            spec = CampaignSpec.from_dict(msg.get("campaign"))
        except ValueError as exc:
            conn.send({"op": "error", "message": f"bad campaign: {exc}"})
            return
        stream = bool(msg.get("stream"))
        with self._state_lock:
            self.campaigns_active += 1
        progress = ProgressTracker()
        telemetry = _ForwardingTelemetry(
            lambda doc: self._forward_frame(conn if stream else None, doc),
            progress=progress,
        )
        try:
            runner = ExperimentRunner(
                num_cores=spec.num_cores,
                region_scale=spec.region_scale,
                reps=spec.reps,
                jobs=self.jobs,
                cache=self.store,
                progress=progress,
                resilience=self.resilience,
                engine=spec.engine,
                telemetry=telemetry,
            )
            runner.supervisor_hooks["on_result"] = (
                lambda task: registry.heartbeat_all()
            )
            pairs = spec.pairs(runner)
            keymap = {
                runner.cache_key(wl, req): (wl, req) for wl, req in pairs
            }
            conn.send({"op": "accepted", "keys": len(keymap)})
            # Baselines first: a dependent must never simulate because
            # its baseline is still leased to a concurrent client.
            for phase_keys in (
                [k for k, (_, r) in keymap.items() if r.is_baseline],
                [k for k, (_, r) in keymap.items() if not r.is_baseline],
            ):
                self._run_phase(runner, registry, keymap, phase_keys)
            report = campaign_report(runner, spec)
            # Settle the leases and the accounting BEFORE the result
            # frame leaves: a client holding its report may immediately
            # ping and must see this campaign's totals.
            registry.release_all()
            self._account(progress)
            conn.send({"op": "result", "report": report})
            self._audit(
                "campaign",
                sha256=report["sha256"],
                keys=len(keymap),
                simulated=progress.simulated,
                disk_hits=progress.disk_hits,
            )
        except Exception as exc:  # a bad campaign must not kill the daemon
            registry.release_all()
            self._account(progress)
            conn.send(
                {"op": "error", "message": f"{type(exc).__name__}: {exc}"}
            )
            self._audit("campaign-error", error=str(exc))

    def _account(self, progress: ProgressTracker) -> None:
        """Fold one finished campaign into the daemon's totals (called
        exactly once per submission, before the client hears back)."""
        with self._state_lock:
            self.campaigns_active -= 1
            self.campaigns_served += 1
            self.simulations += progress.simulated

    def _run_phase(
        self,
        runner: ExperimentRunner,
        registry: InFlightRegistry,
        keymap: Dict[str, Any],
        keys: List[str],
    ) -> None:
        """Claim → simulate mine → publish → wait for theirs (falling
        back to simulating any key whose owner vanished unpublished)."""
        if not keys:
            return
        mine, theirs = registry.claim(keys)
        if mine:
            runner.run_many([keymap[k] for k in mine])
            for key in mine:
                registry.publish(key)
        if theirs:
            missing = registry.wait(
                theirs,
                done=self.store.load_payload_probe,
                timeout_s=self.wait_timeout_s,
            )
            if missing:
                runner.run_many([keymap[k] for k in missing])

    # -------------------------------------------------------------- telemetry --
    def _forward_frame(
        self, submitter: Optional[_Connection], doc: Dict[str, Any]
    ) -> None:
        """Fan one frame dict out to the submitter and every watcher."""
        wire = {"op": "frame", "frame": doc}
        targets: List[_Connection] = []
        with self._state_lock:
            if submitter is not None and submitter.alive:
                targets.append(submitter)
            targets.extend(
                c for c in self._connections
                if c.watching and c.alive and c is not submitter
            )
        for target in targets:
            target.send(wire)

    # ---------------------------------------------------------------- status --
    def status(self) -> Dict[str, Any]:
        """The daemon's health document (the ``ping`` reply)."""
        with self._state_lock:
            campaigns = {
                "served": self.campaigns_served,
                "active": self.campaigns_active,
            }
            simulations = self.simulations
            malformed = self.wire_malformed
        return {
            "op": "status",
            "store": self.store.status(),
            "campaigns": campaigns,
            "simulations": simulations,
            "quarantined": self.cache.quarantined,
            "wire_malformed": malformed,
        }

    def _audit(self, event: str, **fields: Any) -> None:
        """One line in the service audit journal beside the cache
        (same torn-tail-tolerant JSONL contract as every other stream)."""
        doc = {"v": 1, "event": event, "ts_s": time.time()}
        doc.update(fields)
        try:
            append_line(
                self.cache.root / "service.jsonl",
                json.dumps(doc, sort_keys=True),
            )
        except OSError:
            pass  # auditing is advisory
