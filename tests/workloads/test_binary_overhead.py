"""Embedded-slice binary footprint (paper footnote 4).

The paper notes that for `is` the size overhead of embedded slices stays
under 2% of the binary.  Our synthetic kernels have a different
static-size balance, but the same qualitative claim must hold: the slice
table is a small fraction of the program text.
"""

import pytest

from repro.compiler.embed import compile_program
from repro.compiler.policy import ThresholdPolicy
from repro.compiler.slices import SLICE_INSTR_BYTES
from repro.workloads.registry import all_workload_names, get_workload


def static_binary_bytes(program) -> int:
    """Static program text: every instruction (ghost included) at the
    fixed 4-byte encoding."""
    return sum(
        (len(k.body) + k.ghost_alu) * SLICE_INSTR_BYTES
        for k in program.kernels
    )


class TestBinaryOverhead:
    @pytest.mark.parametrize("name", all_workload_names())
    def test_slice_table_small_fraction_of_binary(self, name):
        spec = get_workload(name)
        program = spec.build_programs(1, region_scale=0.25, reps=12)[0]
        cp = compile_program(program, ThresholdPolicy(spec.default_threshold))
        binary = static_binary_bytes(program)
        assert cp.stats.embedded_bytes < 0.25 * binary, (
            name,
            cp.stats.embedded_bytes,
            binary,
        )

    def test_is_overhead_smallest_thanks_to_threshold_five(self):
        """Capping is at threshold 5 (footnote 4) keeps its embedded
        bytes well below what threshold 10 would cost."""
        spec = get_workload("is")
        program = spec.build_programs(1, region_scale=0.25, reps=12)[0]
        at5 = compile_program(program, ThresholdPolicy(5)).stats.embedded_bytes
        at10 = compile_program(program, ThresholdPolicy(10)).stats.embedded_bytes
        assert at5 < at10
