"""Figure 6: execution-time overhead of checkpointing and recovery.

Paper shape: ReCkpt_NE reduces Ckpt_NE's time overhead by up to ~29% (is
best, cg worst at ~2%), ~12% on average; the _E variants sit above their
_NE counterparts and ACR still wins.
"""

from _bench_lib import run_once

from repro.experiments.figures import fig6_time_overhead


def test_fig6(benchmark, runner, emit):
    fig = run_once(benchmark, lambda: fig6_time_overhead(runner))
    emit("fig06_time_overhead", fig.render())
    s = fig.series

    reductions = {
        wl: 1 - v["ReCkpt_NE"] / v["Ckpt_NE"] for wl, v in s.items()
    }
    avg = sum(reductions.values()) / len(reductions)
    # Average ACR reduction in the paper is 11.92%; demand the same order.
    assert 0.05 < avg < 0.30
    # cg is the least responsive benchmark.
    assert reductions["cg"] == min(reductions.values())
    assert reductions["cg"] < 0.06
    # is/dc are the most responsive (paper: is 28.81%).
    top = max(reductions, key=reductions.get)
    assert top in ("is", "dc")
    assert reductions[top] > 0.12

    for wl, v in s.items():
        # Errors add recovery overhead on top of checkpointing overhead.
        assert v["Ckpt_E"] > v["Ckpt_NE"]
        assert v["ReCkpt_E"] > v["ReCkpt_NE"]
        # ACR never loses.
        assert v["ReCkpt_NE"] < v["Ckpt_NE"]
        assert v["ReCkpt_E"] < v["Ckpt_E"]
