"""Tests for repro.arch.cache."""

from hypothesis import given, settings, strategies as st

from repro.arch.cache import SetAssociativeCache
from repro.arch.config import CacheConfig


def small_cache(sets=4, ways=2):
    return SetAssociativeCache(
        CacheConfig("t", sets * ways * 64, ways, 1.0)
    )


class TestBasics:
    def test_miss_then_hit(self):
        c = small_cache()
        assert not c.access(0, False).hit
        assert c.access(0, False).hit
        assert c.hits == 1 and c.misses == 1

    def test_write_sets_dirty(self):
        c = small_cache()
        c.access(0, True)
        assert c.is_dirty(0)

    def test_read_does_not_dirty(self):
        c = small_cache()
        c.access(0, False)
        assert not c.is_dirty(0)

    def test_write_after_read_dirties(self):
        c = small_cache()
        c.access(0, False)
        c.access(0, True)
        assert c.is_dirty(0)

    def test_contains(self):
        c = small_cache()
        c.access(5, False)
        assert c.contains(5)
        assert not c.contains(6)


class TestLru:
    def test_eviction_order(self):
        c = small_cache(sets=1, ways=2)
        c.access(0, False)
        c.access(1, False)
        r = c.access(2, False)  # evicts 0 (LRU)
        assert r.victim_line == 0
        assert not c.contains(0)
        assert c.contains(1) and c.contains(2)

    def test_hit_refreshes_lru(self):
        c = small_cache(sets=1, ways=2)
        c.access(0, False)
        c.access(1, False)
        c.access(0, False)  # 0 becomes MRU
        r = c.access(2, False)
        assert r.victim_line == 1

    def test_dirty_eviction_flagged(self):
        c = small_cache(sets=1, ways=1)
        c.access(0, True)
        r = c.access(1, False)
        assert r.victim_line == 0 and r.victim_dirty
        assert c.dirty_evictions == 1

    def test_sets_independent(self):
        c = small_cache(sets=4, ways=1)
        for line in range(4):
            c.access(line, False)
        assert all(c.contains(line) for line in range(4))


class TestFlush:
    def test_flush_dirty_returns_lines_and_cleans(self):
        c = small_cache()
        c.access(0, True)
        c.access(1, True)
        c.access(2, False)
        flushed = sorted(c.flush_dirty())
        assert flushed == [0, 1]
        assert c.dirty_line_count() == 0
        # lines stay resident (Rebound keeps clean copies)
        assert c.contains(0) and c.contains(1)

    def test_flush_idempotent(self):
        c = small_cache()
        c.access(0, True)
        c.flush_dirty()
        assert c.flush_dirty() == []

    def test_invalidate(self):
        c = small_cache()
        c.access(0, True)
        assert c.invalidate(0) is True
        assert not c.contains(0)
        assert c.invalidate(0) is False


class TestProperties:
    @given(st.lists(st.tuples(st.integers(0, 63), st.booleans()), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_bounded_by_capacity(self, accesses):
        c = small_cache(sets=4, ways=2)
        for line, wr in accesses:
            c.access(line, wr)
        assert len(c.resident_lines()) <= 8
        assert c.hits + c.misses == len(accesses)

    @given(st.lists(st.tuples(st.integers(0, 63), st.booleans()), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_dirty_lines_subset_of_resident(self, accesses):
        c = small_cache(sets=4, ways=2)
        for line, wr in accesses:
            c.access(line, wr)
        resident = set(c.resident_lines())
        dirty = {l for l in resident if c.is_dirty(l)}
        assert dirty <= resident
        assert c.dirty_line_count() == len(dirty)
