"""The in-flight lease registry: concurrent submissions split each key
set into exactly one simulator plus waiters."""

import hashlib

import pytest

from repro.experiments.cache import ResultCache
from repro.service.registry import InFlightRegistry


def _keys(n):
    return [hashlib.sha256(f"k{i}".encode()).hexdigest() for i in range(n)]


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestClaim:
    def test_uncontended_claim_wins_everything(self, cache):
        reg = InFlightRegistry(cache)
        keys = _keys(3)
        mine, theirs = reg.claim(keys)
        assert mine == keys
        assert theirs == []
        assert reg.in_flight == 3

    def test_two_registries_split_disjointly(self, cache):
        a = InFlightRegistry(cache)
        b = InFlightRegistry(cache)
        keys = _keys(4)
        a_mine, a_theirs = a.claim(keys[:3])  # overlap on keys[0:3]
        b_mine, b_theirs = b.claim(keys)
        assert a_mine == keys[:3] and a_theirs == []
        assert b_mine == [keys[3]]
        assert b_theirs == keys[:3]
        # Every key has exactly one owner across the two registries.
        assert set(a_mine) | set(b_mine) == set(keys)
        assert set(a_mine) & set(b_mine) == set()

    def test_reclaim_of_held_key_stays_mine(self, cache):
        reg = InFlightRegistry(cache)
        [key] = _keys(1)
        assert reg.claim([key]) == ([key], [])
        assert reg.claim([key]) == ([key], [])
        assert reg.in_flight == 1

    def test_publish_frees_the_lease(self, cache):
        a = InFlightRegistry(cache)
        b = InFlightRegistry(cache)
        [key] = _keys(1)
        a.claim([key])
        assert b.claim([key]) == ([], [key])
        a.publish(key)
        assert a.in_flight == 0
        assert b.claim([key]) == ([key], [])

    def test_release_all(self, cache):
        a = InFlightRegistry(cache)
        b = InFlightRegistry(cache)
        keys = _keys(3)
        a.claim(keys)
        a.release_all()
        assert a.in_flight == 0
        assert b.claim(keys) == (keys, [])

    def test_lease_path_is_not_the_runner_lock(self, cache):
        reg = InFlightRegistry(cache)
        [key] = _keys(1)
        lease = reg.lease_path(key)
        assert lease.suffix == ".lease"
        assert lease != cache.lock_path(key)


class TestWait:
    def test_returns_immediately_when_done(self, cache):
        reg = InFlightRegistry(cache)
        keys = _keys(2)
        assert reg.wait(keys, done=lambda k: True, timeout_s=5.0) == []

    def test_waits_until_done_flips(self, cache):
        owner = InFlightRegistry(cache, poll_s=0.01)
        waiter = InFlightRegistry(cache, poll_s=0.01)
        [key] = _keys(1)
        owner.claim([key])
        seen = []

        def done(k):
            seen.append(k)
            return len(seen) >= 3  # "publishes" on the third poll

        assert waiter.wait([key], done=done, timeout_s=5.0) == []
        assert len(seen) >= 3

    def test_vanished_lease_without_entry_returns_early(self, cache):
        owner = InFlightRegistry(cache, poll_s=0.01)
        waiter = InFlightRegistry(cache, poll_s=0.01)
        [key] = _keys(1)
        owner.claim([key])
        polls = []

        def done(k):
            # The owner "crashes" (lease released, nothing published)
            # after the first poll; the waiter must hand the key back
            # instead of burning the whole timeout.
            if len(polls) == 1:
                owner.release_all()
            polls.append(k)
            return False

        missing = waiter.wait([key], done=done, timeout_s=30.0)
        assert missing == [key]
        assert len(polls) < 20  # early return, not a 30s spin

    def test_deadline_returns_the_still_missing_keys(self, cache):
        owner = InFlightRegistry(cache, poll_s=0.01)
        waiter = InFlightRegistry(cache, poll_s=0.01)
        keys = _keys(2)
        owner.claim(keys)
        missing = waiter.wait(keys, done=lambda k: False, timeout_s=0.1)
        assert missing == keys

    def test_heartbeat_refreshes_lease_mtimes(self, cache):
        import os

        reg = InFlightRegistry(cache)
        [key] = _keys(1)
        reg.claim([key])
        lease = reg.lease_path(key)
        old = lease.stat().st_mtime - 120.0
        os.utime(lease, (old, old))
        reg.heartbeat_all()
        assert lease.stat().st_mtime > old + 60.0
