"""Per-event energy model at 22 nm.

Dynamic energies are picojoules per event; leakage is picojoules per
nanosecond (i.e. watts × 10⁻³... strictly: 1 pJ/ns = 1 mW).  The ratios —
not the absolute values — carry the reproduction: DRAM ≫ L2 > L1 ≫ ALU is
the technology imbalance that makes recomputation attractive in the first
place (paper §II-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_non_negative

__all__ = ["EnergyModel"]


@dataclass(frozen=True)
class EnergyModel:
    """Energy constants for every countable event in the simulator."""

    #: One ALU/MOVI operation (integer datapath + result bypass).
    alu_op_pj: float = 1.1
    #: Per-instruction fetch share (L1-I read amortised over fetch width).
    ifetch_pj: float = 2.0
    #: L1-D access (read or write).
    l1d_access_pj: float = 10.0
    #: L2 access.
    l2_access_pj: float = 40.0
    #: DRAM traffic, per byte (row activation amortised over a burst).
    dram_pj_per_byte: float = 20.0
    #: One NoC hop for one flit (coordination/coherence messages).
    noc_hop_pj: float = 5.0
    #: AddrMap / operand-buffer access (modelled after an L1-D-class SRAM,
    #: but smaller — the paper models it "after L1-D").
    addrmap_access_pj: float = 4.0
    #: Checkpoint/recovery handler bookkeeping per handled record
    #: (modelled after a cache-controller FSM transition).
    handler_op_pj: float = 1.5
    #: Register-file read/write (arch-state checkpointing).
    regfile_access_pj: float = 0.5
    #: Scratchpad access during scratchpad-mode recomputation (per slice
    #: instruction: one operand read + one result write, small SRAM).
    scratchpad_access_pj: float = 0.8
    #: Core leakage, per core per nanosecond (1 pJ/ns == 1 mW).
    core_leakage_pj_per_ns: float = 120.0
    #: Uncore (caches, NoC, controllers) leakage per core per nanosecond.
    uncore_leakage_pj_per_ns: float = 60.0

    def __post_init__(self) -> None:
        for name in (
            "alu_op_pj",
            "ifetch_pj",
            "l1d_access_pj",
            "l2_access_pj",
            "dram_pj_per_byte",
            "noc_hop_pj",
            "addrmap_access_pj",
            "handler_op_pj",
            "regfile_access_pj",
            "scratchpad_access_pj",
            "core_leakage_pj_per_ns",
            "uncore_leakage_pj_per_ns",
        ):
            check_non_negative(name, getattr(self, name))

    # -- composite helpers -------------------------------------------------
    def dram_transfer_pj(self, num_bytes: int) -> float:
        """Energy of a DRAM transfer of ``num_bytes``."""
        return num_bytes * self.dram_pj_per_byte

    def leakage_pj(self, num_cores: int, duration_ns: float) -> float:
        """Total leakage of ``num_cores`` over ``duration_ns``."""
        per_ns = (self.core_leakage_pj_per_ns + self.uncore_leakage_pj_per_ns)
        return per_ns * num_cores * duration_ns
