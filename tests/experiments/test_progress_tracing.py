"""Tests for tracing-aware progress reporting and ``run_traced``."""

from repro.experiments.progress import ProgressTracker, RunRecord
from repro.experiments.runner import ExperimentRunner
from repro.obs.tracer import RecordingTracer


class TestProgressTracker:
    def test_traced_flag_and_echo_suffix(self):
        lines = []
        tracker = ProgressTracker(echo=lines.append)
        tracker.record("bt", "ReCkpt_E", "sim", 0.1, traced=True)
        tracker.record("bt", "Ckpt_NE", "sim", 0.1)
        assert tracker.traced_runs == 1
        assert lines[0].endswith(" +trace")
        assert not lines[1].endswith(" +trace")

    def test_record_defaults_to_untraced(self):
        rec = RunRecord("bt", "Ckpt_NE", "disk", 0.0)
        assert rec.traced is False

    def test_tracing_accumulators_and_summary(self):
        tracker = ProgressTracker()
        assert "trace:" not in tracker.summary_table()
        tracker.record_tracing(100, 5)
        tracker.record_tracing(50, 0)
        assert tracker.events_captured == 150
        assert tracker.events_dropped == 5
        line = tracker.tracing_line()
        assert line == "trace: 150 events captured / 5 dropped"
        # The summary pads footer labels to one shared column ("trace"
        # aligns with "resilience"), so match on the padded form.
        label, rest = line.split(":", 1)
        assert f"{label:<10}:{rest}" in tracker.summary_table()

    def test_reset_clears_tracing_counters(self):
        tracker = ProgressTracker()
        tracker.record_tracing(10, 1)
        tracker.reset()
        assert tracker.events_captured == 0
        assert tracker.events_dropped == 0


class TestRunTraced:
    def test_traced_run_bypasses_cache(self, tmp_path):
        runner = ExperimentRunner(
            num_cores=2, region_scale=0.1, reps=8,
            cache_dir=tmp_path / "cache",
        )
        request = runner.default_request("is", "ReCkpt_E", num_checkpoints=4)
        tracer = RecordingTracer()
        traced = runner.run_traced("is", request, tracer=tracer)
        assert traced.obs is not None
        assert tracer.captured > 0
        # The traced result must not be stored under the untraced key:
        # a later plain run simulates (or disk-misses) and carries no obs.
        key = runner.cache_key("is", request)
        cached = runner.cache.load(key)
        assert cached is None or cached.obs is None
        plain = runner.run("is", request)
        assert plain.obs is None
        # ... and it is statistically identical apart from the payload.
        doc = traced.to_dict()
        doc.pop("obs")
        plain_doc = plain.to_dict()
        plain_doc.pop("obs")
        assert doc == plain_doc

    def test_traced_run_feeds_progress(self):
        runner = ExperimentRunner(num_cores=2, region_scale=0.1, reps=8)
        request = runner.default_request("is", "ReCkpt_E", num_checkpoints=4)
        tracer = RecordingTracer(capacity=20)
        runner.run_traced("is", request, tracer=tracer)
        assert runner.progress.traced_runs == 1
        assert runner.progress.events_captured == 20
        assert runner.progress.events_dropped == tracer.dropped > 0
