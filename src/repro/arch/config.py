"""Machine configuration (paper Table I).

All latencies are nanoseconds, sizes bytes, bandwidths bytes/second.  The
defaults reproduce Table I of the paper:

    22 nm, 1.09 GHz, 4-issue in-order, 8 outstanding loads/stores
    L1-I 32 KB 4-way 3.66 ns     L1-D 32 KB 8-way 3.66 ns (WB, LRU)
    L2   512 KB 8-way 24.77 ns (WB, LRU)
    Main memory 120 ns, 7.6 GB/s per controller, 1 controller per 4 cores
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List

from repro.isa.instructions import LINE_BYTES
from repro.util.tables import format_table
from repro.util.units import GHZ, KIB, bytes_per_second
from repro.util.validation import (
    check_positive,
    check_power_of_two,
)

__all__ = ["CacheConfig", "MachineConfig", "TABLE1"]


@dataclass(frozen=True)
class CacheConfig:
    """One cache level: capacity, associativity, access latency."""

    name: str
    size_bytes: int
    ways: int
    latency_ns: float
    line_bytes: int = LINE_BYTES

    def __post_init__(self) -> None:
        check_positive("size_bytes", self.size_bytes)
        check_positive("ways", self.ways)
        check_positive("latency_ns", self.latency_ns)
        check_power_of_two("line_bytes", self.line_bytes)
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class MachineConfig:
    """Full simulated-machine configuration.

    Beyond Table I, this carries the ACR structure sizes (AddrMap and
    operand-buffer capacities, modelled after L1-D per the paper's
    evaluation setup) and the coordination/recovery cost knobs the timing
    model uses.
    """

    num_cores: int = 8
    freq_hz: float = 1.09 * GHZ
    issue_width: int = 4
    outstanding_ldst: int = 8
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1-I", 32 * KIB, 4, 3.66)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1-D", 32 * KIB, 8, 3.66)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 512 * KIB, 8, 24.77)
    )
    mem_latency_ns: float = 120.0
    mem_bandwidth_bytes_per_s: float = bytes_per_second(7.6)
    cores_per_controller: int = 4

    #: ACR on-chip structures (access modelled after L1-D).
    addrmap_capacity: int = 8192
    addrmap_access_ns: float = 3.66
    operand_buffer_capacity: int = 16384
    #: Recomputation datapath (paper §II-B).  ``False`` — the ACR default:
    #: Slices execute on the register file *before* the checkpointed
    #: register state is restored (free, but serialises with the log
    #: restore).  ``True`` — a dedicated scratchpad executes Slices, so
    #: recomputation overlaps the log-restore memory transfers at a small
    #: extra energy cost per slice instruction.
    scratchpad_recompute: bool = False

    #: NoC: per-hop latency and barrier base cost.
    noc_hop_ns: float = 2.0
    noc_barrier_base_ns: float = 30.0

    #: Architectural state checkpointed per core (registers + PC + CSRs).
    arch_state_bytes: int = 1024

    #: Memory-level parallelism: how many outstanding misses effectively
    #: overlap (bounded by ``outstanding_ldst``).
    mlp: float = 4.0

    def __post_init__(self) -> None:
        check_positive("num_cores", self.num_cores)
        check_positive("freq_hz", self.freq_hz)
        check_positive("issue_width", self.issue_width)
        check_positive("outstanding_ldst", self.outstanding_ldst)
        check_positive("mem_latency_ns", self.mem_latency_ns)
        check_positive("mem_bandwidth_bytes_per_s", self.mem_bandwidth_bytes_per_s)
        check_positive("cores_per_controller", self.cores_per_controller)
        check_positive("addrmap_capacity", self.addrmap_capacity)
        check_positive("operand_buffer_capacity", self.operand_buffer_capacity)
        check_positive("mlp", self.mlp)
        if self.mlp > self.outstanding_ldst:
            raise ValueError(
                f"mlp ({self.mlp}) cannot exceed outstanding_ldst "
                f"({self.outstanding_ldst})"
            )

    # -- derived quantities ----------------------------------------------------
    @property
    def cycle_ns(self) -> float:
        """One clock cycle in nanoseconds."""
        return 1e9 / self.freq_hz

    @property
    def num_controllers(self) -> int:
        """Number of memory controllers (at least one)."""
        return max(1, self.num_cores // self.cores_per_controller)

    @property
    def line_bytes(self) -> int:
        """Cache line size (uniform across the hierarchy)."""
        return self.l1d.line_bytes

    def with_cores(self, num_cores: int) -> "MachineConfig":
        """A copy scaled to ``num_cores`` (for the scalability study)."""
        return replace(self, num_cores=num_cores)

    def describe(self) -> str:
        """Render the configuration as the paper's Table I."""
        rows: List[List[object]] = [
            ["Technology node", "22nm"],
            [
                "Core",
                f"{self.freq_hz / GHZ:.2f} GHz, {self.issue_width}-issue, "
                f"in-order, {self.outstanding_ldst} outstanding ld/st",
            ],
            [
                "L1-I (LRU)",
                f"{self.l1i.size_bytes // KIB}KB, {self.l1i.ways}-way, "
                f"{self.l1i.latency_ns}ns",
            ],
            [
                "L1-D (LRU, WB)",
                f"{self.l1d.size_bytes // KIB}KB, {self.l1d.ways}-way, "
                f"{self.l1d.latency_ns}ns",
            ],
            [
                "L2 (LRU, WB)",
                f"{self.l2.size_bytes // KIB}KB, {self.l2.ways}-way, "
                f"{self.l2.latency_ns}ns",
            ],
            [
                "Main Memory",
                f"{self.mem_latency_ns:.0f}ns, "
                f"{self.mem_bandwidth_bytes_per_s / 1e9:.1f} GB/s/controller, "
                f"1 contr. per {self.cores_per_controller}-cores",
            ],
            ["Cores", str(self.num_cores)],
        ]
        return format_table(["Component", "Configuration"], rows, title="Table I")


#: The paper's exact Table I machine (8 cores by default; the scalability
#: study scales with :meth:`MachineConfig.with_cores`).
TABLE1 = MachineConfig()
