#!/usr/bin/env python
"""Error-injection study: recovery cost anatomy under rising error rates.

Sweeps 1..5 uniformly distributed errors (paper §V-D2) plus a Poisson
schedule, and breaks each recovery down into the paper's Eq. 3 terms:
o_waste (lost work), o_roll-back (log restore) and o_rcmp (recomputation).

    python examples/error_injection_study.py [benchmark] [--scale S]
"""

import argparse

from repro import (
    ExperimentRunner,
    PoissonErrors,
    SimulationOptions,
    ThresholdPolicy,
    get_workload,
    time_overhead,
)
from repro.util.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="dc")
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    runner = ExperimentRunner(num_cores=8, region_scale=args.scale)
    wl = args.benchmark
    base = runner.baseline(wl)

    rows = []
    for n in (1, 2, 3, 4, 5):
        ck = runner.run_default(wl, "Ckpt_E", error_count=n)
        re = runner.run_default(wl, "ReCkpt_E", error_count=n)
        red = 1 - time_overhead(re, base) / time_overhead(ck, base)
        waste = sum(r.waste_ns for r in re.recoveries)
        rollback = sum(r.rollback_ns for r in re.recoveries)
        rcmp = sum(r.recompute_ns for r in re.recoveries)
        rows.append(
            [
                n,
                round(100 * time_overhead(ck, base), 1),
                round(100 * time_overhead(re, base), 1),
                round(100 * red, 1),
                round(waste / 1e3, 1),
                round(rollback / 1e3, 1),
                round(rcmp / 1e3, 1),
            ]
        )
    print(
        format_table(
            [
                "errors",
                "Ckpt_E ovh %",
                "ReCkpt_E ovh %",
                "red %",
                "waste us",
                "rollback us",
                "recompute us",
            ],
            rows,
            title=f"Recovery anatomy for {wl} (uniform errors)",
        )
    )

    # Poisson arrivals: the same machinery, stochastic schedule.
    sim = runner.simulator(wl)
    run = sim.run(
        SimulationOptions(
            label="ReCkpt_E(poisson)",
            scheme="global",
            acr=True,
            slice_policy=ThresholdPolicy(get_workload(wl).default_threshold),
            baseline=base.baseline_profile(),
            errors=PoissonErrors(expected_count=3.0, seed=7),
        )
    )
    print(
        f"\nPoisson(3) schedule: {run.recovery_count} recoveries, "
        f"time overhead {100 * time_overhead(run, base):.1f}% "
        f"(uniform-3 for comparison: {rows[2][2]}%)"
    )


if __name__ == "__main__":
    main()
