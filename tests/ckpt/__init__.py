"""Test package."""
