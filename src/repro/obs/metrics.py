"""Counters, fixed-bucket histograms and the per-run metrics registry.

The registry is the aggregate side of the observability layer: where
the tracer streams *events*, the registry keeps O(1)-sized summaries —
monotonic counters (log writes taken/skipped, AddrMap traffic) and
fixed-bucket histograms (checkpoint bytes, slice lengths, AddrMap
occupancy, recompute latency).  At every checkpoint the simulator calls
:meth:`MetricsRegistry.snapshot_interval`, recording the counter deltas
of the closing interval, so per-interval behaviour survives into the
aggregate without keeping the event stream.

The whole registry serialises to plain JSON (strict inverse, like the
rest of :mod:`repro.sim.results`): an :class:`ObsReport` rides on
``RunResult.obs`` through ``to_dict``/``from_dict`` and the persistent
result cache — a corrupt blob raises, which cache readers classify as
a miss.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.util.tables import format_table

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "ObsReport",
    "DEFAULT_BUCKETS",
]

#: Fallback histogram bucket upper edges (geometric, wide dynamic range).
_GENERIC_BUCKETS: Tuple[float, ...] = tuple(
    float(4**k) for k in range(0, 12)
)

#: Fixed bucket edges per well-known metric.  Units follow the metric
#: name suffix (``_bytes``, ``_ns``); unlisted names use the generic
#: geometric ladder.
DEFAULT_BUCKETS: Dict[str, Tuple[float, ...]] = {
    "ckpt.logged_bytes": tuple(float(2**k) for k in range(6, 24, 2)),
    "ckpt.flushed_bytes": tuple(float(2**k) for k in range(6, 24, 2)),
    "ckpt.boundary_ns": tuple(float(10**k) for k in range(0, 9)),
    "ckpt.barrier_ns": tuple(float(2**k) for k in range(0, 12)),
    "addrmap.occupancy": tuple(float(2**k) for k in range(0, 16)),
    "recovery.slice_length": (1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0),
    "recovery.slice_recompute_ns": tuple(float(2**k) for k in range(0, 12)),
    "recovery.total_ns": tuple(float(10**k) for k in range(0, 10)),
    # Supervised-execution (harness wall-clock) scales: ~4 ms .. ~2 min.
    "resilience.attempt_seconds": tuple(2.0**k / 256.0 for k in range(0, 15)),
    "resilience.backoff_seconds": tuple(2.0**k / 256.0 for k in range(0, 15)),
    # Fraction of iterations the vector engine replayed from plans.
    "vector.coverage": (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0),
}


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative — counters never go down)."""
        if n < 0:
            raise ValueError(f"counter {self.name}: negative increment {n}")
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A fixed-bucket histogram (upper-edge buckets plus overflow).

    ``counts[i]`` is the number of observations ``<= buckets[i]`` (and
    greater than the previous edge); ``counts[-1]`` is the overflow
    bucket.  ``count``/``total``/``min``/``max`` summarise the stream.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError(
                f"histogram {name}: bucket edges must be strictly "
                f"ascending and non-empty, got {buckets!r}"
            )
        self.name = name
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        v = float(value)
        self.counts[bisect_left(self.buckets, v)] += 1
        self.count += 1
        self.total += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)

    @property
    def mean(self) -> float:
        """Mean of the observed values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """Per-run collection of counters, histograms and interval snapshots."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: Per-interval counter deltas: one dict per closed interval,
        #: ``{"index": k, "<counter>": delta, ...}`` (zero deltas kept
        #: out to stay compact).
        self.intervals: List[Dict[str, int]] = []
        self._marks: Dict[str, int] = {}

    # -- registration --------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram called ``name`` (created on first use).

        Bucket edges come from ``buckets``, else :data:`DEFAULT_BUCKETS`,
        else a generic geometric ladder; they are fixed at creation.
        """
        h = self._histograms.get(name)
        if h is None:
            edges = (
                tuple(buckets)
                if buckets is not None
                else DEFAULT_BUCKETS.get(name, _GENERIC_BUCKETS)
            )
            h = self._histograms[name] = Histogram(name, edges)
        return h

    # -- interval aggregation -------------------------------------------------
    def snapshot_interval(self, index: int) -> Dict[str, int]:
        """Close interval ``index``: record counter deltas since the
        previous snapshot and advance the marks."""
        snap: Dict[str, int] = {"index": index}
        for name, c in sorted(self._counters.items()):
            delta = c.value - self._marks.get(name, 0)
            self._marks[name] = c.value
            if delta:
                snap[name] = delta
        self.intervals.append(snap)
        return snap

    # -- queries --------------------------------------------------------------
    def counters_dict(self) -> Dict[str, int]:
        """Counter name -> value."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def histograms_list(self) -> List[Histogram]:
        """All histograms, name-sorted."""
        return [self._histograms[k] for k in sorted(self._histograms)]

    # -- serialisation ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe mapping (strict inverse: :meth:`from_dict`)."""
        return {
            "counters": self.counters_dict(),
            "histograms": {
                name: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                }
                for name, h in sorted(self._histograms.items())
            },
            "intervals": [dict(snap) for snap in self.intervals],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild from :meth:`to_dict` output.

        Strict: any structural drift raises ``ValueError``/``TypeError``
        so cache readers can classify corrupt payloads as misses.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"MetricsRegistry: expected a mapping, got {type(data)}"
            )
        unknown = set(data) - {"counters", "histograms", "intervals"}
        if unknown:
            raise ValueError(
                f"MetricsRegistry: unknown fields {sorted(unknown)}"
            )
        reg = cls()
        counters = data["counters"]
        if not isinstance(counters, dict):
            raise ValueError("MetricsRegistry: counters must be a mapping")
        for name, value in counters.items():
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(
                    f"MetricsRegistry: counter {name!r} value {value!r} "
                    f"is not an int"
                )
            reg.counter(name).value = value
            reg._marks[name] = value
        histograms = data["histograms"]
        if not isinstance(histograms, dict):
            raise ValueError("MetricsRegistry: histograms must be a mapping")
        for name, doc in histograms.items():
            if not isinstance(doc, dict) or set(doc) != {
                "buckets", "counts", "count", "total", "min", "max",
            }:
                raise ValueError(
                    f"MetricsRegistry: malformed histogram {name!r}"
                )
            h = reg.histogram(name, doc["buckets"])
            counts = doc["counts"]
            if (
                not isinstance(counts, list)
                or len(counts) != len(h.buckets) + 1
                or not all(isinstance(n, int) and n >= 0 for n in counts)
            ):
                raise ValueError(
                    f"MetricsRegistry: histogram {name!r} counts do not "
                    f"match its buckets"
                )
            h.counts = list(counts)
            h.count = int(doc["count"])
            h.total = float(doc["total"])
            h.min = None if doc["min"] is None else float(doc["min"])
            h.max = None if doc["max"] is None else float(doc["max"])
            if h.count != sum(h.counts):
                raise ValueError(
                    f"MetricsRegistry: histogram {name!r} count "
                    f"{h.count} != sum of bucket counts"
                )
        intervals = data["intervals"]
        if not isinstance(intervals, list):
            raise ValueError("MetricsRegistry: intervals must be a list")
        for snap in intervals:
            if not isinstance(snap, dict) or "index" not in snap:
                raise ValueError("MetricsRegistry: malformed interval snapshot")
            reg.intervals.append(dict(snap))
        return reg

    # -- reports ---------------------------------------------------------------
    def summary_table(self) -> str:
        """Counter + histogram summary rendered via the shared formatter."""
        parts: List[str] = []
        counters = self.counters_dict()
        if counters:
            parts.append(
                format_table(
                    ["counter", "value"],
                    [[k, v] for k, v in counters.items()],
                    title="counters",
                )
            )
        hists = self.histograms_list()
        if hists:
            parts.append(
                format_table(
                    ["histogram", "n", "mean", "min", "max"],
                    [
                        [
                            h.name,
                            h.count,
                            round(h.mean, 2),
                            0.0 if h.min is None else h.min,
                            0.0 if h.max is None else h.max,
                        ]
                        for h in hists
                    ],
                    title="histograms",
                )
            )
        if self.intervals:
            parts.append(f"interval snapshots: {len(self.intervals)}")
        return "\n\n".join(parts) if parts else "no metrics recorded"


@dataclass
class ObsReport:
    """The observability payload attached to ``RunResult.obs``.

    Carries the metrics registry plus the tracer's capture accounting
    (the raw event stream itself stays with the tracer — it is
    unbounded and never enters the result cache).
    """

    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    events_captured: int = 0
    events_dropped: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe mapping (strict inverse: :meth:`from_dict`)."""
        return {
            "metrics": self.metrics.to_dict(),
            "events_captured": self.events_captured,
            "events_dropped": self.events_dropped,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ObsReport":
        """Rebuild from :meth:`to_dict` output (strict — corrupt blobs
        raise, so cache readers degrade to a miss, never a crash)."""
        if not isinstance(data, dict):
            raise ValueError(f"ObsReport: expected a mapping, got {type(data)}")
        unknown = set(data) - {"metrics", "events_captured", "events_dropped"}
        if unknown:
            raise ValueError(f"ObsReport: unknown fields {sorted(unknown)}")
        try:
            captured = data["events_captured"]
            dropped = data["events_dropped"]
            metrics_raw = data["metrics"]
        except KeyError as exc:
            raise ValueError(f"ObsReport: missing field {exc}")
        for label, n in (("events_captured", captured),
                         ("events_dropped", dropped)):
            if not isinstance(n, int) or isinstance(n, bool) or n < 0:
                raise ValueError(f"ObsReport: {label} must be a non-negative "
                                 f"int, got {n!r}")
        return cls(
            metrics=MetricsRegistry.from_dict(metrics_raw),
            events_captured=captured,
            events_dropped=dropped,
        )

    def summary_table(self) -> str:
        """Metrics summary plus the capture line."""
        table = self.metrics.summary_table()
        return (
            f"{table}\n\nevents: {self.events_captured} captured / "
            f"{self.events_dropped} dropped"
        )
