"""The experiment runner: shared, memoised simulation runs.

Every figure/table generator needs the same small set of runs (e.g. the
Fig. 6/7/8 trio shares the NoCkpt/Ckpt/ReCkpt runs per benchmark); the
runner builds each workload's programs once and caches results keyed by
the full configuration request, so regenerating all paper artifacts costs
each distinct simulation exactly once per process.

Scale knobs: ``region_scale``/``reps`` shrink the workloads uniformly —
overheads and reductions are ratios, so they are stable across scales
(tests pin this).  The benchmark harness uses a moderate default scale to
keep a full paper regeneration to minutes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.arch.config import MachineConfig
from repro.experiments.configs import ConfigRequest, make_options
from repro.isa.program import Program
from repro.sim.results import RunResult, energy_overhead, time_overhead
from repro.sim.simulator import Simulator
from repro.util.validation import check_positive
from repro.workloads.registry import all_workload_names, get_workload

__all__ = ["ExperimentRunner"]


class ExperimentRunner:
    """Runs (workload, configuration) pairs with memoisation."""

    def __init__(
        self,
        num_cores: int = 8,
        region_scale: float = 1.0,
        reps: Optional[int] = None,
        machine: Optional[MachineConfig] = None,
    ) -> None:
        check_positive("num_cores", num_cores)
        check_positive("region_scale", region_scale)
        self.num_cores = num_cores
        self.region_scale = region_scale
        self.reps = reps
        self.machine = machine or MachineConfig(num_cores=num_cores)
        if self.machine.num_cores != num_cores:
            raise ValueError("machine config core count mismatch")
        self._programs: Dict[str, List[Program]] = {}
        self._simulators: Dict[str, Simulator] = {}
        self._results: Dict[Tuple[str, ConfigRequest], RunResult] = {}

    # -- infrastructure ------------------------------------------------------
    def simulator(self, workload: str) -> Simulator:
        """The (cached) simulator for a workload."""
        if workload not in self._simulators:
            spec = get_workload(workload)
            programs = spec.build_programs(
                self.num_cores,
                region_scale=self.region_scale,
                reps=self.reps,
            )
            self._programs[workload] = programs
            self._simulators[workload] = Simulator(programs, self.machine)
        return self._simulators[workload]

    def default_threshold(self, workload: str) -> int:
        """The paper's per-benchmark slice threshold (10; 5 for ``is``)."""
        return get_workload(workload).default_threshold

    # -- runs ---------------------------------------------------------------
    def run(self, workload: str, request: ConfigRequest) -> RunResult:
        """Run (or fetch) one configuration of one workload."""
        key = (workload, request)
        if key in self._results:
            return self._results[key]
        sim = self.simulator(workload)
        baseline = None
        if not request.is_baseline:
            baseline = self.baseline(workload).baseline_profile()
        options = make_options(request, baseline)
        result = sim.run(options)
        self._results[key] = result
        return result

    def baseline(self, workload: str) -> RunResult:
        """The NoCkpt run of a workload."""
        return self.run(workload, ConfigRequest("NoCkpt"))

    def run_default(
        self,
        workload: str,
        config: str,
        num_checkpoints: int = 25,
        error_count: int = 1,
        threshold: Optional[int] = None,
    ) -> RunResult:
        """Run a named configuration with the benchmark's default threshold."""
        return self.run(
            workload,
            ConfigRequest(
                config,
                num_checkpoints=num_checkpoints,
                error_count=error_count,
                threshold=(
                    threshold
                    if threshold is not None
                    else self.default_threshold(workload)
                ),
            ),
        )

    # -- derived metrics ------------------------------------------------------
    def time_overhead(self, workload: str, request: ConfigRequest) -> float:
        """Fractional time overhead of a configuration w.r.t. NoCkpt."""
        return time_overhead(self.run(workload, request), self.baseline(workload))

    def energy_overhead(self, workload: str, request: ConfigRequest) -> float:
        """Fractional energy overhead of a configuration w.r.t. NoCkpt."""
        return energy_overhead(self.run(workload, request), self.baseline(workload))

    def workloads(self) -> List[str]:
        """All benchmark names."""
        return all_workload_names()
