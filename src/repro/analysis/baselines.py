"""What-if checkpointing baselines computed over a finished run.

Both models consume a run's exact per-interval statistics, so they cost
nothing to evaluate and compose with every configuration:

* :func:`full_snapshot_costs` — the traditional non-incremental scheme:
  every checkpoint copies the entire touched memory image.  The paper
  uses log-based incremental checkpointing precisely because this is
  "a relatively lower-overhead baseline ... not to favor ACR"; this model
  quantifies the gap.
* :func:`hierarchical_costs` — in-memory checkpointing as the first level
  of a hierarchical framework (paper §II-A): every K-th checkpoint is
  additionally drained to secondary storage.  ACR's smaller checkpoints
  shrink the drained volume proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.results import RunResult
from repro.util.validation import check_positive

__all__ = [
    "FullSnapshotCosts",
    "HierarchicalConfig",
    "HierarchicalCosts",
    "full_snapshot_costs",
    "hierarchical_costs",
]


@dataclass(frozen=True)
class FullSnapshotCosts:
    """Traditional full-snapshot checkpointing, costed post-hoc."""

    total_bytes: int
    max_bytes: int
    write_time_ns: float
    #: How many times more data than the incremental log this would move.
    inflation: float


def full_snapshot_costs(
    run: RunResult, aggregate_bandwidth_bytes_per_s: float = 15.2e9
) -> FullSnapshotCosts:
    """Cost of full snapshots at this run's checkpoint times.

    Each snapshot copies the whole written memory footprint at its
    boundary (``IntervalStats.footprint_bytes``); the write time assumes
    the machine's aggregate memory bandwidth.
    """
    check_positive(
        "aggregate_bandwidth_bytes_per_s", aggregate_bandwidth_bytes_per_s
    )
    if not run.intervals:
        return FullSnapshotCosts(0, 0, 0.0, 0.0)
    sizes = [iv.footprint_bytes for iv in run.intervals]
    total = sum(sizes)
    incremental = run.total_checkpoint_bytes
    return FullSnapshotCosts(
        total_bytes=total,
        max_bytes=max(sizes),
        write_time_ns=total / aggregate_bandwidth_bytes_per_s * 1e9,
        inflation=(total / incremental) if incremental else float("inf"),
    )


@dataclass(frozen=True)
class HierarchicalConfig:
    """Second-level (secondary-storage) checkpointing parameters."""

    every_k: int = 5
    bandwidth_bytes_per_s: float = 2.0e9
    latency_ns: float = 10_000.0

    def __post_init__(self) -> None:
        check_positive("every_k", self.every_k)
        check_positive("bandwidth_bytes_per_s", self.bandwidth_bytes_per_s)
        check_positive("latency_ns", self.latency_ns)


@dataclass(frozen=True)
class HierarchicalCosts:
    """Added cost of draining every K-th checkpoint to storage."""

    drained_checkpoints: int
    drained_bytes: int
    drain_time_ns: float


def hierarchical_costs(
    run: RunResult, config: HierarchicalConfig | None = None
) -> HierarchicalCosts:
    """Second-level drain volume/time for this run.

    The drained payload of level-2 checkpoint ``j`` is the union of the
    interval logs since the previous drain — conservatively approximated
    by their sum (an upper bound; overlapping addresses would dedupe).
    ACR's omissions carry through: omitted values are recomputable from
    the (tiny, on-chip-backed) AddrMap state, so they are not drained
    either.
    """
    config = config or HierarchicalConfig()
    drained_bytes = 0
    drained = 0
    pending = 0
    for iv in run.intervals:
        pending += iv.logged_bytes
        if (iv.index + 1) % config.every_k == 0:
            drained_bytes += pending
            drained += 1
            pending = 0
    drain_time = (
        drained * config.latency_ns
        + drained_bytes / config.bandwidth_bytes_per_s * 1e9
    )
    return HierarchicalCosts(
        drained_checkpoints=drained,
        drained_bytes=drained_bytes,
        drain_time_ns=drain_time,
    )
