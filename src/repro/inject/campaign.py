"""Monte Carlo injection campaigns: build, aggregate, report.

A campaign is a sweep over seeds × workloads × injection targets, run
once per checkpointing configuration (BER baseline and ACR).  Trials are
plain :class:`~repro.inject.harness.TrialSpec` values, so campaigns fan
out through :meth:`repro.experiments.runner.ExperimentRunner.run_trials`
— memoised, persistently cached per trial, parallelisable — and the
report aggregates whatever that returns.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.inject.harness import (
    CONFIGS,
    OUTCOMES,
    TARGET_KINDS,
    TrialResult,
    TrialSpec,
)
from repro.util.tables import format_table
from repro.util.validation import check_positive

__all__ = ["CampaignReport", "build_trials", "run_campaign"]


def build_trials(
    workloads: Sequence[str],
    trials: int,
    seed: int = 0,
    configs: Sequence[str] = CONFIGS,
    targets: Sequence[str] = TARGET_KINDS,
    num_cores: int = 2,
    steps_per_interval: int = 4,
    iters_per_step: int = 8,
    region_scale: float = 0.05,
    reps: Optional[int] = 4,
    threshold: Optional[int] = None,
    detection_latency_fraction: float = 0.5,
    defect: Optional[str] = None,
) -> List[TrialSpec]:
    """``trials`` specs *per configuration*, rotating workloads/targets.

    Trial ``i`` of a configuration draws workload ``i mod W`` and target
    ``(i // W) mod T`` with seed ``seed + i``.  The two indices are
    decoupled — a shared ``i mod ·`` rotation would only ever visit
    pairs congruent mod ``gcd(W, T)`` (with the default four workloads
    and four targets: 4 of the 16 pairs) — so every (workload, target)
    pair is covered once ``trials >= W * T``.  The memory image uses the
    campaign-level ``seed`` for every trial: initial memory contents are
    part of the *workload recipe*, letting all trials of one (workload,
    config) share a single golden pass and its boundary snapshots, while
    the per-trial RNG (seeded ``seed + i``) randomises everything else
    (injection step, victim address/register/bit).
    """
    check_positive("trials", trials)
    if not workloads:
        raise ValueError("build_trials needs at least one workload")
    if not targets:
        raise ValueError("build_trials needs at least one target")
    specs: List[TrialSpec] = []
    for config in configs:
        for i in range(trials):
            specs.append(TrialSpec(
                workload=workloads[i % len(workloads)],
                config=config,
                seed=seed + i,
                target=targets[(i // len(workloads)) % len(targets)],
                num_cores=num_cores,
                steps_per_interval=steps_per_interval,
                iters_per_step=iters_per_step,
                region_scale=region_scale,
                reps=reps,
                threshold=threshold,
                memory_seed=seed,
                detection_latency_fraction=detection_latency_fraction,
                defect=defect,
            ))
    return specs


@dataclass
class _ConfigTally:
    """Outcome counts for one configuration row."""

    trials: int = 0
    detected: int = 0
    recovered_exact: int = 0
    diverged: int = 0
    unrecoverable: int = 0
    restored_records: int = 0
    recomputed_values: int = 0
    ecc_lookup_hits: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(vars(self))


@dataclass
class CampaignReport:
    """Aggregated campaign outcome: per-configuration tallies + samples."""

    results: List[TrialResult]
    tallies: Dict[str, _ConfigTally] = field(init=False)
    #: Attempt histories of the supervised fan-out that produced the
    #: results (:class:`~repro.resilience.report.FailureReport`, or None
    #: when the campaign ran without one).  Deliberately **excluded**
    #: from :meth:`to_json_dict`: the JSON artifact describes *what was
    #: computed* (bit-identical across disturbed and undisturbed runs),
    #: never *how bumpy the computing was*.
    failure_report: Optional[Any] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        self.tallies = {}
        for result in self.results:
            tally = self.tallies.setdefault(
                result.spec.config, _ConfigTally()
            )
            tally.trials += 1
            # Every injected fault reaches the scheduled detection point
            # (or an earlier ECC lookup hit); the campaign treats both as
            # detected — silent corruption would show up as a divergence.
            tally.detected += 1
            if result.outcome == "recovered-exact":
                tally.recovered_exact += 1
            elif result.outcome == "diverged":
                tally.diverged += 1
            else:
                tally.unrecoverable += 1
            tally.restored_records += result.restored_records
            tally.recomputed_values += result.recomputed_values
            tally.ecc_lookup_hits += result.ecc_lookup_hits

    # -- verdicts ------------------------------------------------------------
    @property
    def diverged(self) -> int:
        return sum(t.diverged for t in self.tallies.values())

    @property
    def unrecoverable(self) -> int:
        return sum(t.unrecoverable for t in self.tallies.values())

    @property
    def ok(self) -> bool:
        """True iff every trial recovered bit-exactly."""
        return self.diverged == 0 and self.unrecoverable == 0

    def divergent_trials(self) -> List[TrialResult]:
        """Trials that failed verification, with full provenance."""
        return [r for r in self.results if r.outcome == "diverged"]

    # -- rendering -----------------------------------------------------------
    def summary_table(self) -> str:
        rows = []
        for config in sorted(self.tallies):
            t = self.tallies[config]
            rows.append([
                config, t.trials, t.detected, t.recovered_exact,
                t.diverged, t.unrecoverable,
                t.restored_records, t.recomputed_values,
            ])
        return format_table(
            ["config", "trials", "detected", "recovered-exact", "diverged",
             "unrecoverable", "restored", "recomputed"],
            rows,
            title="fault-injection campaign",
        )

    def verdict_line(self) -> str:
        if self.ok:
            return (
                f"all {len(self.results)} trials recovered bit-exactly"
            )
        return (
            f"FAILED: {self.diverged} diverged, "
            f"{self.unrecoverable} unrecoverable "
            f"of {len(self.results)} trials"
        )

    def to_json_dict(self) -> Dict[str, Any]:
        """Machine-readable report (the ``--json`` artifact)."""
        by_outcome: Dict[str, int] = {o: 0 for o in OUTCOMES}
        for result in self.results:
            # An outcome outside OUTCOMES (a newer producer's vocabulary)
            # gets its own key rather than crashing the report writer.
            by_outcome[result.outcome] = by_outcome.get(result.outcome, 0) + 1
        return {
            "ok": self.ok,
            "trials": len(self.results),
            "outcomes": by_outcome,
            "configs": {
                name: tally.to_dict()
                for name, tally in sorted(self.tallies.items())
            },
            "divergent": [r.to_dict() for r in self.divergent_trials()],
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def run_campaign(runner, specs: Sequence[TrialSpec]) -> CampaignReport:
    """Resolve ``specs`` through an :class:`ExperimentRunner` (duck-typed
    to avoid an import cycle) and aggregate the report."""
    report = CampaignReport(list(runner.run_trials(specs)))
    report.failure_report = getattr(runner, "last_failure_report", None)
    return report
