"""Phase profiler: accumulation, ambient activation, attribution."""

from repro.obs.telemetry import profile
from repro.obs.telemetry.profile import PHASES, PhaseProfiler


class TestPhaseProfiler:
    def test_add_accumulates_seconds_and_counts(self):
        prof = PhaseProfiler()
        prof.add("simulate", 1.0)
        prof.add("simulate", 0.5)
        prof.add("compile", 0.25, n=3)
        assert prof.seconds == {"simulate": 1.5, "compile": 0.25}
        assert prof.counts == {"simulate": 2, "compile": 3}
        assert prof.total_seconds == 1.75

    def test_merge_folds_another_profilers_totals(self):
        prof = PhaseProfiler()
        prof.add("simulate", 1.0)
        prof.merge({"simulate": 2.0, "cache-io": 0.5},
                   {"simulate": 4, "cache-io": 1})
        assert prof.seconds == {"simulate": 3.0, "cache-io": 0.5}
        assert prof.counts == {"simulate": 5, "cache-io": 1}

    def test_merge_without_counts(self):
        prof = PhaseProfiler()
        prof.merge({"accounting": 0.1})
        assert prof.counts == {}
        assert prof.seconds == {"accounting": 0.1}

    def test_phase_context_times_the_body(self):
        prof = PhaseProfiler()
        with prof.phase("plan-build"):
            pass
        assert prof.counts == {"plan-build": 1}
        assert prof.seconds["plan-build"] >= 0.0

    def test_phase_records_even_when_body_raises(self):
        prof = PhaseProfiler()
        try:
            with prof.phase("simulate"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert prof.counts == {"simulate": 1}

    def test_attribution_table_orders_largest_first(self):
        prof = PhaseProfiler()
        prof.add("compile", 0.1)
        prof.add("simulate", 0.9)
        table = prof.attribution_table()
        assert table.index("simulate") < table.index("compile")
        assert "TOTAL" in table
        assert "90.0%" in table

    def test_attribution_table_empty_is_renderable(self):
        table = PhaseProfiler().attribution_table()
        assert "TOTAL" in table
        assert "n/a" in table


class TestAmbientProfile:
    def test_inactive_phase_is_free(self):
        assert profile.active() is None
        with profile.phase("simulate"):
            pass  # no profiler installed: nothing recorded, no error
        profile.count("simulate")

    def test_activate_installs_and_restores(self):
        prof = PhaseProfiler()
        with profile.activate(prof):
            assert profile.active() is prof
            with profile.phase("cache-io"):
                pass
            profile.count("cache-io", 2)
        assert profile.active() is None
        assert prof.counts == {"cache-io": 3}

    def test_activation_nests_inner_shadows_outer(self):
        outer, inner = PhaseProfiler(), PhaseProfiler()
        with profile.activate(outer):
            with profile.activate(inner):
                with profile.phase("simulate"):
                    pass
            with profile.phase("accounting"):
                pass
        assert inner.counts == {"simulate": 1}
        assert outer.counts == {"accounting": 1}

    def test_phase_vocabulary_is_the_documented_five(self):
        assert PHASES == (
            "compile", "plan-build", "simulate", "accounting", "cache-io"
        )
