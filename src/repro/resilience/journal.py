"""Write-ahead completion journal: the harness's checkpoint log.

One JSONL file beside the result cache records every task the engine
*finished* (simulated, stored, and memoised) — key, kind, label,
attempt count, seconds.  On resume, already-journaled tasks are counted
and served from the cache instead of re-executing, so an interrupted
figure regeneration or injection campaign picks up exactly where it
stopped and its final report is bit-identical to an undisturbed run
(the journal never feeds result *content*, only completion facts).

Durability model (mirrors :mod:`repro.experiments.cache`'s reader-side
tolerance):

* appends are single ``write()`` calls of one ``\\n``-terminated line on
  an ``O_APPEND`` descriptor — concurrent writers interleave whole
  records, and a crash can tear at most the final line;
* a torn/undecodable **final** line is silently ignored (the record's
  result is re-derivable from the cache);
* an undecodable line elsewhere is skipped with a warning;
* a schema-version mismatch anywhere discards the whole journal with a
  warning — resume then degrades to a cold start, never a crash.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.util.atomicio import append_line, tail_is_torn

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "JournalRecord",
    "CompletionJournal",
    "tail_is_torn",  # canonical home: repro.util.atomicio (re-exported)
]

#: Bump when the record layout changes; old journals are then ignored
#: (with a warning) rather than misread.
JOURNAL_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class JournalRecord:
    """One completed task: identity plus how much it cost to finish."""

    #: Content-addressed cache key of the task (the resume identity).
    key: str
    #: Payload kind (``run`` or ``inject-trial`` — the cache's ``kind``).
    kind: str
    #: Human-readable task name, e.g. ``bt/ReCkpt_E`` or ``bt/inject:ACR``.
    label: str
    #: Executions the task consumed (1 on a clean first try).
    attempts: int
    #: Wall seconds of the successful attempt.
    seconds: float

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("journal record needs a non-empty key")
        if self.attempts < 1:
            raise ValueError(
                f"journal record attempts must be >= 1, got {self.attempts}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe mapping, version-stamped (strict inverse:
        :meth:`from_dict`)."""
        doc: Dict[str, Any] = {"v": JOURNAL_SCHEMA_VERSION}
        for f in fields(self):
            doc[f.name] = getattr(self, f.name)
        return doc

    @classmethod
    def from_dict(cls, doc: Any) -> "JournalRecord":
        """Decode one record; raises ``ValueError`` on any drift except
        the version stamp (checked by the caller, which owns the
        whole-journal mismatch policy)."""
        if not isinstance(doc, dict):
            raise ValueError("journal record is not an object")
        expected = {f.name for f in fields(cls)} | {"v"}
        if set(doc) != expected:
            raise ValueError(
                f"journal record fields {sorted(doc)} != {sorted(expected)}"
            )
        if not isinstance(doc["key"], str) or not isinstance(doc["kind"], str):
            raise ValueError("journal record key/kind must be strings")
        if not isinstance(doc["label"], str):
            raise ValueError("journal record label must be a string")
        attempts = doc["attempts"]
        if isinstance(attempts, bool) or not isinstance(attempts, int):
            raise ValueError("journal record attempts must be an int")
        seconds = doc["seconds"]
        if isinstance(seconds, bool) or not isinstance(seconds, (int, float)):
            raise ValueError("journal record seconds must be a number")
        return cls(
            key=doc["key"],
            kind=doc["kind"],
            label=doc["label"],
            attempts=attempts,
            seconds=float(seconds),
        )


class CompletionJournal:
    """Append-only JSONL journal of completed tasks.

    Reads are cached: :meth:`load` re-parses the file only when its
    (mtime, size) stamp changed since the cached parse — so the
    per-completion ``key in journal`` probes of a long campaign stay
    O(1) instead of re-reading an ever-growing file.  Local appends
    invalidate the cache directly; concurrent writers are caught by the
    stamp check.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._cache: Optional[Dict[str, JournalRecord]] = None
        self._cache_stamp: Optional[Tuple[int, int]] = None
        #: Full-file parses performed (the caching contract's test hook).
        self._parses = 0

    # ------------------------------------------------------------------ write --
    def append(self, record: JournalRecord) -> None:
        """Durably append one completion record (atomic at line level:
        a single ``O_APPEND`` write of one terminated line).

        A torn tail left by a crash mid-append is repaired first — the
        new record starts on a fresh line, so the tear costs exactly the
        one half-written record, never the one after it too.
        """
        append_line(self.path, json.dumps(record.to_dict(), sort_keys=True))
        self._cache = None
        self._cache_stamp = None

    # ------------------------------------------------------------------- read --
    def _stamp(self) -> Optional[Tuple[int, int]]:
        """(mtime_ns, size) of the journal file; ``None`` when absent."""
        try:
            st = self.path.stat()
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def load(self) -> Dict[str, JournalRecord]:
        """Every journaled completion, keyed by cache key (last record
        wins for a re-journaled key).

        Tolerant by construction: no file ⇒ empty; torn final line ⇒
        ignored; corrupt interior line ⇒ skipped with a warning; any
        record from a different schema version ⇒ the whole journal is
        discarded with a warning (resume degrades to a cold start).
        Returns a fresh dict each call (the cache is never aliased out).
        """
        stamp = self._stamp()
        if (
            self._cache is not None
            and stamp is not None
            and stamp == self._cache_stamp
        ):
            return dict(self._cache)
        records = self._parse()
        # Cache only a stable parse: an unchanged stamp across the read
        # means no concurrent writer landed mid-parse.
        if stamp is not None and self._stamp() == stamp:
            self._cache = records
            self._cache_stamp = stamp
        else:
            self._cache = None
            self._cache_stamp = None
        return dict(records)

    def _parse(self) -> Dict[str, JournalRecord]:
        """One full-file parse (see :meth:`load` for the tolerances)."""
        self._parses += 1
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return {}
        # Every committed record ends with a newline, so the final
        # ``split`` slot is "" on a clean journal and a torn half-record
        # after a crash mid-append; either way it is not a record.  The
        # torn task simply re-runs (or cache-hits) on resume.
        body = raw.split("\n")[:-1]
        records: Dict[str, JournalRecord] = {}
        for lineno, line in enumerate(body, start=1):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
                if not isinstance(doc, dict):
                    raise ValueError("journal line is not an object")
                version = doc.get("v")
            except ValueError:
                warnings.warn(
                    f"{self.path}:{lineno}: undecodable journal record "
                    f"skipped",
                    stacklevel=2,
                )
                continue
            if version != JOURNAL_SCHEMA_VERSION:
                warnings.warn(
                    f"{self.path}: journal schema version {version!r} != "
                    f"{JOURNAL_SCHEMA_VERSION}; ignoring the journal "
                    f"(resume starts cold)",
                    stacklevel=2,
                )
                return {}
            try:
                record = JournalRecord.from_dict(doc)
            except ValueError as exc:
                warnings.warn(
                    f"{self.path}:{lineno}: bad journal record skipped "
                    f"({exc})",
                    stacklevel=2,
                )
                continue
            records[record.key] = record
        return records

    def __len__(self) -> int:
        return len(self.load())

    def __contains__(self, key: str) -> bool:
        return key in self.load()
