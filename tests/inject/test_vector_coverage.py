"""Certificates strictly raise vector coverage — without changing results.

The acceptance contract for the static certifier (ACR009–ACR012): on
taint-carrying trials the vector engine replays strictly more
iterations with certificates on than off (the PR 6 baseline), every
remaining fallback carries a known rule id, and the trial outcome is
bit-identical either way — the certificate is a pure pre-filter, never
a semantic knob.
"""

from __future__ import annotations

import pytest

from repro.inject.harness import TrialSpec, run_trial
from repro.obs.metrics import MetricsRegistry
from repro.sim.vector.interp import VectorInterpreter
from repro.verify import RULES

# Reasons the runtime may legitimately report: a certificate-denial
# rule id, or the observed-loads marker when a load observer forces the
# classic loop.  Anything else is a certifier soundness gap.
KNOWN_REASONS = frozenset(RULES) | {"observed-loads"}


def _run(workload: str, use_certs: bool, monkeypatch):
    monkeypatch.setattr(VectorInterpreter, "use_certificates", use_certs)
    metrics = MetricsRegistry()
    spec = TrialSpec(workload=workload, config="ACR", target="arch", seed=1)
    result = run_trial(spec, metrics=metrics, engine="vector")
    counters = metrics.counters_dict()
    reasons = {
        name.removeprefix("vector.fallback."): count
        for name, count in counters.items()
        if name.startswith("vector.fallback.") and count
    }
    return (
        result.to_dict(),
        counters.get("vector.replayed_iterations", 0),
        counters.get("vector.fallback_iterations", 0),
        reasons,
    )


class TestCertificateCoverage:
    # An ``arch`` injection taints a live register, which without a
    # renewal certificate forces the faulty pass off the replay path
    # for the rest of the tainted kernel (ACR011).
    @pytest.mark.parametrize("workload", ["bt", "dc", "ft"])
    def test_coverage_strictly_increases(self, workload, monkeypatch):
        doc_off, replayed_off, fallback_off, _ = _run(
            workload, False, monkeypatch
        )
        doc_on, replayed_on, fallback_on, _ = _run(workload, True, monkeypatch)
        assert doc_on == doc_off  # bit-identical trial outcome
        assert fallback_off > 0  # the taint actually bites certs-off
        assert replayed_on > replayed_off
        assert fallback_on < fallback_off

    @pytest.mark.parametrize("use_certs", [False, True])
    def test_every_fallback_has_a_known_reason(self, use_certs, monkeypatch):
        _, replayed, fallback, reasons = _run("bt", use_certs, monkeypatch)
        assert replayed > 0
        assert sum(reasons.values()) == fallback
        assert set(reasons) <= KNOWN_REASONS


class TestRunResultCoverageField:
    def test_simulator_reports_coverage(self):
        from repro.arch.config import MachineConfig
        from repro.experiments.configs import ConfigRequest, make_options
        from repro.sim.simulator import Simulator
        from repro.workloads import get_workload

        sim = Simulator(
            get_workload("bt").build_programs(2, region_scale=0.1, reps=4),
            MachineConfig(num_cores=2),
        )
        base = sim.run_baseline()
        result = sim.run(
            make_options(
                ConfigRequest("NoCkpt"), base.baseline_profile(), engine="vector"
            )
        )
        cov = result.vector_coverage
        assert cov is not None
        assert cov["replayed_iterations"] > 0
        # Diagnostics ride outside the serialised contract: the dict
        # round-trips without the field and stays engine-comparable.
        doc = result.to_dict()
        assert "vector_coverage" not in doc
        restored = type(result).from_dict(doc)
        assert restored.vector_coverage is None
        assert restored.to_dict() == doc
