"""The crash-tolerant worker pool: supervise, retry, degrade, survive.

:class:`Supervisor` replaces the bare ``ProcessPoolExecutor`` fan-out in
the experiment engine with the recovery discipline the paper demands of
its hardware (DESIGN §3.4):

* **dispatch** — each worker is one child process with a private pipe;
  the parent always knows exactly which task a dead worker was holding
  (no shared queue to lose work in);
* **watchdog** — per-task wall-clock deadlines; a hung worker is
  SIGKILLed and its task re-queued;
* **retry** — bounded re-execution with deterministic exponential
  backoff + seeded jitter (:meth:`ResiliencePolicy.backoff_s`), so a
  rerun of a flaky campaign schedules identical delays;
* **respawn** — a worker that dies (SIGKILL, OOM, segfault) is replaced
  and its in-flight task retried;
* **circuit breaker** — after ``pool_failure_threshold`` consecutive
  pool-level failures (deaths/timeouts, never ordinary task
  exceptions), the pool is abandoned and the remaining tasks run
  serially in-process — slower, but no longer exposed to whatever is
  killing workers;
* **clean interrupts** — ``KeyboardInterrupt`` kills the pool, leaves
  every already-completed result installed (the caller's
  ``on_complete`` ran as each task finished), and re-raises.

Tasks are deterministic simulations, so none of this changes *what* is
computed — chaos tests pin that a SIGKILL-riddled run's results are
bit-identical to an undisturbed one.
"""

from __future__ import annotations

import heapq
import multiprocessing
import time
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait as _conn_wait
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs.events import (
    MACHINE,
    PoolDegraded,
    TaskRetried,
    WorkerDied,
)
from repro.obs.telemetry.emit import task_telemetry
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.report import (
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    OUTCOME_WORKER_DIED,
    AttemptRecord,
    FailureReport,
    TaskHistory,
)
from repro.util.validation import check_positive

__all__ = ["SupervisedTask", "Supervisor", "TaskFailedError"]


class TaskFailedError(RuntimeError):
    """A task exhausted its retry budget; the report names every attempt."""

    def __init__(self, report: FailureReport) -> None:
        failed = ", ".join(t.label for t in report.failed_tasks) or "<none>"
        super().__init__(
            f"{len(report.failed_tasks)} supervised task(s) failed after "
            f"retries: {failed}"
        )
        self.report = report


@dataclass(frozen=True)
class SupervisedTask:
    """One unit of supervised work.

    ``fn`` must be a picklable module-level callable taking ``payload``
    and returning a picklable result; ``key`` identifies the task for
    backoff seeding and journaling (the cache key in the engine);
    ``label`` is the human-readable name used in reports and events.
    """

    key: str
    fn: Callable[[Any], Any]
    payload: Any
    label: str


@dataclass
class _TaskState:
    task: SupervisedTask
    history: TaskHistory
    #: Monotonic time before which the next attempt must not start.
    not_before: float = 0.0
    done: bool = False
    failed: bool = False
    result: Any = None

    @property
    def next_attempt(self) -> int:
        return len(self.history.attempts) + 1


def _worker_loop(conn: Connection) -> None:
    """Child-process body: execute tasks off the pipe until told to stop.

    Task exceptions are *reported*, never fatal — the worker stays up;
    only a ``None`` sentinel (or a closed pipe) ends the loop.

    Messages in are ``(task_id, fn, payload, telemetry_label_or_None)``;
    messages out are tagged tuples — ``("frame", task_id, frame_dict)``
    streamed mid-execution when a telemetry label was supplied, then one
    ``("done", task_id, ok, result_or_err, seconds)``.  Frames ride the
    same pipe the result does, so ordering is inherent and a frame can
    never outlive its task's reply.
    """
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        task_id, fn, payload, label = msg

        def _sink(frame, _task_id=task_id):
            # emit() swallows sink exceptions, so a parent that went
            # away mid-stream cannot crash the task it was watching.
            conn.send(("frame", _task_id, frame.to_dict()))

        scope = (
            task_telemetry(label, _sink) if label is not None
            else nullcontext()
        )
        t0 = time.perf_counter()
        try:
            with scope:
                result = fn(payload)
            reply = ("done", task_id, True, result, time.perf_counter() - t0)
        except BaseException as exc:
            reply = (
                "done",
                task_id,
                False,
                f"{type(exc).__name__}: {exc}",
                time.perf_counter() - t0,
            )
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break


class _Worker:
    """Parent-side handle of one pool worker process."""

    def __init__(self, ctx, wid: int) -> None:
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_loop,
            args=(child,),
            daemon=True,
            name=f"acr-supervised-{wid}",
        )
        self.process.start()
        child.close()
        self.state: Optional[_TaskState] = None
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.state is not None

    def assign(
        self, task_id: int, state: _TaskState, timeout_s,
        telemetry: bool = False,
    ) -> None:
        label = state.task.label if telemetry else None
        self.conn.send((task_id, state.task.fn, state.task.payload, label))
        self.state = state
        self.deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )

    def release(self) -> Optional[_TaskState]:
        state, self.state, self.deadline = self.state, None, None
        return state

    def kill(self) -> None:
        """Hard-stop the process (watchdog/interrupt path)."""
        try:
            self.process.kill()
        except (OSError, ValueError, AttributeError):
            pass
        self.process.join(timeout=1.0)
        try:
            self.conn.close()
        except OSError:
            pass

    def stop(self) -> None:
        """Polite shutdown: sentinel, short join, then force."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.kill()
        else:
            try:
                self.conn.close()
            except OSError:
                pass


class Supervisor:
    """Run batches of :class:`SupervisedTask` under full supervision.

    Reusable across batches (the engine runs its baseline phase and its
    dependent phase through one supervisor, keeping warm worker-side
    simulator memos); use as a context manager so workers are reaped::

        with Supervisor(policy, jobs=4, progress=progress) as sup:
            sup.run(phase1, on_complete=install)
            sup.run(phase2, on_complete=install)
        report = sup.failure_report

    ``progress`` is a :class:`~repro.experiments.progress.ProgressTracker`
    (or None), ``metrics`` a :class:`~repro.obs.metrics.MetricsRegistry`
    accumulating ``resilience.*`` counters, ``tracer`` an
    :class:`~repro.obs.tracer.Tracer` receiving ``task_retried`` /
    ``worker_died`` / ``pool_degraded`` events.  ``telemetry`` (a
    :class:`~repro.obs.telemetry.aggregate.CampaignTelemetry`, or None
    to disable — the default) turns on live frame streaming: workers
    are told their task label, wrap execution in
    :func:`~repro.obs.telemetry.emit.task_telemetry`, and stream frames
    up their result pipe; the parent folds them into the aggregator and
    reports pool gauges once per sweep.  ``hooks`` is a test/ops
    escape hatch: ``on_dispatch(worker, task)`` fires after each
    dispatch (chaos tests SIGKILL the worker here), ``on_result(task)``
    after each completion (chaos tests raise ``KeyboardInterrupt``).
    """

    def __init__(
        self,
        policy: Optional[ResiliencePolicy] = None,
        jobs: int = 2,
        progress=None,
        tracer=None,
        metrics=None,
        telemetry=None,
        hooks: Optional[Dict[str, Callable]] = None,
        tick_s: float = 0.05,
    ) -> None:
        check_positive("jobs", jobs)
        self.policy = policy or ResiliencePolicy()
        self.jobs = jobs
        self.progress = progress
        self.tracer = tracer
        self.metrics = metrics
        self.telemetry = telemetry
        self.hooks = hooks or {}
        self.tick_s = tick_s
        self.failure_report = FailureReport()
        self.degraded = False
        self._ctx = multiprocessing.get_context()
        self._workers: List[_Worker] = []
        self._next_wid = 0
        self._pool_failures = 0  # consecutive deaths/timeouts (breaker)
        self._recycled: List[_TaskState] = []
        self._t0 = time.monotonic()
        self._closed = False

    # ------------------------------------------------------------- lifecycle --
    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(force=exc_type is not None)

    def close(self, force: bool = False) -> None:
        """Shut every worker down (politely, or hard on ``force``)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if force or worker.busy:
                worker.kill()
            else:
                worker.stop()
        self._workers.clear()

    def worker_pids(self) -> List[int]:
        """Live worker pids (ops/chaos introspection)."""
        return [
            w.process.pid
            for w in self._workers
            if w.process.pid is not None and w.process.is_alive()
        ]

    # ------------------------------------------------------------------- run --
    def run(
        self,
        tasks: Sequence[SupervisedTask],
        on_complete: Optional[
            Callable[[SupervisedTask, Any, TaskHistory], None]
        ] = None,
    ) -> Dict[str, Any]:
        """Execute ``tasks``; returns ``{task.key: result}``.

        ``on_complete`` fires in the parent as each task finishes —
        before the batch ends — so an interrupt never discards finished
        work.  Raises :class:`TaskFailedError` if any task exhausts its
        retry budget (the other tasks still complete first).
        """
        if self._closed:
            raise RuntimeError("supervisor is closed")
        states = [_TaskState(t, TaskHistory(t.key, t.label)) for t in tasks]
        by_id = {i: s for i, s in enumerate(states)}
        ids = {id(s): i for i, s in enumerate(states)}
        pending = deque(states)
        waiting: List = []  # (ready_at, seq, state) backoff heap
        seq = 0

        try:
            while not all(s.done for s in states):
                now = time.monotonic()
                while waiting and waiting[0][0] <= now:
                    pending.append(heapq.heappop(waiting)[2])
                if self.degraded:
                    self._serial_step(pending, waiting, on_complete)
                else:
                    self._spawn_up_to(
                        min(self.jobs, sum(1 for s in states if not s.done))
                    )
                    self._dispatch(pending, ids)
                    self._collect(by_id, pending, waiting, on_complete)
                if self.telemetry is not None:
                    self.telemetry.update_pool(
                        len(self._workers),
                        sum(1 for w in self._workers if w.busy),
                        len(pending) + len(waiting),
                    )
                seq = self._requeue_failures(states, pending, waiting, seq)
        except KeyboardInterrupt:
            # Flush is structural: completed tasks already ran
            # on_complete.  Kill the pool so no orphan keeps simulating.
            self.close(force=True)
            raise

        for state in states:
            self.failure_report.absorb(state.history)
        if any(s.failed for s in states):
            raise TaskFailedError(self.failure_report)
        return {s.task.key: s.result for s in states}

    # -------------------------------------------------------------- pool side --
    def _spawn_up_to(self, target: int) -> None:
        while len(self._workers) < target:
            self._workers.append(_Worker(self._ctx, self._next_wid))
            self._next_wid += 1

    def _idle_worker(self) -> Optional[_Worker]:
        for worker in self._workers:
            if not worker.busy and worker.process.is_alive():
                return worker
        return None

    def _dispatch(self, pending, ids) -> None:
        """Hand pending tasks to idle workers (a worker that died since
        the last sweep costs nothing — replace it and re-queue)."""
        while pending and (idle := self._idle_worker()) is not None:
            state = pending.popleft()
            try:
                idle.assign(
                    ids[id(state)], state, self.policy.timeout_s,
                    telemetry=self.telemetry is not None,
                )
            except OSError:
                idle.release()
                idle.kill()
                self._replace(idle)
                pending.appendleft(state)
                continue
            hook = self.hooks.get("on_dispatch")
            if hook is not None:
                hook(idle, state.task)

    def _collect(self, by_id, pending, waiting, on_complete) -> None:
        """One poll: receive results, then sweep deaths and deadlines."""
        now = time.monotonic()
        timeout = self.tick_s
        for worker in self._workers:
            if worker.busy and worker.deadline is not None:
                timeout = min(timeout, max(0.0, worker.deadline - now))
        if waiting:
            timeout = min(timeout, max(0.0, waiting[0][0] - now))
        conns = [w.conn for w in self._workers]
        if not conns:
            time.sleep(timeout)
            return
        ready = _conn_wait(conns, timeout)
        by_conn = {w.conn: w for w in self._workers}
        for conn in ready:
            worker = by_conn[conn]
            # Drain the pipe: any number of streamed telemetry frames
            # may precede (or stand in place of) a tagged result.
            while True:
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    self._on_worker_death(worker)
                    break
                if isinstance(msg, tuple) and msg and msg[0] == "frame":
                    self._on_frame(worker, msg[2])
                    if conn.poll():
                        continue
                    break
                self._on_reply(worker, by_id, msg, on_complete)
                break
        now = time.monotonic()
        for worker in list(self._workers):
            if not worker.busy:
                if not worker.process.is_alive():
                    self._replace(worker)
                continue
            if not worker.process.is_alive():
                self._on_worker_death(worker)
            elif worker.deadline is not None and now >= worker.deadline:
                self._on_timeout(worker)

    def _on_frame(self, worker, doc) -> None:
        """Fold one worker-streamed telemetry frame into the aggregator
        (dropped silently when telemetry was turned off mid-flight)."""
        if self.telemetry is None:
            return
        try:
            index = self._workers.index(worker)
        except ValueError:
            index = -1
        self.telemetry.on_frame_dict(doc, worker=index)

    def _on_reply(self, worker, by_id, msg, on_complete) -> None:
        _tag, task_id, ok, payload, seconds = msg
        state = worker.release()
        if state is None or by_id.get(task_id) is not state:
            return  # stale reply from a recycled assignment
        if ok:
            self._complete(state, payload, seconds, "worker", on_complete)
            self._pool_failures = 0
        else:
            self._attempt_failed(
                state, OUTCOME_ERROR, seconds, "worker", payload
            )

    def _complete(self, state, result, seconds, where, on_complete) -> None:
        state.history.attempts.append(
            AttemptRecord(
                attempt=state.next_attempt,
                outcome=OUTCOME_OK,
                seconds=seconds,
                where=where,
            )
        )
        state.result = result
        state.done = True
        self._count("resilience.tasks_ok")
        if self.metrics is not None:
            self.metrics.histogram("resilience.attempt_seconds").observe(
                seconds
            )
        if on_complete is not None:
            on_complete(state.task, result, state.history)
        hook = self.hooks.get("on_result")
        if hook is not None:
            hook(state.task)

    def _attempt_failed(
        self, state, outcome: str, seconds: float, where: str, detail: str
    ) -> None:
        """Record a failed attempt; retry (with backoff) or give up."""
        attempt = state.next_attempt
        will_retry = attempt < self.policy.max_attempts
        backoff = (
            self.policy.backoff_s(state.task.key, attempt)
            if will_retry
            else 0.0
        )
        state.history.attempts.append(
            AttemptRecord(
                attempt=attempt,
                outcome=outcome,
                seconds=seconds,
                backoff_s=backoff,
                where=where,
                detail=detail,
            )
        )
        if outcome == OUTCOME_TIMEOUT:
            self._count("resilience.timeouts")
            if self.progress is not None:
                self.progress.record_timeout()
        elif outcome == OUTCOME_WORKER_DIED:
            self._count("resilience.worker_deaths")
            if self.progress is not None:
                self.progress.record_worker_death()
        if will_retry:
            state.not_before = time.monotonic() + backoff
            state.done = False
            self._count("resilience.retries")
            if self.metrics is not None:
                self.metrics.histogram("resilience.backoff_seconds").observe(
                    backoff
                )
            if self.progress is not None:
                self.progress.record_retry()
            self._emit(
                TaskRetried(
                    ts_ns=self._now_ns(),
                    core=MACHINE,
                    label=state.task.label,
                    attempt=attempt,
                    reason=outcome,
                    backoff_s=backoff,
                )
            )
        else:
            state.failed = True
            state.done = True

    def _requeue_failures(self, states, pending, waiting, seq) -> int:
        """Move freshly-failed-but-retryable tasks onto the backoff heap."""
        queued = {id(s) for s in pending} | {id(w[2]) for w in waiting}
        busy = {id(w.state) for w in self._workers if w.busy}
        for state in states:
            if state.done or id(state) in queued or id(state) in busy:
                continue
            heapq.heappush(waiting, (state.not_before, seq, state))
            seq += 1
        return seq

    # ----------------------------------------------------- deaths & timeouts --
    def _on_worker_death(self, worker: _Worker) -> None:
        pid = worker.process.pid
        state = worker.release()
        worker.kill()
        self._replace(worker)
        if state is not None:
            self._emit(
                WorkerDied(
                    ts_ns=self._now_ns(),
                    core=MACHINE,
                    label=state.task.label,
                    pid=pid if pid is not None else -1,
                )
            )
            self._attempt_failed(
                state, OUTCOME_WORKER_DIED, 0.0, "worker",
                f"worker pid {pid} died mid-task",
            )
            self._pool_failure()

    def _on_timeout(self, worker: _Worker) -> None:
        state = worker.release()
        worker.kill()
        self._replace(worker)
        if state is not None:
            self._attempt_failed(
                state, OUTCOME_TIMEOUT, self.policy.timeout_s or 0.0,
                "worker", "wall-clock timeout",
            )
            self._pool_failure()

    def _replace(self, worker: _Worker) -> None:
        """Swap a dead/killed worker for a fresh process."""
        if worker in self._workers:
            self._workers.remove(worker)
        if not self.degraded and not self._closed:
            self._workers.append(_Worker(self._ctx, self._next_wid))
            self._next_wid += 1
            self.failure_report.pool_respawns += 1
            self._count("resilience.pool_respawns")

    def _pool_failure(self) -> None:
        self._pool_failures += 1
        if self._pool_failures >= self.policy.pool_failure_threshold:
            self._degrade()

    def _degrade(self) -> None:
        """Trip the circuit breaker: abandon the pool, go serial."""
        if self.degraded:
            return
        self.degraded = True
        self.failure_report.degraded_to_serial = True
        self._emit(
            PoolDegraded(
                ts_ns=self._now_ns(),
                core=MACHINE,
                failures=self._pool_failures,
            )
        )
        self._count("resilience.degraded")
        if self.progress is not None:
            self.progress.record_degraded()
        # Recycle in-flight assignments: those attempts were killed by
        # us, not by the task, so they do not consume retry budget.
        recycled = []
        for worker in self._workers:
            state = worker.release()
            if state is not None:
                recycled.append(state)
            worker.kill()
        self._workers.clear()
        self._recycled = recycled

    def _serial_step(self, pending, waiting, on_complete) -> None:
        """Degraded mode: one in-process execution (or a backoff nap)."""
        if self._recycled:
            pending.extendleft(reversed(self._recycled))
            self._recycled = []
        if not pending:
            if waiting:
                time.sleep(
                    max(0.0, min(self.tick_s,
                                 waiting[0][0] - time.monotonic()))
                )
            return
        state = pending.popleft()
        scope = (
            task_telemetry(state.task.label, self.telemetry.on_frame)
            if self.telemetry is not None
            else nullcontext()
        )
        t0 = time.perf_counter()
        try:
            with scope:
                result = state.task.fn(state.task.payload)
        except KeyboardInterrupt:
            raise
        except BaseException as exc:
            self._attempt_failed(
                state, OUTCOME_ERROR, time.perf_counter() - t0, "serial",
                f"{type(exc).__name__}: {exc}",
            )
            return
        self._complete(
            state, result, time.perf_counter() - t0, "serial", on_complete
        )

    # ------------------------------------------------------------------- obs --
    def _now_ns(self) -> float:
        return (time.monotonic() - self._t0) * 1e9

    def _emit(self, event) -> None:
        if self.tracer is not None and getattr(self.tracer, "enabled", False):
            self.tracer.emit(event)

    def _count(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)
