"""Tests for repro.ckpt.recovery."""

import pytest

from repro.arch.buffers import AddrMapEntry
from repro.arch.config import MachineConfig
from repro.arch.memctrl import MemorySystem
from repro.ckpt.log import IntervalLog
from repro.ckpt.recovery import RecoveryEngine
from repro.compiler.slices import Slice
from repro.energy.accounting import EnergyLedger
from repro.energy.model import EnergyModel
from repro.isa.instructions import AluInstr, MoviInstr
from repro.isa.interpreter import MemoryImage
from repro.isa.opcodes import Opcode


def const_slice(value):
    return Slice(0, (MoviInstr(0, value),), (), 0)


def plus_slice(offset):
    """Slice computing operand + offset."""
    return Slice(
        0,
        (MoviInstr(1, offset), AluInstr(Opcode.ADD, 2, 0, 1)),
        (0,),
        2,
    )


@pytest.fixture
def engine():
    cfg = MachineConfig(num_cores=4)
    return RecoveryEngine(cfg, MemorySystem(cfg), EnergyModel())


class TestCosts:
    def test_pure_log_restore(self, engine):
        log = IntervalLog(1)
        for i in range(10):
            log.add_record(i * 8, i, core=0)
        ledger = EnergyLedger()
        costs = engine.recovery_costs([log], [0, 1, 2, 3], ledger)
        assert costs.restored_records == 10
        assert costs.recomputed_values == 0
        assert costs.rollback_ns > 0
        assert costs.recompute_ns == 0
        assert ledger.get("rec.restore") > 0

    def test_recompute_costs_scale_with_slice_length(self, engine):
        def log_with_slice_len(n):
            log = IntervalLog(1)
            sl = Slice(0, tuple(MoviInstr(0, i) for i in range(n)), (), 0)
            log.add_omitted(0, AddrMapEntry(0, sl, ()), core=0, ground_truth=n - 1)
            return log

        c_short = engine.recovery_costs(
            [log_with_slice_len(2)], [0], EnergyLedger()
        )
        c_long = engine.recovery_costs(
            [log_with_slice_len(40)], [0], EnergyLedger()
        )
        assert c_long.recompute_ns > c_short.recompute_ns
        assert c_long.recompute_instructions == 40

    def test_non_participant_records_skipped(self, engine):
        log = IntervalLog(1)
        log.add_record(0, 1, core=0)
        log.add_record(8, 1, core=3)
        costs = engine.recovery_costs([log], [0], EnergyLedger())
        assert costs.restored_records == 1

    def test_recompute_parallel_across_cores(self, engine):
        log_two_cores = IntervalLog(1)
        log_one_core = IntervalLog(1)
        sl = const_slice(1)
        for i in range(8):
            log_two_cores.add_omitted(
                i * 8, AddrMapEntry(i * 8, sl, ()), core=i % 2, ground_truth=1
            )
            log_one_core.add_omitted(
                i * 8, AddrMapEntry(i * 8, sl, ()), core=0, ground_truth=1
            )
        c2 = engine.recovery_costs([log_two_cores], [0, 1], EnergyLedger())
        c1 = engine.recovery_costs([log_one_core], [0, 1], EnergyLedger())
        assert c2.recompute_ns < c1.recompute_ns

    def test_duplicate_participants_counted_once(self, engine):
        # Regression: a caller passing a participant core twice (e.g. a
        # list built from overlapping log partitions) must not double-bill
        # the per-core arch restore or double-apply its log partition.
        log = IntervalLog(1)
        for i in range(6):
            log.add_record(i * 8, i, core=0)
        log.add_omitted(
            64, AddrMapEntry(64, const_slice(7), ()), core=1, ground_truth=7
        )
        led_dup, led_uniq = EnergyLedger(), EnergyLedger()
        c_dup = engine.recovery_costs([log], [0, 0, 1, 1, 0], led_dup)
        c_uniq = engine.recovery_costs([log], [0, 1], led_uniq)
        assert c_dup == c_uniq
        assert led_dup == led_uniq


class TestFunctionalRestore:
    def test_logged_values_restored(self, engine):
        mem = MemoryImage(0)
        mem.write(0, 100)  # current (wrong) value
        log = IntervalLog(1)
        log.add_record(0, 42, core=0)
        restored = engine.apply_rollback(mem, [log])
        assert mem.read(0) == 42
        assert restored == {0: 42}

    def test_omitted_values_recomputed_not_copied(self, engine):
        mem = MemoryImage(0)
        mem.write(8, 999)
        log = IntervalLog(1)
        # ground truth deliberately wrong: apply_rollback must use the
        # slice, proving it never reads the verification field.
        log.add_omitted(8, AddrMapEntry(8, const_slice(7), ()), 0, ground_truth=123)
        engine.apply_rollback(mem, [log])
        assert mem.read(8) == 7

    def test_oldest_log_wins(self, engine):
        mem = MemoryImage(0)
        newer = IntervalLog(2)
        newer.add_record(0, 50, core=0)
        older = IntervalLog(1)
        older.add_record(0, 40, core=0)
        engine.apply_rollback(mem, [newer, older])
        assert mem.read(0) == 40

    def test_operand_snapshot_used(self, engine):
        mem = MemoryImage(0)
        log = IntervalLog(1)
        log.add_omitted(
            0, AddrMapEntry(0, plus_slice(5), (37,)), core=0, ground_truth=42
        )
        engine.apply_rollback(mem, [log])
        assert mem.read(0) == 42

    def test_verify_recomputation_catches_mismatch(self, engine):
        good = IntervalLog(1)
        good.add_omitted(0, AddrMapEntry(0, const_slice(7), ()), 0, ground_truth=7)
        bad = IntervalLog(2)
        bad.add_omitted(8, AddrMapEntry(8, const_slice(7), ()), 0, ground_truth=8)
        assert RecoveryEngine.verify_recomputation([good]) == []
        assert RecoveryEngine.verify_recomputation([good, bad]) == [8]


class TestScratchpadMode:
    def _engine(self, scratchpad):
        cfg = MachineConfig(num_cores=2, scratchpad_recompute=scratchpad)
        return RecoveryEngine(cfg, MemorySystem(cfg), EnergyModel()), cfg

    def _log(self, n_omitted=64, n_logged=64, slice_len=8):
        log = IntervalLog(1)
        sl = Slice(0, tuple(MoviInstr(0, i) for i in range(slice_len)), (), 0)
        for i in range(n_logged):
            log.add_record(i * 8, i, core=0)
        for i in range(n_omitted):
            log.add_omitted(
                (1 << 20) + i * 8, AddrMapEntry(0, sl, ()), core=0,
                ground_truth=slice_len - 1,
            )
        return log

    def test_scratchpad_overlaps_restore(self):
        plain, _ = self._engine(False)
        spad, _ = self._engine(True)
        log = self._log()
        c_plain = plain.recovery_costs([log], [0, 1], EnergyLedger())
        c_spad = spad.recovery_costs([log], [0, 1], EnergyLedger())
        assert c_spad.recompute_ns < c_plain.recompute_ns
        assert c_spad.rollback_ns == pytest.approx(c_plain.rollback_ns)

    def test_scratchpad_costs_extra_energy(self):
        plain, _ = self._engine(False)
        spad, _ = self._engine(True)
        log = self._log()
        l_plain, l_spad = EnergyLedger(), EnergyLedger()
        plain.recovery_costs([log], [0, 1], l_plain)
        spad.recovery_costs([log], [0, 1], l_spad)
        assert l_spad.get("rec.recompute") > l_plain.get("rec.recompute")

    def test_functional_restore_unaffected(self):
        spad, _ = self._engine(True)
        mem = MemoryImage(0)
        log = self._log(n_omitted=4, n_logged=0, slice_len=3)
        spad.apply_rollback(mem, [log])
        assert mem.read(1 << 20) == 2  # last MOVI value
