"""Tests for the supervised, resumable execution layer."""
