"""Tests for repro.isa.opcodes."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.opcodes import ALU_OPCODES, MASK64, Opcode, apply_alu

U64 = st.integers(min_value=0, max_value=MASK64)


class TestApplyAlu:
    def test_add_wraps(self):
        assert apply_alu(Opcode.ADD, MASK64, 1) == 0

    def test_sub_wraps(self):
        assert apply_alu(Opcode.SUB, 0, 1) == MASK64

    def test_mul(self):
        assert apply_alu(Opcode.MUL, 3, 5) == 15

    def test_mul_wraps(self):
        assert apply_alu(Opcode.MUL, 1 << 63, 2) == 0

    def test_bitwise(self):
        assert apply_alu(Opcode.AND, 0b1100, 0b1010) == 0b1000
        assert apply_alu(Opcode.OR, 0b1100, 0b1010) == 0b1110
        assert apply_alu(Opcode.XOR, 0b1100, 0b1010) == 0b0110

    def test_shift_masks_amount(self):
        assert apply_alu(Opcode.SHL, 1, 64) == 1  # 64 & 63 == 0
        assert apply_alu(Opcode.SHR, 8, 3) == 1

    def test_shl_wraps(self):
        assert apply_alu(Opcode.SHL, 1, 63) == 1 << 63
        assert apply_alu(Opcode.SHL, 2, 63) == 0

    def test_non_alu_rejected(self):
        with pytest.raises(ValueError):
            apply_alu(Opcode.LOAD, 1, 2)
        with pytest.raises(ValueError):
            apply_alu(Opcode.MOVI, 1, 2)

    @given(U64, U64, st.sampled_from(sorted(ALU_OPCODES, key=lambda o: o.value)))
    def test_results_stay_in_64_bits(self, a, b, op):
        assert 0 <= apply_alu(op, a, b) <= MASK64

    @given(U64, U64)
    def test_xor_involution(self, a, b):
        assert apply_alu(Opcode.XOR, apply_alu(Opcode.XOR, a, b), b) == a

    @given(U64, U64)
    def test_add_sub_inverse(self, a, b):
        assert apply_alu(Opcode.SUB, apply_alu(Opcode.ADD, a, b), b) == a


class TestOpcodeSets:
    def test_alu_opcode_set(self):
        assert Opcode.ADD in ALU_OPCODES
        assert Opcode.LOAD not in ALU_OPCODES
        assert Opcode.STORE not in ALU_OPCODES
        assert Opcode.MOVI not in ALU_OPCODES

    def test_eight_binary_ops(self):
        assert len(ALU_OPCODES) == 8
