"""Campaign specs and the deterministic report: strict wire inverses,
implicit baselines, and byte-identical reports across execution paths."""

import json

import pytest

from repro.experiments.configs import ConfigRequest
from repro.experiments.runner import ExperimentRunner
from repro.service.campaigns import (
    CampaignSpec,
    campaign_report,
    render_report,
)

_SHAPE = dict(num_cores=2, region_scale=0.05, reps=2)


def _spec(**overrides):
    kwargs = dict(
        workloads=("is",), configs=("Ckpt_NE",), **_SHAPE
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def _runner(**kw):
    return ExperimentRunner(
        num_cores=2, region_scale=0.05, reps=2, **kw
    )


class TestSpecValidation:
    def test_lists_coerce_to_tuples(self):
        spec = _spec(workloads=["is"], configs=["Ckpt_NE", "ReCkpt_E"])
        assert spec.workloads == ("is",)
        assert spec.configs == ("Ckpt_NE", "ReCkpt_E")

    def test_empty_workloads_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            _spec(workloads=())

    def test_empty_configs_rejected(self):
        with pytest.raises(ValueError, match="configuration"):
            _spec(configs=())

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            _spec(workloads=("spectre",))

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError, match="unknown configuration"):
            _spec(configs=("TurboCkpt",))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            _spec(engine="jit")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="memory_seed"):
            _spec(memory_seed=-1)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="num_cores"):
            _spec(num_cores=0)


class TestSpecWire:
    def test_round_trip_is_identity(self):
        spec = _spec(configs=("Ckpt_NE", "ReCkpt_E"), threshold=7)
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_is_json_safe(self):
        doc = json.loads(json.dumps(_spec().to_dict()))
        assert CampaignSpec.from_dict(doc) == _spec()

    def test_missing_field_rejected(self):
        doc = _spec().to_dict()
        del doc["engine"]
        with pytest.raises(ValueError, match="fields"):
            CampaignSpec.from_dict(doc)

    def test_extra_field_rejected(self):
        doc = _spec().to_dict()
        doc["color"] = "red"
        with pytest.raises(ValueError, match="fields"):
            CampaignSpec.from_dict(doc)

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="object"):
            CampaignSpec.from_dict("a string")

    def test_non_string_workloads_rejected(self):
        doc = _spec().to_dict()
        doc["workloads"] = [1, 2]
        with pytest.raises(ValueError, match="string list"):
            CampaignSpec.from_dict(doc)


class TestPlan:
    def test_pairs_include_the_implicit_baseline(self):
        runner = _runner()
        pairs = _spec().pairs(runner)
        assert ("is", ConfigRequest("NoCkpt")) in pairs
        assert len(pairs) == 2  # NoCkpt + Ckpt_NE

    def test_requesting_nockpt_does_not_duplicate_it(self):
        runner = _runner()
        pairs = _spec(configs=("NoCkpt", "Ckpt_NE")).pairs(runner)
        assert len(pairs) == 2

    def test_default_threshold_is_per_workload(self):
        runner = _runner()
        for wl, req in _spec().pairs(runner):
            if not req.is_baseline:
                assert req.threshold == runner.default_threshold(wl)

    def test_keys_match_pairs(self):
        runner = _runner()
        spec = _spec()
        assert spec.keys(runner) == [
            runner.cache_key(wl, req) for wl, req in spec.pairs(runner)
        ]


class TestReport:
    def test_report_is_deterministic_across_runners(self, tmp_path):
        spec = _spec()
        a = campaign_report(_runner(), spec)
        b = campaign_report(_runner(cache_dir=tmp_path / "cache"), spec)
        assert json.dumps(a, sort_keys=True) == json.dumps(
            b, sort_keys=True
        )

    def test_report_shape_and_digest(self):
        spec = _spec()
        report = campaign_report(_runner(), spec)
        assert report["v"] == 1
        assert report["campaign"] == spec.to_dict()
        assert [r["config"] for r in report["runs"]] == [
            "Ckpt_NE", "NoCkpt",  # sorted by (workload, config)
        ]
        baseline = next(
            r for r in report["runs"] if r["config"] == "NoCkpt"
        )
        assert baseline["time_overhead"] == 0.0
        assert baseline["checkpoint_bytes"] == 0
        ckpt = next(r for r in report["runs"] if r["config"] == "Ckpt_NE")
        assert ckpt["time_overhead"] > 0.0
        assert len(report["sha256"]) == 64
        assert json.loads(json.dumps(report)) == report

    def test_render_mentions_every_run_and_the_digest(self):
        report = campaign_report(_runner(), _spec())
        text = render_report(report)
        assert "Ckpt_NE" in text and "NoCkpt" in text
        assert report["sha256"][:16] in text
