"""Test package."""
