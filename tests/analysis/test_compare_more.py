"""Additional comparison/decomposition coverage across all nine configs."""

import pytest

from repro.analysis.compare import compare_runs
from repro.analysis.decomposition import decompose_overhead
from repro.experiments.configs import CONFIG_NAMES
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def full_matrix():
    runner = ExperimentRunner(num_cores=2, region_scale=0.1, reps=12)
    base = runner.baseline("bt")
    runs = {
        name: runner.run_default("bt", name, num_checkpoints=5)
        for name in CONFIG_NAMES
        if name != "NoCkpt"
    }
    return base, runs


class TestNineConfigurations:
    def test_all_configs_run(self, full_matrix):
        base, runs = full_matrix
        assert len(runs) == 8
        for name, run in runs.items():
            assert run.wall_ns >= base.wall_ns * 0.999, name
            assert run.checkpoint_count == 5, name

    def test_error_variants_have_recoveries(self, full_matrix):
        _, runs = full_matrix
        for name, run in runs.items():
            expected = 1 if "_E" in name else 0
            assert run.recovery_count == expected, name

    def test_acr_variants_omit(self, full_matrix):
        _, runs = full_matrix
        for name, run in runs.items():
            if name.startswith("ReCkpt"):
                assert run.omissions > 0, name
            else:
                assert run.omissions == 0, name

    def test_local_variants_never_slower(self, full_matrix):
        _, runs = full_matrix
        for local_name in [n for n in runs if n.endswith("_Loc")]:
            global_name = local_name[: -len("_Loc")]
            assert (
                runs[local_name].wall_ns <= runs[global_name].wall_ns * 1.02
            ), local_name

    def test_comparison_table_covers_all(self, full_matrix):
        base, runs = full_matrix
        text = compare_runs(base, list(runs.values()))
        for name in runs:
            assert name in text

    def test_decompositions_consistent(self, full_matrix):
        _, runs = full_matrix
        for name, run in runs.items():
            d = decompose_overhead(run)
            assert d.total_ns == pytest.approx(run.overhead_ns), name
            assert d.boundary_ns >= 0 and d.execution_ns >= 0, name
