"""Tests for the recomputation-aware placement extension."""

import pytest

from repro.experiments.placement import aware_boundaries, profile_reductions
from repro.experiments.runner import ExperimentRunner
from repro.experiments.configs import ConfigRequest
from repro.sim.simulator import SimulationOptions


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(num_cores=2, region_scale=0.12, reps=24)


@pytest.fixture(scope="module")
def profile_run(runner):
    return runner.run("bt", ConfigRequest("ReCkpt_NE", num_checkpoints=24))


class TestAwareBoundaries:
    def test_boundary_count_and_ordering(self, profile_run):
        plan = aware_boundaries(profile_run, 8)
        assert len(plan.boundaries) == 8
        assert plan.boundaries == sorted(plan.boundaries)
        assert plan.boundaries[-1] == pytest.approx(
            profile_run.intervals[-1].useful_ns
        )

    def test_stretch_bound_respected(self, profile_run):
        plan = aware_boundaries(profile_run, 8, max_stretch=1.5)
        total = plan.boundaries[-1]
        period = total / 8
        last = 0.0
        for b in plan.boundaries:
            assert b - last <= period * 1.5 + 1e-6
            last = b

    def test_grid_must_be_finer(self, profile_run):
        with pytest.raises(ValueError, match="finer"):
            aware_boundaries(profile_run, 100)

    def test_profile_reductions(self, profile_run):
        reds = profile_reductions(profile_run)
        assert len(reds) == 24
        assert all(0.0 <= r <= 1.0 for r in reds)

    def test_plan_runs_in_simulator(self, runner, profile_run):
        plan = aware_boundaries(profile_run, 8)
        sim = runner.simulator("bt")
        base = runner.baseline("bt")
        run = sim.run(
            SimulationOptions(
                label="aware",
                scheme="global",
                acr=True,
                num_checkpoints=8,
                baseline=base.baseline_profile(),
                boundaries=plan.boundaries,
            )
        )
        assert run.checkpoint_count == 8

    def test_custom_boundaries_validated(self, runner):
        base = runner.baseline("bt")
        with pytest.raises(ValueError, match="ascending"):
            SimulationOptions(
                scheme="global",
                num_checkpoints=2,
                baseline=base.baseline_profile(),
                boundaries=[5.0, 1.0],
            )
        with pytest.raises(ValueError, match="match"):
            SimulationOptions(
                scheme="global",
                num_checkpoints=3,
                baseline=base.baseline_profile(),
                boundaries=[1.0, 2.0],
            )
