"""Bandwidth-limited memory controllers.

Table I provisions 7.6 GB/s per controller with one controller per four
cores.  Checkpoint flushes and log/restore traffic are *bulk* transfers:
their time is dominated by bandwidth, not latency.  The
:class:`MemorySystem` splits a bulk transfer across the controllers that
serve the participating cores and returns the critical-path time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.arch.config import MachineConfig
from repro.util.validation import check_non_negative

__all__ = ["MemoryController", "MemorySystem"]


@dataclass
class MemoryController:
    """One controller: fixed access latency plus a bandwidth pipe."""

    index: int
    latency_ns: float
    bandwidth_bytes_per_s: float
    bytes_transferred: int = 0

    def transfer_time_ns(self, num_bytes: int) -> float:
        """Time to stream ``num_bytes`` through this controller."""
        check_non_negative("num_bytes", num_bytes)
        if num_bytes == 0:
            return 0.0
        self.bytes_transferred += num_bytes
        return self.latency_ns + num_bytes / self.bandwidth_bytes_per_s * 1e9


class MemorySystem:
    """All memory controllers of the machine, with the core→controller map."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.controllers: List[MemoryController] = [
            MemoryController(
                i, config.mem_latency_ns, config.mem_bandwidth_bytes_per_s
            )
            for i in range(config.num_controllers)
        ]

    def controller_for_core(self, core: int) -> MemoryController:
        """The controller serving ``core`` (cores are striped in blocks)."""
        idx = min(
            core // self.config.cores_per_controller, len(self.controllers) - 1
        )
        return self.controllers[idx]

    def bulk_transfer_time_ns(self, bytes_per_core: Dict[int, int]) -> float:
        """Critical-path time of a bulk transfer issued by several cores.

        Each core's bytes stream through its own controller; cores behind
        the same controller serialise.  The transfer completes when the
        slowest controller drains, so the returned time is the max over
        controllers — this is what makes checkpoint flushes scale with the
        *per-controller* load rather than with total traffic.
        """
        per_controller: Dict[int, int] = {}
        for core, num_bytes in bytes_per_core.items():
            check_non_negative(f"bytes for core {core}", num_bytes)
            ctrl = self.controller_for_core(core)
            per_controller[ctrl.index] = per_controller.get(ctrl.index, 0) + num_bytes
        worst = 0.0
        for ctrl_index, num_bytes in per_controller.items():
            t = self.controllers[ctrl_index].transfer_time_ns(num_bytes)
            worst = max(worst, t)
        return worst

    @property
    def total_bytes(self) -> int:
        """Total bytes streamed through all controllers so far."""
        return sum(c.bytes_transferred for c in self.controllers)
