"""Snapshot codec contracts: round-trip, fixed point, corruption.

Property-based where the contract is universal (any payload survives the
byte codec unchanged; any single-byte corruption or truncation is
rejected with :class:`SnapshotError`), example-based for the strict
payload validation of :class:`SimSnapshot` and the store's quarantine
semantics.  The *semantic* fidelity of captured state (forked execution
bit-identical to straight-through) lives in
``tests/inject/test_snapshot_fork.py``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    SimSnapshot,
    SnapshotError,
    SnapshotStore,
    decode_payload,
    encode_payload,
)

# JSON-able payloads (no floats: canonical-JSON fixed-point testing
# wants exact values; snapshots themselves carry float wall times but
# those round-trip exactly through repr-based json anyway).
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**63), max_value=2**63)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)

_HEADER = len(SNAPSHOT_MAGIC) + 1 + 16


class TestByteCodec:
    @settings(max_examples=60, deadline=None)
    @given(payload=json_values)
    def test_round_trip_and_fixed_point(self, payload):
        blob = encode_payload(payload)
        assert decode_payload(blob) == payload
        # Canonical JSON: re-encoding the decoded payload reproduces
        # the blob byte for byte.
        assert encode_payload(decode_payload(blob)) == blob

    @settings(max_examples=40, deadline=None)
    @given(payload=json_values, data=st.data())
    def test_truncation_rejected(self, payload, data):
        blob = encode_payload(payload)
        cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        with pytest.raises(SnapshotError):
            decode_payload(blob[:cut])

    @settings(max_examples=60, deadline=None)
    @given(payload=json_values, data=st.data())
    def test_any_single_byte_corruption_rejected(self, payload, data):
        blob = bytearray(encode_payload(payload))
        pos = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        flip = data.draw(st.integers(min_value=1, max_value=255))
        blob[pos] ^= flip
        with pytest.raises(SnapshotError):
            decode_payload(bytes(blob))

    def test_bad_magic_and_version_messages(self):
        blob = encode_payload({"x": 1})
        with pytest.raises(SnapshotError, match="magic"):
            decode_payload(b"NOTSNAP" + blob[len(SNAPSHOT_MAGIC):])
        bumped = (
            blob[: len(SNAPSHOT_MAGIC)]
            + bytes([SNAPSHOT_VERSION + 1])
            + blob[len(SNAPSHOT_MAGIC) + 1:]
        )
        with pytest.raises(SnapshotError, match="version"):
            decode_payload(bumped)

    def test_non_bytes_rejected(self):
        with pytest.raises(SnapshotError):
            decode_payload("not bytes")


# -- SimSnapshot payload validation ----------------------------------------
small = st.integers(min_value=0, max_value=1 << 16)
words = st.integers(min_value=0, max_value=(1 << 64) - 1)
arch_rows = st.lists(
    st.tuples(small, small, st.lists(words, max_size=4).map(list)).map(list),
    min_size=1,
    max_size=3,
)


def empty_log(interval=0):
    return {"interval": interval, "records": [], "omitted": []}


@st.composite
def snapshots(draw):
    """Structurally valid snapshots, BER- or ACR-shaped."""
    acr = draw(st.booleans())
    arch = draw(arch_rows)
    cores = len(arch)
    entries = []
    if acr:
        entries = draw(st.lists(
            st.tuples(
                st.integers(0, cores - 1), small, words,
                st.lists(words, max_size=3).map(list),
            ).map(list),
            max_size=4,
        ))
    gen = {"entries": [], "tombstones": []}
    return SimSnapshot(
        memory_seed=draw(words),
        memory_words=draw(st.lists(
            st.tuples(words, words).map(list), max_size=6
        )),
        step=draw(small),
        n_instructions=draw(small),
        ecc_lookup_hits=draw(small),
        directory_log_bits=sorted(draw(st.sets(words, max_size=4))),
        entries=entries,
        open_log=empty_log(),
        checkpoints=[],
        addrmaps=(
            [{"open": gen, "committed": [], "records": 0, "rejections": 0}]
            * cores if acr else None
        ),
        operand_buffers=(
            [{"words": 0, "peak_words": 0, "rejections": 0}] * cores
            if acr else None
        ),
        gen_words=[[0]] * cores if acr else None,
        handler_counters=(
            {"assoc_executed": 0, "omissions": 0, "omission_lookups": 0}
            if acr else None
        ),
        arch=arch,
        initial_arch=[[0, 0, []] for _ in range(cores)],
        arch_history=[],
        rng_states={},
    )


class TestSimSnapshotCodec:
    @settings(max_examples=50, deadline=None)
    @given(snap=snapshots())
    def test_payload_and_bytes_round_trip(self, snap):
        assert SimSnapshot.from_payload(snap.to_payload()) == snap
        blob = snap.to_bytes()
        assert SimSnapshot.from_bytes(blob) == snap
        # Byte-level fixed point: serialization is deterministic.
        assert SimSnapshot.from_bytes(blob).to_bytes() == blob

    def _payload(self):
        return SimSnapshot(
            memory_seed=0, memory_words=[], step=0, n_instructions=0,
            ecc_lookup_hits=0, directory_log_bits=[], entries=[],
            open_log=empty_log(), checkpoints=[], addrmaps=None,
            operand_buffers=None, gen_words=None, handler_counters=None,
            arch=[[0, 0, []]], initial_arch=[[0, 0, []]],
            arch_history=[], rng_states={},
        ).to_payload()

    def test_missing_and_extra_fields_rejected(self):
        doc = self._payload()
        del doc["memory_words"]
        with pytest.raises(SnapshotError, match="missing"):
            SimSnapshot.from_payload(doc)
        doc = self._payload()
        doc["surprise"] = 1
        with pytest.raises(SnapshotError, match="unexpected"):
            SimSnapshot.from_payload(doc)

    def test_version_drift_rejected(self):
        doc = self._payload()
        doc["v"] = SNAPSHOT_VERSION + 1
        with pytest.raises(SnapshotError, match="version"):
            SimSnapshot.from_payload(doc)

    def test_mixed_acr_fields_rejected(self):
        doc = self._payload()
        doc["gen_words"] = [[0]]  # ACR field without its siblings
        with pytest.raises(SnapshotError, match="mixes"):
            SimSnapshot.from_payload(doc)

    def test_bad_row_shapes_rejected(self):
        for field, bad in (
            ("memory_words", [[1, 2, 3]]),
            ("entries", [[0, 0, 0]]),
            ("arch", [[0, 0]]),
            ("initial_arch", [0]),
        ):
            doc = self._payload()
            doc[field] = bad
            with pytest.raises(SnapshotError):
                SimSnapshot.from_payload(doc)

    def test_bool_not_accepted_as_int(self):
        doc = self._payload()
        doc["step"] = True
        with pytest.raises(SnapshotError, match="int"):
            SimSnapshot.from_payload(doc)


class TestSnapshotStore:
    KEY = "ab" * 32

    def test_save_load_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        blob = encode_payload({"hello": 1})
        store.save(self.KEY, blob)
        assert store.load(self.KEY) == blob
        # Two-level fan-out like the result cache.
        assert store.path_for(self.KEY).parent.name == self.KEY[:2]

    def test_miss_is_none(self, tmp_path):
        assert SnapshotStore(tmp_path).load(self.KEY) is None

    def test_quarantine_turns_corruption_into_miss(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(self.KEY, b"garbage")
        with pytest.raises(SnapshotError):
            decode_payload(store.load(self.KEY))
        store.quarantine(self.KEY)
        assert store.load(self.KEY) is None
        store.quarantine(self.KEY)  # idempotent

    def test_non_hex_keys_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path)
        for key in ("", "../etc/passwd", "ABCD", "xyz"):
            with pytest.raises(ValueError):
                store.path_for(key)
