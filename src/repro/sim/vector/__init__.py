"""The vectorized execution engine (``--engine vector``).

A second, faster execution engine for the simulator: straight-line
kernel bodies are turned into precomputed *trace plans* (flat address /
line / store-value arrays built with batched numpy reductions, cached on
the :class:`~repro.isa.program.Program`) and replayed through one
allocation-free accounting loop instead of one Python dispatch plus
observer-callback stack per instruction.

The classic interpreter remains the differential reference: any kernel
the planner cannot prove exact (externally-written load addresses,
register files a handler would observe mid-flight) falls back to it, so
results are bit-identical by construction — and a differential harness
(``tests/sim/test_engine_equivalence.py``) pins bit-identity on every
registered workload plus hundreds of randomized programs.
"""

from repro.sim.vector.engine import VectorCoreRunner
from repro.sim.vector.interp import VectorInterpreter, make_interpreter
from repro.sim.vector.plans import KernelPlan, ProgramPlans, plans_for

__all__ = [
    "ENGINES",
    "KernelPlan",
    "ProgramPlans",
    "VectorCoreRunner",
    "VectorInterpreter",
    "make_interpreter",
    "plans_for",
]

#: The selectable execution engines (CLI/config knob values).
ENGINES = ("interp", "vector")
