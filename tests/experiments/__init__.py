"""Test package."""
