"""End-to-end instrumentation tests: the simulator under observation.

The two load-bearing contracts:

* a **disabled** tracer (or none) keeps the run bit-identical to an
  uninstrumented one — every registered workload is pinned;
* an **enabled** tracer changes *nothing* about the simulation outputs:
  the traced result equals the untraced result once the ``obs`` payload
  is stripped, while the event stream mirrors the run's statistics.
"""

import pytest

from repro.errors.injection import UniformErrors
from repro.obs.events import (
    AddrMapHit,
    AddrMapInsert,
    CheckpointBegin,
    CheckpointEnd,
    IntervalBoundary,
    LogWrite,
    RecoveryBegin,
    RecoveryEnd,
    SliceRecompute,
)
from repro.obs.tracer import NullTracer, RecordingTracer
from repro.sim.simulator import SimulationOptions, Simulator

from tests.conftest import tiny_machine, tiny_programs


def traced_options(baseline, tracer=None, collect_metrics=False):
    return SimulationOptions(
        label="ReCkpt_E",
        scheme="global",
        acr=True,
        num_checkpoints=6,
        errors=UniformErrors(1),
        baseline=baseline.baseline_profile(),
        tracer=tracer,
        collect_metrics=collect_metrics,
    )


@pytest.fixture(scope="module")
def sim():
    return Simulator(tiny_programs(4), tiny_machine(4))


@pytest.fixture(scope="module")
def baseline(sim):
    return sim.run_baseline()


@pytest.fixture(scope="module")
def untraced(sim, baseline):
    return sim.run(traced_options(baseline))


@pytest.fixture(scope="module")
def tracer_and_run(sim, baseline):
    tracer = RecordingTracer()
    run = sim.run(traced_options(baseline, tracer=tracer))
    return tracer, run


class TestDisabledPath:
    def test_default_run_has_no_obs(self, untraced):
        assert untraced.obs is None
        assert untraced.to_dict()["obs"] is None

    def test_null_tracer_is_bit_identical(self, sim, baseline, untraced):
        run = sim.run(traced_options(baseline, tracer=NullTracer()))
        assert run.obs is None
        assert run.equivalent(untraced)

    def test_null_tracer_every_workload(self):
        from repro.experiments.runner import ExperimentRunner

        runner = ExperimentRunner(num_cores=2, region_scale=0.1, reps=8)
        for workload in runner.workloads():
            request = runner.default_request(
                workload, "ReCkpt_E", num_checkpoints=4
            )
            plain = runner.run(workload, request)
            nulled = runner.run_traced(
                workload, request,
                tracer=NullTracer(), collect_metrics=False,
            )
            assert nulled.obs is None, workload
            assert plain.equivalent(nulled), workload


class TestEnabledPath:
    def test_tracing_does_not_perturb_results(self, tracer_and_run, untraced):
        _, traced = tracer_and_run
        traced_doc = traced.to_dict()
        assert traced_doc.pop("obs") is not None
        untraced_doc = untraced.to_dict()
        assert untraced_doc.pop("obs") is None
        assert traced_doc == untraced_doc

    def test_every_event_family_appears(self, tracer_and_run):
        tracer, _ = tracer_and_run
        kinds = {type(ev) for ev in tracer.events}
        assert {
            CheckpointBegin, CheckpointEnd, IntervalBoundary, LogWrite,
            AddrMapInsert, AddrMapHit, SliceRecompute,
            RecoveryBegin, RecoveryEnd,
        } <= kinds

    def test_checkpoint_events_match_intervals(self, tracer_and_run):
        tracer, run = tracer_and_run
        begins = [e for e in tracer.events if isinstance(e, CheckpointBegin)]
        ends = [e for e in tracer.events if isinstance(e, CheckpointEnd)]
        assert len(begins) == len(ends) == run.checkpoint_count
        by_index = {e.index: e for e in ends}
        for iv in run.intervals:
            end = by_index[iv.index]
            assert end.logged_records == iv.logged_records
            assert end.omitted_records == iv.omitted_records
            assert end.logged_bytes == iv.logged_bytes
            assert end.flushed_bytes == iv.flushed_bytes

    def test_log_writes_match_log_statistics(self, tracer_and_run):
        tracer, run = tracer_and_run
        writes = [e for e in tracer.events if isinstance(e, LogWrite)]
        taken = sum(1 for e in writes if e.taken)
        skipped = sum(1 for e in writes if not e.taken)
        # Events cover every interval *including* the open partial one,
        # so totals are at least the per-interval sums.
        assert taken >= sum(iv.logged_records for iv in run.intervals)
        assert skipped >= sum(iv.omitted_records for iv in run.intervals)
        assert skipped == run.omissions

    def test_slice_recomputes_match_recovery_stats(self, tracer_and_run):
        tracer, run = tracer_and_run
        recomputes = [
            e for e in tracer.events if isinstance(e, SliceRecompute)
        ]
        assert len(recomputes) == sum(
            r.recomputed_values for r in run.recoveries
        )
        assert all(e.ns > 0 for e in recomputes)

    def test_obs_report_attached_and_consistent(self, tracer_and_run):
        tracer, run = tracer_and_run
        assert run.obs is not None
        assert run.obs.events_captured == tracer.captured
        assert run.obs.events_dropped == 0
        counters = run.obs.metrics.counters_dict()
        assert counters["ckpt.count"] == run.checkpoint_count
        assert counters["recovery.count"] == run.recovery_count
        assert counters["log.writes_skipped"] == run.omissions
        assert counters["addrmap.hits"] == run.omissions
        assert len(run.obs.metrics.intervals) == run.checkpoint_count

    def test_capacity_bound_drops_are_accounted(self, sim, baseline):
        tracer = RecordingTracer(capacity=50)
        run = sim.run(traced_options(baseline, tracer=tracer))
        assert tracer.captured == 50
        assert tracer.dropped > 0
        assert run.obs.events_captured == 50
        assert run.obs.events_dropped == tracer.dropped

    def test_metrics_only_run_has_obs_but_no_events(self, sim, baseline,
                                                    untraced):
        run = sim.run(traced_options(baseline, collect_metrics=True))
        assert run.obs is not None
        assert run.obs.events_captured == 0
        doc = run.to_dict()
        doc.pop("obs")
        base_doc = untraced.to_dict()
        base_doc.pop("obs")
        assert doc == base_doc
