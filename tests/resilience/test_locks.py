"""Per-key lockfile contracts: exclusion, staleness, bounded waits."""

import os

from repro.resilience.locks import KeyLock


def test_exclusive_acquire_and_release(tmp_path):
    path = tmp_path / "k.lock"
    a = KeyLock(path, wait_s=0.0)
    b = KeyLock(path, wait_s=0.0)
    assert a.try_acquire()
    assert path.exists()
    assert not b.try_acquire()
    a.release()
    assert not path.exists()
    assert b.try_acquire()
    b.release()


def test_lockfile_records_owner_pid(tmp_path):
    path = tmp_path / "k.lock"
    lock = KeyLock(path)
    assert lock.try_acquire()
    assert path.read_text().strip() == str(os.getpid())
    lock.release()


def test_bounded_wait_expires_without_ownership(tmp_path):
    path = tmp_path / "k.lock"
    holder = KeyLock(path)
    assert holder.try_acquire()
    waiter = KeyLock(path, wait_s=0.1, poll_s=0.02)
    assert waiter.acquire() is False
    assert not waiter.owned
    holder.release()


def test_stale_lock_is_broken_by_mtime(tmp_path):
    path = tmp_path / "k.lock"
    path.write_text("99999\n")  # orphan left by a crashed owner
    old = path.stat().st_mtime - 3600
    os.utime(path, (old, old))
    lock = KeyLock(path, stale_s=600.0)
    assert lock.try_acquire()
    assert lock.owned
    lock.release()


def test_fresh_lock_is_not_broken(tmp_path):
    path = tmp_path / "k.lock"
    path.write_text("99999\n")
    assert not KeyLock(path, stale_s=600.0).try_acquire()


def test_release_survives_external_break(tmp_path):
    path = tmp_path / "k.lock"
    lock = KeyLock(path)
    assert lock.try_acquire()
    path.unlink()  # someone broke us as stale
    lock.release()  # must not raise
    assert not lock.owned


def test_context_manager(tmp_path):
    path = tmp_path / "k.lock"
    with KeyLock(path) as acquired:
        assert acquired
        assert path.exists()
    assert not path.exists()


class _ScriptedMtime(KeyLock):
    """Replays a fixed sequence of `_mtime` readings (stat-race rig)."""

    def __init__(self, *args, script, **kw):
        super().__init__(*args, **kw)
        self._script = list(script)

    def _mtime(self):
        return self._script.pop(0)


def test_stale_break_reverifies_before_unlink(tmp_path):
    # Regression (TOCTOU): between the staleness stat and the unlink,
    # the owner may have refreshed (or re-created) the lock.  A second
    # reading that comes back fresh must abort the break — otherwise we
    # would unlink a *live* owner's lock and let two workers in.
    path = tmp_path / "k.lock"
    path.write_text("99999\n")
    import time as _time
    stale = _time.time() - 3600
    lock = _ScriptedMtime(path, stale_s=600.0, script=[stale, _time.time()])
    lock._break_if_stale()
    assert path.exists(), "live lock was unlinked on a stale first stat"
    # Both readings stale: the break proceeds.
    lock = _ScriptedMtime(path, stale_s=600.0, script=[stale, stale])
    lock._break_if_stale()
    assert not path.exists()


def test_heartbeat_refreshes_mtime_and_defeats_breaking(tmp_path):
    path = tmp_path / "k.lock"
    lock = KeyLock(path, stale_s=600.0)
    assert lock.try_acquire()
    old = path.stat().st_mtime - 3600
    os.utime(path, (old, old))
    lock.heartbeat()
    assert path.stat().st_mtime > old + 3000
    # A freshly heartbeated lock no longer reads as stale.
    assert not KeyLock(path, stale_s=600.0).try_acquire()
    lock.release()


def test_heartbeat_is_noop_when_not_owned(tmp_path):
    path = tmp_path / "k.lock"
    lock = KeyLock(path)
    lock.heartbeat()  # never acquired: must not create the file
    assert not path.exists()
    assert lock.try_acquire()
    path.unlink()  # externally broken
    lock.heartbeat()  # must not resurrect or raise
    assert not path.exists()
    lock.release()
