"""Command-line interface.

Installed as ``acr-repro`` (or run with ``python -m repro.cli``):

* ``acr-repro report``            — regenerate the paper's evaluation;
* ``acr-repro run bt ReCkpt_E``   — run one configuration, print the
  result with the overhead/energy decompositions;
* ``acr-repro compare bt``        — all nine configurations side by side;
* ``acr-repro slices bt``         — compiler-pass statistics and the
  slice-length histogram of a benchmark;
* ``acr-repro lint bt``           — slice soundness verification: static
  rules ``ACR001``–``ACR007`` plus the differential recompute oracle,
  with ``--select``/``--ignore`` filters and ``--format json``;
* ``acr-repro analyze bt``        — static vector-safety certification
  (``ACR009``–``ACR012``): per-segment certificates for the vector
  engine, with ``--explain-fallbacks`` attributing every runtime
  fallback to the rule that denied its certificate;
* ``acr-repro baselines bt``      — full-snapshot and hierarchical
  what-if cost models over the checkpointed run.
* ``acr-repro trace bt``          — run one configuration with the event
  tracer attached; export a Chrome ``trace_event`` file (load it at
  https://ui.perfetto.dev) and optionally the raw JSONL event stream;
* ``acr-repro stats bt``          — run with metrics collection only and
  print the counter/histogram summary tables;
* ``acr-repro inject``            — fault-injection campaign: flip real
  bits in live mechanism state, drive detection → rollback → Slice
  recomputation, and verify recovery bit-exactly against a golden
  re-execution (exit 1 unless every trial recovers exactly);
* ``acr-repro monitor --replay``  — render a recorded campaign-telemetry
  snapshot stream (``report``/``run``/``inject`` write one with
  ``--snapshots``; ``--live`` additionally shows it as a live dashboard
  while the campaign runs); ``--attach SOCKET`` renders a running
  campaign *daemon*'s frame stream live instead;
* ``acr-repro serve``             — run the campaign scheduler daemon:
  submissions over a Unix socket, results from a sharded replicated
  store that survives shard loss, concurrent clients deduped through
  in-flight leases;
* ``acr-repro submit bt ...``     — run a campaign on the daemon (or
  ``--solo`` in-process) and print/write its deterministic report —
  byte-identical across both paths;
* ``acr-repro shutdown``          — stop a running daemon.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.analysis.baselines import (
    HierarchicalConfig,
    full_snapshot_costs,
    hierarchical_costs,
)
from repro.analysis.compare import compare_runs
from repro.analysis.decomposition import (
    decompose_overhead,
    energy_by_category,
    recovery_anatomy,
)
from repro.compiler.embed import compile_program
from repro.compiler.policy import ThresholdPolicy
from repro.experiments.configs import CONFIG_NAMES
from repro.experiments.runner import ExperimentRunner
from repro.inject.campaign import build_trials, run_campaign
from repro.inject.harness import CONFIGS, DEFECTS, TARGET_KINDS
from repro.obs.export import write_chrome_trace, write_jsonl
from repro.obs.tracer import RecordingTracer
from repro.resilience.policy import ResiliencePolicy
from repro.util.tables import format_table
from repro.verify.absint.certify import certify_run
from repro.verify.diagnostics import Severity
from repro.verify.engine import select_rules, verify_program
from repro.verify.oracle import ORACLE_RULE_ID, ORACLE_RULE_SLUG
from repro.verify.rules import RULES
from repro.workloads.registry import all_workload_names, get_workload

__all__ = ["main"]


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _name_list(allowed):
    """An argparse type: comma-separated subset of ``allowed`` names."""

    def parse(text: str) -> List[str]:
        parts = [p.strip() for p in text.split(",") if p.strip()]
        bad = [p for p in parts if p not in allowed]
        if not parts or bad:
            raise argparse.ArgumentTypeError(
                f"expected comma-separated names from {allowed}, "
                f"got {text!r}"
            )
        return parts

    return parse


def _rule_list(text: str) -> List[str]:
    parts = [p.strip() for p in text.split(",") if p.strip()]
    if not parts:
        raise argparse.ArgumentTypeError("expected comma-separated rule ids")
    return parts


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload region scale (1.0 = full fidelity)")
    parser.add_argument("--cores", type=int, default=8)
    parser.add_argument("--reps", type=int, default=None)
    parser.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes for independent runs")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="persist results here and reuse them across "
                             "invocations (content-addressed, versioned)")
    parser.add_argument("--engine", choices=["interp", "vector"],
                        default="interp",
                        help="execution engine: the classic per-"
                             "instruction interpreter or the vectorized "
                             "trace-replay engine (bit-identical results, "
                             "several times faster)")
    _add_resilience(parser)


def _add_resilience(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-task wall-clock timeout for supervised "
                             "workers (default: none)")
    parser.add_argument("--max-retries", type=int, default=None,
                        metavar="N",
                        help="retries per failed/timed-out/killed task "
                             "(default: 2; deterministic backoff)")
    parser.add_argument("--resume", action="store_true",
                        help="skip tasks the completion journal already "
                             "records (requires --cache-dir); the final "
                             "report is bit-identical to an uninterrupted "
                             "run")


def _policy(args) -> Optional["ResiliencePolicy"]:
    """A ResiliencePolicy when any knob deviates from the defaults."""
    if args.timeout is None and args.max_retries is None:
        return None
    kwargs = {}
    if args.timeout is not None:
        kwargs["timeout_s"] = args.timeout
    if args.max_retries is not None:
        kwargs["max_retries"] = args.max_retries
    return ResiliencePolicy(**kwargs)


def _check_resume(args) -> None:
    if args.resume and args.cache_dir is None:
        raise ValueError(
            "--resume needs --cache-dir (the completion journal lives "
            "beside the result cache)"
        )


def _add_telemetry(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--live", action="store_true",
                        help="stream live campaign telemetry to a "
                             "dashboard on stderr (plain blocks on dumb "
                             "terminals/pipes; in-place repaint on a TTY)")
    parser.add_argument("--snapshots", type=str, default=None,
                        metavar="PATH",
                        help="write periodic telemetry snapshots (JSONL) "
                             "here; with --live/--cache-dir and no PATH, "
                             "defaults to telemetry.jsonl beside the "
                             "completion journal")


def _telemetry_for(args, runner: ExperimentRunner):
    """Build (and attach) the campaign telemetry the flags ask for —
    ``None`` (telemetry fully disabled) when neither flag is given."""
    live = getattr(args, "live", False)
    snapshots = getattr(args, "snapshots", None)
    if not live and snapshots is None:
        return None
    from repro.obs.telemetry import CampaignTelemetry, Monitor

    path = snapshots
    if path is None and runner.cache is not None:
        path = runner.cache.telemetry_path()
    telemetry = CampaignTelemetry(
        progress=runner.progress, snapshot_path=path
    )
    runner.telemetry = telemetry
    if live:
        Monitor(stream=sys.stderr).attach(telemetry)
    return telemetry


def _finish_telemetry(runner: ExperimentRunner, telemetry) -> None:
    """Close the telemetry (final snapshot), fold the totals into the
    progress footer, and print the campaign attribution table."""
    if telemetry is None:
        return
    telemetry.close()
    runner.progress.record_telemetry(
        telemetry.frames, telemetry.snapshots_written
    )
    if telemetry.profiler.total_seconds > 0:
        print()
        print(telemetry.attribution_table())
    print(runner.progress.telemetry_line())
    if telemetry.writer is not None:
        print(f"telemetry snapshots: {telemetry.writer.path}")


def _runner(args) -> ExperimentRunner:
    _check_resume(args)
    return ExperimentRunner(
        num_cores=args.cores, region_scale=args.scale, reps=args.reps,
        jobs=args.jobs, cache_dir=args.cache_dir,
        resilience=_policy(args), resume=args.resume,
        engine=args.engine,
    )


def _print_resilience(runner: ExperimentRunner) -> None:
    """The supervised-execution footer: zeros are printed, not elided."""
    print(runner.progress.resilience_line())
    print(runner.progress.cache_line())
    report = runner.last_failure_report
    if report is not None and report.tasks:
        print(report.summary_table())


def cmd_report(args) -> int:
    from repro.experiments.report import generate_report

    runner = _runner(args)
    telemetry = _telemetry_for(args, runner)
    generate_report(
        runner,
        include_scalability=args.scalability,
        out_dir=args.out,
    )
    _finish_telemetry(runner, telemetry)
    return 0


def cmd_run(args) -> int:
    runner = _runner(args)
    telemetry = _telemetry_for(args, runner)
    base = runner.baseline(args.benchmark)
    run = runner.run_default(
        args.benchmark,
        args.config,
        num_checkpoints=args.checkpoints,
        error_count=args.errors,
    )
    print(run.describe())
    print()
    print(decompose_overhead(run).describe())
    print()
    cats = energy_by_category(run)
    print(
        format_table(
            ["energy category", "uJ", "%"],
            [
                [k, round(v / 1e6, 3), round(100 * v / run.energy_pj, 1)]
                for k, v in cats.items()
            ],
        )
    )
    if run.recoveries:
        a = recovery_anatomy(run)
        print(
            f"\nrecoveries: {a.count}  waste {a.waste_ns:.0f}ns  "
            f"rollback {a.rollback_ns:.0f}ns ({a.restored_records} records)"
            f"  recompute {a.recompute_ns:.0f}ns "
            f"({a.recomputed_values} values)"
        )
    print(f"\nvs NoCkpt: wall x{run.wall_ns / base.wall_ns:.3f}  "
          f"energy x{run.energy_pj / base.energy_pj:.3f}")
    _finish_telemetry(runner, telemetry)
    return 0


def cmd_compare(args) -> int:
    runner = _runner(args)
    base = runner.baseline(args.benchmark)
    runs = [
        runner.run_default(args.benchmark, name)
        for name in CONFIG_NAMES
        if name != "NoCkpt"
    ]
    print(compare_runs(base, runs, title=f"{args.benchmark}: all configurations"))
    return 0


def cmd_slices(args) -> int:
    spec = get_workload(args.benchmark)
    program = spec.build_programs(1, region_scale=args.scale, reps=args.reps)[0]
    policy = ThresholdPolicy(args.threshold)
    cp = compile_program(program, policy)
    s = cp.stats
    print(f"{args.benchmark}: threshold {args.threshold} "
          f"(default {spec.default_threshold})")
    print(
        format_table(
            ["metric", "value"],
            [
                ["store sites", s.sites_total],
                ["sliceable", s.sites_sliceable],
                ["embedded", s.sites_embedded],
                ["loop-carried", s.sites_loop_carried],
                ["trivial copies", s.sites_trivial],
                ["coverage", f"{100 * s.coverage:.1f}%"],
                ["embedded bytes", s.embedded_bytes],
            ],
        )
    )
    print(
        format_table(
            ["rejection reason", "sites"],
            [
                [reason.value, count]
                for reason, count in s.rejection_counts().items()
            ],
            title="slice rejections by reason",
        )
    )
    hist = cp.slices.length_histogram()
    print(
        format_table(
            ["slice length", "count"],
            [[l, hist[l]] for l in sorted(hist)],
            title="embedded slice-length histogram",
        )
    )
    report = verify_program(cp, policy=policy, oracle=False)
    print(report.summary_line())
    return 0


def _lint_one(benchmark: str, args):
    """Compile one benchmark and lint it; returns (report, stats)."""
    spec = get_workload(benchmark)
    threshold = (
        args.threshold if args.threshold is not None
        else spec.default_threshold
    )
    program = spec.build_programs(1, region_scale=args.scale, reps=args.reps)[0]
    policy = ThresholdPolicy(threshold)
    cp = compile_program(program, policy)
    report = verify_program(
        cp,
        policy=policy,
        select=args.select,
        ignore=args.ignore,
        oracle=not args.no_oracle,
        oracle_samples=args.oracle_samples,
    )
    return report, cp.stats


def cmd_lint(args) -> int:
    if args.list_rules:
        rows = [
            [r.rule_id, r.slug, r.severity.value, r.summary]
            for r in RULES.values()
        ]
        rows.append([
            ORACLE_RULE_ID, ORACLE_RULE_SLUG, "error",
            "differential oracle: recompute(snapshot) == stored value",
        ])
        print(format_table(["rule", "slug", "severity", "invariant"], rows))
        return 0
    # Validate filters once up front (typos must not pass silently).
    select_rules(args.select, args.ignore)
    benchmarks = (
        all_workload_names() if args.all
        else [args.benchmark] if args.benchmark
        else None
    )
    if benchmarks is None:
        print("acr-repro: error: lint needs a benchmark or --all",
              file=sys.stderr)
        return 2

    failed = False
    payload = []
    for benchmark in benchmarks:
        report, stats = _lint_one(benchmark, args)
        failed = failed or not report.ok
        if args.format == "json":
            doc = report.to_json_dict()
            doc["benchmark"] = benchmark
            doc["sites_embedded"] = stats.sites_embedded
            payload.append(doc)
        elif report.findings:
            print(f"{benchmark}:")
            print(report.render())
        else:
            print(f"{benchmark}: {report.summary_line()}")
    if args.format == "json":
        print(json.dumps(payload if args.all else payload[0], indent=2))
    return 1 if failed else 0


_CERT_RULES = ("ACR009", "ACR010", "ACR011", "ACR012")


def _vector_runtime_coverage(programs, cores: int) -> Dict[str, int]:
    """Run the vector engine over ``programs`` and fold its coverage.

    One baseline (NoCkpt) and one checkpointed ACR run (ReCkpt_E shape)
    exercise both the plain and the compiled store paths; their
    iteration counters are summed.
    """
    from repro.arch.config import MachineConfig
    from repro.sim.simulator import SimulationOptions, Simulator

    sim = Simulator(programs, MachineConfig(num_cores=cores))
    base = sim.run(
        SimulationOptions(label="NoCkpt", scheme="none", engine="vector")
    )
    ckpt = sim.run(
        SimulationOptions(
            label="ReCkpt_E", scheme="global", acr=True,
            baseline=base.baseline_profile(), engine="vector",
        )
    )
    coverage: Dict[str, int] = {}
    for res in (base, ckpt):
        for key, n in (res.vector_coverage or {}).items():
            coverage[key] = coverage.get(key, 0) + n
    return coverage


def _analyze_one(benchmark: str, args) -> Dict[str, Any]:
    """Certify one workload's segments; returns a JSON-able document."""
    spec = get_workload(benchmark)
    programs = spec.build_programs(
        args.cores, region_scale=args.scale, reps=args.reps
    )
    certificates = [c for per in certify_run(programs) for c in per]
    by_rule: Dict[str, int] = {}
    for cert in certificates:
        for denial in cert.denials:
            by_rule[denial.rule_id] = by_rule.get(denial.rule_id, 0) + 1
    doc: Dict[str, Any] = {
        "benchmark": benchmark,
        "cores": args.cores,
        "segments": len(certificates),
        "safe": sum(1 for c in certificates if c.safe),
        "denied": sum(1 for c in certificates if not c.safe),
        "denials_by_rule": by_rule,
        "denials": [
            {
                "core": c.core,
                "kernel_index": c.kernel_index,
                "kernel": c.kernel,
                "rule": d.rule_id,
                "span": list(d.span),
                "message": d.message,
            }
            for c in certificates
            for d in c.denials
        ],
    }
    if args.explain_fallbacks:
        doc["coverage"] = _vector_runtime_coverage(programs, args.cores)
    return doc


def cmd_analyze(args) -> int:
    benchmarks = (
        all_workload_names() if args.all
        else [args.benchmark] if args.benchmark
        else None
    )
    if benchmarks is None:
        print("acr-repro: error: analyze needs a benchmark or --all",
              file=sys.stderr)
        return 2

    failed = False
    docs = []
    for benchmark in benchmarks:
        doc = _analyze_one(benchmark, args)
        # A runtime fallback whose reason is not a registry rule means a
        # segment degraded without a certificate denial explaining it —
        # a certifier soundness gap, and a hard failure.
        unknown = sorted(
            key[len("fallback."):]
            for key, n in doc.get("coverage", {}).items()
            if key.startswith("fallback.")
            and n
            and key[len("fallback."):] not in RULES
        )
        if unknown:
            doc["unexplained_fallbacks"] = unknown
            failed = True
        if any(
            RULES[d["rule"]].severity is Severity.ERROR
            for d in doc["denials"]
            if d["rule"] in RULES
        ):
            failed = True
        docs.append(doc)

    if args.format == "json":
        print(json.dumps(docs if args.all else docs[0], indent=2))
        return 1 if failed else 0

    rows = []
    for doc in docs:
        row = [
            doc["benchmark"], doc["segments"], doc["safe"], doc["denied"],
        ] + [doc["denials_by_rule"].get(r, 0) for r in _CERT_RULES]
        if args.explain_fallbacks:
            cov = doc["coverage"]
            total = (
                cov.get("replayed_iterations", 0)
                + cov.get("fallback_iterations", 0)
            )
            row.append(
                f"{100.0 * cov.get('replayed_iterations', 0) / total:.1f}%"
                if total else "n/a"
            )
        rows.append(row)
    headers = ["benchmark", "segments", "safe", "denied", *_CERT_RULES]
    if args.explain_fallbacks:
        headers.append("replayed")
    print(format_table(headers, rows, title="vector-safety certificates"))

    if args.explain_fallbacks:
        for doc in docs:
            name = doc["benchmark"]
            for d in doc["denials"]:
                print(
                    f"{name}: core {d['core']} kernel {d['kernel_index']} "
                    f"({d['kernel']}): {d['rule']} "
                    f"instr {d['span'][0]}..{d['span'][1]} — {d['message']}"
                )
            for key in sorted(doc["coverage"]):
                if key.startswith("fallback.") and doc["coverage"][key]:
                    print(
                        f"{name}: runtime fallback "
                        f"{key[len('fallback.'):]}: "
                        f"{doc['coverage'][key]} iterations"
                    )
            if "unexplained_fallbacks" in doc:
                print(
                    f"{name}: UNEXPLAINED fallback reasons: "
                    f"{', '.join(doc['unexplained_fallbacks'])}"
                )
    return 1 if failed else 0


def cmd_trace(args) -> int:
    runner = _runner(args)
    tracer = RecordingTracer(capacity=args.limit)
    run = runner.run_traced(
        args.benchmark,
        runner.default_request(
            args.benchmark,
            args.config,
            num_checkpoints=args.checkpoints,
            error_count=args.errors,
        ),
        tracer=tracer,
    )
    write_chrome_trace(tracer.events, args.out)
    print(run.describe())
    print(f"\nchrome trace: {args.out} ({tracer.captured} events) — "
          f"load at https://ui.perfetto.dev")
    if args.jsonl:
        lines = write_jsonl(tracer.events, args.jsonl)
        print(f"event stream: {args.jsonl} ({lines} lines)")
    print(runner.progress.tracing_line())
    return 0


def cmd_stats(args) -> int:
    runner = _runner(args)
    tracer = (
        RecordingTracer(capacity=args.limit)
        if args.limit is not None
        else None
    )
    run = runner.run_traced(
        args.benchmark,
        runner.default_request(
            args.benchmark,
            args.config,
            num_checkpoints=args.checkpoints,
            error_count=args.errors,
        ),
        tracer=tracer,
        collect_metrics=True,
    )
    print(run.describe())
    print()
    print(run.obs.summary_table())
    if tracer is not None:
        print()
        print(runner.progress.tracing_line())
        if run.obs.events_dropped:
            print(
                f"warning: {run.obs.events_dropped} events dropped at "
                f"--limit {args.limit}; raise the cap to keep them",
                file=sys.stderr,
            )
    return 0


def cmd_inject(args) -> int:
    known = all_workload_names()
    unknown = [b for b in args.benchmarks if b not in known]
    if unknown:
        raise ValueError(
            f"unknown benchmark(s) {', '.join(unknown)} "
            f"(choose from {', '.join(known)})"
        )
    specs = build_trials(
        args.benchmarks or all_workload_names(),
        trials=args.trials,
        seed=args.seed,
        configs=args.configs,
        targets=args.targets,
        num_cores=args.cores,
        steps_per_interval=args.steps_per_interval,
        iters_per_step=args.iters_per_step,
        region_scale=args.scale,
        reps=args.reps,
        detection_latency_fraction=args.latency,
        defect=args.defect,
    )
    _check_resume(args)
    runner = ExperimentRunner(
        jobs=args.jobs, cache_dir=args.cache_dir,
        resilience=_policy(args), resume=args.resume,
        engine=args.engine,
        snapshots=not args.no_fork,
        snapshot_dir=args.snapshot_dir,
    )
    telemetry = _telemetry_for(args, runner)
    report = run_campaign(runner, specs)
    print(report.summary_table())
    for trial in report.divergent_trials()[:8]:
        d = trial.divergences[0]
        print(
            f"  diverged: {trial.spec.workload}/{trial.spec.config} "
            f"seed {trial.spec.seed} target {trial.injection.kind} — "
            f"address {d.address:#x} (interval {d.interval}, {d.phase}) "
            f"expected {d.expected:#x} got {d.actual:#x}"
            + (f" [{trial.detail}]" if trial.detail else "")
        )
    print(report.verdict_line())
    print(runner.progress.summary_line())
    if runner.progress.forked_trials:
        print(runner.progress.forked_line())
    _print_resilience(runner)
    _finish_telemetry(runner, telemetry)
    if args.json:
        report.write_json(args.json)
        print(f"json report: {args.json}")
    return 0 if report.ok else 1


def cmd_monitor(args) -> int:
    from repro.obs.telemetry import replay

    if args.attach is not None:
        return _monitor_attach(args.attach)
    if args.replay is None:
        print("acr-repro: error: monitor needs --replay or --attach",
              file=sys.stderr)
        return 2
    return replay(args.replay)


def _monitor_attach(socket_path: str) -> int:
    """Subscribe to a running daemon's frame stream and render it live —
    the remote flavour of the ``--live`` dashboard."""
    from repro.obs.telemetry import CampaignTelemetry, Monitor
    from repro.service import CampaignClient, ServiceError

    telemetry = CampaignTelemetry()
    Monitor(stream=sys.stderr).attach(telemetry)
    try:
        with CampaignClient(socket_path) as client:
            client.watch(telemetry.on_frame_dict)
    except ServiceError as exc:
        print(f"acr-repro: monitor: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        pass
    print(
        f"\nmonitor: {telemetry.frames} frames "
        f"({telemetry.malformed} malformed)",
        file=sys.stderr,
    )
    return 0


def _campaign_spec(args):
    """The CampaignSpec the ``submit`` flags describe (shared by the
    service and ``--solo`` paths, so both name the same key set)."""
    from repro.service import CampaignSpec

    return CampaignSpec(
        workloads=tuple(args.benchmarks or all_workload_names()),
        configs=tuple(args.configs),
        num_cores=args.cores,
        region_scale=args.scale,
        reps=args.reps,
        num_checkpoints=args.checkpoints,
        error_count=args.errors,
        threshold=args.threshold,
        memory_seed=args.seed,
        engine=args.engine,
    )


def _emit_report(report: Dict[str, Any], json_path: Optional[str]) -> None:
    """Render one campaign report; optionally persist it as canonical
    JSON.  Both the service and ``--solo`` paths go through this exact
    writer, so their files compare byte-equal with ``cmp``."""
    from repro.service.campaigns import render_report

    print(render_report(report))
    if json_path:
        from pathlib import Path as _Path

        _Path(json_path).write_text(
            json.dumps(report, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"json report: {json_path}")


def cmd_serve(args) -> int:
    from repro.service import CampaignDaemon

    daemon = CampaignDaemon(
        args.cache_dir,
        args.socket,
        shards=args.shards,
        replicas=args.replicas,
        jobs=args.jobs,
        heartbeat_s=args.heartbeat,
        resilience=_policy(args),
        echo=lambda line: print(f"serve: {line}", file=sys.stderr),
    )
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        daemon.stop()
    return 0


def cmd_submit(args) -> int:
    from repro.service import CampaignClient, campaign_report

    known = all_workload_names()
    unknown = [b for b in args.benchmarks if b not in known]
    if unknown:
        raise ValueError(
            f"unknown benchmark(s) {', '.join(unknown)} "
            f"(choose from {', '.join(known)})"
        )
    spec = _campaign_spec(args)
    if args.solo:
        if args.cache_dir is None:
            raise ValueError("--solo needs --cache-dir")
        runner = ExperimentRunner(
            num_cores=spec.num_cores, region_scale=spec.region_scale,
            reps=spec.reps, jobs=args.jobs, cache_dir=args.cache_dir,
            engine=spec.engine,
        )
        _emit_report(campaign_report(runner, spec), args.json)
        return 0
    if args.socket is None:
        raise ValueError("submit needs --socket (or --solo --cache-dir)")
    on_frame = None
    if args.stream:
        from repro.obs.telemetry import CampaignTelemetry, Monitor

        telemetry = CampaignTelemetry()
        Monitor(stream=sys.stderr).attach(telemetry)
        on_frame = telemetry.on_frame_dict
    from repro.service import ServiceError

    try:
        with CampaignClient(args.socket) as client:
            report = client.submit(
                spec, stream=args.stream, on_frame=on_frame
            )
    except ServiceError as exc:
        print(f"acr-repro: submit: {exc}", file=sys.stderr)
        return 2
    _emit_report(report, args.json)
    return 0


def cmd_shutdown(args) -> int:
    from repro.service import CampaignClient, ServiceError

    try:
        with CampaignClient(args.socket) as client:
            client.shutdown()
    except ServiceError as exc:
        print(f"acr-repro: shutdown: {exc}", file=sys.stderr)
        return 2
    print("daemon shutting down", file=sys.stderr)
    return 0


def cmd_baselines(args) -> int:
    runner = _runner(args)
    for config in ("Ckpt_NE", "ReCkpt_NE"):
        run = runner.run_default(args.benchmark, config)
        fs = full_snapshot_costs(run)
        h = hierarchical_costs(run, HierarchicalConfig(every_k=args.every_k))
        print(f"{config}:")
        print(f"  incremental log      : {run.total_checkpoint_bytes} B")
        print(f"  full snapshots would : {fs.total_bytes} B "
              f"(x{fs.inflation:.2f}), {fs.write_time_ns / 1e3:.1f} us")
        print(f"  level-2 drain (1/{args.every_k}): {h.drained_bytes} B in "
              f"{h.drain_time_ns / 1e3:.1f} us "
              f"over {h.drained_checkpoints} drains")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="acr-repro",
        description="ACR (HPCA 2020) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="regenerate the paper's evaluation")
    _add_common(p)
    p.add_argument("--scalability", action="store_true")
    p.add_argument("--out", type=str, default=None,
                   help="also write each artifact to <out>/<name>.txt")
    _add_telemetry(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("run", help="run one configuration")
    p.add_argument("benchmark", choices=all_workload_names())
    p.add_argument("config", choices=[c for c in CONFIG_NAMES if c != "NoCkpt"])
    p.add_argument("--checkpoints", type=int, default=25)
    p.add_argument("--errors", type=int, default=1)
    _add_common(p)
    _add_telemetry(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("compare", help="all configurations side by side")
    p.add_argument("benchmark", choices=all_workload_names())
    _add_common(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("slices", help="compiler-pass statistics")
    p.add_argument("benchmark", choices=all_workload_names())
    p.add_argument("--threshold", type=int, default=10)
    _add_common(p)
    p.set_defaults(func=cmd_slices)

    p = sub.add_parser(
        "lint",
        help="slice soundness verification (exit 1 on error findings)",
    )
    p.add_argument("benchmark", nargs="?", choices=all_workload_names(),
                   help="benchmark to verify (or use --all)")
    p.add_argument("--all", action="store_true",
                   help="verify every registered workload")
    p.add_argument("--threshold", type=int, default=None,
                   help="slice-length threshold (default: the workload's)")
    p.add_argument("--select", type=_rule_list, default=None,
                   metavar="RULES",
                   help="comma-separated rule-id prefixes to run "
                        "(e.g. ACR001,ACR003)")
    p.add_argument("--ignore", type=_rule_list, default=None,
                   metavar="RULES",
                   help="comma-separated rule-id prefixes to skip")
    p.add_argument("--format", choices=["table", "json"], default="table")
    p.add_argument("--no-oracle", action="store_true",
                   help="skip the differential recompute oracle (ACR008)")
    p.add_argument("--oracle-samples", type=_positive_int, default=3,
                   help="dynamic stores replayed per covered site")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule registry and exit")
    p.add_argument("--scale", type=float, default=0.5,
                   help="workload region scale (1.0 = full fidelity)")
    p.add_argument("--reps", type=int, default=None)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "analyze",
        help="static vector-safety certification (ACR009-ACR012): prove "
             "trace segments safe to replay and attribute every runtime "
             "fallback (exit 1 on error findings or unexplained fallbacks)",
    )
    p.add_argument("benchmark", nargs="?", choices=all_workload_names(),
                   help="benchmark to certify (or use --all)")
    p.add_argument("--all", action="store_true",
                   help="certify every registered workload")
    p.add_argument("--cores", type=_positive_int, default=8,
                   help="cores (programs) per run")
    p.add_argument("--scale", type=float, default=0.5,
                   help="workload region scale (1.0 = full fidelity)")
    p.add_argument("--reps", type=int, default=None)
    p.add_argument("--format", choices=["table", "json"], default="table")
    p.add_argument("--explain-fallbacks", action="store_true",
                   help="list each denied segment, run the vector engine "
                        "and attribute every runtime fallback to a rule")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "trace",
        help="run one configuration with event tracing; export a "
             "Perfetto-loadable Chrome trace",
    )
    p.add_argument("benchmark", choices=all_workload_names())
    p.add_argument("config", nargs="?", default="ReCkpt_E",
                   choices=list(CONFIG_NAMES))
    p.add_argument("--checkpoints", type=int, default=25)
    p.add_argument("--errors", type=int, default=1)
    p.add_argument("--out", type=str, default="run.trace.json",
                   help="Chrome trace_event output path")
    p.add_argument("--jsonl", type=str, default=None,
                   help="also write the raw event stream as JSONL")
    p.add_argument("--limit", type=_positive_int, default=None,
                   help="cap captured events (earliest kept; rest counted "
                        "as dropped)")
    _add_common(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "stats",
        help="run one configuration with metrics collection and print "
             "the counter/histogram tables",
    )
    p.add_argument("benchmark", choices=all_workload_names())
    p.add_argument("config", nargs="?", default="ReCkpt_E",
                   choices=list(CONFIG_NAMES))
    p.add_argument("--checkpoints", type=int, default=25)
    p.add_argument("--errors", type=int, default=1)
    p.add_argument("--limit", type=_positive_int, default=None,
                   help="also record the event stream, capped at LIMIT "
                        "(earliest kept; the rest counted as dropped and "
                        "surfaced in the trace footer)")
    _add_common(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "inject",
        help="fault-injection campaign: flip bits in live state, recover, "
             "verify bit-exactly (exit 1 on any divergence)",
    )
    # No ``choices=`` here: argparse rejects the empty default against a
    # choices list when ``nargs="*"``; cmd_inject validates names instead.
    p.add_argument("benchmarks", nargs="*", metavar="benchmark",
                   help="benchmarks to sweep (default: all)")
    p.add_argument("--trials", type=_positive_int, default=8,
                   help="trials per configuration (workloads and targets "
                        "rotate round-robin)")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; trial i uses seed + i")
    p.add_argument("--configs", type=_name_list(CONFIGS), default=CONFIGS,
                   metavar="NAMES", help="comma-separated subset of "
                                         f"{','.join(CONFIGS)}")
    p.add_argument("--targets", type=_name_list(TARGET_KINDS),
                   default=TARGET_KINDS, metavar="KINDS",
                   help="comma-separated subset of "
                        f"{','.join(TARGET_KINDS)}")
    p.add_argument("--cores", type=_positive_int, default=2)
    p.add_argument("--steps-per-interval", type=_positive_int, default=4)
    p.add_argument("--iters-per-step", type=_positive_int, default=8)
    p.add_argument("--scale", type=float, default=0.05,
                   help="workload region scale (trials favour small, "
                        "many-seed sweeps)")
    p.add_argument("--reps", type=int, default=4)
    p.add_argument("--latency", type=float, default=0.5,
                   help="detection latency as a fraction of the "
                        "checkpoint period (0..1)")
    p.add_argument("--defect", choices=DEFECTS, default=None,
                   help="seed a deliberate recovery defect — the campaign "
                        "should then FAIL with divergence provenance")
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="worker processes for independent trials")
    p.add_argument("--cache-dir", type=str, default=None,
                   help="persist per-trial results here (content-"
                        "addressed, versioned)")
    p.add_argument("--engine", choices=["interp", "vector"],
                   default="interp",
                   help="interpreter flavour for both passes "
                        "(bit-identical results)")
    p.add_argument("--snapshot-dir", type=str, default=None,
                   help="persist golden-run boundary snapshots here so "
                        "repeated campaigns skip their golden passes "
                        "(results stay bit-identical)")
    p.add_argument("--no-fork", action="store_true",
                   help="run every trial straight through from step 0 "
                        "instead of forking from golden snapshots "
                        "(bit-identical, slower; for debugging)")
    _add_resilience(p)
    _add_telemetry(p)
    p.add_argument("--json", type=str, default=None,
                   help="also write the machine-readable report here")
    p.set_defaults(func=cmd_inject)

    p = sub.add_parser(
        "monitor",
        help="replay a recorded telemetry snapshot stream as the live "
             "dashboard would have rendered it, or attach to a running "
             "campaign daemon's live frame stream",
    )
    p.add_argument("--replay", type=str, default=None,
                   metavar="SNAPSHOTS",
                   help="telemetry snapshot JSONL (telemetry.jsonl beside "
                        "the completion journal, or --snapshots PATH)")
    p.add_argument("--attach", type=str, default=None, metavar="SOCKET",
                   help="subscribe to the campaign daemon at this Unix "
                        "socket and render its frames live")
    p.set_defaults(func=cmd_monitor)

    p = sub.add_parser(
        "serve",
        help="run the campaign scheduler daemon: submissions over a Unix "
             "socket, results from a sharded replicated store (R copies "
             "per entry; shard loss costs nothing, majority loss "
             "degrades to direct-disk serving)",
    )
    p.add_argument("--socket", type=str, required=True,
                   help="Unix socket path to listen on (keep it short: "
                        "AF_UNIX caps ~100 bytes)")
    p.add_argument("--cache-dir", type=str, required=True,
                   help="the durable result store the shards replicate "
                        "(content-addressed, versioned)")
    p.add_argument("--shards", type=_positive_int, default=4,
                   help="shard processes partitioning the keyspace")
    p.add_argument("--replicas", type=_positive_int, default=2,
                   help="copies per entry (primary + ring successors)")
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="worker processes per campaign")
    p.add_argument("--heartbeat", type=float, default=0.5,
                   metavar="SECONDS",
                   help="shard liveness-check period")
    p.add_argument("--timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-task wall-clock timeout for supervised "
                        "workers (default: none)")
    p.add_argument("--max-retries", type=int, default=None, metavar="N",
                   help="retries per failed/timed-out/killed task "
                        "(default: 2; deterministic backoff)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="run a campaign on the daemon (or --solo in-process) and "
             "print its deterministic report — byte-identical across "
             "both paths",
    )
    p.add_argument("benchmarks", nargs="*", metavar="benchmark",
                   help="workloads to sweep (default: all)")
    p.add_argument("--configs", type=_name_list(CONFIG_NAMES),
                   default=[c for c in CONFIG_NAMES if c != "NoCkpt"],
                   metavar="NAMES",
                   help="comma-separated subset of "
                        f"{','.join(CONFIG_NAMES)} (default: all but "
                        "NoCkpt; baselines run implicitly)")
    p.add_argument("--socket", type=str, default=None,
                   help="daemon Unix socket (required unless --solo)")
    p.add_argument("--solo", action="store_true",
                   help="run the same campaign in-process instead (for "
                        "comparing reports against the service)")
    p.add_argument("--stream", action="store_true",
                   help="stream the daemon's telemetry frames into a "
                        "live dashboard on stderr")
    p.add_argument("--checkpoints", type=int, default=25)
    p.add_argument("--errors", type=int, default=1)
    p.add_argument("--threshold", type=int, default=None,
                   help="slice-length threshold (default: per workload)")
    p.add_argument("--seed", type=int, default=0,
                   help="memory seed shared by every run in the campaign")
    p.add_argument("--scale", type=float, default=0.5,
                   help="workload region scale (1.0 = full fidelity)")
    p.add_argument("--cores", type=_positive_int, default=8)
    p.add_argument("--reps", type=int, default=None)
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="worker processes (--solo only; the daemon's "
                        "--jobs governs service runs)")
    p.add_argument("--cache-dir", type=str, default=None,
                   help="result cache for --solo runs")
    p.add_argument("--engine", choices=["interp", "vector"],
                   default="interp")
    p.add_argument("--json", type=str, default=None,
                   help="also write the report as canonical JSON "
                        "(byte-identical across service/solo paths)")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("shutdown", help="stop a running campaign daemon")
    p.add_argument("--socket", type=str, required=True,
                   help="the daemon's Unix socket")
    p.set_defaults(func=cmd_shutdown)

    p = sub.add_parser("baselines", help="what-if checkpointing baselines")
    p.add_argument("benchmark", choices=all_workload_names())
    p.add_argument("--every-k", type=int, default=5)
    _add_common(p)
    p.set_defaults(func=cmd_baselines)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        print(f"acr-repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
