"""Tests for the tracer protocol and the typed event vocabulary."""

import dataclasses

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    AddrMapEvict,
    CheckpointBegin,
    LogWrite,
    SliceRecompute,
    TraceEvent,
)
from repro.obs.tracer import NullTracer, RecordingTracer, Tracer


def make_event(ts=1.5, core=0):
    return LogWrite(ts_ns=ts, core=core, address=64, line=1,
                    size_bytes=16, taken=True)


class TestEvents:
    def test_registry_is_consistent(self):
        assert len(EVENT_TYPES) == 17
        for name, cls in EVENT_TYPES.items():
            assert cls.name == name
            assert issubclass(cls, TraceEvent)

    def test_wire_names_are_unique_and_stable(self):
        assert "log_write" in EVENT_TYPES
        assert EVENT_TYPES["log_write"] is LogWrite
        assert EVENT_TYPES["checkpoint_begin"] is CheckpointBegin
        assert EVENT_TYPES["slice_recompute"] is SliceRecompute

    def test_to_dict_includes_name_and_all_fields(self):
        ev = make_event()
        doc = ev.to_dict()
        assert doc["name"] == "log_write"
        for f in dataclasses.fields(ev):
            assert doc[f.name] == getattr(ev, f.name)

    def test_events_are_frozen(self):
        ev = make_event()
        with pytest.raises(dataclasses.FrozenInstanceError):
            ev.ts_ns = 0.0

    def test_machine_wide_core_id(self):
        ev = CheckpointBegin(ts_ns=0.0, core=-1, index=3)
        assert ev.to_dict() == {
            "name": "checkpoint_begin", "ts_ns": 0.0, "core": -1, "index": 3,
        }

    def test_evict_reasons_documented(self):
        for reason in ("invalidated", "rejected", "replaced"):
            ev = AddrMapEvict(ts_ns=0.0, core=0, address=8, reason=reason)
            assert ev.to_dict()["reason"] == reason


class TestNullTracer:
    def test_disabled_and_silent(self):
        t = NullTracer()
        assert t.enabled is False
        t.emit(make_event())  # must not raise, must not store anything
        assert isinstance(t, Tracer)


class TestRecordingTracer:
    def test_captures_in_order(self):
        t = RecordingTracer()
        assert t.enabled is True
        events = [make_event(ts=float(i)) for i in range(5)]
        for ev in events:
            t.emit(ev)
        assert t.events == events
        assert t.captured == 5
        assert t.dropped == 0

    def test_capacity_keeps_earliest_and_counts_drops(self):
        t = RecordingTracer(capacity=3)
        for i in range(10):
            t.emit(make_event(ts=float(i)))
        assert t.captured == 3
        assert t.dropped == 7
        assert [ev.ts_ns for ev in t.events] == [0.0, 1.0, 2.0]

    def test_zero_capacity_drops_everything(self):
        t = RecordingTracer(capacity=0)
        t.emit(make_event())
        assert t.captured == 0
        assert t.dropped == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            RecordingTracer(capacity=-1)

    def test_clear_resets_buffer_and_counter(self):
        t = RecordingTracer(capacity=1)
        t.emit(make_event())
        t.emit(make_event())
        t.clear()
        assert t.captured == 0
        assert t.dropped == 0
        t.emit(make_event())
        assert t.captured == 1
