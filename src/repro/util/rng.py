"""Deterministic random number generation.

Every stochastic choice in the reproduction (workload address streams,
value seeds, error placement jitter) flows through :class:`DeterministicRng`
so that two runs with the same configuration produce bit-identical results.
Seeds for subcomponents are *derived* from a parent seed and a string label
rather than drawn sequentially, so adding a new consumer of randomness never
perturbs existing streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["DeterministicRng", "derive_seed", "spawn_rngs"]

_SEED_MASK = (1 << 63) - 1


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a child seed from ``parent_seed`` and a human-readable label.

    The derivation hashes the pair, so distinct labels yield statistically
    independent streams and the mapping is stable across Python versions
    (unlike ``hash()``, which is salted per process).
    """
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _SEED_MASK


class DeterministicRng:
    """A labelled, reproducible random stream.

    Thin wrapper over :class:`random.Random` that remembers its seed and
    label (useful in error messages and result metadata) and adds a few
    convenience draws used throughout the workload generators.
    """

    def __init__(self, seed: int, label: str = "root") -> None:
        self.seed = seed
        self.label = label
        self._rng = random.Random(seed)

    def child(self, label: str) -> "DeterministicRng":
        """Return an independent stream derived from this one."""
        return DeterministicRng(derive_seed(self.seed, label), label)

    # -- stream position (simulator snapshots) -----------------------------
    def getstate(self) -> tuple:
        """The underlying stream position (JSON round-trippable via
        :meth:`setstate`, which re-tuples decoded lists)."""
        return self._rng.getstate()

    def setstate(self, state: Sequence) -> None:
        """Restore a position from :meth:`getstate`.

        Accepts the original tuple or its JSON round-trip (lists), so
        snapshot payloads can carry stream positions as plain data.
        """
        version, internal, gauss = state
        self._rng.setstate((version, tuple(internal), gauss))

    # -- primitive draws ---------------------------------------------------
    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` inclusive."""
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform float in ``[lo, hi)``."""
        return self._rng.uniform(lo, hi)

    def expovariate(self, rate: float) -> float:
        """Exponentially distributed float with the given rate."""
        return self._rng.expovariate(rate)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._rng.choice(seq)

    def shuffle(self, seq: List[T]) -> None:
        """Shuffle ``seq`` in place."""
        self._rng.shuffle(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """Sample ``k`` distinct elements."""
        return self._rng.sample(seq, k)

    # -- composite draws ---------------------------------------------------
    def weighted_index(self, weights: Sequence[float]) -> int:
        """Pick an index with probability proportional to ``weights``."""
        total = float(sum(weights))
        if total <= 0.0:
            raise ValueError("weights must have a positive sum")
        point = self._rng.random() * total
        acc = 0.0
        for idx, weight in enumerate(weights):
            acc += weight
            if point < acc:
                return idx
        return len(weights) - 1

    def value_seed(self) -> int:
        """A 32-bit value suitable for seeding synthetic data values."""
        return self._rng.getrandbits(32)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DeterministicRng(seed={self.seed}, label={self.label!r})"


def spawn_rngs(seed: int, labels: Iterable[str]) -> List[DeterministicRng]:
    """Spawn one independent stream per label from a single parent seed."""
    return [DeterministicRng(derive_seed(seed, label), label) for label in labels]
