"""Slice soundness verifier: static analysis over compiled programs.

ACR's safety argument rests on a compiler invariant — every store whose
old-value logging is omitted carries a Slice that is pure, short,
frontier-complete and recomputes exactly the value that would have been
logged.  This package *proves* that invariant per compiled binary instead
of assuming it:

* :mod:`repro.verify.dataflow` — reaching definitions / def-use chains
  over kernel bodies (on top of the compiler's dependence graph);
* :mod:`repro.verify.rules` — the rule registry (``ACR001``–``ACR007``
  soundness errors, ``ACR009``–``ACR012`` advisory vector-safety rules)
  with stable ids and severities;
* :mod:`repro.verify.oracle` — the differential recompute oracle
  (``ACR008``): replays every embedded slice against the interpreter;
* :mod:`repro.verify.absint` — abstract address-range analysis issuing
  per-segment vector-safety certificates (consumed by
  :mod:`repro.sim.vector`; explained by ``acr-repro analyze``);
* :mod:`repro.verify.engine` — rule selection and the
  ``compile_program(verify=True)`` post-pass;
* :mod:`repro.verify.mutations` — a defect-seeding corpus that proves
  each rule fires on its defect class and nothing else.

Surfaced as ``acr-repro lint`` and ``acr-repro analyze`` on the command
line.
"""

from repro.verify.absint import (
    AccessRange,
    Denial,
    KernelSummary,
    ProgramSummary,
    SegmentCertificate,
    certify_run,
    summarize_program,
)

from repro.verify.dataflow import KernelDataflow
from repro.verify.diagnostics import Diagnostic, LintReport, Severity
from repro.verify.engine import (
    ALL_RULE_IDS,
    SliceVerificationError,
    select_rules,
    verify_program,
)
from repro.verify.mutations import DEFECT_RULE_IDS, seed_defect
from repro.verify.oracle import OracleResult, run_differential_oracle
from repro.verify.rules import RULES, VerifyContext, slice_required_inputs

__all__ = [
    "ALL_RULE_IDS",
    "AccessRange",
    "DEFECT_RULE_IDS",
    "Denial",
    "Diagnostic",
    "KernelDataflow",
    "KernelSummary",
    "LintReport",
    "OracleResult",
    "ProgramSummary",
    "RULES",
    "SegmentCertificate",
    "Severity",
    "SliceVerificationError",
    "VerifyContext",
    "certify_run",
    "run_differential_oracle",
    "seed_defect",
    "select_rules",
    "slice_required_inputs",
    "summarize_program",
    "verify_program",
]
