"""Plan evaluator oracle: codegen and numpy paths vs the scalar reference.

``plans._build_scalar`` is the deliberately-simple oracle kept off the
production path; the shape-keyed generated evaluators and the batched
numpy evaluator must reproduce its every output stream — addresses,
lines, store values, register rows, external-load sets and the overlap
bit — for any body shape.  Divergence here would surface as an engine
mismatch far downstream, so it is pinned at the source.
"""

from __future__ import annotations

import random

import pytest

from repro.isa.instructions import LINE_BYTES, AddressPattern
from repro.isa.program import Program
from repro.sim.vector.plans import (
    NUMPY_MIN_TRIP,
    KernelPlan,
    _build_plan,
    _build_scalar,
    _kernel_shape,
    ops_for_kernel,
)
from tests.sim.test_engine_equivalence import _random_kernel

SEED = 0


def _scalar_reference(kernel):
    """Evaluate ``kernel`` through the oracle into a fresh plan."""
    plan = KernelPlan(kernel)
    width = _kernel_shape(kernel)[0]
    plan.width = width
    # ops_for_kernel needs a program; a single-kernel wrapper does (the
    # program rewrite only renumbers store sites, never addresses).
    _, ops = ops_for_kernel(Program([kernel], 0), 0)
    _build_scalar(plan, ops, width, kernel.trip_count, SEED, LINE_BYTES)
    return plan


def _ints(values):
    return [int(v) for v in values]


def _assert_streams_match(plan, oracle, tag):
    assert _ints(plan.addrs) == _ints(oracle.addrs), tag
    assert _ints(plan.lines) == _ints(oracle.lines), tag
    assert _ints(plan.svalues) == _ints(oracle.svalues), tag
    assert set(map(int, plan.external_loads)) == set(
        map(int, oracle.external_loads)
    ), tag
    assert plan.overlap == oracle.overlap, tag
    assert [_ints(r) for r in plan.rows()] == [_ints(r) for r in oracle.rows()], tag


class TestCodegenMatchesScalarOracle:
    @pytest.mark.parametrize("batch", range(5))
    def test_random_kernels(self, batch):
        rng = random.Random(1000 + batch)
        for k in range(40):
            kernel = _random_kernel(rng, f"o{batch}.{k}", 1 << 24)
            plan = _build_plan(kernel, SEED, LINE_BYTES)
            _assert_streams_match(
                plan, _scalar_reference(kernel), f"batch={batch} k={k}"
            )

    def test_numpy_path_matches_scalar_oracle(self):
        """Kernels at/above the numpy threshold, built *with* a program
        (the numpy-eligibility condition), against the oracle."""
        rng = random.Random(77)
        checked = 0
        for k in range(60):
            kernel = _random_kernel(rng, f"np.{k}", 1 << 24)
            if kernel.trip_count < NUMPY_MIN_TRIP:
                continue
            program = Program([kernel], 0)
            plan = _build_plan(
                program.kernels[0], SEED, LINE_BYTES, program=program, kernel_index=0
            )
            _assert_streams_match(
                plan, _scalar_reference(program.kernels[0]), f"k={k}"
            )
            checked += 1
        assert checked >= 10  # the trip pool guarantees eligible kernels

    def test_seed_sensitivity(self):
        """External loads (hence store values) depend on the memory seed;
        both evaluators must agree for any seed."""
        rng = random.Random(5)
        kernel = _random_kernel(rng, "seeded", 1 << 24)
        for seed in (0, 1, 0xDEADBEEF):
            plan = _build_plan(kernel, seed, LINE_BYTES)
            oracle = KernelPlan(kernel)
            width = _kernel_shape(kernel)[0]
            oracle.width = width
            _, ops = ops_for_kernel(Program([kernel], 0), 0)
            _build_scalar(oracle, ops, width, kernel.trip_count, seed, LINE_BYTES)
            _assert_streams_match(plan, oracle, f"seed={seed}")


class TestAccessRows:
    """The replay engine's working form must mirror the flat streams."""

    def test_access_rows_consistent_with_streams(self):
        rng = random.Random(9)
        for k in range(20):
            kernel = _random_kernel(rng, f"ar.{k}", 1 << 24)
            plan = _build_plan(kernel, SEED, LINE_BYTES)
            acc = plan.access_rows()
            assert len(acc) == plan.trip
            flat = [t for row in acc for t in row]
            assert [a for a, _, _, _ in flat] == _ints(plan.addrs)
            assert [l for _, l, _, _ in flat] == _ints(plan.lines)
            assert [s for _, _, s, _ in flat] == list(plan.store_flags) * plan.trip
            assert [v for _, _, s, v in flat if s] == _ints(plan.svalues)
            assert all(v is None for _, _, s, v in flat if not s)

    def test_access_rows_cached(self):
        kernel = _random_kernel(random.Random(3), "cache", 1 << 24)
        plan = _build_plan(kernel, SEED, LINE_BYTES)
        assert plan.access_rows() is plan.access_rows()


def test_plans_work_without_numpy():
    """numpy is an optional accelerator: with it blocked, plans must
    still build (through the generated scalar evaluators) and the
    engines must still agree."""
    import subprocess
    import sys
    import textwrap
    from pathlib import Path

    script = textwrap.dedent(
        """
        import sys

        class Blocker:
            def find_module(self, name, path=None):
                if name == "numpy":
                    return self
            def load_module(self, name):
                raise ImportError("numpy blocked")

        sys.meta_path.insert(0, Blocker())
        from repro.sim.vector import plans
        assert plans.np is None
        from repro.isa.builder import chain_kernel
        from repro.isa.instructions import AddressPattern
        from repro.isa.program import Program
        program = Program([chain_kernel(
            "k", AddressPattern(0, 1, 32),
            [AddressPattern(1 << 20, 1, 32)], 3, 32)], 0)
        plan = plans.plans_for(program, 0, 64).plan(0)
        assert len(plan.addrs) == 64 and len(plan.svalues) == 32
        assert plan.first_store_occurrence().count(True) == 32
        """
    )
    src = Path(__file__).resolve().parents[2] / "src"
    proc = subprocess.run(
        [sys.executable, "-c", script],
        env={"PYTHONPATH": str(src)},
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 0, proc.stderr


class TestOverlapDetection:
    def test_disjoint_regions_no_overlap(self):
        from repro.isa.builder import chain_kernel

        kernel = chain_kernel(
            "disjoint",
            AddressPattern(0, 1, 8),
            [AddressPattern(1 << 20, 1, 8)],
            chain_depth=2,
            trip_count=8,
        )
        assert not _build_plan(kernel, SEED, LINE_BYTES).overlap

    def test_store_then_load_same_word_overlaps(self):
        from repro.isa.builder import chain_kernel

        region = AddressPattern(0, 1, 8)
        kernel = chain_kernel(
            "alias", region, [region], chain_depth=2, trip_count=8
        )
        plan = _build_plan(kernel, SEED, LINE_BYTES)
        assert plan.overlap


class TestOverlapEdgeCases:
    """Directed footprint edge cases: the overlap bit must be *exact*.

    Addresses follow ``base + ((offset + i*stride) % length) * 8``; a
    range-interval approximation would get every case below wrong in at
    least one direction, so these pin the enumerated-footprint
    semantics for both the plan builder and the static certifier.
    """

    @staticmethod
    def _kernel(load, store, trip):
        from repro.isa.builder import chain_kernel

        return chain_kernel(
            "edge", store, [load], chain_depth=2, trip_count=trip
        )

    def _overlap(self, load, store, trip):
        from repro.verify.absint.certify import summarize_kernel

        kernel = self._kernel(load, store, trip)
        plan = _build_plan(kernel, SEED, LINE_BYTES)
        # The static certifier must agree with the ground truth exactly.
        assert summarize_kernel(0, kernel).overlap == plan.overlap
        return plan.overlap

    def test_wraparound_reaches_store_words(self):
        # Load indices 6,7,0,1 — the wrap back to 0,1 hits the store's
        # 0..3; without modular wrap the footprints look disjoint.
        load = AddressPattern(0, 1, 8, offset=6)
        store = AddressPattern(0, 1, 8)
        assert self._overlap(load, store, trip=4)

    def test_short_trip_stops_before_wrap(self):
        # Same patterns, trip 2: load touches only indices 6,7.
        load = AddressPattern(0, 1, 8, offset=6)
        store = AddressPattern(0, 1, 8)
        assert not self._overlap(load, store, trip=2)

    def test_stride_zero_hits_fixed_word(self):
        # A stride-0 load pins one word; the store walks into it at
        # iteration 3.
        load = AddressPattern(0, 0, 8, offset=3)
        store = AddressPattern(0, 1, 8)
        assert self._overlap(load, store, trip=4)

    def test_stride_zero_misses_untouched_word(self):
        load = AddressPattern(0, 0, 8, offset=3)
        store = AddressPattern(0, 1, 8)
        assert not self._overlap(load, store, trip=3)

    def test_negative_stride_walks_into_store(self):
        # Load indices 2,1 (walking down); store indices 0,1.
        load = AddressPattern(0, -1, 8, offset=2)
        store = AddressPattern(0, 1, 8)
        assert self._overlap(load, store, trip=2)

    def test_negative_stride_disjoint_region(self):
        load = AddressPattern(1 << 20, -1, 8, offset=2)
        store = AddressPattern(0, 1, 8)
        assert not self._overlap(load, store, trip=2)

    def test_single_trip_same_region_disjoint_words(self):
        # One iteration only: load index 5 vs store index 0 — the shared
        # region alone must not flag an overlap.
        load = AddressPattern(0, 1, 8, offset=5)
        store = AddressPattern(0, 1, 8)
        assert not self._overlap(load, store, trip=1)

    def test_single_trip_same_word_overlaps(self):
        load = AddressPattern(0, 1, 8, offset=0)
        store = AddressPattern(0, 1, 8)
        assert self._overlap(load, store, trip=1)


class TestStaticPlanAgreement:
    """The certifier's abstract interpretation vs the plan builder.

    ``summarize_kernel`` re-derives the overlap bit and register
    stability from the IR alone; both must match what the plan builder
    computed by enumeration, over the same randomized corpus the
    engine-equivalence suite draws from.
    """

    @pytest.mark.parametrize("batch", range(4))
    def test_random_kernels_agree(self, batch):
        from repro.verify.absint.certify import summarize_kernel

        rng = random.Random(7000 + batch)
        for i in range(40):
            kernel = _random_kernel(rng, f"agree{batch}_{i}", 1 << 22)
            plan = _build_plan(kernel, SEED, LINE_BYTES)
            ks = summarize_kernel(0, kernel)
            assert ks.overlap == plan.overlap, kernel.name
            assert ks.regs_stable == plan.regs_stable, kernel.name
            assert ks.trip == kernel.trip_count
