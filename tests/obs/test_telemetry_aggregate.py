"""Campaign aggregator: frame folding, snapshots, tolerance contracts."""

from repro.experiments.progress import ProgressTracker
from repro.obs.telemetry.aggregate import CampaignTelemetry
from repro.obs.telemetry.frames import (
    MetricsDelta,
    PhaseChanged,
    TaskFinished,
    TaskHeartbeat,
    TaskStarted,
)
from repro.obs.telemetry.snapshots import SNAPSHOT_FIELDS, read_snapshots


def _started(task="bt/Ckpt_E", ts=1.0, pid=7):
    return TaskStarted(ts_s=ts, task=task, pid=pid)


def _beat(task="bt/Ckpt_E", interval=0, instructions=100, ts=1.1):
    return TaskHeartbeat(ts_s=ts, task=task, interval=interval,
                         instructions=instructions)


def _finished(task="bt/Ckpt_E", ok=True, ts=2.0, **kw):
    kw.setdefault("seconds", 1.0)
    kw.setdefault("phase_seconds", {})
    kw.setdefault("phase_counts", {})
    return TaskFinished(ts_s=ts, task=task, ok=ok, **kw)


class TestFrameFolding:
    def test_task_lifecycle(self):
        tele = CampaignTelemetry()
        tele.on_frame(_started(), worker=2)
        assert tele.tasks_started == 1
        assert tele.active["bt/Ckpt_E"]["worker"] == 2
        assert tele.active["bt/Ckpt_E"]["pid"] == 7
        tele.on_frame(_beat(interval=3))
        assert tele.active["bt/Ckpt_E"]["interval"] == 3
        tele.on_frame(PhaseChanged(ts_s=1.2, task="bt/Ckpt_E",
                                   phase="simulate"))
        assert tele.active["bt/Ckpt_E"]["phase"] == "simulate"
        tele.on_frame(_finished())
        assert tele.tasks_finished == 1
        assert tele.tasks_failed == 0
        assert tele.active == {}
        assert tele.frames == 4

    def test_failed_task_counted(self):
        tele = CampaignTelemetry()
        tele.on_frame(_finished(ok=False))
        assert tele.tasks_failed == 1

    def test_heartbeat_instruction_deltas_accumulate(self):
        tele = CampaignTelemetry()
        tele.on_frame(_beat(instructions=100))
        tele.on_frame(_beat(instructions=250))
        assert tele.counters["instructions"] == 250

    def test_instruction_counter_restart_treated_as_fresh_run(self):
        # A dependent's nested inline baseline restarts the cumulative
        # count; the delta must clamp, never go negative.
        tele = CampaignTelemetry()
        tele.on_frame(_beat(instructions=1000))
        tele.on_frame(_beat(instructions=40))
        assert tele.counters["instructions"] == 1040

    def test_metrics_delta_folds_counters(self):
        tele = CampaignTelemetry()
        tele.on_frame(MetricsDelta(ts_s=1.0, task="t", interval=0,
                                   counters={"logged_records": 5}))
        tele.on_frame(MetricsDelta(ts_s=1.5, task="t", interval=1,
                                   counters={"logged_records": 3}))
        assert tele.counters["logged_records"] == 8

    def test_finished_merges_phase_attribution(self):
        tele = CampaignTelemetry()
        tele.on_frame(_finished(
            phase_seconds={"simulate": 2.0}, phase_counts={"simulate": 1},
        ))
        tele.on_frame(_finished(
            task="is/Ckpt_E",
            phase_seconds={"simulate": 1.0, "compile": 0.5},
            phase_counts={"simulate": 1, "compile": 1},
        ))
        assert tele.profiler.seconds["simulate"] == 3.0
        assert tele.metrics.histogram("profile.simulate").count == 2
        assert tele.metrics.histogram("telemetry.task_seconds").count == 2
        assert "campaign wall-clock attribution" in tele.attribution_table()

    def test_malformed_wire_dict_counted_and_dropped(self):
        tele = CampaignTelemetry()
        tele.on_frame_dict({"frame": "task_started"})  # missing fields
        tele.on_frame_dict("not even a dict")
        assert tele.malformed == 2
        assert tele.frames == 0
        tele.on_frame_dict(_started().to_dict(), worker=1)
        assert tele.frames == 1

    def test_subscriber_exceptions_are_swallowed(self):
        tele = CampaignTelemetry()
        seen = []

        def broken(t):
            raise RuntimeError("dashboard fell over")

        tele.subscribers.append(broken)
        tele.subscribers.append(lambda t: seen.append(t.frames))
        tele.on_frame(_started())
        assert seen == [1]


class TestSnapshots:
    def test_snapshot_has_exactly_the_published_fields(self):
        tele = CampaignTelemetry(progress=ProgressTracker())
        tele.on_frame(_started())
        tele.on_frame(_beat())
        snap = tele.snapshot()
        assert set(snap) == set(SNAPSHOT_FIELDS)
        assert snap["tasks_active"] == ["bt/Ckpt_E"]
        assert snap["counters"]["instructions"] == 100

    def test_progress_counters_ride_along(self):
        progress = ProgressTracker()
        progress.record("bt", "Ckpt_E", "sim", 0.5)
        progress.record_miss()
        progress.record_retry()
        snap = CampaignTelemetry(progress=progress).snapshot()
        assert snap["progress"]["runs"] == 1
        assert snap["progress"]["simulated"] == 1
        assert snap["progress"]["disk_misses"] == 1
        assert snap["progress"]["retried"] == 1

    def test_no_progress_means_empty_subdict(self):
        assert CampaignTelemetry().snapshot()["progress"] == {}

    def test_pool_gauges_and_utilization(self):
        tele = CampaignTelemetry()
        tele.update_pool(workers=4, busy=3, queue_depth=7)
        snap = tele.snapshot()
        assert snap["workers"] == 4
        assert snap["busy"] == 3
        assert snap["queue_depth"] == 7
        assert snap["rates"]["utilization"] == 0.75

    def test_writer_rate_limits_and_close_always_writes(self, tmp_path):
        clock_t = [0.0]
        path = tmp_path / "telemetry.jsonl"
        tele = CampaignTelemetry(snapshot_path=path,
                                 snapshot_interval_s=0.5,
                                 clock=lambda: clock_t[0])
        tele.on_frame(_started())  # due immediately: first snapshot
        tele.on_frame(_beat())     # 0.0s later: rate-limited away
        assert tele.snapshots_written == 1
        final = tele.close()
        assert tele.snapshots_written == 2
        assert final["frames"] == 2
        docs = read_snapshots(path)
        assert [d["frames"] for d in docs] == [1, 2]
        # close() is idempotent: no third line.
        tele.close()
        assert tele.snapshots_written == 2

    def test_no_snapshot_path_means_no_writer(self):
        tele = CampaignTelemetry()
        assert tele.writer is None
        assert tele.snapshots_written == 0
        tele.close()  # still fine
