"""The soundness rules and their registry.

Every rule has a stable id (``ACR001`` ...), a slug, a default severity
and a checker ``fn(ctx) -> Iterator[Diagnostic]`` over a
:class:`VerifyContext`.  The rules encode the compiler invariants ACR's
safety argument rests on — a store whose old-value logging is omitted must
carry a Slice that is pure, input-complete, policy-conforming and bound to
operand values that are actually live at ``ASSOC-ADDR`` time:

========  ========================  ======================================
rule id   slug                      invariant
========  ========================  ======================================
ACR001    slice-impure              slices contain ALU/MOVI only
ACR002    frontier-incomplete       every slice input is a frontier slot
ACR003    dangling-assoc            ASSOC_ADDR stores <-> SliceTable bijection
ACR004    operand-budget-exceeded   snapshot fits the operand buffer
ACR005    threshold-violation       embedded slices pass the active policy
ACR006    result-reg-undefined      the result register is always defined
ACR007    frontier-aliasing-hazard  snapshot values equal slice-bound loads
ACR008    recompute-divergence      (dynamic oracle, see ``oracle.py``)
========  ========================  ======================================

ACR009–ACR012 are the **vector-safety** rules: advisory (info/warning)
findings backed by the abstract address-range analysis in
:mod:`repro.verify.absint`.  They never reject a program — the vector
engine falls back to the classic interpreter for any segment they deny —
but they make every such fallback explainable (``acr-repro analyze``):

========  =========================  =====================================
rule id   slug                       fallback it explains
========  =========================  =====================================
ACR009    vector-unsafe-overlap      kernel loads alias its own stores
ACR010    cross-core-aliasing-race   kernel loads alias another core's
                                     stores
ACR011    unstable-observed-register register file at store time differs
                                     from the plan's end-of-iteration row
ACR012    external-load-intersection kernel loads alias stores of earlier
                                     kernels in the same program
========  =========================  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.compiler.slices import Slice, SliceTable
from repro.isa.instructions import AluInstr, LoadInstr, MoviInstr, StoreInstr
from repro.isa.opcodes import ALU_OPCODES
from repro.isa.program import Program
from repro.verify.dataflow import KernelDataflow
from repro.verify.diagnostics import Diagnostic, Severity

__all__ = [
    "Rule",
    "RULES",
    "VerifyContext",
    "slice_required_inputs",
    "run_static_rules",
]

RuleChecker = Callable[["VerifyContext"], Iterator[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """Registry entry for one verification rule."""

    rule_id: str
    slug: str
    severity: Severity
    summary: str
    check: RuleChecker


#: Registry of all static rules, keyed by rule id (insertion-ordered).
RULES: Dict[str, Rule] = {}


def _register(
    rule_id: str, slug: str, severity: Severity, summary: str
) -> Callable[[RuleChecker], RuleChecker]:
    """Class the decorated checker function under ``rule_id``."""

    def deco(fn: RuleChecker) -> RuleChecker:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = Rule(rule_id, slug, severity, summary, fn)
        return fn

    return deco


@dataclass
class VerifyContext:
    """Everything a rule may inspect, with cached per-kernel dataflow."""

    program: Program
    slices: SliceTable
    #: Policy the embedding pass ran with (``None`` disables ACR005).
    policy: Optional[object] = None
    #: Operand-buffer word budget an entry's snapshot must fit.
    operand_capacity: Optional[int] = None
    #: Programs sharing memory with this one (the other cores of the
    #: run); ACR010 checks cross-core aliasing against their stores.
    peers: Tuple[Program, ...] = ()
    _dataflow: Dict[int, KernelDataflow] = field(default_factory=dict)

    def dataflow(self, kernel_index: int) -> KernelDataflow:
        """Dataflow facts for one kernel (built once, cached)."""
        df = self._dataflow.get(kernel_index)
        if df is None:
            df = KernelDataflow(self.program.kernels[kernel_index])
            self._dataflow[kernel_index] = df
        return df

    def site_location(self, site: int) -> Optional[Tuple[int, int]]:
        """(kernel index, body index) of a site id; None if out of range."""
        sites = self.program.store_sites
        if 0 <= site < len(sites):
            loc = sites[site]
            return loc.kernel_index, loc.instr_index
        return None

    def describe_site(self, site: int) -> Optional[str]:
        """Human location string for a site id."""
        loc = self.site_location(site)
        if loc is None:
            return None
        k_idx, i_idx = loc
        return f"kernel {self.program.kernels[k_idx].name!r} instr {i_idx}"


def _diag(
    rule_id: str,
    message: str,
    site: Optional[int] = None,
    location: Optional[str] = None,
) -> Diagnostic:
    """Build a finding with the registry's slug/severity for ``rule_id``."""
    spec = RULES[rule_id]
    return Diagnostic(rule_id, spec.slug, spec.severity, message, site, location)


def slice_required_inputs(sl: Slice, include_result: bool = True) -> Set[int]:
    """Registers a slice consumes from its operand snapshot.

    A register is *required* when it is read before any slice instruction
    defines it; with ``include_result`` an undefined result register also
    counts (a trivial copy slice consumes its operand as the result).
    Instructions that are not ALU/MOVI are skipped here — ACR001 reports
    them separately.
    """
    required: Set[int] = set()
    defined: Set[int] = set()
    for ins in sl.instructions:
        if isinstance(ins, AluInstr):
            for reg in (ins.src_a, ins.src_b):
                if reg not in defined:
                    required.add(reg)
            defined.add(ins.dst)
        elif isinstance(ins, MoviInstr):
            defined.add(ins.dst)
    if include_result and sl.result_reg not in defined:
        required.add(sl.result_reg)
    return required


# ---------------------------------------------------------------------------
# Static rules
# ---------------------------------------------------------------------------


@_register(
    "ACR001",
    "slice-impure",
    Severity.ERROR,
    "embedded slices may contain only MOVI and binary-ALU instructions",
)
def _check_purity(ctx: VerifyContext) -> Iterator[Diagnostic]:
    for sl in ctx.slices:
        where = ctx.describe_site(sl.site)
        for pos, ins in enumerate(sl.instructions):
            if isinstance(ins, MoviInstr):
                continue
            if isinstance(ins, AluInstr):
                if ins.op not in ALU_OPCODES:
                    yield _diag(
                        "ACR001",
                        f"slice instruction {pos} uses non-ALU opcode "
                        f"{getattr(ins.op, 'value', ins.op)!r}",
                        sl.site,
                        where,
                    )
                continue
            yield _diag(
                "ACR001",
                f"slice instruction {pos} is {type(ins).__name__}, "
                f"not MOVI/ALU — recomputation would touch memory",
                sl.site,
                where,
            )


@_register(
    "ACR002",
    "frontier-incomplete",
    Severity.ERROR,
    "every register a slice consumes must occupy exactly one frontier slot",
)
def _check_frontier(ctx: VerifyContext) -> Iterator[Diagnostic]:
    for sl in ctx.slices:
        where = ctx.describe_site(sl.site)
        if len(set(sl.frontier)) != len(sl.frontier):
            dupes = sorted(
                {r for r in sl.frontier if sl.frontier.count(r) > 1}
            )
            yield _diag(
                "ACR002",
                f"duplicate frontier registers {dupes} break the "
                f"operand-snapshot alignment",
                sl.site,
                where,
            )
        # Reads only: an undefined *result* register is ACR006's finding.
        missing = sorted(
            slice_required_inputs(sl, include_result=False) - set(sl.frontier)
        )
        if missing:
            yield _diag(
                "ACR002",
                f"slice reads register(s) {missing} that no frontier slot "
                f"supplies — recomputation would use garbage",
                sl.site,
                where,
            )


@_register(
    "ACR003",
    "dangling-assoc",
    Severity.ERROR,
    "ASSOC_ADDR-flagged stores and SliceTable entries must be a bijection",
)
def _check_assoc_bijection(ctx: VerifyContext) -> Iterator[Diagnostic]:
    n_sites = len(ctx.program.store_sites)
    table_sites = set(ctx.slices.sites)
    for site in sorted(table_sites):
        if not 0 <= site < n_sites:
            yield _diag(
                "ACR003",
                f"SliceTable covers site {site}, but the program has "
                f"{n_sites} store site(s) — StoreSite index out of range",
                site,
            )
    for loc in ctx.program.store_sites:
        store = ctx.program.site_store(loc.site)
        where = ctx.describe_site(loc.site)
        if store.assoc and loc.site not in table_sites:
            yield _diag(
                "ACR003",
                "store carries ASSOC_ADDR but the SliceTable has no slice "
                "for it — recovery would find nothing to recompute",
                loc.site,
                where,
            )
        elif not store.assoc and loc.site in table_sites:
            yield _diag(
                "ACR003",
                "SliceTable covers this site but the store lacks the "
                "ASSOC_ADDR flag — no operand snapshot is ever captured",
                loc.site,
                where,
            )


@_register(
    "ACR004",
    "operand-budget-exceeded",
    Severity.ERROR,
    "a slice's operand snapshot must fit the operand buffer word budget",
)
def _check_operand_budget(ctx: VerifyContext) -> Iterator[Diagnostic]:
    capacity = ctx.operand_capacity
    if capacity is None:
        return
    for sl in ctx.slices:
        words = len(sl.frontier)
        if words > capacity:
            yield _diag(
                "ACR004",
                f"slice needs {words} operand word(s) but the operand "
                f"buffer holds {capacity} — every ASSOC_ADDR would be "
                f"rejected, making the embedding dead weight",
                sl.site,
                ctx.describe_site(sl.site),
            )


@_register(
    "ACR005",
    "threshold-violation",
    Severity.ERROR,
    "every embedded slice must be accepted by the active selection policy",
)
def _check_policy(ctx: VerifyContext) -> Iterator[Diagnostic]:
    policy = ctx.policy
    if policy is None:
        return
    for sl in ctx.slices:
        if not policy.accept(sl):
            yield _diag(
                "ACR005",
                f"slice of length {sl.length} with {len(sl.frontier)} "
                f"operand(s) is rejected by the active "
                f"{type(policy).__name__} yet was embedded",
                sl.site,
                ctx.describe_site(sl.site),
            )


@_register(
    "ACR006",
    "result-reg-undefined",
    Severity.ERROR,
    "the result register must be defined by the slice or a frontier slot",
)
def _check_result_defined(ctx: VerifyContext) -> Iterator[Diagnostic]:
    for sl in ctx.slices:
        defined = set(sl.frontier)
        for ins in sl.instructions:
            dst = getattr(ins, "dst", None)
            if dst is not None:
                defined.add(dst)
        if sl.result_reg not in defined:
            yield _diag(
                "ACR006",
                f"result register {sl.result_reg} is never defined — "
                f"Slice.execute would only fail at recovery time",
                sl.site,
                ctx.describe_site(sl.site),
            )


@_register(
    "ACR007",
    "frontier-aliasing-hazard",
    Severity.ERROR,
    "operand snapshots at store time must carry the loads the slice bound",
)
def _check_frontier_aliasing(ctx: VerifyContext) -> Iterator[Diagnostic]:
    for sl in ctx.slices:
        loc = ctx.site_location(sl.site)
        if loc is None:
            continue  # out-of-range site: ACR003's finding
        k_idx, s_idx = loc
        kernel = ctx.program.kernels[k_idx]
        store = kernel.body[s_idx]
        if not isinstance(store, StoreInstr):
            continue
        df = ctx.dataflow(k_idx)
        closure, _ = df.closure_of(s_idx)
        where = ctx.describe_site(sl.site)
        needed = slice_required_inputs(sl) & set(sl.frontier)
        for reg in sorted(needed):
            closure_loads = [
                i
                for i in closure
                if df.def_reg(i) == reg
                and isinstance(kernel.body[i], LoadInstr)
            ]
            if len(closure_loads) > 1:
                yield _diag(
                    "ACR007",
                    f"frontier register {reg} is produced by "
                    f"{len(closure_loads)} distinct loads in the backward "
                    f"closure — one snapshot slot cannot carry both values",
                    sl.site,
                    where,
                )
                continue
            reach = df.reaching_def(s_idx, reg)
            if reach is None:
                yield _diag(
                    "ACR007",
                    f"frontier register {reg} has no definition before the "
                    f"store — the snapshot would capture a stale live-in",
                    sl.site,
                    where,
                )
            elif reach not in closure or not isinstance(
                kernel.body[reach], LoadInstr
            ):
                yield _diag(
                    "ACR007",
                    f"frontier register {reg} is overwritten by instr "
                    f"{reach} between its slice-bound load and the store — "
                    f"the ASSOC_ADDR snapshot captures the wrong value",
                    sl.site,
                    where,
                )


# ---------------------------------------------------------------------------
# Vector-safety rules (advisory: they explain fallbacks, never reject)
# ---------------------------------------------------------------------------


def _kernel_where(ctx: VerifyContext, k_idx: int, span: Tuple[int, int]) -> str:
    """Human location string for a body-instruction span."""
    name = ctx.program.kernels[k_idx].name
    lo, hi = span
    instrs = f"instr {lo}" if lo == hi else f"instrs {lo}..{hi}"
    return f"kernel {name!r} {instrs}"


@_register(
    "ACR009",
    "vector-unsafe-overlap",
    Severity.WARNING,
    "a kernel whose loads alias its own stores cannot replay batched",
)
def _check_vector_overlap(ctx: VerifyContext) -> Iterator[Diagnostic]:
    from repro.verify.absint.certify import summarize_program

    for k_idx, ks in enumerate(summarize_program(ctx.program).kernels):
        if ks.overlap:
            witness = min(ks.load_addrs & ks.store_addrs)
            assert ks.overlap_span is not None
            yield _diag(
                "ACR009",
                f"loads and stores of kernel {ks.name!r} share word "
                f"0x{witness:x}; the vector engine must interpret this "
                f"segment classically",
                location=_kernel_where(ctx, k_idx, ks.overlap_span),
            )


@_register(
    "ACR010",
    "cross-core-aliasing-race",
    Severity.WARNING,
    "a kernel loading words another core stores cannot replay batched",
)
def _check_cross_core_aliasing(ctx: VerifyContext) -> Iterator[Diagnostic]:
    from repro.verify.absint.certify import summarize_program

    if not ctx.peers:
        return
    peer_stores = frozenset().union(
        *(summarize_program(p).store_union for p in ctx.peers)
    )
    if not peer_stores:
        return
    for k_idx, ks in enumerate(summarize_program(ctx.program).kernels):
        common = ks.load_addrs & peer_stores
        if common:
            offending = [
                pos
                for pos, r in ks.loads
                if not r.addresses.isdisjoint(peer_stores)
            ]
            yield _diag(
                "ACR010",
                f"kernel {ks.name!r} loads word 0x{min(common):x} which "
                f"another core's program stores to — replay order is not "
                f"provable across cores",
                location=_kernel_where(
                    ctx, k_idx, (min(offending), max(offending))
                ),
            )


@_register(
    "ACR011",
    "unstable-observed-register",
    Severity.INFO,
    "register files observed at store time must match plan rows",
)
def _check_unstable_registers(ctx: VerifyContext) -> Iterator[Diagnostic]:
    from repro.verify.absint.certify import summarize_program

    for k_idx, ks in enumerate(summarize_program(ctx.program).kernels):
        if ks.stores and not ks.regs_stable:
            assert ks.unstable_span is not None
            yield _diag(
                "ACR011",
                f"kernel {ks.name!r} redefines a register after its first "
                f"store; observers would see a file that differs from the "
                f"plan's end-of-iteration row",
                location=_kernel_where(ctx, k_idx, ks.unstable_span),
            )


@_register(
    "ACR012",
    "external-load-intersection",
    Severity.INFO,
    "a kernel loading words an earlier kernel stored cannot replay batched",
)
def _check_external_load_intersection(
    ctx: VerifyContext,
) -> Iterator[Diagnostic]:
    from repro.verify.absint.certify import summarize_program

    summary = summarize_program(ctx.program)
    for k_idx, ks in enumerate(summary.kernels):
        earlier = summary.prefix_stores[k_idx]
        common = ks.load_addrs & earlier
        if common:
            offending = [
                pos
                for pos, r in ks.loads
                if not r.addresses.isdisjoint(earlier)
            ]
            yield _diag(
                "ACR012",
                f"kernel {ks.name!r} loads word 0x{min(common):x} stored "
                f"by an earlier kernel of the same program; plan values "
                f"precomputed from the initial image would be stale",
                location=_kernel_where(
                    ctx, k_idx, (min(offending), max(offending))
                ),
            )


def run_static_rules(
    ctx: VerifyContext, rule_ids: Sequence[str]
) -> List[Diagnostic]:
    """Run the selected static rules over ``ctx``; returns their findings."""
    findings: List[Diagnostic] = []
    for rule_id in rule_ids:
        findings.extend(RULES[rule_id].check(ctx))
    return findings
