"""Static vector-safety certification (abstract address-range analysis).

The vector engine (``repro.sim.vector``) replays precomputed per-kernel
trace plans instead of interpreting instructions one by one, but it may
only do so when the replay is provably equivalent to classic execution.
PR 6 made that call *at runtime, per segment* — this package makes it at
*compile/analysis time*: an abstract interpreter over the ISA IR derives
the exact address footprint of every load/store stream (``shapes``),
summarises each kernel's dataflow stability (``certify``), and issues
per-segment **vector-safety certificates** whose denials carry a
registry rule id (ACR009–ACR012) and the offending instruction span.

The certificates are consumed as a pre-filter above the runtime checks:
a SAFE segment replays without re-checking, and every remaining runtime
fallback is attributable to a concrete denial — no "unknown" fallbacks.
"""

from repro.verify.absint.certify import (
    Denial,
    KernelSummary,
    ProgramSummary,
    SegmentCertificate,
    certify_run,
    summarize_program,
)
from repro.verify.absint.shapes import AccessRange, range_of, ranges_intersect

__all__ = [
    "AccessRange",
    "Denial",
    "KernelSummary",
    "ProgramSummary",
    "SegmentCertificate",
    "certify_run",
    "range_of",
    "ranges_intersect",
    "summarize_program",
]
