"""JSONL trace schema linter (library + ``python -m repro.obs.lint``).

One trace event per line, each a JSON object with the wire ``name`` of
a registered event type plus exactly that type's fields (see
:data:`repro.obs.events.EVENT_TYPES`).  The CI smoke step runs this
over a freshly exported trace so the JSONL contract cannot drift
silently from the event dataclasses — the checks are derived from the
dataclass fields, never hand-listed.
"""

from __future__ import annotations

import json
import sys
from dataclasses import fields
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Type, Union

from repro.obs.events import EVENT_TYPES, TraceEvent

__all__ = ["lint_event_dict", "lint_jsonl", "main"]

#: Per-event required keys (the wire name plus every dataclass field).
_SCHEMAS: Dict[str, Tuple[Type[TraceEvent], frozenset]] = {
    name: (cls, frozenset(f.name for f in fields(cls)))
    for name, cls in EVENT_TYPES.items()
}


def lint_event_dict(obj: object, where: str = "event") -> List[str]:
    """Problems with one decoded JSONL event object (empty == valid)."""
    if not isinstance(obj, dict):
        return [f"{where}: not a JSON object"]
    name = obj.get("name")
    if name not in _SCHEMAS:
        return [f"{where}: unknown event name {name!r}"]
    _, required = _SCHEMAS[name]
    errors: List[str] = []
    present = set(obj) - {"name"}
    for missing in sorted(required - present):
        errors.append(f"{where}: {name} missing field {missing!r}")
    for extra in sorted(present - required):
        errors.append(f"{where}: {name} has unknown field {extra!r}")
    ts = obj.get("ts_ns")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
        errors.append(f"{where}: ts_ns must be a non-negative number")
    core = obj.get("core")
    if not isinstance(core, int) or isinstance(core, bool) or core < -1:
        errors.append(f"{where}: core must be an int >= -1")
    return errors


def lint_jsonl(path: Union[str, Path]) -> Tuple[int, List[str]]:
    """Lint a JSONL trace file; returns ``(event_count, problems)``."""
    path = Path(path)
    errors: List[str] = []
    count = 0
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        return 0, [f"{path}: unreadable: {exc}"]
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            errors.append(f"{path}:{lineno}: blank line")
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{path}:{lineno}: invalid JSON: {exc.msg}")
            continue
        count += 1
        errors.extend(lint_event_dict(obj, where=f"{path}:{lineno}"))
    return count, errors


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: lint each given JSONL file; exit 1 on any problem."""
    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print("usage: python -m repro.obs.lint TRACE.jsonl [...]",
              file=sys.stderr)
        return 2
    failed = False
    for path in paths:
        count, errors = lint_jsonl(path)
        for err in errors:
            print(err, file=sys.stderr)
        if errors:
            failed = True
        else:
            print(f"{path}: ok ({count} events)")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    sys.exit(main())
