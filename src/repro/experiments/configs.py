"""The nine evaluated configurations (paper §IV).

=============== ======= ===== ======
name            scheme  ACR   errors
=============== ======= ===== ======
NoCkpt          none    no    no
Ckpt_NE         global  no    no
Ckpt_E          global  no    yes
ReCkpt_NE       global  yes   no
ReCkpt_E        global  yes   yes
Ckpt_NE_Loc     local   no    no
Ckpt_E_Loc      local   no    yes
ReCkpt_NE_Loc   local   yes   no
ReCkpt_E_Loc    local   yes   yes
=============== ======= ===== ======

``make_options`` turns a configuration name plus experiment knobs
(checkpoint count, error count, slice threshold) into
:class:`~repro.sim.simulator.SimulationOptions`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Optional, Tuple

from repro.compiler.policy import SelectionPolicy, ThresholdPolicy
from repro.errors.injection import NoErrors, UniformErrors
from repro.errors.model import ErrorModel
from repro.obs.tracer import Tracer
from repro.sim.results import BaselineProfile
from repro.sim.simulator import SimulationOptions
from repro.util.validation import check_positive

__all__ = ["CONFIG_NAMES", "ConfigRequest", "make_options"]

CONFIG_NAMES: Tuple[str, ...] = (
    "NoCkpt",
    "Ckpt_NE",
    "Ckpt_E",
    "ReCkpt_NE",
    "ReCkpt_E",
    "Ckpt_NE_Loc",
    "Ckpt_E_Loc",
    "ReCkpt_NE_Loc",
    "ReCkpt_E_Loc",
)


@dataclass(frozen=True)
class ConfigRequest:
    """A configuration name plus its experiment knobs (a cache key).

    Every field that can change a run's outcome **must** live here: the
    frozen dataclass derives ``__eq__``/``__hash__`` over all fields, and
    the persistent result cache keys entries by :meth:`canonical_key`.
    A knob that reaches the simulator without appearing in this class
    would silently alias distinct runs — a test walks the fields and
    pins that every one of them perturbs the key.
    """

    config: str
    num_checkpoints: int = 25
    error_count: int = 1
    threshold: int = 10
    #: Seed of the initial memory image (reaches
    #: :class:`~repro.sim.simulator.SimulationOptions` verbatim).
    memory_seed: int = 0

    def __post_init__(self) -> None:
        if self.config not in CONFIG_NAMES:
            raise ValueError(
                f"unknown configuration {self.config!r}; "
                f"pick one of {CONFIG_NAMES}"
            )
        check_positive("num_checkpoints", self.num_checkpoints)
        check_positive("error_count", self.error_count)
        check_positive("threshold", self.threshold)
        if not isinstance(self.memory_seed, int) or self.memory_seed < 0:
            raise ValueError(
                f"memory_seed must be a non-negative int, "
                f"got {self.memory_seed!r}"
            )

    def canonical_key(self) -> Tuple[Tuple[str, Any], ...]:
        """Every field as sorted (name, value) pairs — the cache-key
        contribution of this request.  Derived from ``fields`` so a newly
        added knob can never be forgotten."""
        return tuple(
            (f.name, getattr(self, f.name))
            for f in sorted(fields(self), key=lambda f: f.name)
        )

    @property
    def is_baseline(self) -> bool:
        """True for the checkpoint-free NoCkpt configuration."""
        return self.config == "NoCkpt"

    @property
    def scheme(self) -> str:
        """Checkpointing scheme implied by the name."""
        if self.config == "NoCkpt":
            return "none"
        return "local" if self.config.endswith("_Loc") else "global"

    @property
    def acr(self) -> bool:
        """Whether ACR (recomputation) is enabled."""
        return self.config.startswith("ReCkpt")

    @property
    def with_errors(self) -> bool:
        """Whether errors are injected."""
        return "_E" in self.config and not self.config.startswith("NoCkpt")


def make_options(
    request: ConfigRequest,
    baseline: Optional[BaselineProfile],
    error_model: Optional[ErrorModel] = None,
    slice_policy: Optional[SelectionPolicy] = None,
    tracer: Optional[Tracer] = None,
    collect_metrics: bool = False,
    engine: str = "interp",
) -> SimulationOptions:
    """Build the simulator options for one configuration request.

    ``tracer``/``collect_metrics`` attach the observability layer; they
    are *not* part of the cache key (a traced run must bypass the result
    cache — see :meth:`ExperimentRunner.run_traced`).  ``engine`` selects
    the execution engine; it is deliberately **not** a
    :class:`ConfigRequest` field either, because both engines produce
    bit-identical results (the differential equivalence suite pins this)
    — the cache may serve a result computed by either one.
    """
    if request.is_baseline:
        return SimulationOptions(
            label=request.config,
            scheme="none",
            memory_seed=request.memory_seed,
            tracer=tracer,
            collect_metrics=collect_metrics,
            engine=engine,
        )
    errors = (
        UniformErrors(request.error_count) if request.with_errors else NoErrors()
    )
    return SimulationOptions(
        label=request.config,
        scheme=request.scheme,
        acr=request.acr,
        num_checkpoints=request.num_checkpoints,
        slice_policy=(
            slice_policy
            if slice_policy is not None
            else (ThresholdPolicy(request.threshold) if request.acr else None)
        ),
        errors=errors,
        error_model=error_model or ErrorModel(),
        baseline=baseline,
        memory_seed=request.memory_seed,
        tracer=tracer,
        collect_metrics=collect_metrics,
        engine=engine,
    )
