#!/usr/bin/env python
"""Build a custom program, slice it, and watch ACR recover from an error.

This example uses the low-level API directly (no workload generators):

1. hand-build a two-thread program with the kernel builder — a stencil-ish
   chain kernel (sliceable), an accumulator (loop-carried: not sliceable)
   and a copy kernel (trivial: not worth slicing);
2. run the ACR compiler pass and inspect the extracted Slices;
3. simulate with checkpointing + one injected error;
4. independently verify that every omitted value is recomputed
   bit-exactly from its Slice and operand snapshot.

    python examples/custom_workload.py
"""

from repro import (
    AddressPattern,
    MachineConfig,
    Program,
    SimulationOptions,
    Simulator,
    ThresholdPolicy,
    UniformErrors,
    chain_kernel,
    compile_program,
)
from repro.ckpt.recovery import RecoveryEngine


def build_program(thread: int) -> Program:
    base = (thread + 1) << 26
    kernels = []
    for rep in range(16):
        kernels.append(
            chain_kernel(
                f"stencil.r{rep}",
                AddressPattern(base, 1, 128),
                [AddressPattern(base + (1 << 20), 1, 128, offset=rep)],
                chain_depth=6,
                trip_count=128,
                phase=rep,
                salt=thread * 101 + rep,
                ghost_alu=20,
            )
        )
        kernels.append(
            chain_kernel(
                f"accum.r{rep}",
                AddressPattern(base + (1 << 16), 1, 16),
                [AddressPattern(base + (1 << 21), 1, 16)],
                chain_depth=3,
                trip_count=16,
                phase=rep,
                accumulate=True,
            )
        )
        kernels.append(
            chain_kernel(
                f"copy.r{rep}",
                AddressPattern(base + (1 << 17), 1, 16),
                [AddressPattern(base + (1 << 22), 1, 16, offset=rep)],
                chain_depth=0,
                trip_count=16,
                phase=rep,
                copy_store=True,
            )
        )
    return Program(kernels, thread)


def main() -> None:
    config = MachineConfig(num_cores=2)
    programs = [build_program(t) for t in range(2)]

    # --- the compiler pass, standalone -----------------------------------
    compiled = compile_program(programs[0], ThresholdPolicy(10))
    print("compiler pass on thread 0:")
    print(f"  store sites      : {compiled.stats.sites_total}")
    print(f"  sliceable        : {compiled.stats.sites_sliceable}")
    print(f"  embedded         : {compiled.stats.sites_embedded}")
    print(f"  loop-carried     : {compiled.stats.sites_loop_carried}")
    print(f"  trivial copies   : {compiled.stats.sites_trivial}")
    example = next(iter(compiled.slices))
    print(f"  example Slice    : site {example.site}, length "
          f"{example.length}, {len(example.frontier)} operand(s)")

    # --- simulate with an error ------------------------------------------
    sim = Simulator(programs, config)
    base = sim.run_baseline()
    run = sim.run(
        SimulationOptions(
            label="ReCkpt_E",
            scheme="global",
            acr=True,
            slice_policy=ThresholdPolicy(10),
            num_checkpoints=8,
            baseline=base.baseline_profile(),
            errors=UniformErrors(1),
        )
    )
    rec = run.recoveries[0]
    print("\nrecovery after the injected error:")
    print(f"  rolled back to checkpoint {rec.safe_checkpoint} "
          f"(corrupted checkpoint skipped: {rec.skipped_corrupted})")
    print(f"  o_waste     = {rec.waste_ns:10.1f} ns")
    print(f"  o_roll-back = {rec.rollback_ns:10.1f} ns "
          f"({rec.restored_records} log records)")
    print(f"  o_rcmp      = {rec.recompute_ns:10.1f} ns "
          f"({rec.recomputed_values} values, "
          f"{rec.recompute_instructions} slice instructions)")

    # --- independent recomputation check ---------------------------------
    store = run.checkpoint_store
    retained = [c.log for c in store.checkpoints[-2:]] + [store.current_log]
    mismatches = RecoveryEngine.verify_recomputation(retained)
    omitted = sum(len(l.omitted) for l in retained)
    print(f"\nself-check: {omitted} retained omitted values recomputed, "
          f"{len(mismatches)} mismatches")
    assert not mismatches


if __name__ == "__main__":
    main()
