"""Test package."""
