"""Kernel construction helpers.

:class:`KernelBuilder` is a tiny assembler: it allocates virtual registers
and appends instructions.  :func:`chain_kernel` is the workhorse used by the
workload generators — it emits a loop whose store value is produced by an
ALU chain of a *chosen depth*, which is exactly the knob that controls the
extracted Slice length, and hence a benchmark's recomputability profile.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.isa.instructions import (
    AddressPattern,
    AluInstr,
    Instruction,
    LoadInstr,
    MoviInstr,
    StoreInstr,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import Kernel
from repro.util.validation import check_non_negative, check_positive

__all__ = ["KernelBuilder", "chain_kernel"]

#: Opcode rotation used for synthetic chains. MUL appears to make values
#: order-sensitive; SUB/XOR keep them from saturating.
_CHAIN_OPS = (Opcode.ADD, Opcode.XOR, Opcode.MUL, Opcode.SUB, Opcode.ADD, Opcode.XOR)


class KernelBuilder:
    """Incrementally builds a kernel body, allocating registers on demand."""

    def __init__(self, name: str, phase: int = 0) -> None:
        self.name = name
        self.phase = phase
        self._body: List[Instruction] = []
        self._next_reg = 0

    def fresh_reg(self) -> int:
        """Allocate a fresh virtual register."""
        reg = self._next_reg
        self._next_reg += 1
        return reg

    def movi(self, imm: int) -> int:
        """Append ``dst <- imm``; returns ``dst``."""
        dst = self.fresh_reg()
        self._body.append(MoviInstr(dst, imm))
        return dst

    def alu(self, op: Opcode, src_a: int, src_b: int) -> int:
        """Append ``dst <- op(src_a, src_b)``; returns ``dst``."""
        dst = self.fresh_reg()
        self._body.append(AluInstr(op, dst, src_a, src_b))
        return dst

    def alu_into(self, op: Opcode, dst: int, src_a: int, src_b: int) -> int:
        """Append ``dst <- op(src_a, src_b)`` into an existing register."""
        self._body.append(AluInstr(op, dst, src_a, src_b))
        return dst

    def load(self, pattern: AddressPattern) -> int:
        """Append ``dst <- mem[pattern]``; returns ``dst``."""
        dst = self.fresh_reg()
        self._body.append(LoadInstr(dst, pattern))
        return dst

    def store(self, src: int, pattern: AddressPattern) -> None:
        """Append ``mem[pattern] <- src``."""
        self._body.append(StoreInstr(src, pattern))

    def build(self, trip_count: int, ghost_alu: int = 0) -> Kernel:
        """Finalize into a :class:`Kernel`."""
        return Kernel(self.name, self._body, trip_count, self.phase, ghost_alu)


def chain_kernel(
    name: str,
    store_pattern: AddressPattern,
    input_patterns: Sequence[AddressPattern],
    chain_depth: int,
    trip_count: int,
    phase: int = 0,
    salt: int = 1,
    accumulate: bool = False,
    copy_store: bool = False,
    extra_stores: Optional[Sequence[AddressPattern]] = None,
    ghost_alu: int = 0,
) -> Kernel:
    """Build a loop that stores a value produced by an ALU chain.

    Parameters
    ----------
    store_pattern:
        Address stream of the store.
    input_patterns:
        Address streams of the loads that feed the chain (the Slice's input
        operands). At least one is required unless ``chain_depth`` is 0 and
        ``copy_store`` is false (a pure-immediate chain).
    chain_depth:
        Number of binary ALU instructions between the inputs and the store.
        The extracted Slice length is ``chain_depth`` plus one MOVI when a
        salt constant is mixed in.
    accumulate:
        If true, the chain folds in a register carried across iterations,
        making the store's backward slice loop-carried — deliberately
        *not* sliceable.
    copy_store:
        If true the loaded value is stored unmodified (slice length 0 — the
        paper's non-beneficial case, never embedded).
    extra_stores:
        Additional stores of the same chain value (model multi-output
        kernels without growing register pressure).
    """
    check_non_negative("chain_depth", chain_depth)
    check_positive("trip_count", trip_count)
    if copy_store and not input_patterns:
        raise ValueError("copy_store requires at least one input pattern")
    if accumulate and copy_store:
        raise ValueError("accumulate and copy_store are mutually exclusive")

    builder = KernelBuilder(name, phase)
    inputs = [builder.load(p) for p in input_patterns]

    if copy_store:
        value = inputs[0]
    else:
        if inputs:
            value = inputs[0]
            depth_left = chain_depth
        else:
            value = builder.movi(salt & ((1 << 64) - 1))
            depth_left = chain_depth
        if depth_left > 0:
            salt_reg = builder.movi((salt * 0x9E3779B97F4A7C15) & ((1 << 64) - 1))
            for step in range(depth_left):
                op = _CHAIN_OPS[step % len(_CHAIN_OPS)]
                operand = (
                    inputs[step % len(inputs)] if len(inputs) > 1 and step % 2 else salt_reg
                )
                value = builder.alu(op, value, operand)
        if accumulate:
            # Fold in a register that is never initialised inside the body:
            # it is live-in, i.e. loop-carried, so the slice is unbounded.
            acc = builder.fresh_reg()
            value = builder.alu_into(Opcode.ADD, acc, acc, value)

    builder.store(value, store_pattern)
    for extra in extra_stores or ():
        builder.store(value, extra)
    return builder.build(trip_count, ghost_alu=ghost_alu)
