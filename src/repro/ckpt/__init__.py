"""Backward error recovery: log-based incremental in-memory checkpointing.

The baseline follows Rebound/ReVive/SafetyNet: on the *first* modification
of a memory word within a checkpoint interval, its old value is appended to
an in-memory log; establishing a checkpoint flushes dirty cache lines,
records per-core architectural state, and clears the per-word log bits.
The two most recent checkpoints are retained (detection latency ≤ period).

``log``         — interval logs: logged records and ACR-omitted records;
``checkpoint``  — checkpoints and the retention-managed store;
``coordinator`` — boundary cost models, global and local coordination;
``recovery``    — rollback planning, costing and functional restore.
"""

from repro.ckpt.log import (
    LOG_RECORD_BYTES,
    VALUE_BYTES,
    IntervalLog,
    LogRecord,
    OmittedRecord,
)
from repro.ckpt.checkpoint import Checkpoint, CheckpointStore, RETAINED_CHECKPOINTS
from repro.ckpt.coordinator import (
    BoundaryCost,
    CheckpointCostModel,
    GlobalCoordinator,
    LocalCoordinator,
    uniform_boundaries,
)
from repro.ckpt.recovery import RecoveryCosts, RecoveryEngine

__all__ = [
    "LOG_RECORD_BYTES",
    "VALUE_BYTES",
    "LogRecord",
    "OmittedRecord",
    "IntervalLog",
    "Checkpoint",
    "CheckpointStore",
    "RETAINED_CHECKPOINTS",
    "BoundaryCost",
    "CheckpointCostModel",
    "GlobalCoordinator",
    "LocalCoordinator",
    "uniform_boundaries",
    "RecoveryCosts",
    "RecoveryEngine",
]
